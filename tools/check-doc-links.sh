#!/usr/bin/env bash
# Checks that every relative markdown link in the repo's docs resolves
# to an existing file. External (http/https/mailto) links and pure
# in-page anchors are skipped; a `path#anchor` link is checked for the
# file part only. Run from anywhere inside the repository; CI runs it
# after the rustdoc build.
set -euo pipefail

cd "$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/."

fail=0
# The documentation surface: the README, the docs/ book and the shims
# README. (PAPER.md / PAPERS.md / SNIPPETS.md / ISSUE.md are
# harness-provided reference material, not maintained documentation.)
docs=""
for doc in README.md ROADMAP.md docs/ARCHITECTURE.md docs/RUNTIME.md shims/README.md; do
    if [ -e "$doc" ]; then
        docs="$docs $doc"
    else
        echo "MISSING DOC FILE: $doc" >&2
        fail=1
    fi
done
# Pick up any future additions to the docs/ book.
for doc in docs/*.md; do
    case " $docs " in *" $doc "*) ;; *) docs="$docs $doc" ;; esac
done

for doc in $docs; do
    dir=$(dirname "$doc")
    # Extract [text](target) pairs; tolerate multiple links per line.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        file=${target%%#*}
        [ -z "$file" ] && continue
        if [ ! -e "$dir/$file" ]; then
            echo "BROKEN: $doc -> $target" >&2
            fail=1
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

if [ "$fail" -ne 0 ]; then
    echo "doc link check failed" >&2
    exit 1
fi
echo "doc links OK ($(echo "$docs" | wc -w) files checked)"
