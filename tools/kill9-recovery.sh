#!/usr/bin/env bash
# Kill -9 crash-recovery audit: run the durable_stream example against
# a real filesystem, SIGKILL it mid-stream, recover, and prove that
# (1) every acked seq survived and (2) the recovered graph matches the
# deterministic oracle replay of the recovered prefix.
#
# Usage: tools/kill9-recovery.sh [seconds-before-kill]
set -euo pipefail
cd "$(dirname "$0")/.."

GRACE="${1:-2}"

cargo build --release --example durable_stream
BIN=target/release/examples/durable_stream

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
LOG="$WORK/run.log"

"$BIN" "$WORK/wal" run 5000000 > "$LOG" &
PID=$!
sleep "$GRACE"
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

LAST_ACK=$(grep '^seq=' "$LOG" | tail -n 1 | sed 's/^seq=\([0-9]*\) .*/\1/' || true)
LAST_ACK="${LAST_ACK:-0}"
if [ "$LAST_ACK" -eq 0 ]; then
    echo "FAIL: engine never acked a batch before the kill (grace ${GRACE}s too short?)"
    exit 1
fi

OUT=$("$BIN" "$WORK/wal" recover)
echo "$OUT"
REC=$(echo "$OUT" | sed -n 's/^recovered seq=\([0-9]*\) .*/\1/p')
OK=$(echo "$OUT" | sed -n 's/.*digest_ok=\(true\|false\)$/\1/p')

if [ "$OK" != "true" ]; then
    echo "FAIL: recovered graph does not match the oracle replay"
    exit 1
fi
if [ "$REC" -lt "$LAST_ACK" ]; then
    echo "FAIL: acked seq $LAST_ACK lost — recovery only reached seq $REC"
    exit 1
fi

# Recovery healed the log: a second pass must find nothing torn and
# land on the same seq.
OUT2=$("$BIN" "$WORK/wal" recover)
REC2=$(echo "$OUT2" | sed -n 's/^recovered seq=\([0-9]*\) .*/\1/p')
TORN2=$(echo "$OUT2" | sed -n 's/.*torn_tail_bytes=\([0-9]*\) .*/\1/p')
if [ "$REC2" != "$REC" ] || [ "$TORN2" != "0" ]; then
    echo "FAIL: second recovery unstable (seq $REC2, torn $TORN2)"
    exit 1
fi

echo "OK: killed -9 after ack $LAST_ACK, recovered seq $REC, digest verified, log healed"
