//! Tree nodes, entry/key traits and augmentation.

use std::sync::Arc;

/// Seed separating treap priorities from other hash uses (e.g. C-tree
/// head selection, which must be independent).
const TREAP_SEED: u64 = 0x5eed_0001_a5f3_c001;

/// A key orderable and hashable to a deterministic treap priority.
///
/// Implemented for the unsigned integer types; implement it for your own
/// key types by hashing a stable representation.
pub trait TreapKey: Ord + Clone + Send + Sync {
    /// Deterministic priority; behaves like a uniform random draw.
    fn priority(&self) -> u64;
}

macro_rules! impl_treap_key_for_uint {
    ($($t:ty),*) => {$(
        impl TreapKey for $t {
            #[inline]
            fn priority(&self) -> u64 {
                parlib::hash64_with_seed(*self as u64, TREAP_SEED)
            }
        }
    )*};
}
impl_treap_key_for_uint!(u8, u16, u32, u64, usize);

impl<A: TreapKey, B: Ord + Clone + Send + Sync> TreapKey for (A, B) {
    #[inline]
    fn priority(&self) -> u64 {
        self.0.priority()
    }
}

/// An element stored in a tree: a key plus optional associated data.
///
/// Plain keys are their own entries (`impl Entry for u32`); maps use
/// key–value pairs.
pub trait Entry: Clone + Send + Sync {
    /// The search key type.
    type Key: TreapKey;
    /// Borrows the key of this entry.
    fn key(&self) -> &Self::Key;
}

macro_rules! impl_entry_for_uint {
    ($($t:ty),*) => {$(
        impl Entry for $t {
            type Key = $t;
            #[inline]
            fn key(&self) -> &$t {
                self
            }
        }
    )*};
}
impl_entry_for_uint!(u8, u16, u32, u64, usize);

impl<K: TreapKey, V: Clone + Send + Sync> Entry for (K, V) {
    type Key = K;
    #[inline]
    fn key(&self) -> &K {
        &self.0
    }
}

/// An associative summary maintained at every node.
///
/// `combine` must be associative with `identity` as its unit;
/// `from_entry` lifts one entry into the monoid.
pub trait Augment<E>: Clone + Send + Sync {
    /// The unit of the monoid.
    fn identity() -> Self;
    /// Measure of a single entry.
    fn from_entry(entry: &E) -> Self;
    /// Associative combination.
    fn combine(&self, other: &Self) -> Self;
}

/// The trivial augmentation carrying no information.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoAug;

impl<E> Augment<E> for NoAug {
    #[inline]
    fn identity() -> Self {
        NoAug
    }
    #[inline]
    fn from_entry(_: &E) -> Self {
        NoAug
    }
    #[inline]
    fn combine(&self, _: &Self) -> Self {
        NoAug
    }
}

/// Augments each entry with a caller-defined `u64` count, summed over
/// subtrees. The graph layer uses this to keep the number of edges below
/// every vertex-tree node, making `num_edges()` an `O(1)` query.
///
/// The common traits are implemented manually so they hold for every
/// measure type `M`, not only those implementing the trait themselves
/// (`M` is phantom).
pub struct CountAug<M>(pub u64, std::marker::PhantomData<M>);

impl<M> Clone for CountAug<M> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for CountAug<M> {}

impl<M> Default for CountAug<M> {
    fn default() -> Self {
        CountAug(0, std::marker::PhantomData)
    }
}

impl<M> std::fmt::Debug for CountAug<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CountAug").field(&self.0).finish()
    }
}

impl<M> PartialEq for CountAug<M> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl<M> Eq for CountAug<M> {}

/// How a [`CountAug`] measures one entry.
pub trait Measure<E>: Clone + Send + Sync {
    /// The non-negative weight of `entry`.
    fn measure(entry: &E) -> u64;
}

impl<M> CountAug<M> {
    /// The aggregated count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl<E, M: Measure<E>> Augment<E> for CountAug<M> {
    #[inline]
    fn identity() -> Self {
        CountAug(0, std::marker::PhantomData)
    }
    #[inline]
    fn from_entry(entry: &E) -> Self {
        CountAug(M::measure(entry), std::marker::PhantomData)
    }
    #[inline]
    fn combine(&self, other: &Self) -> Self {
        CountAug(self.0 + other.0, std::marker::PhantomData)
    }
}

/// A shared, immutable tree node.
#[derive(Debug)]
pub(crate) struct Node<E: Entry, A: Augment<E>> {
    pub(crate) entry: E,
    pub(crate) left: Link<E, A>,
    pub(crate) right: Link<E, A>,
    pub(crate) size: usize,
    pub(crate) aug: A,
}

pub(crate) type Link<E, A> = Option<Arc<Node<E, A>>>;

/// Size of an optional subtree.
#[inline]
pub(crate) fn size<E: Entry, A: Augment<E>>(link: &Link<E, A>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

/// Augmented value of an optional subtree.
#[inline]
pub(crate) fn aug_of<E: Entry, A: Augment<E>>(link: &Link<E, A>) -> A {
    link.as_ref().map_or_else(A::identity, |n| n.aug.clone())
}

/// Allocates a node over `left`, `entry`, `right`, computing size and
/// augmentation. This is the only constructor, so the cached fields can
/// never go stale.
#[inline]
pub(crate) fn mk_node<E: Entry, A: Augment<E>>(
    left: Link<E, A>,
    entry: E,
    right: Link<E, A>,
) -> Link<E, A> {
    let size = size(&left) + size(&right) + 1;
    let aug = aug_of(&left)
        .combine(&A::from_entry(&entry))
        .combine(&aug_of(&right));
    Some(Arc::new(Node {
        entry,
        left,
        right,
        size,
        aug,
    }))
}

/// Treap ordering: compares `(priority, key)` lexicographically so that
/// hash collisions between distinct keys still order deterministically.
#[inline]
pub(crate) fn pri_greater<E: Entry>(a: &E, b: &E) -> bool {
    let (pa, pb) = (a.key().priority(), b.key().priority());
    pa > pb || (pa == pb && a.key() > b.key())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_priority_is_deterministic() {
        assert_eq!(5u32.priority(), 5u32.priority());
        assert_ne!(5u32.priority(), 6u32.priority());
    }

    #[test]
    fn pair_entry_key_is_first_component() {
        let e = (3u32, "payload");
        assert_eq!(*Entry::key(&e), 3);
        assert_eq!(e.priority(), 3u32.priority());
    }

    #[test]
    fn count_aug_sums() {
        #[derive(Clone)]
        struct Unit;
        impl Measure<u32> for Unit {
            fn measure(_: &u32) -> u64 {
                2
            }
        }
        let a = CountAug::<Unit>::from_entry(&1);
        let b = CountAug::<Unit>::from_entry(&2);
        assert_eq!(a.combine(&b).value(), 4);
        assert_eq!(CountAug::<Unit>::identity().value(), 0);
    }

    #[test]
    fn mk_node_computes_size() {
        let leaf = mk_node::<u32, NoAug>(None, 5, None);
        let root = mk_node(leaf.clone(), 8, None);
        assert_eq!(root.as_ref().unwrap().size, 2);
    }
}
