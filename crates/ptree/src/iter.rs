//! In-order iteration.

use crate::node::{Augment, Entry, Link, Node};

/// In-order (key order) iterator over tree entries.
///
/// Created by [`Tree::iter`](crate::Tree::iter). Uses an explicit stack
/// of `O(log n)` height.
pub struct Iter<'a, E: Entry, A: Augment<E>> {
    stack: Vec<&'a Node<E, A>>,
    remaining: usize,
}

impl<'a, E: Entry, A: Augment<E>> Iter<'a, E, A> {
    pub(crate) fn new(root: &'a Link<E, A>) -> Self {
        let remaining = root.as_ref().map_or(0, |n| n.size);
        let mut it = Iter {
            stack: Vec::new(),
            remaining,
        };
        it.push_left(root);
        it
    }

    fn push_left(&mut self, mut link: &'a Link<E, A>) {
        while let Some(n) = link {
            self.stack.push(n);
            link = &n.left;
        }
    }
}

impl<'a, E: Entry, A: Augment<E>> Iterator for Iter<'a, E, A> {
    type Item = &'a E;

    fn next(&mut self) -> Option<&'a E> {
        let node = self.stack.pop()?;
        self.remaining -= 1;
        self.push_left(&node.right);
        Some(&node.entry)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<E: Entry, A: Augment<E>> ExactSizeIterator for Iter<'_, E, A> {}

impl<'a, E: Entry, A: Augment<E>> IntoIterator for &'a crate::Tree<E, A> {
    type Item = &'a E;
    type IntoIter = Iter<'a, E, A>;

    fn into_iter(self) -> Iter<'a, E, A> {
        self.iter()
    }
}

impl<E: Entry, A: Augment<E>> FromIterator<E> for crate::Tree<E, A> {
    /// Builds a tree from any iterator of entries; later duplicates
    /// replace earlier ones.
    fn from_iter<I: IntoIterator<Item = E>>(iter: I) -> Self {
        crate::Tree::build(iter.into_iter().collect(), |_, new| new)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tree;

    #[test]
    fn iter_is_in_order_and_exact_size() {
        let xs: Vec<u32> = (0..257).collect();
        let t: Tree<u32> = Tree::from_sorted(&xs);
        let it = t.iter();
        assert_eq!(it.len(), 257);
        let got: Vec<u32> = it.copied().collect();
        assert_eq!(got, xs);
    }

    #[test]
    fn iter_empty() {
        let t: Tree<u32> = Tree::new();
        assert_eq!(t.iter().next(), None);
    }

    #[test]
    fn for_loop_over_reference() {
        let t: Tree<u32> = Tree::from_sorted(&[1, 2, 3]);
        let mut sum = 0;
        for x in &t {
            sum += *x;
        }
        assert_eq!(sum, 6);
    }

    #[test]
    fn from_iterator_collects() {
        let t: Tree<u32> = (0..10u32).rev().collect();
        assert_eq!(t.to_vec(), (0..10u32).collect::<Vec<_>>());
    }
}
