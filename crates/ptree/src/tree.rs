//! The public [`Tree`] handle and the core join-based primitives.
//!
//! Everything is expressed in terms of three structural primitives in
//! the style of Blelloch et al. [SPAA'16]:
//!
//! * [`join`](Tree::join) — combine `left < entry < right` into one tree,
//!   restoring the treap priority invariant,
//! * [`split`](Tree::split) — partition a tree around a key,
//! * [`expose`](Tree::expose) — destructure a tree at its root.
//!
//! All higher-level operations (`insert`, `delete`, `union`, …) reduce to
//! these, which is what makes the persistent, parallel implementations
//! short and auditable.

use crate::iter::Iter;
use crate::node::{aug_of, mk_node, pri_greater, size, Augment, Entry, Link, NoAug, Node};
use std::sync::Arc;

/// A purely-functional balanced search tree (treap with deterministic
/// hash priorities).
///
/// Cloning a `Tree` is `O(1)` (an `Arc` bump) and yields an independent
/// *snapshot*: subsequent updates to either handle never affect the
/// other. This is the property the paper relies on for lightweight graph
/// snapshots (§1, §6).
///
/// `E` is the entry type (a key, or a key–value pair); `A` is an optional
/// augmentation maintained at every node.
///
/// # Example
///
/// ```
/// use ptree::Tree;
///
/// let t: Tree<u32> = Tree::from_sorted(&[2, 4, 8]);
/// let t2 = t.insert(6, |_old, new| new);
/// assert_eq!(t.to_vec(), vec![2, 4, 8]);       // snapshot unchanged
/// assert_eq!(t2.to_vec(), vec![2, 4, 6, 8]);
/// ```
pub struct Tree<E: Entry, A: Augment<E> = NoAug> {
    pub(crate) root: Link<E, A>,
}

/// Result of [`Tree::expose`]: the left subtree, root entry, and right
/// subtree, sharing structure with the exposed tree.
pub type Exposed<'a, E, A> = (Tree<E, A>, &'a E, Tree<E, A>);

impl<E: Entry, A: Augment<E>> Clone for Tree<E, A> {
    #[inline]
    fn clone(&self) -> Self {
        Tree {
            root: self.root.clone(),
        }
    }
}

impl<E: Entry + std::fmt::Debug, A: Augment<E>> std::fmt::Debug for Tree<E, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<E: Entry, A: Augment<E>> Default for Tree<E, A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Entry + PartialEq, A: Augment<E>> PartialEq for Tree<E, A> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<E: Entry + Eq, A: Augment<E>> Eq for Tree<E, A> {}

impl<E: Entry, A: Augment<E>> Tree<E, A> {
    /// Creates an empty tree.
    ///
    /// ```
    /// let t: ptree::Tree<u32> = ptree::Tree::new();
    /// assert!(t.is_empty());
    /// ```
    #[inline]
    pub fn new() -> Self {
        Tree { root: None }
    }

    pub(crate) fn from_link(root: Link<E, A>) -> Self {
        Tree { root }
    }

    /// Number of entries, cached at the root (`O(1)`).
    #[inline]
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the two handles share their root node (`Arc` identity).
    ///
    /// A `true` answer proves the trees are equal without looking at a
    /// single entry — the foundation of structural-sharing fast paths
    /// such as `aspen`'s version diffing, where subtrees untouched by
    /// an update are pointer-identical across versions. `false` means
    /// nothing: equal trees built independently share no structure.
    #[inline]
    pub fn ptr_eq(&self, other: &Self) -> bool {
        match (&self.root, &other.root) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Whether the tree has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// An identity token for the root node's allocation (`None` for the
    /// empty tree): two trees return the same token iff [`ptr_eq`]
    /// would answer `true`. Serializers use it to intern structurally
    /// shared subtrees — a subtree reachable from several versions is
    /// written once and referenced by the id assigned at first visit.
    /// The token is only meaningful while a handle keeps the node
    /// alive; it is an address, not a stable cross-process id.
    ///
    /// [`ptr_eq`]: Self::ptr_eq
    #[inline]
    pub fn root_id(&self) -> Option<usize> {
        self.root.as_ref().map(|n| Arc::as_ptr(n) as usize)
    }

    /// The augmented value over all entries (`O(1)`).
    ///
    /// Returns `A::identity()` for an empty tree.
    #[inline]
    pub fn aug(&self) -> A {
        aug_of(&self.root)
    }

    /// Height of the tree; `O(log n)` w.h.p. for the treap. Exposed for
    /// diagnostics and the balance tests.
    pub fn height(&self) -> usize {
        fn go<E: Entry, A: Augment<E>>(l: &Link<E, A>) -> usize {
            l.as_ref().map_or(0, |n| 1 + go(&n.left).max(go(&n.right)))
        }
        go(&self.root)
    }

    /// Looks up the entry with key exactly `k`.
    ///
    /// `O(log n)` work w.h.p.
    ///
    /// ```
    /// let t: ptree::Tree<u32> = ptree::Tree::from_sorted(&[1, 3, 5]);
    /// assert_eq!(t.find(&3), Some(&3));
    /// assert_eq!(t.find(&4), None);
    /// ```
    pub fn find(&self, k: &E::Key) -> Option<&E> {
        let mut cur = &self.root;
        while let Some(node) = cur {
            match k.cmp(node.entry.key()) {
                std::cmp::Ordering::Less => cur = &node.left,
                std::cmp::Ordering::Equal => return Some(&node.entry),
                std::cmp::Ordering::Greater => cur = &node.right,
            }
        }
        None
    }

    /// Whether an entry with key `k` is present.
    #[inline]
    pub fn contains(&self, k: &E::Key) -> bool {
        self.find(k).is_some()
    }

    /// The entry with the largest key `<= k`, if any.
    ///
    /// This is the `Find` operation of the C-tree interface (§4): C-trees
    /// locate the head responsible for an element with exactly this
    /// predecessor search.
    pub fn find_le(&self, k: &E::Key) -> Option<&E> {
        let mut cur = &self.root;
        let mut best: Option<&E> = None;
        while let Some(node) = cur {
            if *node.entry.key() <= *k {
                best = Some(&node.entry);
                cur = &node.right;
            } else {
                cur = &node.left;
            }
        }
        best
    }

    /// The entry with the smallest key `>= k`, if any.
    pub fn find_ge(&self, k: &E::Key) -> Option<&E> {
        let mut cur = &self.root;
        let mut best: Option<&E> = None;
        while let Some(node) = cur {
            if *node.entry.key() >= *k {
                best = Some(&node.entry);
                cur = &node.left;
            } else {
                cur = &node.right;
            }
        }
        best
    }

    /// The entry with the smallest key.
    pub fn first(&self) -> Option<&E> {
        let mut cur = self.root.as_ref()?;
        while let Some(left) = cur.left.as_ref() {
            cur = left;
        }
        Some(&cur.entry)
    }

    /// The entry with the largest key.
    pub fn last(&self) -> Option<&E> {
        let mut cur = self.root.as_ref()?;
        while let Some(right) = cur.right.as_ref() {
            cur = right;
        }
        Some(&cur.entry)
    }

    /// Number of entries with key strictly less than `k` (`O(log n)`).
    pub fn rank(&self, k: &E::Key) -> usize {
        let mut cur = &self.root;
        let mut acc = 0usize;
        while let Some(node) = cur {
            if *k <= *node.entry.key() {
                cur = &node.left;
            } else {
                acc += size(&node.left) + 1;
                cur = &node.right;
            }
        }
        acc
    }

    /// The `i`-th smallest entry (0-based), or `None` if `i >= len`.
    pub fn select(&self, mut i: usize) -> Option<&E> {
        let mut cur = self.root.as_ref()?;
        loop {
            let ls = size(&cur.left);
            match i.cmp(&ls) {
                std::cmp::Ordering::Less => cur = cur.left.as_ref()?,
                std::cmp::Ordering::Equal => return Some(&cur.entry),
                std::cmp::Ordering::Greater => {
                    i -= ls + 1;
                    cur = cur.right.as_ref()?;
                }
            }
        }
    }

    /// Destructures the tree at its root into `(left, entry, right)`.
    ///
    /// This is the `Expose` primitive used throughout the paper's
    /// pseudocode (Algorithm 1). Returns `None` on an empty tree.
    /// The subtrees share structure with `self` (no copying).
    pub fn expose(&self) -> Option<Exposed<'_, E, A>> {
        let node = self.root.as_ref()?;
        Some((
            Tree::from_link(node.left.clone()),
            &node.entry,
            Tree::from_link(node.right.clone()),
        ))
    }

    /// Joins `left`, `entry`, `right` where every key in `left` is less
    /// than `entry.key()` and every key in `right` is greater.
    ///
    /// `O(log n)` work w.h.p.; restores the treap priority invariant no
    /// matter how unbalanced the inputs are relative to each other, which
    /// is what makes all the bulk operations compositional.
    ///
    /// # Panics
    ///
    /// Debug builds assert the ordering precondition.
    pub fn join(left: Tree<E, A>, entry: E, right: Tree<E, A>) -> Tree<E, A> {
        debug_assert!(left.last().is_none_or(|l| l.key() < entry.key()));
        debug_assert!(right.first().is_none_or(|r| r.key() > entry.key()));
        Tree::from_link(join_link(left.root, entry, right.root))
    }

    /// Joins two trees where every key in `left` is less than every key
    /// in `right`, with no middle entry (the paper's `Join2`).
    pub fn join2(left: Tree<E, A>, right: Tree<E, A>) -> Tree<E, A> {
        match split_last_link(left.root) {
            None => right,
            Some((rest, mid)) => Tree::from_link(join_link(rest, mid, right.root)),
        }
    }

    /// Splits the tree by key `k` into `(less, found, greater)` where
    /// `found` is the entry with key `k` if present.
    ///
    /// `O(log n)` work w.h.p.; the returned trees share structure with
    /// the original along all but one root-to-leaf path.
    ///
    /// ```
    /// let t: ptree::Tree<u32> = ptree::Tree::from_sorted(&[1, 3, 5, 7]);
    /// let (lo, found, hi) = t.split(&5);
    /// assert_eq!(lo.to_vec(), vec![1, 3]);
    /// assert_eq!(found, Some(5));
    /// assert_eq!(hi.to_vec(), vec![7]);
    /// ```
    pub fn split(&self, k: &E::Key) -> (Tree<E, A>, Option<E>, Tree<E, A>) {
        let (l, m, r) = split_link(&self.root, k);
        (Tree::from_link(l), m, Tree::from_link(r))
    }

    /// Removes and returns the entry with the smallest key.
    pub fn split_first(&self) -> Option<(E, Tree<E, A>)> {
        split_first_link(self.root.clone()).map(|(e, rest)| (e, Tree::from_link(rest)))
    }

    /// Removes and returns the entry with the largest key.
    pub fn split_last(&self) -> Option<(Tree<E, A>, E)> {
        split_last_link(self.root.clone()).map(|(rest, e)| (Tree::from_link(rest), e))
    }

    /// Inserts `entry`, combining with any existing entry of equal key
    /// via `combine(old, new)`.
    ///
    /// `O(log n)` work w.h.p. Returns the new tree; `self` is unchanged.
    pub fn insert(&self, entry: E, combine: impl Fn(&E, E) -> E) -> Tree<E, A> {
        let (l, old, r) = self.split(entry.key());
        let merged = match old {
            Some(o) => combine(&o, entry),
            None => entry,
        };
        Tree::join(l, merged, r)
    }

    /// Deletes the entry with key `k` if present.
    ///
    /// `O(log n)` work w.h.p. Returns the new tree; `self` is unchanged.
    pub fn delete(&self, k: &E::Key) -> Tree<E, A> {
        let (l, _, r) = self.split(k);
        Tree::join2(l, r)
    }

    /// All entries with keys in `[lo, hi]`, as a tree. `O(log n)` w.h.p.
    pub fn range(&self, lo: &E::Key, hi: &E::Key) -> Tree<E, A> {
        let (_, lmid, geq) = self.split_before(lo);
        debug_assert!(lmid.is_none());
        let (mid, hmid, _) = geq.split_after(hi);
        debug_assert!(hmid.is_none());
        mid
    }

    /// Splits into `(keys < lo, None, keys >= lo)`; a convenience wrapper
    /// keeping an equal key on the right side.
    fn split_before(&self, lo: &E::Key) -> (Tree<E, A>, Option<E>, Tree<E, A>) {
        let (l, m, r) = self.split(lo);
        match m {
            Some(e) => {
                let r2 = Tree::join(Tree::new(), e, r);
                (l, None, r2)
            }
            None => (l, None, r),
        }
    }

    /// Splits into `(keys <= hi, None, keys > hi)`.
    fn split_after(&self, hi: &E::Key) -> (Tree<E, A>, Option<E>, Tree<E, A>) {
        let (l, m, r) = self.split(hi);
        match m {
            Some(e) => (Tree::join(l, e, Tree::new()), None, r),
            None => (l, None, r),
        }
    }

    /// In-order iterator over the entries.
    pub fn iter(&self) -> Iter<'_, E, A> {
        Iter::new(&self.root)
    }

    /// Collects the entries in key order.
    pub fn to_vec(&self) -> Vec<E> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_seq(&mut |e| out.push(e.clone()));
        out
    }

    /// Sequential in-order traversal (no allocation, no parallelism).
    pub fn for_each_seq(&self, f: &mut impl FnMut(&E)) {
        fn go<E: Entry, A: Augment<E>>(l: &Link<E, A>, f: &mut impl FnMut(&E)) {
            if let Some(n) = l {
                go(&n.left, f);
                f(&n.entry);
                go(&n.right, f);
            }
        }
        go(&self.root, f);
    }

    /// Validates the search-tree, treap-priority, size and augmentation
    /// invariants. Used by tests; `O(n)`.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self)
    where
        A: PartialEq + std::fmt::Debug,
    {
        fn go<E: Entry, A: Augment<E> + PartialEq + std::fmt::Debug>(
            link: &Link<E, A>,
            lo: Option<&E::Key>,
            hi: Option<&E::Key>,
        ) -> usize {
            let Some(n) = link else { return 0 };
            let k = n.entry.key();
            assert!(lo.is_none_or(|lo| lo < k), "BST order violated (low)");
            assert!(hi.is_none_or(|hi| k < hi), "BST order violated (high)");
            for c in [&n.left, &n.right].into_iter().flatten() {
                assert!(pri_greater(&n.entry, &c.entry), "treap priority violated");
            }
            let ls = go(&n.left, lo, Some(k));
            let rs = go(&n.right, Some(k), hi);
            assert_eq!(n.size, ls + rs + 1, "cached size stale");
            let expect = aug_of(&n.left)
                .combine(&A::from_entry(&n.entry))
                .combine(&aug_of(&n.right));
            assert_eq!(n.aug, expect, "cached augmentation stale");
            n.size
        }
        go(&self.root, None, None);
    }

    /// Approximate heap footprint in bytes: one node allocation per
    /// entry. Used for the paper's memory tables (Table 2, Table 9).
    pub fn memory_bytes(&self) -> usize {
        self.len() * (std::mem::size_of::<Node<E, A>>() + ARC_OVERHEAD)
    }
}

/// Two `usize` reference counts per `Arc` allocation.
pub(crate) const ARC_OVERHEAD: usize = 2 * std::mem::size_of::<usize>();

/// Link-level join: the workhorse behind [`Tree::join`].
pub(crate) fn join_link<E: Entry, A: Augment<E>>(
    left: Link<E, A>,
    entry: E,
    right: Link<E, A>,
) -> Link<E, A> {
    let entry_wins_left = left.as_ref().is_none_or(|l| pri_greater(&entry, &l.entry));
    let entry_wins_right = right.as_ref().is_none_or(|r| pri_greater(&entry, &r.entry));
    if entry_wins_left && entry_wins_right {
        return mk_node(left, entry, right);
    }
    let left_wins = match (&left, &right) {
        (Some(l), Some(r)) => pri_greater(&l.entry, &r.entry),
        (Some(_), None) => true,
        _ => false,
    };
    if left_wins {
        let l = left.expect("left_wins implies left nonempty");
        let l = unwrap_or_clone(l);
        mk_node(l.left, l.entry, join_link(l.right, entry, right))
    } else {
        let r = right.expect("!left_wins with a losing entry implies right nonempty");
        let r = unwrap_or_clone(r);
        mk_node(join_link(left, entry, r.left), r.entry, r.right)
    }
}

/// Takes the node out of the `Arc` without copying when this is the only
/// reference; clones the (cheap, `Arc`-holding) node otherwise.
#[inline]
fn unwrap_or_clone<E: Entry, A: Augment<E>>(arc: Arc<Node<E, A>>) -> Node<E, A> {
    match Arc::try_unwrap(arc) {
        Ok(n) => n,
        Err(arc) => Node {
            entry: arc.entry.clone(),
            left: arc.left.clone(),
            right: arc.right.clone(),
            size: arc.size,
            aug: arc.aug.clone(),
        },
    }
}

pub(crate) fn split_link<E: Entry, A: Augment<E>>(
    link: &Link<E, A>,
    k: &E::Key,
) -> (Link<E, A>, Option<E>, Link<E, A>) {
    let Some(n) = link else {
        return (None, None, None);
    };
    match k.cmp(n.entry.key()) {
        std::cmp::Ordering::Less => {
            let (ll, m, lr) = split_link(&n.left, k);
            (ll, m, join_link(lr, n.entry.clone(), n.right.clone()))
        }
        std::cmp::Ordering::Equal => (n.left.clone(), Some(n.entry.clone()), n.right.clone()),
        std::cmp::Ordering::Greater => {
            let (rl, m, rr) = split_link(&n.right, k);
            (join_link(n.left.clone(), n.entry.clone(), rl), m, rr)
        }
    }
}

fn split_first_link<E: Entry, A: Augment<E>>(link: Link<E, A>) -> Option<(E, Link<E, A>)> {
    let n = link?;
    let n = unwrap_or_clone(n);
    match split_first_link(n.left) {
        None => Some((n.entry, n.right)),
        Some((e, rest)) => Some((e, join_link(rest, n.entry, n.right))),
    }
}

fn split_last_link<E: Entry, A: Augment<E>>(link: Link<E, A>) -> Option<(Link<E, A>, E)> {
    let n = link?;
    let n = unwrap_or_clone(n);
    match split_last_link(n.right) {
        None => Some((n.left, n.entry)),
        Some((rest, e)) => Some((join_link(n.left, n.entry, rest), e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(xs: &[u32]) -> Tree<u32> {
        let mut v = xs.to_vec();
        v.sort_unstable();
        v.dedup();
        Tree::from_sorted(&v)
    }

    #[test]
    fn empty_tree_basics() {
        let e: Tree<u32> = Tree::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.first(), None);
        assert_eq!(e.last(), None);
        assert_eq!(e.find(&1), None);
        assert!(e.expose().is_none());
    }

    #[test]
    fn insert_is_persistent() {
        let a = t(&[1, 2, 3]);
        let b = a.insert(10, |_, new| new);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
        assert!(b.contains(&10));
        assert!(!a.contains(&10));
    }

    #[test]
    fn insert_combines_duplicates() {
        let a: Tree<(u32, u32)> = Tree::new();
        let a = a.insert((5, 1), |_, new| new);
        let a = a.insert((5, 2), |old, new| (old.0, old.1 + new.1));
        assert_eq!(a.len(), 1);
        assert_eq!(a.find(&5), Some(&(5, 3)));
    }

    #[test]
    fn delete_removes_and_preserves_rest() {
        let a = t(&[1, 2, 3, 4, 5]);
        let b = a.delete(&3);
        assert_eq!(b.to_vec(), vec![1, 2, 4, 5]);
        assert_eq!(a.len(), 5);
        // deleting a missing key is a no-op
        let c = b.delete(&42);
        assert_eq!(c.to_vec(), vec![1, 2, 4, 5]);
    }

    #[test]
    fn split_three_ways() {
        let a = t(&[1, 3, 5, 7, 9]);
        let (lo, m, hi) = a.split(&5);
        assert_eq!(lo.to_vec(), vec![1, 3]);
        assert_eq!(m, Some(5));
        assert_eq!(hi.to_vec(), vec![7, 9]);
        let (lo, m, hi) = a.split(&4);
        assert_eq!(lo.to_vec(), vec![1, 3]);
        assert_eq!(m, None);
        assert_eq!(hi.to_vec(), vec![5, 7, 9]);
    }

    #[test]
    fn split_at_extremes() {
        let a = t(&[2, 4, 6]);
        let (lo, m, hi) = a.split(&0);
        assert!(lo.is_empty() && m.is_none());
        assert_eq!(hi.len(), 3);
        let (lo, m, hi) = a.split(&100);
        assert_eq!(lo.len(), 3);
        assert!(m.is_none() && hi.is_empty());
    }

    #[test]
    fn join2_concatenates() {
        let a = t(&[1, 2]);
        let b = t(&[10, 20]);
        let c = Tree::join2(a, b);
        assert_eq!(c.to_vec(), vec![1, 2, 10, 20]);
        c.check_invariants();
    }

    #[test]
    fn join_rebalances_lopsided_inputs() {
        let left = t(&(0..100).collect::<Vec<_>>());
        let right = t(&[1000]);
        let joined = Tree::join(left, 500, right);
        joined.check_invariants();
        assert_eq!(joined.len(), 102);
    }

    #[test]
    fn find_le_ge() {
        let a = t(&[10, 20, 30]);
        assert_eq!(a.find_le(&25), Some(&20));
        assert_eq!(a.find_le(&10), Some(&10));
        assert_eq!(a.find_le(&5), None);
        assert_eq!(a.find_ge(&25), Some(&30));
        assert_eq!(a.find_ge(&31), None);
    }

    #[test]
    fn rank_and_select_agree() {
        let xs: Vec<u32> = (0..50).map(|i| i * 3).collect();
        let a = t(&xs);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(a.rank(&x), i);
            assert_eq!(a.select(i), Some(&x));
        }
        assert_eq!(a.select(xs.len()), None);
        assert_eq!(a.rank(&1000), xs.len());
    }

    #[test]
    fn range_query() {
        let a = t(&[1, 3, 5, 7, 9]);
        assert_eq!(a.range(&3, &7).to_vec(), vec![3, 5, 7]);
        assert_eq!(a.range(&4, &6).to_vec(), vec![5]);
        assert_eq!(a.range(&10, &20).to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn split_first_last() {
        let a = t(&[4, 8, 15]);
        let (first, rest) = a.split_first().unwrap();
        assert_eq!(first, 4);
        assert_eq!(rest.to_vec(), vec![8, 15]);
        let (rest, last) = a.split_last().unwrap();
        assert_eq!(last, 15);
        assert_eq!(rest.to_vec(), vec![4, 8]);
    }

    #[test]
    fn canonical_shape_for_same_key_set() {
        // Deterministic priorities: same keys => same structure, no
        // matter the construction order.
        let mut a: Tree<u32> = Tree::new();
        for k in [5u32, 1, 9, 3, 7] {
            a = a.insert(k, |_, n| n);
        }
        let b = t(&[1, 3, 5, 7, 9]);
        assert_eq!(a.height(), b.height());
        assert_eq!(a.to_vec(), b.to_vec());
        a.check_invariants();
    }

    #[test]
    fn height_is_logarithmic() {
        let n = 10_000u32;
        let a = t(&(0..n).collect::<Vec<_>>());
        // ~1.39 log2(n) expected for a random treap; allow generous slack.
        assert!(
            a.height() < 4 * 14,
            "height {} too large for n={n}",
            a.height()
        );
    }

    #[test]
    fn eq_compares_contents() {
        assert_eq!(t(&[1, 2, 3]), t(&[3, 2, 1]));
        assert_ne!(t(&[1, 2]), t(&[1, 2, 3]));
    }

    #[test]
    fn memory_bytes_scales_with_len() {
        let a = t(&(0..100).collect::<Vec<_>>());
        assert!(a.memory_bytes() >= 100 * std::mem::size_of::<u32>());
        assert_eq!(Tree::<u32>::new().memory_bytes(), 0);
    }
}
