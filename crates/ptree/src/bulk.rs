//! Join-based parallel bulk operations.
//!
//! `Union`, `Intersection` and `Difference` follow the recursive
//! divide-and-conquer of Blelloch et al. [SPAA'16]: expose the root of
//! the higher-priority tree, split the other tree by that key, recurse
//! on both sides in parallel, and reassemble with `join`/`join2`. With
//! treaps this yields `O(k·log(n/k + 1))` work and `O(log n · log k)`
//! depth w.h.p. for `k = min(|a|,|b|)`, `n = max(|a|,|b|)` — the bounds
//! the paper cites for its batch updates (§4.2).

use crate::node::{pri_greater, Augment, Entry, Link};
use crate::tree::{join_link, split_link, Tree};

/// Below this combined size the recursion stops forking and runs
/// sequentially.
///
/// Grain rationale (re-audited against the lock-free Chase–Lev
/// runtime; `docs/RUNTIME.md` has the measurements): a fork is no
/// longer "a deque round-trip plus a latch allocation, ~1 µs" — the
/// un-stolen owner path is allocation-, lock- and CAS-free (~0.1 µs),
/// and only a genuinely stolen fork pays a cross-thread handshake
/// (~1 µs worst case). One level of `union`/`difference` still costs
/// ~300–500 ns per exposed node (a `split_link` descent plus a
/// `join_link` rebuild), so a 256-entry leaf carries ~75–125 µs of
/// work — stolen-fork overhead ~1%, un-stolen ~0.1% — while a batch
/// of `k` updates against a large tree now exposes `~k/128` stealable
/// tasks, twice the previous width for the mid-size batches the
/// paper's Table 8 sweeps.
const SEQ_BULK: usize = 256;

impl<E: Entry, A: Augment<E>> Tree<E, A> {
    /// The union of two trees; entries present in both are merged with
    /// `combine(self_entry, other_entry)`.
    ///
    /// `O(k·log(n/k + 1))` work w.h.p. where `k` is the smaller size.
    ///
    /// ```
    /// use ptree::Tree;
    /// let a: Tree<u32> = Tree::from_sorted(&[1, 3, 5]);
    /// let b: Tree<u32> = Tree::from_sorted(&[3, 4]);
    /// assert_eq!(a.union(&b, |x, _| *x).to_vec(), vec![1, 3, 4, 5]);
    /// ```
    pub fn union(&self, other: &Tree<E, A>, combine: impl Fn(&E, &E) -> E + Sync) -> Tree<E, A> {
        Tree::from_link(union_link(self.root.clone(), other.root.clone(), &combine))
    }

    /// Entries of `self` whose keys also appear in `other`, merged with
    /// `combine(self_entry, other_entry)`.
    pub fn intersection(
        &self,
        other: &Tree<E, A>,
        combine: impl Fn(&E, &E) -> E + Sync,
    ) -> Tree<E, A> {
        Tree::from_link(intersect_link(
            self.root.clone(),
            other.root.clone(),
            &combine,
        ))
    }

    /// Entries of `self` whose keys do **not** appear in `other`.
    pub fn difference(&self, other: &Tree<E, A>) -> Tree<E, A> {
        Tree::from_link(difference_link(self.root.clone(), other.root.clone()))
    }

    /// Inserts a batch of entries; duplicates within the batch and
    /// collisions with existing entries are resolved by
    /// `combine(existing_or_earlier, new)`.
    ///
    /// Implemented as `Build` + `Union`, exactly as the paper's
    /// `MultiInsert` (§4.1).
    pub fn multi_insert(&self, batch: Vec<E>, combine: impl Fn(&E, E) -> E + Sync) -> Tree<E, A> {
        if batch.is_empty() {
            return self.clone();
        }
        let addend = Tree::build(batch, |a, b| combine(a, b));
        self.union(&addend, |old, new| combine(old, new.clone()))
    }

    /// Deletes every key in `batch` that is present.
    ///
    /// Implemented as `Build` + `Difference` (`MultiDelete`, §4.1).
    pub fn multi_delete(&self, batch: Vec<E::Key>) -> Tree<E, A>
    where
        E::Key: Entry<Key = E::Key>,
    {
        if batch.is_empty() {
            return self.clone();
        }
        let gone: Tree<E::Key, crate::NoAug> = Tree::build(batch, |_, n| n);
        Tree::from_link(difference_keys_link(self.root.clone(), gone.root))
    }

    /// Keeps the entries satisfying `pred`. `O(n)` work, polylog depth.
    pub fn filter(&self, pred: impl Fn(&E) -> bool + Sync) -> Tree<E, A> {
        Tree::from_link(filter_link(&self.root, &pred))
    }

    /// Applies `f` to every entry in parallel (in no particular order).
    pub fn par_for_each(&self, f: impl Fn(&E) + Sync) {
        par_for_each_link(&self.root, &f);
    }

    /// Maps every entry through `f` and reduces the results with the
    /// associative `op` starting from `id`. `O(n)` work, `O(log n)` depth.
    pub fn map_reduce<R: Send>(
        &self,
        f: impl Fn(&E) -> R + Sync,
        op: impl Fn(R, R) -> R + Sync,
        id: impl Fn() -> R + Sync,
    ) -> R {
        map_reduce_link(&self.root, &f, &op, &id)
    }

    /// Rebuilds each entry through `f`, which must preserve the key.
    /// Used e.g. to transform all values of a map in one pass.
    ///
    /// # Panics
    ///
    /// Debug builds assert the key is unchanged.
    pub fn map_values(&self, f: impl Fn(&E) -> E + Sync) -> Tree<E, A> {
        fn go<E: Entry, A: Augment<E>>(
            link: &Link<E, A>,
            f: &(impl Fn(&E) -> E + Sync),
        ) -> Link<E, A> {
            let n = link.as_ref()?;
            let entry = f(&n.entry);
            debug_assert!(entry.key() == n.entry.key(), "map_values changed a key");
            let (l, r) = if n.size > SEQ_BULK {
                rayon::join(|| go(&n.left, f), || go(&n.right, f))
            } else {
                (go(&n.left, f), go(&n.right, f))
            };
            crate::node::mk_node(l, entry, r)
        }
        Tree::from_link(go(&self.root, &f))
    }
}

fn maybe_par<L: Send, R: Send>(
    par: bool,
    l: impl FnOnce() -> L + Send,
    r: impl FnOnce() -> R + Send,
) -> (L, R) {
    if par {
        rayon::join(l, r)
    } else {
        (l(), r())
    }
}

fn union_link<E: Entry, A: Augment<E>>(
    a: Link<E, A>,
    b: Link<E, A>,
    combine: &(impl Fn(&E, &E) -> E + Sync),
) -> Link<E, A> {
    let (Some(an), Some(bn)) = (&a, &b) else {
        return a.or(b);
    };
    // Pivot on the globally max-priority root so the output root is
    // already correct and `join` does no rotations at this level. The
    // recursive calls keep positional orientation — the first argument
    // is always the `a` side — so `combine` sees (a-entry, b-entry) at
    // every level.
    let pivot_is_a = pri_greater(&an.entry, &bn.entry);
    let pivot = if pivot_is_a { an.clone() } else { bn.clone() };
    let rest = if pivot_is_a { b } else { a };
    let par = pivot.size + rest.as_ref().map_or(0, |n| n.size) > SEQ_BULK;
    let (rl, found, rr) = split_link(&rest, pivot.entry.key());
    let entry = match &found {
        Some(other) if pivot_is_a => combine(&pivot.entry, other),
        Some(other) => combine(other, &pivot.entry),
        None => pivot.entry.clone(),
    };
    let (l, r) = if pivot_is_a {
        maybe_par(
            par,
            || union_link(pivot.left.clone(), rl, combine),
            || union_link(pivot.right.clone(), rr, combine),
        )
    } else {
        maybe_par(
            par,
            || union_link(rl, pivot.left.clone(), combine),
            || union_link(rr, pivot.right.clone(), combine),
        )
    };
    join_link(l, entry, r)
}

fn intersect_link<E: Entry, A: Augment<E>>(
    a: Link<E, A>,
    b: Link<E, A>,
    combine: &(impl Fn(&E, &E) -> E + Sync),
) -> Link<E, A> {
    let (Some(an), Some(_)) = (&a, &b) else {
        return None;
    };
    let an = an.clone();
    let par = an.size > SEQ_BULK;
    let (bl, found, br) = split_link(&b, an.entry.key());
    let (l, r) = maybe_par(
        par,
        || intersect_link(an.left.clone(), bl, combine),
        || intersect_link(an.right.clone(), br, combine),
    );
    match found {
        Some(other) => join_link(l, combine(&an.entry, &other), r),
        None => join2_link(l, r),
    }
}

fn difference_link<E: Entry, A: Augment<E>>(a: Link<E, A>, b: Link<E, A>) -> Link<E, A> {
    let Some(an) = &a else { return None };
    if b.is_none() {
        return a;
    }
    let an = an.clone();
    let par = an.size > SEQ_BULK;
    let (bl, found, br) = split_link(&b, an.entry.key());
    let (l, r) = maybe_par(
        par,
        || difference_link(an.left.clone(), bl),
        || difference_link(an.right.clone(), br),
    );
    if found.is_some() {
        join2_link(l, r)
    } else {
        join_link(l, an.entry.clone(), r)
    }
}

/// Difference where the subtrahend is a tree over bare keys rather than
/// full entries (supports `multi_delete` without fabricating values).
fn difference_keys_link<E, A, K>(a: Link<E, A>, b: Link<K, crate::NoAug>) -> Link<E, A>
where
    E: Entry<Key = K>,
    A: Augment<E>,
    K: Entry<Key = K> + crate::TreapKey,
{
    let Some(an) = &a else { return None };
    if b.is_none() {
        return a;
    }
    let an = an.clone();
    let par = an.size > SEQ_BULK;
    let (bl, found, br) = split_link(&b, an.entry.key());
    let (l, r) = maybe_par(
        par,
        || difference_keys_link(an.left.clone(), bl),
        || difference_keys_link(an.right.clone(), br),
    );
    if found.is_some() {
        join2_link(l, r)
    } else {
        join_link(l, an.entry.clone(), r)
    }
}

fn join2_link<E: Entry, A: Augment<E>>(l: Link<E, A>, r: Link<E, A>) -> Link<E, A> {
    Tree::join2(Tree::from_link(l), Tree::from_link(r)).root
}

fn filter_link<E: Entry, A: Augment<E>>(
    link: &Link<E, A>,
    pred: &(impl Fn(&E) -> bool + Sync),
) -> Link<E, A> {
    let Some(n) = link else { return None };
    let par = n.size > SEQ_BULK;
    let (l, r) = maybe_par(
        par,
        || filter_link(&n.left, pred),
        || filter_link(&n.right, pred),
    );
    if pred(&n.entry) {
        join_link(l, n.entry.clone(), r)
    } else {
        join2_link(l, r)
    }
}

fn par_for_each_link<E: Entry, A: Augment<E>>(link: &Link<E, A>, f: &(impl Fn(&E) + Sync)) {
    let Some(n) = link else { return };
    let par = n.size > SEQ_BULK;
    maybe_par(
        par,
        || par_for_each_link(&n.left, f),
        || {
            f(&n.entry);
            par_for_each_link(&n.right, f);
        },
    );
}

fn map_reduce_link<E: Entry, A: Augment<E>, R: Send>(
    link: &Link<E, A>,
    f: &(impl Fn(&E) -> R + Sync),
    op: &(impl Fn(R, R) -> R + Sync),
    id: &(impl Fn() -> R + Sync),
) -> R {
    let Some(n) = link else { return id() };
    let par = n.size > SEQ_BULK;
    let (l, r) = maybe_par(
        par,
        || map_reduce_link(&n.left, f, op, id),
        || map_reduce_link(&n.right, f, op, id),
    );
    op(op(l, f(&n.entry)), r)
}

impl<E: Entry, A: Augment<E>> Tree<E, A> {
    /// Collects the entries in key order using a parallel traversal.
    pub fn to_vec_par(&self) -> Vec<E> {
        // In-order parallel collect: left ++ [entry] ++ right.
        fn go<E: Entry, A: Augment<E>>(link: &Link<E, A>) -> Vec<E> {
            let Some(n) = link else { return Vec::new() };
            if n.size <= SEQ_BULK {
                let mut out = Vec::with_capacity(n.size);
                Tree::from_link(Some(n.clone())).for_each_seq(&mut |e: &E| out.push(e.clone()));
                return out;
            }
            let (mut l, r) = rayon::join(|| go(&n.left), || go(&n.right));
            l.reserve(r.len() + 1);
            l.push(n.entry.clone());
            l.extend(r);
            l
        }
        go(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn t(xs: &[u32]) -> Tree<u32> {
        let mut v = xs.to_vec();
        v.sort_unstable();
        v.dedup();
        Tree::from_sorted(&v)
    }

    #[test]
    fn union_basic() {
        let a = t(&[1, 3, 5]);
        let b = t(&[2, 3, 6]);
        let u = a.union(&b, |x, _| *x);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 5, 6]);
        u.check_invariants();
        // inputs untouched
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn union_combine_sides() {
        // combine must receive (a-entry, b-entry) in that order.
        let a: Tree<(u32, &str)> = Tree::build(vec![(1, "a")], |_, n| n);
        let b: Tree<(u32, &str)> = Tree::build(vec![(1, "b")], |_, n| n);
        let u = a.union(&b, |x, y| {
            assert_eq!(x.1, "a");
            assert_eq!(y.1, "b");
            *y
        });
        assert_eq!(u.find(&1).unwrap().1, "b");
        let u2 = b.union(&a, |x, y| {
            assert_eq!(x.1, "b");
            assert_eq!(y.1, "a");
            *x
        });
        assert_eq!(u2.find(&1).unwrap().1, "b");
    }

    #[test]
    fn union_with_empty() {
        let a = t(&[1, 2]);
        let e: Tree<u32> = Tree::new();
        assert_eq!(a.union(&e, |x, _| *x).to_vec(), vec![1, 2]);
        assert_eq!(e.union(&a, |x, _| *x).to_vec(), vec![1, 2]);
    }

    #[test]
    fn intersection_and_difference_vs_btreeset() {
        let xs: Vec<u32> = (0..2000).filter(|x| x % 3 != 0).collect();
        let ys: Vec<u32> = (0..2000).filter(|x| x % 2 == 0).collect();
        let a = t(&xs);
        let b = t(&ys);
        let sx: BTreeSet<u32> = xs.iter().copied().collect();
        let sy: BTreeSet<u32> = ys.iter().copied().collect();
        assert_eq!(
            a.intersection(&b, |x, _| *x).to_vec(),
            sx.intersection(&sy).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.difference(&b).to_vec(),
            sx.difference(&sy).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.union(&b, |x, _| *x).to_vec(),
            sx.union(&sy).copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn multi_insert_combines_batch_duplicates() {
        let base: Tree<(u32, u64)> = Tree::build(vec![(1, 100)], |_, n| n);
        let out = base.multi_insert(vec![(1, 1), (2, 2), (1, 1)], |a, b| (a.0, a.1 + b.1));
        assert_eq!(out.find(&1), Some(&(1, 102)));
        assert_eq!(out.find(&2), Some(&(2, 2)));
    }

    #[test]
    fn multi_delete_removes_present_keys_only() {
        let base = t(&[1, 2, 3, 4, 5]);
        let out = base.multi_delete(vec![2, 4, 99]);
        assert_eq!(out.to_vec(), vec![1, 3, 5]);
        assert_eq!(base.len(), 5);
    }

    #[test]
    fn filter_keeps_matching() {
        let a = t(&(0..100).collect::<Vec<_>>());
        let evens = a.filter(|x| x % 2 == 0);
        assert_eq!(evens.len(), 50);
        evens.check_invariants();
    }

    #[test]
    fn par_for_each_visits_everything_once() {
        let a = t(&(0..5000).collect::<Vec<_>>());
        let sum = AtomicU64::new(0);
        a.par_for_each(|x| {
            sum.fetch_add(u64::from(*x), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4999 * 5000 / 2);
    }

    #[test]
    fn map_reduce_sums() {
        let a = t(&(1..=100).collect::<Vec<_>>());
        let s = a.map_reduce(|x| u64::from(*x), |p, q| p + q, || 0);
        assert_eq!(s, 5050);
        let empty: Tree<u32> = Tree::new();
        assert_eq!(empty.map_reduce(|x| u64::from(*x), |p, q| p + q, || 7), 7);
    }

    #[test]
    fn map_values_transforms_in_place() {
        let a: Tree<(u32, u32)> = Tree::build(vec![(1, 10), (2, 20)], |_, n| n);
        let doubled = a.map_values(|e| (e.0, e.1 * 2));
        assert_eq!(doubled.find(&2), Some(&(2, 40)));
        assert_eq!(a.find(&2), Some(&(2, 20)));
    }

    #[test]
    fn to_vec_par_matches_to_vec() {
        let a = t(&(0..20_000).map(|x| x * 7 % 65_536).collect::<Vec<_>>());
        assert_eq!(a.to_vec_par(), a.to_vec());
    }

    #[test]
    fn large_union_is_balanced_and_canonical() {
        let a = t(&(0..30_000).filter(|x| x % 2 == 0).collect::<Vec<_>>());
        let b = t(&(0..30_000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
        let u = a.union(&b, |x, _| *x);
        u.check_invariants();
        let direct = t(&(0..30_000)
            .filter(|x| x % 2 == 0 || x % 3 == 0)
            .collect::<Vec<_>>());
        // Canonical treap: union must produce the identical shape.
        assert_eq!(u.height(), direct.height());
        assert_eq!(u.to_vec(), direct.to_vec());
    }
}
