//! Property tests: every tree operation is checked against a
//! `BTreeSet`/`BTreeMap` oracle on random inputs, and the structural
//! invariants (BST order, treap priorities, cached size/augmentation)
//! are revalidated after each operation.

use crate::{Augment, Tree};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn set_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..500, 0..200).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn tree_of(xs: &[u32]) -> Tree<u32> {
    Tree::from_sorted(xs)
}

/// Count-of-entries augmentation used to stress augmented maintenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Sum(u64);

impl Augment<u32> for Sum {
    fn identity() -> Self {
        Sum(0)
    }
    fn from_entry(e: &u32) -> Self {
        Sum(u64::from(*e))
    }
    fn combine(&self, other: &Self) -> Self {
        Sum(self.0 + other.0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn build_matches_oracle(xs in set_strategy()) {
        let t = tree_of(&xs);
        prop_assert_eq!(t.to_vec(), xs.clone());
        prop_assert_eq!(t.len(), xs.len());
        t.check_invariants();
    }

    #[test]
    fn union_matches_oracle(xs in set_strategy(), ys in set_strategy()) {
        let (a, b) = (tree_of(&xs), tree_of(&ys));
        let u = a.union(&b, |x, _| *x);
        let oracle: BTreeSet<u32> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(u.to_vec(), oracle.into_iter().collect::<Vec<_>>());
        u.check_invariants();
    }

    #[test]
    fn intersection_matches_oracle(xs in set_strategy(), ys in set_strategy()) {
        let (a, b) = (tree_of(&xs), tree_of(&ys));
        let i = a.intersection(&b, |x, _| *x);
        let sy: BTreeSet<u32> = ys.iter().copied().collect();
        let oracle: Vec<u32> = xs.iter().copied().filter(|x| sy.contains(x)).collect();
        prop_assert_eq!(i.to_vec(), oracle);
        i.check_invariants();
    }

    #[test]
    fn difference_matches_oracle(xs in set_strategy(), ys in set_strategy()) {
        let (a, b) = (tree_of(&xs), tree_of(&ys));
        let d = a.difference(&b);
        let sy: BTreeSet<u32> = ys.iter().copied().collect();
        let oracle: Vec<u32> = xs.iter().copied().filter(|x| !sy.contains(x)).collect();
        prop_assert_eq!(d.to_vec(), oracle);
        d.check_invariants();
    }

    #[test]
    fn split_partitions(xs in set_strategy(), k in 0u32..500) {
        let t = tree_of(&xs);
        let (lo, found, hi) = t.split(&k);
        prop_assert_eq!(lo.to_vec(), xs.iter().copied().filter(|&x| x < k).collect::<Vec<_>>());
        prop_assert_eq!(hi.to_vec(), xs.iter().copied().filter(|&x| x > k).collect::<Vec<_>>());
        prop_assert_eq!(found.is_some(), xs.binary_search(&k).is_ok());
        lo.check_invariants();
        hi.check_invariants();
    }

    #[test]
    fn insert_delete_roundtrip(xs in set_strategy(), k in 0u32..500) {
        let t = tree_of(&xs);
        let with = t.insert(k, |_, n| n);
        prop_assert!(with.contains(&k));
        let without = with.delete(&k);
        prop_assert!(!without.contains(&k));
        let expect: Vec<u32> = xs.iter().copied().filter(|&x| x != k).collect();
        prop_assert_eq!(without.to_vec(), expect);
    }

    #[test]
    fn multi_insert_matches_map_oracle(
        base in proptest::collection::vec((0u32..100, 0u64..100), 0..100),
        batch in proptest::collection::vec((0u32..100, 0u64..100), 0..100),
    ) {
        let t: Tree<(u32, u64)> = Tree::build(base.clone(), |a, b| (a.0, a.1 + b.1));
        let out = t.multi_insert(batch.clone(), |a, b| (a.0, a.1 + b.1));
        let mut oracle: BTreeMap<u32, u64> = BTreeMap::new();
        for (k, v) in base.iter().chain(batch.iter()) {
            *oracle.entry(*k).or_insert(0) += v;
        }
        prop_assert_eq!(
            out.to_vec(),
            oracle.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn multi_delete_matches_oracle(xs in set_strategy(), kill in proptest::collection::vec(0u32..500, 0..100)) {
        let t = tree_of(&xs);
        let out = t.multi_delete(kill.clone());
        let dead: BTreeSet<u32> = kill.into_iter().collect();
        let oracle: Vec<u32> = xs.iter().copied().filter(|x| !dead.contains(x)).collect();
        prop_assert_eq!(out.to_vec(), oracle);
    }

    #[test]
    fn augmentation_tracks_sum(xs in set_strategy(), ys in set_strategy()) {
        let a: Tree<u32, Sum> = Tree::from_sorted(&xs);
        let b: Tree<u32, Sum> = Tree::from_sorted(&ys);
        let u = a.union(&b, |x, _| *x);
        let expect: u64 = xs.iter().chain(ys.iter()).copied()
            .collect::<BTreeSet<u32>>().iter().map(|&x| u64::from(x)).sum();
        prop_assert_eq!(u.aug().0, expect);
        u.check_invariants();
    }

    #[test]
    fn rank_select_inverse(xs in set_strategy()) {
        let t = tree_of(&xs);
        for (i, x) in xs.iter().enumerate() {
            prop_assert_eq!(t.select(i), Some(x));
            prop_assert_eq!(t.rank(x), i);
        }
    }

    #[test]
    fn filter_matches_oracle(xs in set_strategy(), m in 1u32..7) {
        let t = tree_of(&xs);
        let f = t.filter(|x| x % m == 0);
        prop_assert_eq!(f.to_vec(), xs.iter().copied().filter(|x| x % m == 0).collect::<Vec<_>>());
        f.check_invariants();
    }

    #[test]
    fn snapshot_isolation(xs in set_strategy(), batch in proptest::collection::vec(500u32..1000, 1..50)) {
        // A clone taken before a bulk update must be bit-for-bit stable.
        let t = tree_of(&xs);
        let snapshot = t.clone();
        let _updated = t.multi_insert(batch, |_, n| n);
        prop_assert_eq!(snapshot.to_vec(), xs);
    }
}
