//! Construction from sequences.
//!
//! `Build(S, f_V)` in the paper (§4, Appendix 10.3): sort, combine
//! duplicates with `f_V`, then construct the balanced tree. The
//! divide-and-conquer over joins costs `O(n)` work and `O(log² n)` depth
//! once the input is sorted, and produces the canonical treap shape.

use crate::node::Link;
use crate::node::{Augment, Entry};
use crate::tree::{join_link, Tree};
use rayon::prelude::*;

/// Subtree size below which construction runs sequentially.
///
/// Grain rationale (re-audited against the lock-free Chase–Lev
/// runtime; see `docs/RUNTIME.md` for the measurements and the
/// general sizing method): building from sorted input costs ~100 ns
/// per entry (node allocation + rotation-free `join_link`). A fork
/// whose second half is popped back un-stolen is now allocation-,
/// lock- and CAS-free (~0.1 µs wall, ~20× cheaper than the mutex-era
/// figure comments here used to cite); a *stolen* fork adds a
/// cross-thread handshake, call it ~1 µs worst case. 512 entries ≈
/// 50 µs per leaf keeps even all-stolen fork overhead around 2% while
/// exposing twice the parallelism of the previous 1024 threshold for
/// the mid-size batches `MultiInsert` builds from (the regime Table 8
/// sweeps).
const SEQ_BUILD: usize = 512;

impl<E: Entry, A: Augment<E>> Tree<E, A> {
    /// Builds a tree from entries already sorted by key with no
    /// duplicate keys.
    ///
    /// `O(n)` work, `O(log² n)` depth.
    ///
    /// # Panics
    ///
    /// Debug builds assert sortedness and uniqueness.
    ///
    /// ```
    /// let t: ptree::Tree<u32> = ptree::Tree::from_sorted(&[1, 2, 3]);
    /// assert_eq!(t.len(), 3);
    /// ```
    pub fn from_sorted(entries: &[E]) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].key() < w[1].key()));
        Tree::from_link(build_link(entries))
    }

    /// Builds a tree from an arbitrary sequence of entries, combining
    /// entries with equal keys via `combine(old, new)` where `new` is the
    /// later occurrence in `entries`.
    ///
    /// This is the paper's `Build(S, f_V)`: `O(n log n)` work dominated
    /// by the sort.
    ///
    /// ```
    /// let t: ptree::Tree<(u32, u32)> =
    ///     ptree::Tree::build(vec![(1, 10), (2, 5), (1, 7)], |a, b| (a.0, a.1 + b.1));
    /// assert_eq!(t.find(&1), Some(&(1, 17)));
    /// ```
    pub fn build(mut entries: Vec<E>, combine: impl Fn(&E, E) -> E + Sync) -> Self {
        if entries.is_empty() {
            return Tree::new();
        }
        //

        // Stable sort keeps equal keys in input order so `combine` folds
        // left-to-right over occurrences.
        entries.par_sort_by(|a, b| a.key().cmp(b.key()));
        let mut merged: Vec<E> = Vec::with_capacity(entries.len());
        for e in entries {
            match merged.last_mut() {
                Some(last) if last.key() == e.key() => {
                    *last = combine(last, e);
                }
                _ => merged.push(e),
            }
        }
        Tree::from_sorted(&merged)
    }
}

fn build_link<E: Entry, A: Augment<E>>(entries: &[E]) -> Link<E, A> {
    if entries.is_empty() {
        return None;
    }
    if entries.len() <= SEQ_BUILD {
        return build_seq(entries);
    }
    let mid = entries.len() / 2;
    let (left_part, rest) = entries.split_at(mid);
    let (mid_entry, right_part) = rest.split_first().expect("rest nonempty");
    let (l, r) = rayon::join(|| build_link(left_part), || build_link(right_part));
    join_link(l, mid_entry.clone(), r)
}

fn build_seq<E: Entry, A: Augment<E>>(entries: &[E]) -> Link<E, A> {
    if entries.is_empty() {
        return None;
    }
    let mid = entries.len() / 2;
    let l = build_seq(&entries[..mid]);
    let r = build_seq(&entries[mid + 1..]);
    join_link(l, entries[mid].clone(), r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sorted_roundtrip() {
        let xs: Vec<u32> = (0..1000).map(|i| i * 2).collect();
        let t: Tree<u32> = Tree::from_sorted(&xs);
        assert_eq!(t.to_vec(), xs);
        t.check_invariants();
    }

    #[test]
    fn from_sorted_empty_and_single() {
        assert!(Tree::<u32>::from_sorted(&[]).is_empty());
        assert_eq!(Tree::<u32>::from_sorted(&[7]).to_vec(), vec![7]);
    }

    #[test]
    fn build_sorts_and_dedups() {
        let t: Tree<u32> = Tree::build(vec![5, 1, 5, 3, 1], |_, n| n);
        assert_eq!(t.to_vec(), vec![1, 3, 5]);
    }

    #[test]
    fn build_combine_is_left_fold_in_input_order() {
        let t: Tree<(u32, Vec<u32>)> =
            Tree::build(vec![(1, vec![10]), (1, vec![20]), (1, vec![30])], |a, b| {
                let mut v = a.1.clone();
                v.extend(b.1);
                (a.0, v)
            });
        assert_eq!(t.find(&1).unwrap().1, vec![10, 20, 30]);
    }

    #[test]
    fn parallel_build_matches_sequential_shape() {
        // Cross the SEQ_BUILD threshold; deterministic priorities mean
        // the shape (and hence height) must be identical.
        let xs: Vec<u32> = (0..10_000).collect();
        let big: Tree<u32> = Tree::from_sorted(&xs);
        let mut small: Tree<u32> = Tree::new();
        for &x in xs.iter() {
            small = small.insert(x, |_, n| n);
        }
        assert_eq!(big.height(), small.height());
        big.check_invariants();
    }
}
