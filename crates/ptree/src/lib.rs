//! Purely-functional search trees with parallel bulk operations.
//!
//! This crate is the Rust equivalent of PAM [Sun et al., PPoPP'18] /
//! the join-based trees of Blelloch et al. [SPAA'16], which the paper
//! uses as the substrate below C-trees: a *persistent* balanced binary
//! search tree where every update returns a new tree sharing structure
//! with the old one. Snapshots are therefore a pointer copy, and any
//! number of readers can proceed while a writer builds the next version.
//!
//! # Balancing scheme
//!
//! We use a **treap with deterministic priorities** (the hash of the
//! key), giving `O(log n)` height w.h.p. — one of the schemes the paper
//! explicitly sanctions (§5: "using any balanced tree implementation
//! (w.h.p. using a treap)"). Deterministic priorities make the tree
//! shape *canonical*: two trees over the same key set are structurally
//! identical, which both simplifies testing and guarantees that `join`
//! never needs rebalancing information beyond the priorities.
//!
//! All bulk operations (`union`, `intersection`, `difference`,
//! `multi_insert`, `build`, `filter`, `map_reduce`) are implemented with
//! the join-based divide-and-conquer of [Blelloch et al.] and
//! parallelised with rayon, achieving the work/depth bounds cited in
//! the paper (§4.2): e.g. `union` in `O(k·log(n/k + 1))` work.
//!
//! # Augmentation
//!
//! Trees can be augmented with an associative summary via [`Augment`]
//! (e.g. the vertex-tree of a graph is augmented with the total number
//! of edges below each node), maintained in `O(1)` per rebuilt node.
//!
//! # Example
//!
//! ```
//! use ptree::Tree;
//!
//! let t: Tree<u32> = Tree::from_sorted(&[1, 5, 9]);
//! let u: Tree<u32> = Tree::from_sorted(&[5, 7]);
//! let both = t.union(&u, |a, _b| *a);
//! assert_eq!(both.to_vec(), vec![1, 5, 7, 9]);
//! // `t` is unchanged: purely functional.
//! assert_eq!(t.len(), 3);
//! ```

mod build;
mod bulk;
mod iter;
mod node;
mod tree;

pub use iter::Iter;
pub use node::{Augment, CountAug, Entry, Measure, NoAug, TreapKey};
pub use tree::{Exposed, Tree};

#[cfg(test)]
mod proptests;
