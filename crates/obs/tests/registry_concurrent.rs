//! Property tests for the metrics registry under concurrency: with
//! recorder threads hammering counters and histograms while other
//! threads snapshot, no snapshot may ever tear (show a value nobody
//! wrote), regress (counters are monotone across snapshots), or lose
//! counts (the post-join snapshot is exact).

use obs::Registry;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_record_and_snapshot_never_tears(
        threads in 2usize..5,
        per_thread in 1u64..2_000,
    ) {
        let reg = Arc::new(Registry::new());
        let ops = reg.counter("test.ops");
        let lat = reg.histogram("test.lat");
        let stop = Arc::new(AtomicBool::new(false));

        // A concurrent snapshotter: every observation must be
        // self-consistent and monotone vs the previous one.
        let snapshotter = {
            let reg = reg.clone();
            let stop = stop.clone();
            let bound = threads as u64 * per_thread;
            std::thread::spawn(move || {
                let mut last_ops = 0u64;
                let mut last_lat = 0u64;
                let mut rounds = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let snap = reg.snapshot();
                    let ops = snap.counter("test.ops").expect("counter registered");
                    let h = snap.histogram("test.lat").expect("histogram registered");
                    assert!(ops >= last_ops, "counter went backwards: {last_ops} -> {ops}");
                    assert!(h.count() >= last_lat, "histogram count went backwards");
                    assert!(ops <= bound, "counter overshot: {ops} > {bound}");
                    assert!(h.count() <= bound, "histogram overshot");
                    // Bucket sum can trail `count` (relaxed reads land
                    // in either order) but never exceeds the writes
                    // actually issued.
                    let bucket_sum: u64 = h.buckets().iter().sum();
                    assert!(bucket_sum <= bound, "phantom bucket increments");
                    last_ops = ops;
                    last_lat = h.count();
                    rounds += 1;
                }
                rounds
            })
        };

        let recorders: Vec<_> = (0..threads)
            .map(|t| {
                let ops = ops.clone();
                let lat = lat.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        ops.inc();
                        lat.record(Duration::from_nanos((t as u64) << 20 | i));
                    }
                })
            })
            .collect();
        for r in recorders {
            r.join().expect("recorder panicked");
        }
        stop.store(true, Ordering::Release);
        let rounds = snapshotter.join().expect("snapshotter panicked");
        prop_assert!(rounds > 0, "snapshotter never ran");

        // Quiescent: the final snapshot is exact — nothing lost.
        let total = threads as u64 * per_thread;
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter("test.ops"), Some(total));
        let h = snap.histogram("test.lat").expect("histogram registered");
        prop_assert_eq!(h.count(), total);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), total);
    }

    #[test]
    fn concurrent_registration_yields_one_shared_metric(
        threads in 2usize..6,
        adds in 1u64..500,
    ) {
        let reg = Arc::new(Registry::new());
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    // Every thread registers the same name: all must
                    // resolve to the same underlying counter.
                    let c = reg.counter("shared.ops");
                    for _ in 0..adds {
                        c.inc();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker panicked");
        }
        prop_assert_eq!(
            reg.snapshot().counter("shared.ops"),
            Some(threads as u64 * adds)
        );
        prop_assert_eq!(reg.names().len(), 1);
    }
}
