//! The lock-free log₂-bucketed latency histogram, generalized out of
//! `aspen-stream`'s private stats module so every layer of the stack
//! (runtime, engine, bench harness, future server endpoints) shares
//! one implementation — and so histograms can be *snapshotted* at any
//! instant, merged, and diffed for periodic delta reporting instead of
//! only read at end-of-run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets: bucket `i` holds values whose
/// nanosecond count has its highest set bit at position `i`, so 64
/// buckets cover the full `u64` nanosecond range (0 ns … ~584 years).
pub const BUCKETS: usize = 64;

/// A lock-free log₂-bucketed latency histogram.
///
/// Recording is a single atomic increment into the bucket
/// `⌊log₂(nanos)⌋`, so writer- and query-thread instrumentation costs
/// nanoseconds. Quantiles are read back at bucket resolution (within a
/// factor of 2), which is what latency reporting needs — the paper
/// reports latency distributions over orders of magnitude, not
/// nanosecond-exact percentiles.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

/// The bucket index for a nanosecond value: `⌊log₂(nanos)⌋`, with 0
/// landing in bucket 0 alongside 1 ns.
#[inline]
fn bucket_of(nanos: u64) -> usize {
    ((64 - nanos.leading_zeros()).saturating_sub(1) as usize).min(BUCKETS - 1)
}

/// Geometric midpoint of bucket `i` (values in `[2^i, 2^(i+1))`).
#[inline]
fn bucket_mid(i: usize) -> Duration {
    let lo = 1u128 << i;
    Duration::from_nanos((lo as f64 * std::f64::consts::SQRT_2) as u64)
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measurement. Thread-safe, wait-free.
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one measurement given directly in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Folds every measurement of `other` into `self` (bucket-wise
    /// addition; the merged mean and max stay exact).
    pub fn merge(&self, other: &LatencyHistogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Folds a previously taken snapshot into `self`.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for (i, &b) in snap.buckets.iter().enumerate() {
            if b > 0 {
                self.buckets[i].fetch_add(b, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum_nanos.fetch_add(snap.sum_nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(snap.max_nanos, Ordering::Relaxed);
    }

    /// Number of recorded measurements.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of all measurements, or zero when empty.
    pub fn mean(&self) -> Duration {
        self.snapshot().mean()
    }

    /// Largest recorded measurement.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) at bucket resolution: the
    /// geometric midpoint of the bucket holding the `⌈q·n⌉`-th
    /// measurement. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        self.snapshot().quantile(q)
    }

    /// Snapshot of count/mean/p50/p95/p99/max for reporting.
    pub fn summarize(&self) -> LatencySummary {
        self.snapshot().summarize()
    }

    /// An owned point-in-time copy of the full bucket state.
    ///
    /// Buckets are read with relaxed loads while writers may still be
    /// recording: a snapshot can trail in-flight increments, but every
    /// count it shows was really recorded, and counts never decrease
    /// between snapshots (monotonicity is what the delta API relies
    /// on). Once writers are quiescent a snapshot is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// An owned point-in-time copy of a [`LatencyHistogram`]: plain `u64`
/// buckets, so it can be diffed against an earlier snapshot
/// ([`delta_since`](Self::delta_since)) or merged with snapshots from
/// other histograms — the substrate for periodic live reporting.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_nanos: u64,
    max_nanos: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Number of measurements in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all measurements, in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Mean of the snapshot's measurements, or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos / self.count)
    }

    /// Largest measurement in the snapshot.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// Bucket contents, oldest (smallest) bucket first.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The `q`-quantile at bucket resolution; see
    /// [`LatencyHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Report the bucket's geometric midpoint, capped at the
                // observed maximum so no quantile ever exceeds `max()`.
                return bucket_mid(i).min(self.max());
            }
        }
        self.max()
    }

    /// count/mean/p50/p95/p99/max of the snapshot.
    pub fn summarize(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// The measurements recorded between `earlier` and `self`
    /// (bucket-wise saturating subtraction). Both snapshots must come
    /// from the same histogram for the delta to be meaningful.
    ///
    /// The delta's `max` is a bound, not an interval-exact maximum: a
    /// histogram keeps one cumulative maximum, so the delta reports it
    /// only if the interval actually recorded something, and it may
    /// predate the interval. Quantiles and the mean are interval-exact.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let count = self.count.saturating_sub(earlier.count);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count,
            sum_nanos: self.sum_nanos.saturating_sub(earlier.sum_nanos),
            max_nanos: if count == 0 { 0 } else { self.max_nanos },
        }
    }

    /// Bucket-wise merge of two snapshots (e.g. the same metric from
    /// several workers).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum_nanos: self.sum_nanos.saturating_add(other.sum_nanos),
            max_nanos: self.max_nanos.max(other.max_nanos),
        }
    }

    /// The snapshot as JSON: summary fields plus the non-empty buckets
    /// as `[bucket_floor_ns, count]` pairs (empty buckets are omitted
    /// to keep long-running snapshots compact).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let s = self.summarize();
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, &b)| Json::Arr(vec![Json::U64(1u64 << i), Json::U64(b)]))
            .collect();
        Json::obj([
            ("count", Json::U64(self.count)),
            ("sum_ns", Json::U64(self.sum_nanos)),
            ("mean_ns", Json::U64(s.mean.as_nanos() as u64)),
            ("p50_ns", Json::U64(s.p50.as_nanos() as u64)),
            ("p95_ns", Json::U64(s.p95.as_nanos() as u64)),
            ("p99_ns", Json::U64(s.p99.as_nanos() as u64)),
            ("max_ns", Json::U64(self.max_nanos)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// Point-in-time percentile summary of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub mean: Duration,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub max: Duration,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1?} p50={:.1?} p95={:.1?} p99={:.1?} max={:.1?}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        let s = h.summarize();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, Duration::ZERO);
    }

    #[test]
    fn zero_nanos_lands_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        // The only measurement is 0 ns: every quantile must be capped
        // at the observed max rather than reporting the bucket mid.
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.quantile(1.0), Duration::ZERO);
        assert_eq!(h.snapshot().buckets()[0], 1);
    }

    #[test]
    fn u64_max_nanos_saturates_into_top_bucket() {
        let h = LatencyHistogram::new();
        h.record_nanos(u64::MAX);
        h.record(Duration::MAX); // > u64::MAX nanos; clamps
        assert_eq!(h.count(), 2);
        assert_eq!(h.snapshot().buckets()[BUCKETS - 1], 2);
        assert_eq!(h.max(), Duration::from_nanos(u64::MAX));
        // Quantile lands inside the top bucket, capped at the max.
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_nanos(1 << 63), "p99 = {p99:?}");
        assert!(p99 <= h.max(), "p99 = {p99:?}");
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        let p50 = h.quantile(0.5);
        assert!(
            p50 >= Duration::from_micros(5) && p50 <= Duration::from_micros(20),
            "p50 = {p50:?}"
        );
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_millis(5), "p99 = {p99:?}");
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), Duration::from_millis(10));
    }

    #[test]
    fn mean_tracks_sum() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        assert_eq!(h.mean(), Duration::from_micros(2));
    }

    #[test]
    fn merge_of_empty_is_identity() {
        let a = LatencyHistogram::new();
        a.record(Duration::from_micros(5));
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.max(), Duration::from_micros(5));
        let empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), Duration::from_micros(5));
    }

    #[test]
    fn merge_combines_counts_means_and_maxima() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_nanos(0));
        a.record(Duration::from_micros(2));
        b.record_nanos(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Duration::from_nanos(u64::MAX));
        let snap = a.snapshot();
        assert_eq!(snap.buckets()[0], 1);
        assert_eq!(snap.buckets()[BUCKETS - 1], 1);
        // Count, max and quantile placement stay exact even when the
        // nanosecond sum wraps on pathological (584-year) inputs.
        let p100 = snap.quantile(1.0);
        assert!(p100 >= Duration::from_nanos(1 << 63) && p100 <= snap.max());
    }

    #[test]
    fn delta_since_isolates_the_interval() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(1));
        let t0 = h.snapshot();
        h.record(Duration::from_millis(1));
        h.record(Duration::from_millis(1));
        let t1 = h.snapshot();
        let d = t1.delta_since(&t0);
        assert_eq!(d.count(), 2);
        assert_eq!(d.mean(), Duration::from_millis(1));
        let p50 = d.quantile(0.5);
        assert!(
            p50 >= Duration::from_micros(500) && p50 <= Duration::from_millis(1),
            "delta p50 = {p50:?}"
        );
    }

    #[test]
    fn empty_delta_is_empty() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(7));
        let s = h.snapshot();
        let d = s.delta_since(&s);
        assert_eq!(d.count(), 0);
        assert_eq!(d.max(), Duration::ZERO);
        assert_eq!(d.summarize().p99, Duration::ZERO);
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    h.record(Duration::from_nanos(i));
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn snapshot_json_has_summary_fields() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(3));
        let rendered = h.snapshot().to_json().render();
        assert!(rendered.contains("\"count\":1"), "{rendered}");
        assert!(rendered.contains("\"buckets\":[["), "{rendered}");
        let parsed = crate::json::parse(&rendered).expect("snapshot JSON parses");
        assert_eq!(parsed.get("count").and_then(|j| j.as_u64()), Some(1));
    }
}
