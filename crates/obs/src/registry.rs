//! The metrics registry: named counters, gauges and latency
//! histograms, registered once and snapshotable at any time.
//!
//! Recording is lock-free — handles returned by
//! [`Registry::counter`]/[`gauge`](Registry::gauge)/[`histogram`](Registry::histogram)
//! are `Arc`s around plain atomics, so instrumented hot paths never
//! touch the registry again after registration. The registry's own
//! mutex guards only the (rare) registration and snapshot walks.
//!
//! A snapshot ([`Registry::snapshot`]) is an owned, point-in-time copy
//! of every metric that renders as a text report
//! ([`Snapshot::render_text`]) or a JSON document
//! ([`Snapshot::to_json`]) — the substrate a future `/stats` endpoint
//! serves verbatim.

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::json::Json;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing `u64` metric.
///
/// Exposes both the ergonomic `inc`/`add`/`get` surface and the
/// `AtomicU64`-shaped `fetch_add`/`load` surface, so existing code
/// holding what used to be a raw atomic keeps compiling unchanged.
#[derive(Default, Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// `AtomicU64`-compatible add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, n: u64, order: Ordering) -> u64 {
        self.value.fetch_add(n, order)
    }

    /// `AtomicU64`-compatible load.
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        self.value.load(order)
    }
}

/// A signed metric that can move both ways (queue depths, live
/// versions, resident bytes).
#[derive(Default, Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Records `v` if it exceeds the current value (high-watermark use).
    #[inline]
    pub fn max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A handle to any registered metric.
#[derive(Clone)]
pub enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics. See the module docs.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry. Library code that has no natural
    /// owner for its metrics (e.g. the runtime shim) registers here;
    /// subsystems with a lifecycle of their own (a stream engine)
    /// should carry their own `Registry` instead so instances don't
    /// collide.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Registers (or retrieves) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// kind — that is a wiring bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) the gauge `name`; panics on a kind
    /// mismatch like [`counter`](Self::counter).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) the latency histogram `name`; panics on
    /// a kind mismatch like [`counter`](Self::counter).
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        match self.get_or_insert(name, || {
            Metric::Histogram(Arc::new(LatencyHistogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Registers a metric created elsewhere under `name` (e.g. a
    /// histogram shared with a non-registry consumer). Replaces
    /// nothing: like the typed getters, an existing entry wins and a
    /// kind mismatch panics.
    pub fn register(&self, name: &str, metric: Metric) -> Metric {
        self.get_or_insert(name, || metric.clone())
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
            return m.clone();
        }
        let m = make();
        entries.push((name.to_owned(), m.clone()));
        m
    }

    /// Names of all registered metrics, sorted.
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut names: Vec<String> = entries.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        names
    }

    /// An owned, point-in-time copy of every metric, sorted by name.
    ///
    /// Concurrent recorders may land increments while the snapshot
    /// walks the entries; each individual metric is read atomically
    /// (no torn values), and repeated snapshots observe monotonically
    /// non-decreasing counters.
    pub fn snapshot(&self) -> Snapshot {
        let handles: Vec<(String, Metric)> = {
            let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            entries.clone()
        };
        let mut values: Vec<(String, MetricValue)> = handles
            .into_iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (name, v)
            })
            .collect();
        values.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { values }
    }
}

/// The captured value of one metric inside a [`Snapshot`].
#[derive(Clone, Debug)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    /// Boxed: a full bucket copy is ~540 bytes, two orders of magnitude
    /// larger than the scalar variants sharing this enum.
    Histogram(Box<HistogramSnapshot>),
}

/// A point-in-time copy of a [`Registry`], renderable as text or JSON.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    values: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// All captured `(name, value)` pairs, sorted by name.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.values
    }

    /// The captured value of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convenience: the value of counter `name`, `None` otherwise.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: the captured histogram `name`, `None` otherwise.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// A plain-text report, one metric per line, histograms as
    /// percentile summaries.
    pub fn render_text(&self) -> String {
        let width = self.values.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.values {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name:<width$}  {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name:<width$}  {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("{name:<width$}  {}\n", h.summarize()));
                }
            }
        }
        out
    }

    /// The snapshot as one JSON object keyed by metric name.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.values
                .iter()
                .map(|(name, value)| {
                    let v = match value {
                        MetricValue::Counter(v) => Json::U64(*v),
                        MetricValue::Gauge(v) => Json::I64(*v),
                        MetricValue::Histogram(h) => h.to_json(),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn register_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("ops");
        let b = r.counter("ops");
        a.inc();
        b.add(2);
        assert_eq!(r.snapshot().counter("ops"), Some(3));
        assert_eq!(r.names(), vec!["ops".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_captures_all_kinds_sorted() {
        let r = Registry::new();
        r.gauge("z.depth").set(-4);
        r.counter("a.ops").add(7);
        r.histogram("m.lat").record(Duration::from_micros(10));
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.ops", "m.lat", "z.depth"]);
        assert_eq!(snap.counter("a.ops"), Some(7));
        assert_eq!(snap.histogram("m.lat").unwrap().count(), 1);
        let text = snap.render_text();
        assert!(text.contains("a.ops"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn snapshot_json_parses_back() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.gauge("g").set(-1);
        r.histogram("h").record(Duration::from_nanos(100));
        let rendered = r.snapshot().to_json().render();
        let parsed = crate::json::parse(&rendered).expect("valid JSON");
        assert_eq!(parsed.get("c").and_then(Json::as_u64), Some(5));
        assert_eq!(parsed.get("g"), Some(&Json::I64(-1)));
        assert_eq!(
            parsed
                .get("h")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn register_external_histogram() {
        let r = Registry::new();
        let h = Arc::new(LatencyHistogram::new());
        r.register("shared", Metric::Histogram(h.clone()));
        h.record(Duration::from_micros(1));
        assert_eq!(r.snapshot().histogram("shared").unwrap().count(), 1);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = Registry::global().counter("obs.test.global");
        c.inc();
        assert!(Registry::global().snapshot().counter("obs.test.global") >= Some(1));
    }
}
