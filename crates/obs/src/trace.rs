//! Task/span tracing into per-thread fixed-size ring buffers, exported
//! as Chrome `trace_event` JSON (loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)).
//!
//! # Cost model
//!
//! * Built **without** the `obs-trace` feature, [`span`] returns an
//!   inert zero-sized value with no `Drop` impl — every call site
//!   folds to nothing, so library consumers pay zero.
//! * Built **with** the feature but with tracing not
//!   [`enable`]d, a span costs one relaxed atomic load.
//! * With tracing enabled, a span costs two monotonic-clock reads and
//!   one push into the calling thread's ring (an uncontended mutex —
//!   rings are per-thread, only the exporter ever takes one from
//!   outside).
//!
//! Rings are **fixed-size** ([`TraceRing`]): when a thread records
//! more events than its ring holds, the oldest are overwritten. A
//! trace is therefore always bounded in memory no matter how long the
//! run — the export notes how many events were dropped.

use crate::json::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One completed span: a named interval on one thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span label (Chrome `name`).
    pub name: &'static str,
    /// Category (Chrome `cat`), e.g. `"runtime"` or `"stream"`.
    pub cat: &'static str,
    /// Trace-local thread id (Chrome `tid`).
    pub tid: u64,
    /// Start offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
}

/// A fixed-capacity event buffer: pushing beyond capacity overwrites
/// the oldest event, so memory stays bounded on arbitrarily long runs.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next overwrite position once the buffer is full.
    next: usize,
    recorded: u64,
}

impl TraceRing {
    /// # Panics
    ///
    /// Panics when `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "trace ring capacity must be nonzero");
        TraceRing {
            buf: Vec::with_capacity(cap.min(1024)),
            cap,
            next: 0,
            recorded: 0,
        }
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
        }
        self.recorded += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to wrap-around.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.cap {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        out
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.recorded = 0;
    }
}

/// Default per-thread ring capacity (events). At ~40 bytes per event
/// this bounds a thread's trace memory to ~2.5 MB.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

struct ThreadRing {
    label: String,
    tid: u64,
    ring: Mutex<TraceRing>,
}

/// The process-wide trace collector: one ring per recording thread.
struct Tracer {
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    origin: Instant,
    next_tid: AtomicU64,
    ring_capacity: AtomicUsize,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        rings: Mutex::new(Vec::new()),
        origin: Instant::now(),
        next_tid: AtomicU64::new(1),
        ring_capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
    })
}

thread_local! {
    static LOCAL_RING: OnceLock<Arc<ThreadRing>> = const { OnceLock::new() };
}

/// Starts recording spans (idempotent). Until this is called, spans
/// cost one relaxed load and record nothing.
pub fn enable() {
    tracer(); // pin the time origin no later than the first event
    ENABLED.store(true, Ordering::Release);
}

/// Stops recording spans; already-recorded events stay exportable.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether spans are currently being recorded.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the ring capacity used for threads that have not recorded yet
/// (existing rings keep their size). Call before [`enable`].
pub fn set_ring_capacity(events: usize) {
    tracer()
        .ring_capacity
        .store(events.max(1), Ordering::Relaxed);
}

/// Nanoseconds since the trace origin.
pub fn now_ns() -> u64 {
    tracer()
        .origin
        .elapsed()
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

fn local_ring() -> Arc<ThreadRing> {
    LOCAL_RING.with(|slot| {
        slot.get_or_init(|| {
            let t = tracer();
            let tid = t.next_tid.fetch_add(1, Ordering::Relaxed);
            let label = std::thread::current()
                .name()
                .map(|n| n.to_owned())
                .unwrap_or_else(|| format!("thread-{tid}"));
            let ring = Arc::new(ThreadRing {
                label,
                tid,
                ring: Mutex::new(TraceRing::new(t.ring_capacity.load(Ordering::Relaxed))),
            });
            t.rings
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ring.clone());
            ring
        })
        .clone()
    })
}

/// Records one completed span on the current thread. This is the
/// low-level entry the [`span`] guard drops into; it records
/// unconditionally — callers check [`is_enabled`].
pub fn record_complete(name: &'static str, cat: &'static str, start_ns: u64, dur_ns: u64) {
    let tr = local_ring();
    let ev = TraceEvent {
        name,
        cat,
        tid: tr.tid,
        start_ns,
        dur_ns,
    };
    tr.ring.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
}

/// An in-flight span; recording happens when it drops. Obtain via
/// [`span`] / [`span_cat`].
#[cfg(feature = "obs-trace")]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    armed: bool,
}

#[cfg(feature = "obs-trace")]
impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            let end = now_ns();
            record_complete(
                self.name,
                self.cat,
                self.start_ns,
                end.saturating_sub(self.start_ns),
            );
        }
    }
}

/// Opens a span in category `cat`; it records itself when dropped.
#[cfg(feature = "obs-trace")]
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> Span {
    let armed = is_enabled();
    Span {
        name,
        cat,
        start_ns: if armed { now_ns() } else { 0 },
        armed,
    }
}

/// An inert span: the crate was built without `obs-trace`, so every
/// instrumentation site folds to nothing.
#[cfg(not(feature = "obs-trace"))]
#[derive(Clone, Copy)]
pub struct Span;

/// No-op without the `obs-trace` feature.
#[cfg(not(feature = "obs-trace"))]
#[inline(always)]
pub fn span_cat(_name: &'static str, _cat: &'static str) -> Span {
    Span
}

/// Opens a span in the default category; see [`span_cat`].
#[inline]
pub fn span(name: &'static str) -> Span {
    span_cat(name, "task")
}

/// All currently retained events across every thread's ring, sorted by
/// start time.
pub fn events() -> Vec<TraceEvent> {
    let rings: Vec<Arc<ThreadRing>> = tracer()
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut out: Vec<TraceEvent> = Vec::new();
    for r in rings {
        out.extend(r.ring.lock().unwrap_or_else(|e| e.into_inner()).events());
    }
    out.sort_by_key(|e| e.start_ns);
    out
}

/// Total events lost to ring wrap-around across all threads.
pub fn total_dropped() -> u64 {
    tracer()
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|r| r.ring.lock().unwrap_or_else(|e| e.into_inner()).dropped())
        .sum()
}

/// Empties every ring (thread registrations survive).
pub fn clear() {
    let rings: Vec<Arc<ThreadRing>> = tracer()
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    for r in rings {
        r.ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Exports everything recorded so far as a Chrome `trace_event` JSON
/// document (the `{"traceEvents": [...]}` object form): complete
/// (`"ph": "X"`) events plus thread-name metadata, timestamps in
/// microseconds as the format requires. Load it in `chrome://tracing`
/// or Perfetto.
pub fn chrome_trace_json() -> String {
    let rings: Vec<Arc<ThreadRing>> = tracer()
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut events: Vec<Json> = Vec::new();
    let mut dropped = 0u64;
    for r in &rings {
        let ring = r.ring.lock().unwrap_or_else(|e| e.into_inner());
        dropped += ring.dropped();
        if ring.is_empty() {
            continue;
        }
        events.push(Json::obj([
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(r.tid)),
            ("args", Json::obj([("name", Json::from(r.label.as_str()))])),
        ]));
        for ev in ring.events() {
            events.push(Json::obj([
                ("name", Json::from(ev.name)),
                ("cat", Json::from(ev.cat)),
                ("ph", Json::from("X")),
                ("ts", Json::F64(ev.start_ns as f64 / 1_000.0)),
                ("dur", Json::F64(ev.dur_ns as f64 / 1_000.0)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(ev.tid)),
            ]));
        }
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj([("dropped_events", Json::U64(dropped))]),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let mut r = TraceRing::new(4);
        for i in 0..10u64 {
            r.push(TraceEvent {
                name: "t",
                cat: "test",
                tid: 0,
                start_ns: i,
                dur_ns: 1,
            });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let starts: Vec<u64> = r.events().iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![6, 7, 8, 9], "oldest events must be evicted");
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_below_capacity_preserves_order() {
        let mut r = TraceRing::new(8);
        for i in 0..3u64 {
            r.push(TraceEvent {
                name: "t",
                cat: "test",
                tid: 0,
                start_ns: 10 - i,
                dur_ns: 0,
            });
        }
        let starts: Vec<u64> = r.events().iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![10, 9, 8], "insertion order, not time order");
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_ring_is_rejected() {
        let _ = TraceRing::new(0);
    }

    #[test]
    fn recorded_events_export_as_chrome_trace() {
        // One combined test: the collector is process-global, so
        // splitting this into several #[test]s would race.
        record_complete("alpha", "test", 100, 50);
        record_complete("beta", "test", 200, 25);
        let evs = events();
        assert!(evs.iter().any(|e| e.name == "alpha"));
        let doc = chrome_trace_json();
        let parsed = crate::json::parse(&doc).expect("chrome trace is valid JSON");
        let traced = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // Thread metadata + the two spans, at least.
        assert!(traced.len() >= 3, "got {} events", traced.len());
        assert!(traced.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("name").and_then(Json::as_str) == Some("alpha")
        }));
        assert!(traced
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
    }

    #[cfg(feature = "obs-trace")]
    #[test]
    fn span_guard_records_only_when_enabled() {
        // Also a single test for the same global-state reason.
        disable();
        clear();
        {
            let _s = span("disabled-span");
        }
        assert!(
            !events().iter().any(|e| e.name == "disabled-span"),
            "span recorded while disabled"
        );
        enable();
        {
            let _s = span_cat("enabled-span", "test");
            std::hint::black_box(());
        }
        disable();
        let evs = events();
        let ev = evs
            .iter()
            .find(|e| e.name == "enabled-span")
            .expect("span recorded while enabled");
        assert_eq!(ev.cat, "test");
    }
}
