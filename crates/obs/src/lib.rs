//! `aspen-obs`: the workspace's observability layer.
//!
//! The paper's headline claims are latency distributions under
//! concurrent load; this crate is the substrate that makes every layer
//! of the reproduction *observable while it runs* instead of only at
//! end-of-run:
//!
//! * **[`LatencyHistogram`]** ([`hist`]) — the lock-free log₂-bucketed
//!   histogram (generalized out of `aspen-stream`), now snapshotable
//!   ([`HistogramSnapshot`]), mergeable and diffable for periodic
//!   delta reporting.
//! * **[`Registry`]** ([`registry`]) — named counters, gauges and
//!   histograms registered once; recording is lock-free through `Arc`
//!   handles, and a [`Snapshot`] renders as a text report or a JSON
//!   document at any instant — the surface a future `/stats` endpoint
//!   serves.
//! * **[`trace`]** — span tracing into per-thread fixed-size ring
//!   buffers, exported as Chrome `trace_event` JSON for
//!   `chrome://tracing` / Perfetto. Behind the `obs-trace` feature the
//!   [`trace::span`] guard is real (and still runtime-gated by
//!   [`trace::enable`]); without it every instrumentation site folds
//!   to nothing.
//! * **[`json`]** — the dependency-free JSON tree/writer/parser behind
//!   snapshots, traces and the `repro --json` results files (the build
//!   container has no crates.io access, hence no serde).
//!
//! # Quick start
//!
//! ```
//! use obs::{Registry};
//! use std::time::Duration;
//!
//! let reg = Registry::new();
//! let batches = reg.counter("writer.batches");
//! let apply = reg.histogram("writer.apply");
//!
//! batches.inc();
//! apply.record(Duration::from_micros(250));
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("writer.batches"), Some(1));
//! println!("{}", snap.render_text());
//! let json = snap.to_json().render();
//! assert!(json.contains("\"writer.batches\":1"));
//! ```

pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use hist::{HistogramSnapshot, LatencyHistogram, LatencySummary};
pub use json::Json;
pub use registry::{Counter, Gauge, Metric, MetricValue, Registry, Snapshot};
