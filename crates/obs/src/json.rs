//! A minimal JSON tree, writer and parser.
//!
//! The build container has no crates.io access, so the workspace
//! cannot pull serde; this module is the small, dependency-free
//! substrate behind every machine-readable surface in the tree —
//! registry snapshots, Chrome trace export, and the `repro --json`
//! results files. The parser exists so tests (and the CI smoke job)
//! can validate emitted output without leaving Rust.

/// A JSON value. Numbers keep their Rust type so `u64` counters
/// round-trip without precision loss.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // Rust's `Display` for finite f64 is always valid
                    // JSON (plain decimal, round-trippable).
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null"); // NaN/inf have no JSON form
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `u64` when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) => u64::try_from(n).ok(),
            Json::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) => Some(x as u64),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::I64(n) => Some(n as f64),
            Json::F64(x) => Some(x),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict enough to validate our own output
/// and ordinary hand-written JSON; rejects trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not reassembled; our
                            // writer never emits them (it escapes only
                            // control characters).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf8");
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_nested_values() {
        let doc = Json::obj([
            ("name", Json::from("aspen")),
            ("count", Json::U64(u64::MAX)),
            ("neg", Json::I64(-3)),
            ("ratio", Json::F64(0.25)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::U64(1), Json::from("two"), Json::Null]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("round trip");
        assert_eq!(back, doc);
        assert_eq!(back.get("count").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(back.get("ratio").and_then(Json::as_f64), Some(0.25));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::from("a\"b\\c\nd\te\u{1}f");
        let text = j.render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
        assert_eq!(parse(&text).unwrap(), j);
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_whitespace_and_empties() {
        assert_eq!(parse(" { } ").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("\n[\t]\r\n").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("-12").unwrap(), Json::I64(-12));
        assert_eq!(parse("1.5e3").unwrap(), Json::F64(1500.0));
    }
}
