//! A lock-free concurrent bitset.
//!
//! Graph traversals (BFS, BC, MIS) need a "visited" flag per vertex that
//! many threads race to set. `AtomicBitset` packs 64 flags per word and
//! offers a `test_and_set` whose winner is unambiguous, which is exactly
//! the compare-and-swap idiom Ligra-style frameworks use inside
//! `edgeMap`.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity bitset supporting concurrent reads and writes.
#[derive(Debug)]
pub struct AtomicBitset {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitset {
    /// Creates a bitset with all `len` bits cleared.
    ///
    /// ```
    /// let bs = parlib::AtomicBitset::new(100);
    /// assert!(!bs.get(7));
    /// ```
    pub fn new(len: usize) -> Self {
        let nwords = len.div_ceil(64);
        let mut words = Vec::with_capacity(nwords);
        words.resize_with(nwords, || AtomicU64::new(0));
        Self { words, len }
    }

    /// Number of bits in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64].load(Ordering::Relaxed) >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`; returns `true` iff this call changed it from 0 to 1
    /// (i.e. the caller "won" the race).
    ///
    /// ```
    /// let bs = parlib::AtomicBitset::new(8);
    /// assert!(bs.test_and_set(3));
    /// assert!(!bs.test_and_set(3));
    /// assert!(bs.get(3));
    /// ```
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_or(mask, Ordering::AcqRel);
        prev & mask == 0
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = !(1u64 << (i % 64));
        self.words[i / 64].fetch_and(mask, Ordering::AcqRel);
    }

    /// Clears every bit (not atomic with respect to concurrent setters).
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Indices of all set bits in increasing order.
    pub fn to_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, w) in self.words.iter().enumerate() {
            let mut bits = w.load(Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push((wi * 64 + b) as u32);
                bits &= bits - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn new_is_all_clear() {
        let bs = AtomicBitset::new(130);
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.len(), 130);
        assert!(!bs.is_empty());
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let bs = AtomicBitset::new(70);
        assert!(bs.test_and_set(69));
        assert!(bs.get(69));
        bs.clear(69);
        assert!(!bs.get(69));
    }

    #[test]
    fn exactly_one_winner_per_bit_under_contention() {
        let bs = AtomicBitset::new(256);
        let wins: usize = (0..10_000usize)
            .into_par_iter()
            .map(|i| usize::from(bs.test_and_set(i % 256)))
            .sum();
        assert_eq!(wins, 256);
        assert_eq!(bs.count_ones(), 256);
    }

    #[test]
    fn to_indices_sorted() {
        let bs = AtomicBitset::new(200);
        for i in [5usize, 64, 65, 199, 0] {
            bs.test_and_set(i);
        }
        assert_eq!(bs.to_indices(), vec![0, 5, 64, 65, 199]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        AtomicBitset::new(10).get(10);
    }

    #[test]
    fn clear_all_resets() {
        let bs = AtomicBitset::new(64);
        for i in 0..64 {
            bs.test_and_set(i);
        }
        bs.clear_all();
        assert_eq!(bs.count_ones(), 0);
    }
}
