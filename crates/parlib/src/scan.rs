//! Prefix sums and parallel packing.
//!
//! These are the `Scan` and `Filter` primitives of Appendix 10.1:
//! `scan` is an exclusive prefix sum under an associative operator with
//! `O(n)` work and `O(log n)` depth; `pack`/`filter_indices` compact the
//! elements (or indices) satisfying a predicate, preserving order.

use rayon::prelude::*;

/// Below this input length the primitives run sequentially outright:
/// even with the lock-free runtime's cheap un-stolen forks (~0.1 µs;
/// see `docs/RUNTIME.md`), a *stolen* fork still costs a cross-thread
/// handshake (~1 µs), and inputs this small finish in a few µs of
/// per-element work — splitting can only lose.
const SEQ: usize = 2048;

/// Block size for the two-pass algorithms, adapted to the pool width:
/// ~8 blocks per worker gives the stealing scheduler slack to
/// rebalance, floored at 512 elements so a block amortizes even a
/// stolen fork (the un-stolen majority are ~10× cheaper under the
/// Chase–Lev runtime, which is what let this floor halve from 1024)
/// and capped so the per-block scratch stays cache-friendly.
///
/// The blocks feed the runtime's adaptive split-on-steal iterators:
/// the *block* is the smallest stealable unit here, and the splitter
/// decides how many of the ~8·width blocks actually fork based on
/// observed steal pressure — an idle pool drains them in one leaf.
fn block_size(n: usize) -> usize {
    (n / (rayon::current_num_threads() * 8)).clamp(512, 1 << 16)
}

/// Exclusive prefix sum ("scan") under the associative operator `op`.
///
/// Returns `(prefix, total)` where `prefix[i] = id ⊕ a[0] ⊕ … ⊕ a[i-1]`
/// and `total` is the sum of all elements.
///
/// Runs in `O(n)` work and `O(log n)` depth using a block-based two-pass
/// algorithm.
///
/// ```
/// let (p, t) = parlib::scan(&[2u32, 3, 5], 0, |a, b| a + b);
/// assert_eq!(p, vec![0, 2, 5]);
/// assert_eq!(t, 10);
/// ```
pub fn scan<T>(items: &[T], id: T, op: impl Fn(&T, &T) -> T + Sync) -> (Vec<T>, T)
where
    T: Clone + Send + Sync,
{
    let n = items.len();
    if n == 0 {
        return (Vec::new(), id);
    }
    if n <= SEQ {
        let mut out = Vec::with_capacity(n);
        let mut acc = id;
        for x in items {
            out.push(acc.clone());
            acc = op(&acc, x);
        }
        return (out, acc);
    }
    let grain = block_size(n);
    let nblocks = n.div_ceil(grain);
    // Pass 1: per-block totals. Iterate blocks as `par_chunks` (whose
    // weight is the element count) rather than a block-index range: a
    // range of ~8·threads indices weighs less than the splitting floor
    // and would run entirely sequentially.
    let block_sums: Vec<T> = items
        .par_chunks(grain)
        .map(|chunk| {
            let mut acc = id.clone();
            for x in chunk {
                acc = op(&acc, x);
            }
            acc
        })
        .collect();
    debug_assert_eq!(block_sums.len(), nblocks);
    // Sequential scan over the (few) block totals.
    let mut offsets = Vec::with_capacity(nblocks);
    let mut acc = id.clone();
    for s in &block_sums {
        offsets.push(acc.clone());
        acc = op(&acc, s);
    }
    let total = acc;
    // Pass 2: re-scan each block with its offset.
    let mut out: Vec<T> = vec![id; n];
    out.par_chunks_mut(grain)
        .zip(offsets.into_par_iter())
        .enumerate()
        .for_each(|(b, (chunk, off))| {
            let lo = b * grain;
            let hi = lo + chunk.len();
            let mut acc = off;
            for (slot, x) in chunk.iter_mut().zip(&items[lo..hi]) {
                *slot = acc.clone();
                acc = op(&acc, x);
            }
        });
    (out, total)
}

/// Exclusive prefix sum over `usize` performed in place.
///
/// Returns the total. Used for offset computation when bucketing updates
/// by source vertex.
///
/// ```
/// let mut xs = vec![1usize, 2, 3];
/// let total = parlib::scan_inplace(&mut xs);
/// assert_eq!(xs, vec![0, 1, 3]);
/// assert_eq!(total, 6);
/// ```
pub fn scan_inplace(items: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in items.iter_mut() {
        let v = *x;
        *x = acc;
        acc += v;
    }
    acc
}

/// Stable parallel filter: returns the elements of `items` satisfying
/// `pred`, in their original order. `O(n)` work, `O(log n)` depth.
///
/// ```
/// let evens = parlib::pack(&[1, 2, 3, 4, 5, 6], |&x| x % 2 == 0);
/// assert_eq!(evens, vec![2, 4, 6]);
/// ```
pub fn pack<T>(items: &[T], pred: impl Fn(&T) -> bool + Sync) -> Vec<T>
where
    T: Clone + Send + Sync,
{
    if items.len() <= SEQ {
        return items.iter().filter(|x| pred(x)).cloned().collect();
    }
    items
        .par_chunks(block_size(items.len()))
        .map(|chunk| {
            chunk
                .iter()
                .filter(|x| pred(x))
                .cloned()
                .collect::<Vec<_>>()
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

/// Returns the indices `i` where `pred(&items[i])` holds, in increasing
/// order. The index-returning variant of [`pack`].
///
/// ```
/// let idx = parlib::filter_indices(&[10, 0, 20, 0], |&x| x > 0);
/// assert_eq!(idx, vec![0, 2]);
/// ```
pub fn filter_indices<T>(items: &[T], pred: impl Fn(&T) -> bool + Sync) -> Vec<usize>
where
    T: Sync,
{
    if items.len() <= SEQ {
        return items
            .iter()
            .enumerate()
            .filter(|(_, x)| pred(x))
            .map(|(i, _)| i)
            .collect();
    }
    let grain = block_size(items.len());
    items
        .par_chunks(grain)
        .enumerate()
        .map(|(b, chunk)| {
            let base = b * grain;
            chunk
                .iter()
                .enumerate()
                .filter(|(_, x)| pred(x))
                .map(|(i, _)| base + i)
                .collect::<Vec<_>>()
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_empty() {
        let (p, t) = scan(&[] as &[u64], 0, |a, b| a + b);
        assert!(p.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn scan_matches_sequential_for_large_input() {
        let xs: Vec<u64> = (0..50_000).map(|i| (i * 7 + 3) % 101).collect();
        let (p, t) = scan(&xs, 0, |a, b| a + b);
        let mut acc = 0u64;
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(p[i], acc);
            acc += x;
        }
        assert_eq!(t, acc);
    }

    #[test]
    fn scan_with_max_operator() {
        let xs = vec![3u32, 1, 4, 1, 5];
        let (p, t) = scan(&xs, 0, |a, b| *a.max(b));
        assert_eq!(p, vec![0, 3, 3, 4, 4]);
        assert_eq!(t, 5);
    }

    #[test]
    fn pack_preserves_order_large() {
        let xs: Vec<u32> = (0..30_000).collect();
        let out = pack(&xs, |&x| x % 3 == 0);
        let expect: Vec<u32> = xs.iter().copied().filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn filter_indices_all_and_none() {
        let xs = vec![1, 2, 3];
        assert_eq!(filter_indices(&xs, |_| true), vec![0, 1, 2]);
        assert!(filter_indices(&xs, |_| false).is_empty());
    }

    #[test]
    fn scan_inplace_matches_scan() {
        let xs = vec![5usize, 0, 2, 9];
        let mut ys = xs.clone();
        let total = scan_inplace(&mut ys);
        let (p, t) = scan(&xs, 0usize, |a, b| a + b);
        assert_eq!(ys, p);
        assert_eq!(total, t);
    }
}
