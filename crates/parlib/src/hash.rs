//! Deterministic 64-bit hashing.
//!
//! The paper assumes access to a family of uniformly random hash
//! functions evaluable in `O(1)` (§2). We use the `splitmix64` finalizer,
//! whose avalanche behaviour is well studied, seeded per use-site so that
//! independent samplings (treap priorities vs. C-tree head selection) are
//! uncorrelated.

/// The `splitmix64` finalizing mixer.
///
/// Bijective on `u64`, with full avalanche: every input bit affects every
/// output bit with probability ~1/2.
///
/// ```
/// assert_ne!(parlib::mix64(1), parlib::mix64(2));
/// assert_eq!(parlib::mix64(7), parlib::mix64(7));
/// ```
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes `x` with the default seed.
///
/// ```
/// let h = parlib::hash64(42);
/// assert_eq!(h, parlib::hash64(42));
/// ```
#[inline]
pub fn hash64(x: u64) -> u64 {
    mix64(x)
}

/// Hashes `x` under an independent function selected by `seed`.
///
/// Different seeds behave like independent draws from the hash family,
/// which the C-tree analysis (Lemma 3.1) requires.
#[inline]
pub fn hash64_with_seed(x: u64, seed: u64) -> u64 {
    mix64(x ^ mix64(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_injective_on_sample() {
        let outs: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn seeds_give_distinct_functions() {
        let same = (0..1000u64)
            .filter(|&x| hash64_with_seed(x, 1) == hash64_with_seed(x, 2))
            .count();
        assert!(same < 3, "seeded hashes nearly identical: {same}");
    }

    #[test]
    fn head_probability_is_roughly_uniform() {
        // Selecting elements with h(e) % b == 0 should pick ~n/b heads.
        let b = 128u64;
        let n = 100_000u64;
        let heads = (0..n).filter(|&x| hash64(x).is_multiple_of(b)).count();
        let expected = (n / b) as f64;
        let got = heads as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "heads {got} far from expected {expected}"
        );
    }

    #[test]
    fn mix64_zero_is_not_zero() {
        assert_ne!(mix64(0), 0);
    }
}
