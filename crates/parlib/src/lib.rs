//! Parallel primitives shared by the Aspen reproduction.
//!
//! The paper ("Low-Latency Graph Streaming Using Compressed
//! Purely-Functional Trees", PLDI 2019) analyses its algorithms in the
//! work–depth model and implements them on a Cilk-like work-stealing
//! scheduler with a small set of sequence primitives (`Scan`, `Filter`,
//! parallel sort; Appendix 10.1). This crate provides the Rust
//! equivalents on top of [`rayon`] — backed by the workspace's
//! lock-free work-stealing fork-join pool (Chase–Lev deques with
//! adaptive split-on-steal iterators; see `docs/RUNTIME.md`), so the
//! primitives genuinely run with the `O(log n)` depths quoted below.
//! Block sizes adapt to the pool width (`~8` blocks per worker, see
//! `scan::block_size`), and the default pool width honours the
//! `ASPEN_THREADS` environment variable:
//!
//! * [`scan`](fn@scan) — exclusive prefix sums with an associative
//!   operator, `O(n)` work and `O(log n)` depth.
//! * [`pack`]/[`filter_indices`] — stable parallel filter.
//! * [`AtomicBitset`] — a lock-free concurrent bitset used for visited
//!   flags in graph traversals.
//! * [`atomics`] — `write_min`, atomic `f64` accumulation and
//!   compare-and-swap helpers used by betweenness centrality and MIS.
//! * [`hash`] — `splitmix64` and related mixers; deterministic hashing
//!   drives both treap priorities and C-tree head selection.
//!
//! # Example
//!
//! ```
//! let xs = vec![1u64, 2, 3, 4];
//! let (sums, total) = parlib::scan(&xs, 0u64, |a, b| a + b);
//! assert_eq!(sums, vec![0, 1, 3, 6]);
//! assert_eq!(total, 10);
//! ```

pub mod atomics;
pub mod bitset;
pub mod hash;
pub mod scan;

pub use atomics::{write_max_u32, write_min_u32, AtomicF64};
pub use bitset::AtomicBitset;
pub use hash::{hash64, hash64_with_seed, mix64};
pub use scan::{filter_indices, pack, scan, scan_inplace};

/// Returns the number of worker threads rayon will use.
///
/// Convenience used by benches to report the configuration under which a
/// measurement was taken.
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Runs `f` on a dedicated rayon pool with `n` threads.
///
/// This genuinely constrains (or widens) the parallelism of every
/// `join`/`scope`/parallel-iterator call inside `f`, including nested
/// spawns executing on the pool's workers — the thread-scaling
/// experiment (`repro scaling`) and the single-thread vs all-threads
/// comparisons in Tables 3 and 4 run through it.
///
/// # Panics
///
/// Panics if the thread pool cannot be constructed (e.g. `n == 0`).
pub fn with_threads<R: Send>(n: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn with_threads_single() {
        let r = with_threads(1, rayon::current_num_threads);
        assert_eq!(r, 1);
    }

    #[test]
    fn with_threads_returns_value() {
        assert_eq!(with_threads(2, || 41 + 1), 42);
    }
}
