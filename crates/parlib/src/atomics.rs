//! Atomic helpers used by the parallel graph algorithms.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Atomically lowers `slot` to `val` if `val` is smaller.
///
/// Returns `true` iff this call strictly decreased the stored value —
/// the `writeMin` primitive of Ligra-style frameworks.
///
/// ```
/// use std::sync::atomic::{AtomicU32, Ordering};
/// let a = AtomicU32::new(10);
/// assert!(parlib::write_min_u32(&a, 3));
/// assert!(!parlib::write_min_u32(&a, 7));
/// assert_eq!(a.load(Ordering::Relaxed), 3);
/// ```
#[inline]
pub fn write_min_u32(slot: &AtomicU32, val: u32) -> bool {
    let mut cur = slot.load(Ordering::Relaxed);
    while val < cur {
        match slot.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomically raises `slot` to `val` if `val` is larger; returns `true`
/// iff the stored value strictly increased.
#[inline]
pub fn write_max_u32(slot: &AtomicU32, val: u32) -> bool {
    let mut cur = slot.load(Ordering::Relaxed);
    while val > cur {
        match slot.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// An `f64` supporting atomic load/store/add via bit-level CAS.
///
/// Betweenness centrality accumulates floating-point dependency scores
/// from many threads; this is the standard CAS-loop formulation.
#[derive(Debug)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Creates a new atomic with initial value `v`.
    pub fn new(v: f64) -> Self {
        Self {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Stores `v`.
    #[inline]
    pub fn store(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta` and returns the previous value.
    ///
    /// ```
    /// let a = parlib::AtomicF64::new(1.5);
    /// a.fetch_add(2.0);
    /// assert!((a.load() - 3.5).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(prev) => return f64::from_bits(prev),
                Err(now) => cur = now,
            }
        }
    }
}

impl Default for AtomicF64 {
    fn default() -> Self {
        Self::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn write_min_converges_to_minimum() {
        let a = AtomicU32::new(u32::MAX);
        (0..1000u32).into_par_iter().for_each(|i| {
            write_min_u32(&a, 1000 - i);
        });
        assert_eq!(a.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn write_max_converges_to_maximum() {
        let a = AtomicU32::new(0);
        (0..1000u32).into_par_iter().for_each(|i| {
            write_max_u32(&a, i);
        });
        assert_eq!(a.load(Ordering::Relaxed), 999);
    }

    #[test]
    fn write_min_reports_strict_decrease_only() {
        let a = AtomicU32::new(5);
        assert!(!write_min_u32(&a, 5));
        assert!(!write_min_u32(&a, 9));
        assert!(write_min_u32(&a, 4));
    }

    #[test]
    fn atomic_f64_parallel_sum() {
        let a = AtomicF64::new(0.0);
        (0..10_000u32).into_par_iter().for_each(|_| {
            a.fetch_add(0.5);
        });
        assert!((a.load() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn atomic_f64_store_load() {
        let a = AtomicF64::default();
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
    }
}
