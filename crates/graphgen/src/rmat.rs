//! The rMAT recursive-matrix generator [Chakrabarti et al., SDM'04].
//!
//! The paper samples its batch-update streams from an rMAT generator
//! with `a = 0.5, b = c = 0.1, d = 0.3` (§7.4); those are the default
//! parameters here. rMAT produces the heavy-tailed degree distributions
//! typical of the social and web graphs in Table 1, which is why it
//! serves as the stand-in for those datasets in this reproduction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// rMAT quadrant probabilities.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// log2 of the number of vertices.
    pub scale: u32,
}

impl RmatParams {
    /// The paper's parameters (`a=0.5, b=c=0.1, d=0.3`) at the given
    /// scale (`n = 2^scale`).
    pub fn paper(scale: u32) -> Self {
        RmatParams {
            a: 0.5,
            b: 0.1,
            c: 0.1,
            scale,
        }
    }

    /// Number of vertices (`2^scale`).
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        1u32 << self.scale
    }
}

/// Deterministic rMAT edge stream.
///
/// Edges are generated independently; duplicates occur exactly as they
/// would in the paper's stream (batches are deduplicated downstream by
/// the update machinery).
#[derive(Clone, Debug)]
pub struct Rmat {
    params: RmatParams,
    seed: u64,
}

impl Rmat {
    /// Creates a generator with the paper's quadrant probabilities.
    pub fn new(scale: u32, seed: u64) -> Self {
        Rmat {
            params: RmatParams::paper(scale),
            seed,
        }
    }

    /// Creates a generator with explicit parameters.
    pub fn with_params(params: RmatParams, seed: u64) -> Self {
        Rmat { params, seed }
    }

    /// The `i`-th edge of the stream. Stateless addressing makes the
    /// stream reproducible and parallel to sample.
    pub fn edge(&self, i: u64) -> (u32, u32) {
        let mut rng = StdRng::seed_from_u64(parlib::hash64_with_seed(i, self.seed));
        let (mut u, mut v) = (0u32, 0u32);
        // Add per-level noise to the quadrant probabilities, as the
        // standard rMAT implementations (GAP, PaRMAT) do, to avoid
        // exactly self-similar artifacts.
        for _ in 0..self.params.scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            let a = self.params.a;
            let b = self.params.b;
            let c = self.params.c;
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u, v)
    }

    /// Samples `count` edges starting at stream position `offset`, in
    /// parallel.
    pub fn edges(&self, offset: u64, count: usize) -> Vec<(u32, u32)> {
        (0..count as u64)
            .into_par_iter()
            .map(|i| self.edge(offset + i))
            .collect()
    }

    /// Generates a symmetric (undirected) edge list with roughly
    /// `directed_target` directed edges after symmetrization and
    /// deduplication, suitable for `Graph::from_edges`.
    pub fn symmetric_graph_edges(&self, directed_target: usize) -> Vec<(u32, u32)> {
        let raw = self.edges(0, directed_target / 2 + 1);
        let mut sym: Vec<(u32, u32)> = raw
            .into_par_iter()
            .filter(|&(u, v)| u != v)
            .flat_map_iter(|(u, v)| [(u, v), (v, u)])
            .collect();
        sym.par_sort_unstable();
        sym.dedup();
        sym
    }

    /// Number of vertices in the id space.
    pub fn num_vertices(&self) -> u32 {
        self.params.num_vertices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed_and_index() {
        let g = Rmat::new(10, 42);
        assert_eq!(g.edge(7), g.edge(7));
        let g2 = Rmat::new(10, 42);
        assert_eq!(g.edge(123), g2.edge(123));
        let g3 = Rmat::new(10, 43);
        // different seeds should disagree somewhere in a small window
        assert!((0..50).any(|i| g.edge(i) != g3.edge(i)));
    }

    #[test]
    fn edges_fit_in_id_space() {
        let g = Rmat::new(8, 1);
        for i in 0..2000 {
            let (u, v) = g.edge(i);
            assert!(u < 256 && v < 256);
        }
    }

    #[test]
    fn degrees_are_skewed() {
        // rMAT with a=0.5 concentrates mass on low ids: vertex degree
        // distribution must be far from uniform.
        let g = Rmat::new(12, 7);
        let edges = g.edges(0, 40_000);
        let mut deg = vec![0u32; 1 << 12];
        for (u, _) in &edges {
            deg[*u as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = 40_000.0 / 4096.0;
        assert!(
            f64::from(max) > mean * 8.0,
            "max degree {max} too close to mean {mean} for a skewed graph"
        );
    }

    #[test]
    fn parallel_sampling_matches_sequential() {
        let g = Rmat::new(10, 9);
        let par = g.edges(100, 50);
        let seq: Vec<(u32, u32)> = (100..150).map(|i| g.edge(i)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn symmetric_edges_are_symmetric_and_loop_free() {
        let g = Rmat::new(10, 3);
        let edges = g.symmetric_graph_edges(5000);
        assert!(!edges.is_empty());
        let set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        for &(u, v) in &edges {
            assert_ne!(u, v, "self loop survived");
            assert!(set.contains(&(v, u)), "missing reverse of ({u},{v})");
        }
    }
}
