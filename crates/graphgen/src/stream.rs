//! Update-stream construction following the paper's methodology.
//!
//! §7.3: *"we generate an update stream by randomly sampling 2 million
//! edges from the input graph to use as updates. We sub-sample 90% of
//! the sample to use as edge insertions, and immediately delete them
//! from the input graph. The remaining 10% are kept in the graph, as we
//! will delete them over the course of the update stream. The update
//! stream is a random permutation of these insertions and deletions."*
//!
//! [`build_update_stream`] reproduces that recipe over any edge list
//! (scaled down to the sample size the caller asks for).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One element of an update stream: an undirected edge to insert or
/// delete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert the undirected edge `(u, v)`.
    Insert(u32, u32),
    /// Delete the undirected edge `(u, v)`.
    Delete(u32, u32),
}

impl Update {
    /// The endpoints regardless of direction.
    pub fn endpoints(&self) -> (u32, u32) {
        match *self {
            Update::Insert(u, v) | Update::Delete(u, v) => (u, v),
        }
    }

    /// Whether this update is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::Insert(..))
    }

    /// Whether this update is a deletion.
    pub fn is_delete(&self) -> bool {
        matches!(self, Update::Delete(..))
    }
}

impl std::fmt::Display for Update {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Update::Insert(u, v) => write!(f, "+({u},{v})"),
            Update::Delete(u, v) => write!(f, "-({u},{v})"),
        }
    }
}

/// The §7.3 experiment setup: a starting graph (with the insertion
/// sample removed) and the shuffled update stream to replay onto it.
#[derive(Clone, Debug)]
pub struct StreamSetup {
    /// Symmetric directed edges of the graph to load before streaming.
    pub initial_edges: Vec<(u32, u32)>,
    /// The shuffled insert/delete stream (undirected updates).
    pub updates: Vec<Update>,
}

/// Builds a §7.3-style workload from a symmetric directed edge list.
///
/// `sample` undirected edges are drawn from the graph: 90% become
/// insertions (and are removed from the initial graph), 10% become
/// deletions (and stay in). The combined stream is randomly permuted.
///
/// # Panics
///
/// Panics if the graph holds fewer than `sample` undirected edges.
pub fn build_update_stream(
    symmetric_edges: &[(u32, u32)],
    sample: usize,
    seed: u64,
) -> StreamSetup {
    // Undirected representatives: keep (u, v) with u < v.
    let mut undirected: Vec<(u32, u32)> = symmetric_edges
        .iter()
        .copied()
        .filter(|&(u, v)| u < v)
        .collect();
    assert!(
        undirected.len() >= sample,
        "graph has {} undirected edges, need {sample}",
        undirected.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    undirected.shuffle(&mut rng);
    let sampled = &undirected[..sample];
    let n_inserts = sample * 9 / 10;
    let (to_insert, to_delete) = sampled.split_at(n_inserts);

    // Insertion sample leaves the initial graph; deletion sample stays.
    let removed: std::collections::HashSet<(u32, u32)> = to_insert.iter().copied().collect();
    let initial_edges: Vec<(u32, u32)> = symmetric_edges
        .iter()
        .copied()
        .filter(|&(u, v)| {
            let key = if u < v { (u, v) } else { (v, u) };
            !removed.contains(&key)
        })
        .collect();

    let mut updates: Vec<Update> = to_insert
        .iter()
        .map(|&(u, v)| Update::Insert(u, v))
        .chain(to_delete.iter().map(|&(u, v)| Update::Delete(u, v)))
        .collect();
    updates.shuffle(&mut rng);
    StreamSetup {
        initial_edges,
        updates,
    }
}

/// Routes one undirected update to its owning shards as **oriented
/// arcs** — the sharded-engine mirroring convention.
///
/// The undirected edge `{u, v}` is stored as the arc `(u, v)` in the
/// shard owning `u` and the arc `(v, u)` in the shard owning `v`, so
/// every neighbor scan stays shard-local. This function is that rule,
/// written once: it returns both `(shard, arc-update)` pairs (the same
/// shard twice when one shard owns both endpoints — it must then apply
/// both arcs). `owner` is the routing function, normally
/// `|v| router.shard_of(v)` for an `aspen::ShardRouter`.
pub fn route_update(update: Update, owner: impl Fn(u32) -> usize) -> [(usize, Update); 2] {
    let (u, v) = update.endpoints();
    let make = |a, b| {
        if update.is_insert() {
            Update::Insert(a, b)
        } else {
            Update::Delete(a, b)
        }
    };
    [(owner(u), make(u, v)), (owner(v), make(v, u))]
}

/// Splits an undirected update stream into per-shard **arc-update**
/// sub-streams under [`route_update`]'s mirroring rule, preserving
/// arrival order within each shard.
///
/// Benches, tests, and the sharded engine all split through this one
/// implementation, so a routing disagreement between producer-side
/// splitting and the engine's own ingest front end cannot exist.
pub fn partition_updates(
    updates: &[Update],
    shards: usize,
    owner: impl Fn(u32) -> usize,
) -> Vec<Vec<Update>> {
    assert!(shards > 0, "need at least one shard");
    let mut out: Vec<Vec<Update>> = (0..shards).map(|_| Vec::new()).collect();
    for &u in updates {
        for (shard, arc) in route_update(u, &owner) {
            assert!(shard < shards, "owner function returned shard {shard}");
            out[shard].push(arc);
        }
    }
    out
}

/// Splits a symmetric directed edge list into per-shard arc lists:
/// arc `(u, v)` goes to the shard owning its **source** `u`. Used to
/// build per-shard initial graphs that together represent the same
/// undirected graph as the unsharded edge list.
pub fn partition_arcs(
    edges: &[(u32, u32)],
    shards: usize,
    owner: impl Fn(u32) -> usize,
) -> Vec<Vec<(u32, u32)>> {
    assert!(shards > 0, "need at least one shard");
    let mut out: Vec<Vec<(u32, u32)>> = (0..shards).map(|_| Vec::new()).collect();
    for &(u, v) in edges {
        let shard = owner(u);
        assert!(shard < shards, "owner function returned shard {shard}");
        out[shard].push((u, v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::Rmat;

    fn setup() -> StreamSetup {
        let edges = Rmat::new(10, 11).symmetric_graph_edges(20_000);
        build_update_stream(&edges, 1000, 5)
    }

    #[test]
    fn ninety_ten_split() {
        let s = setup();
        let inserts = s
            .updates
            .iter()
            .filter(|u| matches!(u, Update::Insert(..)))
            .count();
        let deletes = s.updates.len() - inserts;
        assert_eq!(inserts, 900);
        assert_eq!(deletes, 100);
    }

    #[test]
    fn insertions_absent_deletions_present_initially() {
        let s = setup();
        let initial: std::collections::HashSet<(u32, u32)> =
            s.initial_edges.iter().copied().collect();
        for u in &s.updates {
            let (a, b) = u.endpoints();
            match u {
                Update::Insert(..) => {
                    assert!(!initial.contains(&(a, b)), "insert target already present");
                    assert!(!initial.contains(&(b, a)));
                }
                Update::Delete(..) => {
                    assert!(initial.contains(&(a, b)), "delete target missing");
                    assert!(initial.contains(&(b, a)), "initial graph asymmetric");
                }
            }
        }
    }

    #[test]
    fn stream_is_permuted_not_grouped() {
        let s = setup();
        // A random permutation of 900 inserts + 100 deletes should not
        // keep all deletes at the end.
        let first_delete = s
            .updates
            .iter()
            .position(|u| matches!(u, Update::Delete(..)))
            .unwrap();
        assert!(first_delete < 900, "deletes clustered at the end");
    }

    #[test]
    fn deterministic_by_seed() {
        let edges = Rmat::new(10, 11).symmetric_graph_edges(20_000);
        let a = build_update_stream(&edges, 500, 7);
        let b = build_update_stream(&edges, 500, 7);
        assert_eq!(a.updates, b.updates);
    }

    #[test]
    #[should_panic(expected = "undirected edges")]
    fn rejects_oversized_sample() {
        let edges = vec![(0u32, 1u32), (1, 0)];
        let _ = build_update_stream(&edges, 10, 1);
    }

    #[test]
    fn ratio_holds_across_sample_sizes() {
        let edges = Rmat::new(10, 11).symmetric_graph_edges(20_000);
        for sample in [10, 100, 1500] {
            let s = build_update_stream(&edges, sample, 9);
            let inserts = s.updates.iter().filter(|u| u.is_insert()).count();
            assert_eq!(inserts, sample * 9 / 10, "sample={sample}");
            assert_eq!(s.updates.len(), sample, "sample={sample}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let edges = Rmat::new(10, 11).symmetric_graph_edges(20_000);
        let a = build_update_stream(&edges, 500, 7);
        let b = build_update_stream(&edges, 500, 8);
        // Same recipe, different permutation and (almost surely)
        // different sampled edges.
        assert_ne!(a.updates, b.updates);
    }

    #[test]
    fn determinism_covers_initial_graph_too() {
        let edges = Rmat::new(10, 11).symmetric_graph_edges(20_000);
        let a = build_update_stream(&edges, 500, 7);
        let b = build_update_stream(&edges, 500, 7);
        assert_eq!(a.initial_edges, b.initial_edges);
    }

    #[test]
    fn route_update_orients_arcs_to_owners() {
        let owner = |v: u32| (v % 3) as usize;
        let [(s0, a0), (s1, a1)] = route_update(Update::Insert(4, 8), owner);
        assert_eq!((s0, a0), (1, Update::Insert(4, 8)));
        assert_eq!((s1, a1), (2, Update::Insert(8, 4)));
        // Deletes keep their operation through routing.
        let [(_, d0), (_, d1)] = route_update(Update::Delete(4, 8), owner);
        assert_eq!(d0, Update::Delete(4, 8));
        assert_eq!(d1, Update::Delete(8, 4));
        // Co-owned endpoints: the same shard receives both arcs.
        let [(sa, aa), (sb, ab)] = route_update(Update::Insert(3, 6), owner);
        assert_eq!((sa, sb), (0, 0));
        assert_eq!((aa, ab), (Update::Insert(3, 6), Update::Insert(6, 3)));
    }

    #[test]
    fn partition_updates_mirrors_and_preserves_order() {
        let owner = |v: u32| (v % 2) as usize;
        let stream = vec![
            Update::Insert(0, 1), // cross: shard0 gets (0,1), shard1 gets (1,0)
            Update::Insert(2, 4), // local to shard0: both arcs
            Update::Delete(0, 1), // cross again
        ];
        let parts = partition_updates(&stream, 2, owner);
        assert_eq!(
            parts[0],
            vec![
                Update::Insert(0, 1),
                Update::Insert(2, 4),
                Update::Insert(4, 2),
                Update::Delete(0, 1),
            ]
        );
        assert_eq!(parts[1], vec![Update::Insert(1, 0), Update::Delete(1, 0)]);
        // Every update contributes exactly two arcs.
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, stream.len() * 2);
    }

    #[test]
    fn partition_arcs_routes_by_source() {
        let owner = |v: u32| (v % 2) as usize;
        let edges = vec![(0u32, 1u32), (1, 0), (2, 3), (3, 2)];
        let parts = partition_arcs(&edges, 2, owner);
        assert_eq!(parts[0], vec![(0, 1), (2, 3)]);
        assert_eq!(parts[1], vec![(1, 0), (3, 2)]);
    }

    #[test]
    fn single_shard_partition_gets_both_arcs() {
        let parts = partition_updates(&[Update::Insert(5, 9)], 1, |_| 0);
        assert_eq!(parts[0], vec![Update::Insert(5, 9), Update::Insert(9, 5)]);
    }

    #[test]
    fn update_helpers_and_display() {
        let ins = Update::Insert(3, 4);
        let del = Update::Delete(4, 3);
        assert!(ins.is_insert() && !ins.is_delete());
        assert!(del.is_delete() && !del.is_insert());
        assert_eq!(ins.to_string(), "+(3,4)");
        assert_eq!(del.to_string(), "-(4,3)");
    }
}
