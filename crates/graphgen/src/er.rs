//! Erdős–Rényi `G(n, m)` generation: the uniform counterpart to rMAT,
//! used by ablation benches to separate "skewed degree" effects from
//! data-structure effects.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Samples `m` directed edges uniformly from `n × n` (self-loops
/// excluded), deterministically from `seed`. Duplicates are possible,
/// mirroring a raw update stream.
pub fn er_edges(n: u32, m: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(n >= 2, "need at least two vertices");
    (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(parlib::hash64_with_seed(i, seed));
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            (u, v)
        })
        .collect()
}

/// Uniform symmetric edge list with roughly `directed_target` directed
/// edges after symmetrization and deduplication.
pub fn er_symmetric_edges(n: u32, directed_target: usize, seed: u64) -> Vec<(u32, u32)> {
    let raw = er_edges(n, directed_target / 2 + 1, seed);
    let mut sym: Vec<(u32, u32)> = raw
        .into_par_iter()
        .flat_map_iter(|(u, v)| [(u, v), (v, u)])
        .collect();
    sym.par_sort_unstable();
    sym.dedup();
    sym
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_self_loops_and_in_range() {
        for (u, v) in er_edges(50, 5000, 3) {
            assert_ne!(u, v);
            assert!(u < 50 && v < 50);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(er_edges(100, 100, 9), er_edges(100, 100, 9));
        assert_ne!(er_edges(100, 100, 9), er_edges(100, 100, 10));
    }

    #[test]
    fn roughly_uniform_out_degrees() {
        let edges = er_edges(64, 64_000, 5);
        let mut deg = [0u32; 64];
        for (u, _) in edges {
            deg[u as usize] += 1;
        }
        let (min, max) = (deg.iter().min().unwrap(), deg.iter().max().unwrap());
        assert!(
            *max < min * 2,
            "uniform generator produced skew: min={min} max={max}"
        );
    }

    #[test]
    fn symmetric_output() {
        let edges = er_symmetric_edges(32, 500, 1);
        let set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        for &(u, v) in &edges {
            assert!(set.contains(&(v, u)));
        }
    }
}
