//! Synthetic graph and update-stream generators.
//!
//! The paper evaluates on six real-world graphs (Table 1) that are
//! multi-gigabyte downloads; this reproduction substitutes rMAT graphs
//! with matched average degree ([`Rmat`]) — rMAT's heavy-tailed degree
//! distribution is the standard proxy for such social/web networks —
//! plus a uniform Erdős–Rényi generator ([`er_edges`]) for ablations.
//! [`build_update_stream`] reproduces the §7.3 insert/delete stream
//! methodology, and [`AdjacencyGraph`] reads/writes the Ligra-style
//! text format.

mod er;
mod io;
mod rmat;
mod stream;

pub use er::{er_edges, er_symmetric_edges};
pub use io::AdjacencyGraph;
pub use rmat::{Rmat, RmatParams};
pub use stream::{
    build_update_stream, partition_arcs, partition_updates, route_update, StreamSetup, Update,
};
