//! Plain-text adjacency-graph I/O.
//!
//! The format is the one Ligra/Problem Based Benchmark Suite use:
//!
//! ```text
//! AdjacencyGraph
//! <n>
//! <m>
//! <offset 0>
//! ...
//! <offset n-1>
//! <edge 0>
//! ...
//! <edge m-1>
//! ```
//!
//! Provided so the examples can persist and reload generated graphs;
//! the benchmarks generate everything in memory.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// In-memory adjacency-graph file content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjacencyGraph {
    /// Per-vertex offsets into `edges` (length `n`).
    pub offsets: Vec<u64>,
    /// Flattened destination lists (length `m`).
    pub edges: Vec<u32>,
}

impl AdjacencyGraph {
    /// Converts a sorted, deduplicated directed edge list over the id
    /// space `0..n` into CSR-style offsets.
    pub fn from_edge_list(n: u32, sorted_edges: &[(u32, u32)]) -> Self {
        debug_assert!(sorted_edges.windows(2).all(|w| w[0] <= w[1]));
        let mut offsets = vec![0u64; n as usize];
        for &(u, _) in sorted_edges {
            offsets[u as usize] += 1;
        }
        let mut acc = 0u64;
        for o in offsets.iter_mut() {
            let c = *o;
            *o = acc;
            acc += c;
        }
        AdjacencyGraph {
            offsets,
            edges: sorted_edges.iter().map(|&(_, v)| v).collect(),
        }
    }

    /// Expands back into a directed edge list.
    pub fn to_edge_list(&self) -> Vec<(u32, u32)> {
        let n = self.offsets.len();
        let mut out = Vec::with_capacity(self.edges.len());
        for u in 0..n {
            let start = self.offsets[u] as usize;
            let end = if u + 1 < n {
                self.offsets[u + 1] as usize
            } else {
                self.edges.len()
            };
            for &v in &self.edges[start..end] {
                out.push((u as u32, v));
            }
        }
        out
    }

    /// Writes in the AdjacencyGraph text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the filesystem.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        let mut w = BufWriter::new(f);
        writeln!(w, "AdjacencyGraph")?;
        writeln!(w, "{}", self.offsets.len())?;
        writeln!(w, "{}", self.edges.len())?;
        for o in &self.offsets {
            writeln!(w, "{o}")?;
        }
        for e in &self.edges {
            writeln!(w, "{e}")?;
        }
        w.flush()
    }

    /// Reads the AdjacencyGraph text format.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed headers or counts, and
    /// propagates I/O failures.
    pub fn read_from(path: &Path) -> std::io::Result<Self> {
        let f = std::fs::File::open(path)?;
        let mut lines = std::io::BufReader::new(f).lines();
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
        let header = lines.next().ok_or_else(|| bad("missing header"))??;
        if header.trim() != "AdjacencyGraph" {
            return Err(bad("not an AdjacencyGraph file"));
        }
        let mut next_num = |what: &str| -> std::io::Result<u64> {
            let line = lines
                .next()
                .ok_or_else(|| bad(&format!("missing {what}")))??;
            line.trim()
                .parse::<u64>()
                .map_err(|_| bad(&format!("bad {what}: {line}")))
        };
        let n = next_num("vertex count")? as usize;
        let m = next_num("edge count")? as usize;
        let mut offsets = Vec::with_capacity(n);
        for _ in 0..n {
            offsets.push(next_num("offset")?);
        }
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            edges.push(next_num("edge")? as u32);
        }
        Ok(AdjacencyGraph { offsets, edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AdjacencyGraph {
        AdjacencyGraph::from_edge_list(4, &[(0, 1), (0, 2), (1, 0), (3, 2)])
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        assert_eq!(g.offsets, vec![0, 2, 3, 3]);
        assert_eq!(g.to_edge_list(), vec![(0, 1), (0, 2), (1, 0), (3, 2)]);
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("aspen_test_adjgraph.txt");
        g.write_to(&path).expect("write");
        let back = AdjacencyGraph::read_from(&path).expect("read");
        assert_eq!(g, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join("aspen_test_bad.txt");
        std::fs::write(&path, "NotAGraph\n1\n").expect("write");
        assert!(AdjacencyGraph::read_from(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_graph() {
        let g = AdjacencyGraph::from_edge_list(0, &[]);
        assert!(g.to_edge_list().is_empty());
    }
}
