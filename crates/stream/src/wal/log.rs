//! The segmented WAL appender used by engine writer threads.
//!
//! Segments are named `wal-{first_seq:020}.seg` so a lexical sort is a
//! seq sort. [`WalWriter::open`] scans what is on disk, truncates any
//! torn tail (normal after a crash), and positions itself after the
//! last valid batch frame; appends then continue the sequence.

use super::frame::{encode_record_frame, scan_segment, WalRecord};
use super::io::{join, WalFile, WalIo};
use super::{FsyncPolicy, WalError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// File name of the segment whose first batch record is `seq`.
pub fn segment_name(seq: u64) -> String {
    format!("wal-{seq:020}.seg")
}

/// Parses a segment file name back to its starting seq.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Sorted starting-seq list of the segments under `dir`.
pub fn list_segments(io: &dyn WalIo, dir: &str) -> Result<Vec<u64>, WalError> {
    let mut seqs: Vec<u64> = io
        .list(dir)
        .map_err(WalError::io("list wal dir"))?
        .iter()
        .filter_map(|n| parse_segment_name(n))
        .collect();
    seqs.sort_unstable();
    Ok(seqs)
}

/// What one append did, for the caller's metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AppendOutcome {
    /// Frame bytes written.
    pub bytes: u64,
    /// Whether this append triggered an fsync under the policy.
    pub synced: bool,
    /// How long that fsync took ([`Duration::ZERO`] when not synced).
    pub sync_time: Duration,
    /// Whether a new segment was started.
    pub rotated: bool,
}

/// Append half of the WAL: one per engine writer thread, never shared.
pub struct WalWriter {
    io: Arc<dyn WalIo>,
    dir: String,
    policy: FsyncPolicy,
    segment_bytes: u64,
    file: Box<dyn WalFile>,
    current_segment: u64,
    /// Seq the next batch record must carry.
    next_seq: u64,
    /// Highest seq known durable (covered by a completed sync).
    synced_through: u64,
    appends_since_sync: u64,
    last_sync: Instant,
}

impl WalWriter {
    /// Opens (or creates) the log in `dir`, truncating any torn tail
    /// and seeking to the end of the batch sequence. `base_seq` is the
    /// seq already captured by state outside the log (a recovered
    /// checkpoint); the next batch gets `max(scanned, base_seq) + 1`.
    pub fn open(
        io: Arc<dyn WalIo>,
        dir: &str,
        policy: FsyncPolicy,
        segment_bytes: u64,
        base_seq: u64,
    ) -> Result<WalWriter, WalError> {
        io.create_dir_all(dir)
            .map_err(WalError::io("create wal dir"))?;
        let segments = list_segments(io.as_ref(), dir)?;
        let mut last_batch_seq = base_seq;
        let mut kept: Vec<u64> = Vec::new();
        let mut torn_at: Option<usize> = None;
        for (i, &start) in segments.iter().enumerate() {
            let path = join(dir, &segment_name(start));
            let bytes = io.read(&path).map_err(WalError::io("read segment"))?;
            let scan = scan_segment(&bytes);
            for (rec, _) in &scan.records {
                if let WalRecord::Batch { seq, .. } = rec {
                    last_batch_seq = last_batch_seq.max(*seq);
                }
            }
            kept.push(start);
            if scan.is_torn() {
                // Nothing after a torn frame is trustworthy: truncate
                // this segment and drop any later ones.
                io.truncate(&path, scan.valid_len as u64)
                    .map_err(WalError::io("truncate torn tail"))?;
                torn_at = Some(i);
                break;
            }
        }
        if let Some(i) = torn_at {
            for &start in &segments[i + 1..] {
                io.remove(&join(dir, &segment_name(start)))
                    .map_err(WalError::io("remove orphan segment"))?;
            }
        }
        let next_seq = last_batch_seq + 1;
        let current_segment = kept.last().copied().unwrap_or(next_seq);
        let file = io
            .open_append(&join(dir, &segment_name(current_segment)))
            .map_err(WalError::io("open segment"))?;
        Ok(WalWriter {
            io,
            dir: dir.to_string(),
            policy,
            segment_bytes: segment_bytes.max(1),
            file,
            current_segment,
            next_seq,
            synced_through: next_seq - 1,
            appends_since_sync: 0,
            last_sync: Instant::now(),
        })
    }

    /// Seq the next [`append_batch`](Self::append_batch) must use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest batch seq guaranteed on disk.
    pub fn durable_seq(&self) -> u64 {
        self.synced_through
    }

    /// Appends one batch record; `seq` must continue the sequence.
    pub fn append_batch(
        &mut self,
        seq: u64,
        inserts: &[(u32, u32)],
        deletes: &[(u32, u32)],
    ) -> Result<AppendOutcome, WalError> {
        assert_eq!(seq, self.next_seq, "batch seq must be contiguous");
        let rec = WalRecord::Batch {
            seq,
            inserts: inserts.to_vec(),
            deletes: deletes.to_vec(),
        };
        // Advance before appending so a policy-triggered sync inside
        // `append_record` accounts this very record as durable.
        self.next_seq = seq + 1;
        self.append_record(&rec, seq)
    }

    /// Appends an epoch-complete marker (sharded engines).
    pub fn append_epoch(&mut self, epoch: u64) -> Result<AppendOutcome, WalError> {
        self.append_record(&WalRecord::Epoch(epoch), self.next_seq)
    }

    fn append_record(&mut self, rec: &WalRecord, name_seq: u64) -> Result<AppendOutcome, WalError> {
        let frame = encode_record_frame(rec);
        let mut rotated = false;
        if self.file.len() >= self.segment_bytes {
            let next = name_seq.max(self.current_segment + 1);
            // Seal the old segment before any frame lands in the new
            // one, so recovery never sees a durable successor segment
            // ahead of a volatile predecessor tail.
            self.sync()?;
            self.file = self
                .io
                .open_append(&join(&self.dir, &segment_name(next)))
                .map_err(WalError::io("rotate segment"))?;
            self.current_segment = next;
            rotated = true;
        }
        self.file
            .append(&frame)
            .map_err(WalError::io("append frame"))?;
        self.appends_since_sync += 1;
        let sync_time = self.maybe_sync()?;
        Ok(AppendOutcome {
            bytes: frame.len() as u64,
            synced: sync_time.is_some(),
            sync_time: sync_time.unwrap_or(Duration::ZERO),
            rotated,
        })
    }

    fn maybe_sync(&mut self) -> Result<Option<Duration>, WalError> {
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            FsyncPolicy::Interval(d) => self.last_sync.elapsed() >= d,
        };
        if due {
            Ok(Some(self.sync()?))
        } else {
            Ok(None)
        }
    }

    /// Forces everything appended so far to disk (used before acks
    /// that promise durability, and on engine shutdown). Returns how
    /// long the fsync took, for the caller's latency histogram.
    pub fn sync(&mut self) -> Result<Duration, WalError> {
        let t0 = Instant::now();
        self.file.sync().map_err(WalError::io("fsync wal"))?;
        self.synced_through = self.next_seq - 1;
        self.appends_since_sync = 0;
        self.last_sync = Instant::now();
        Ok(t0.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::super::io::MemIo;
    use super::*;

    fn open_mem(mem: &Arc<MemIo>, seg_bytes: u64) -> WalWriter {
        WalWriter::open(
            Arc::clone(mem) as Arc<dyn WalIo>,
            "wal",
            FsyncPolicy::Always,
            seg_bytes,
            0,
        )
        .unwrap()
    }

    fn append_n(w: &mut WalWriter, n: u64) {
        for _ in 0..n {
            let seq = w.next_seq();
            w.append_batch(seq, &[(seq as u32, seq as u32 + 1)], &[])
                .unwrap();
        }
    }

    #[test]
    fn appends_survive_reopen() {
        let mem = MemIo::new();
        {
            let mut w = open_mem(&mem, 1 << 20);
            append_n(&mut w, 5);
            assert_eq!(w.durable_seq(), 5);
        }
        let w = open_mem(&mem, 1 << 20);
        assert_eq!(w.next_seq(), 6);
    }

    #[test]
    fn rotation_starts_new_segments() {
        let mem = MemIo::new();
        let mut w = open_mem(&mem, 64); // tiny segments force rotation
        append_n(&mut w, 20);
        let segs = list_segments(mem.as_ref(), "wal").unwrap();
        assert!(segs.len() > 1, "expected rotation, got {segs:?}");
        // Reopen continues the sequence across segments.
        drop(w);
        let w = open_mem(&mem, 64);
        assert_eq!(w.next_seq(), 21);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let mem = MemIo::new();
        {
            let mut w = open_mem(&mem, 1 << 20);
            append_n(&mut w, 3);
            // A 4th append that never syncs: lost at crash.
            let seq = w.next_seq();
            let io: Arc<dyn WalIo> = Arc::clone(&mem) as _;
            let mut raw = io.open_append(&join("wal", &segment_name(1))).unwrap();
            drop(w);
            raw.append(&[0xde, 0xad, 0xbe, 0xef]).unwrap(); // garbage tail
            let _ = seq;
        }
        mem.crash();
        let w = open_mem(&mem, 1 << 20);
        assert_eq!(w.next_seq(), 4, "garbage tail must not eat valid frames");
    }

    #[test]
    fn every_n_policy_syncs_in_groups() {
        let mem = MemIo::new();
        let mut w = WalWriter::open(
            Arc::clone(&mem) as Arc<dyn WalIo>,
            "wal",
            FsyncPolicy::EveryN(3),
            1 << 20,
            0,
        )
        .unwrap();
        append_n(&mut w, 2);
        assert_eq!(w.durable_seq(), 0);
        append_n(&mut w, 1); // third append crosses the threshold
        assert_eq!(w.durable_seq(), 3);
    }

    #[test]
    fn epoch_markers_do_not_advance_seq() {
        let mem = MemIo::new();
        let mut w = open_mem(&mem, 1 << 20);
        append_n(&mut w, 2);
        w.append_epoch(1).unwrap();
        assert_eq!(w.next_seq(), 3);
        drop(w);
        let w = open_mem(&mem, 1 << 20);
        assert_eq!(w.next_seq(), 3);
    }
}
