//! WAL record framing: length-prefixed, CRC32-guarded frames.
//!
//! On-disk layout of one frame:
//!
//! ```text
//! [u32 payload_len LE][u32 crc32(payload) LE][payload]
//! ```
//!
//! The payload starts with a kind byte. Kind [`KIND_BATCH`] carries one
//! coalesced net batch (`seq`, insert pairs, delete pairs — exactly
//! what one version install applies); kind [`KIND_EPOCH`] is a marker
//! a shard writer appends after flushing every batch of an epoch, so
//! sharded recovery can cut the per-shard logs at a common epoch.
//!
//! A scanner reading a segment stops at the first frame that is
//! truncated, fails its CRC, or does not decode — everything before
//! that point is trusted, everything from it on is the torn tail.

use aspen::{put_u32, put_u64, ByteReader};

/// Payload kind: a coalesced batch record.
pub const KIND_BATCH: u8 = 1;
/// Payload kind: an epoch-complete marker (sharded engines).
pub const KIND_EPOCH: u8 = 2;

/// Bytes of the `[len][crc]` frame header.
pub const FRAME_HEADER: usize = 8;

/// Frames larger than this are rejected as corrupt rather than
/// allocated for (a flipped bit in the length field must not ask for
/// gigabytes).
const MAX_PAYLOAD: usize = 1 << 30;

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A coalesced batch: the net edge sets one version install
    /// applies, tagged with the version sequence number it produced.
    Batch {
        seq: u64,
        inserts: Vec<(u32, u32)>,
        deletes: Vec<(u32, u32)>,
    },
    /// "Every batch of epoch `e` routed to this shard is in the log
    /// before this point."
    Epoch(u64),
}

impl WalRecord {
    /// Encodes the payload (kind byte + body, no frame header).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Batch {
                seq,
                inserts,
                deletes,
            } => {
                out.push(KIND_BATCH);
                put_u64(*seq, out);
                put_pairs(inserts, out);
                put_pairs(deletes, out);
            }
            WalRecord::Epoch(e) => {
                out.push(KIND_EPOCH);
                put_u64(*e, out);
            }
        }
    }

    /// Decodes a payload; `None` on any malformation (the caller
    /// treats that frame as the start of the torn tail).
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut r = ByteReader::new(payload);
        let rec = match r.u8()? {
            KIND_BATCH => {
                let seq = r.u64v()?;
                let inserts = read_pairs(&mut r)?;
                let deletes = read_pairs(&mut r)?;
                WalRecord::Batch {
                    seq,
                    inserts,
                    deletes,
                }
            }
            KIND_EPOCH => WalRecord::Epoch(r.u64v()?),
            _ => return None,
        };
        if !r.is_empty() {
            return None; // trailing garbage inside a checksummed frame
        }
        Some(rec)
    }
}

fn put_pairs(pairs: &[(u32, u32)], out: &mut Vec<u8>) {
    put_u32(pairs.len() as u32, out);
    for &(u, v) in pairs {
        put_u32(u, out);
        put_u32(v, out);
    }
}

fn read_pairs(r: &mut ByteReader<'_>) -> Option<Vec<(u32, u32)>> {
    let n = r.u32v()? as usize;
    if n > r.remaining() {
        return None; // each pair costs ≥ 2 bytes; bound before alloc
    }
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push((r.u32v()?, r.u32v()?));
    }
    Some(pairs)
}

/// Wraps a payload in a `[len][crc]` frame.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes `rec` as one complete frame.
pub fn encode_record_frame(rec: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    rec.encode(&mut payload);
    let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER);
    encode_frame(&payload, &mut frame);
    frame
}

/// The result of scanning one segment's bytes.
pub struct ScannedSegment {
    /// Valid records in order, each with the byte offset just past its
    /// frame (a safe truncation point that keeps the record).
    pub records: Vec<(WalRecord, usize)>,
    /// Offset just past the last valid frame; bytes beyond it are the
    /// torn tail (equal to `total_len` when the segment is clean).
    pub valid_len: usize,
    /// Length of the scanned bytes.
    pub total_len: usize,
}

impl ScannedSegment {
    /// Whether the segment ends in garbage that must be truncated.
    pub fn is_torn(&self) -> bool {
        self.valid_len < self.total_len
    }
}

/// Decodes frames from `bytes` until the first truncated, corrupt, or
/// undecodable frame. Never panics on arbitrary input.
pub fn scan_segment(bytes: &[u8]) -> ScannedSegment {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_PAYLOAD || len > bytes.len() - pos - FRAME_HEADER {
            break; // truncated or absurd length
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        let Some(rec) = WalRecord::decode(payload) else {
            break;
        };
        pos += FRAME_HEADER + len;
        records.push((rec, pos));
    }
    ScannedSegment {
        records,
        valid_len: pos,
        total_len: bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Batch {
                seq: 1,
                inserts: vec![(0, 1), (5, 9)],
                deletes: vec![],
            },
            WalRecord::Epoch(1),
            WalRecord::Batch {
                seq: 2,
                inserts: vec![],
                deletes: vec![(5, 9)],
            },
            WalRecord::Epoch(2),
        ]
    }

    fn encode_all(records: &[WalRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in records {
            buf.extend_from_slice(&encode_record_frame(r));
        }
        buf
    }

    #[test]
    fn frames_roundtrip() {
        let records = sample_records();
        let buf = encode_all(&records);
        let scan = scan_segment(&buf);
        assert!(!scan.is_torn());
        let got: Vec<WalRecord> = scan.records.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, records);
    }

    #[test]
    fn truncation_yields_a_prefix() {
        let records = sample_records();
        let buf = encode_all(&records);
        for cut in 0..buf.len() {
            let scan = scan_segment(&buf[..cut]);
            let got: Vec<WalRecord> = scan.records.into_iter().map(|(r, _)| r).collect();
            assert!(
                records.starts_with(&got),
                "cut at {cut} produced a non-prefix"
            );
        }
    }

    #[test]
    fn bit_flips_never_yield_phantom_records() {
        let records = sample_records();
        let buf = encode_all(&records);
        for i in 0..buf.len() {
            let mut m = buf.clone();
            m[i] ^= 0x10;
            let scan = scan_segment(&m);
            // Every decoded record must literally be one of the
            // originals at its position — a flip may shorten the valid
            // prefix, never invent or alter a record that passes CRC.
            for (k, (rec, _)) in scan.records.iter().enumerate() {
                assert_eq!(rec, &records[k], "flip at byte {i} altered record {k}");
            }
            assert!(scan.records.len() <= records.len());
        }
    }

    #[test]
    fn scan_offsets_are_safe_truncation_points() {
        let records = sample_records();
        let buf = encode_all(&records);
        let scan = scan_segment(&buf);
        for (k, &(_, end)) in scan.records.iter().enumerate() {
            let rescan = scan_segment(&buf[..end]);
            assert_eq!(rescan.records.len(), k + 1);
            assert!(!rescan.is_torn());
        }
    }
}
