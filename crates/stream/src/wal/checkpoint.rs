//! Checkpoint files and the sharded-checkpoint manifest.
//!
//! A checkpoint bounds recovery work: replay starts from the newest
//! loadable checkpoint instead of the beginning of history, and the
//! segments it covers can be pruned. The payload is the core crate's
//! structural-sharing snapshot (`aspen::SnapshotWriter`), wrapped in a
//! checksummed header and installed with an atomic write — a
//! checkpoint therefore either exists completely or not at all, and a
//! corrupt one is detected and skipped, never trusted.
//!
//! Sharded engines write one checkpoint per shard plus a root-level
//! **manifest** naming the `(epoch, per-shard seq)` cut they belong
//! to. Shard checkpoints are only trusted if a manifest lists them:
//! a crash between two shard checkpoint writes leaves no manifest for
//! the new cut, so recovery falls back to the previous consistent one.

use super::frame::crc32;
use super::io::{join, WalIo};
use super::log::{list_segments, segment_name};
use super::WalError;
use aspen::{put_u32, put_u64, ByteReader, EdgeSet, Graph, SnapshotWriter};

const CKPT_MAGIC: &[u8; 6] = b"ACKPT1";
const MANIFEST_MAGIC: &[u8; 6] = b"AMANI1";

/// File name of the checkpoint taken at batch `seq`.
pub fn checkpoint_name(seq: u64) -> String {
    format!("ckpt-{seq:020}.ck")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".ck")?
        .parse()
        .ok()
}

/// File name of the manifest for epoch `epoch`.
pub fn manifest_name(epoch: u64) -> String {
    format!("manifest-{epoch:020}.mf")
}

fn parse_manifest_name(name: &str) -> Option<u64> {
    name.strip_prefix("manifest-")?
        .strip_suffix(".mf")?
        .parse()
        .ok()
}

/// A checkpoint loaded back from disk.
pub struct LoadedCheckpoint<E: EdgeSet> {
    /// Last batch seq folded into the snapshot.
    pub seq: u64,
    /// Epoch of the cut (0 for unsharded engines).
    pub epoch: u64,
    pub graph: Graph<E>,
}

/// Serializes `graph` as the checkpoint for batch `seq` and installs
/// it atomically. Returns the file size in bytes.
pub fn write_checkpoint<E: EdgeSet>(
    io: &dyn WalIo,
    dir: &str,
    seq: u64,
    epoch: u64,
    graph: &Graph<E>,
) -> Result<u64, WalError> {
    let mut w = SnapshotWriter::new(graph.config());
    w.add_graph(graph);
    let snap = w.finish();
    let mut body = Vec::with_capacity(snap.len() + 32);
    put_u64(seq, &mut body);
    put_u64(epoch, &mut body);
    body.extend_from_slice(&snap);
    let mut file = Vec::with_capacity(body.len() + 10);
    file.extend_from_slice(CKPT_MAGIC);
    file.extend_from_slice(&crc32(&body).to_le_bytes());
    file.extend_from_slice(&body);
    let bytes = file.len() as u64;
    io.atomic_write(&join(dir, &checkpoint_name(seq)), &file)
        .map_err(WalError::io("write checkpoint"))?;
    Ok(bytes)
}

/// Decodes one checkpoint file, rejecting any corruption.
pub fn decode_checkpoint<E: EdgeSet>(bytes: &[u8]) -> Result<LoadedCheckpoint<E>, WalError> {
    let mut r = ByteReader::new(bytes);
    let magic = r
        .bytes(CKPT_MAGIC.len())
        .ok_or_else(|| WalError::corrupt("checkpoint too short"))?;
    if magic != CKPT_MAGIC {
        return Err(WalError::corrupt("bad checkpoint magic"));
    }
    let crc_bytes = r
        .bytes(4)
        .ok_or_else(|| WalError::corrupt("checkpoint too short"))?;
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let body = r.bytes(r.remaining()).expect("remaining always readable");
    if crc32(body) != crc {
        return Err(WalError::corrupt("checkpoint crc mismatch"));
    }
    let mut br = ByteReader::new(body);
    let seq = br
        .u64v()
        .ok_or_else(|| WalError::corrupt("checkpoint missing seq"))?;
    let epoch = br
        .u64v()
        .ok_or_else(|| WalError::corrupt("checkpoint missing epoch"))?;
    let snap = br.bytes(br.remaining()).expect("remaining always readable");
    let mut graphs = aspen::read_snapshot::<E>(snap).map_err(WalError::Snapshot)?;
    let graph = graphs
        .pop()
        .ok_or_else(|| WalError::corrupt("checkpoint holds no graph"))?;
    Ok(LoadedCheckpoint { seq, epoch, graph })
}

/// Loads the checkpoint taken at exactly `seq` (manifest-directed).
pub fn load_checkpoint_at<E: EdgeSet>(
    io: &dyn WalIo,
    dir: &str,
    seq: u64,
) -> Result<LoadedCheckpoint<E>, WalError> {
    let bytes = io
        .read(&join(dir, &checkpoint_name(seq)))
        .map_err(WalError::io("read checkpoint"))?;
    let ck = decode_checkpoint::<E>(&bytes)?;
    if ck.seq != seq {
        return Err(WalError::corrupt("checkpoint seq does not match its name"));
    }
    Ok(ck)
}

/// Newest checkpoint under `dir` that loads cleanly, skipping (not
/// failing on) corrupt or unreadable ones.
pub fn load_latest_checkpoint<E: EdgeSet>(
    io: &dyn WalIo,
    dir: &str,
) -> Option<LoadedCheckpoint<E>> {
    let mut seqs: Vec<u64> = io
        .list(dir)
        .ok()?
        .iter()
        .filter_map(|n| parse_checkpoint_name(n))
        .collect();
    seqs.sort_unstable();
    for seq in seqs.into_iter().rev() {
        if let Ok(ck) = load_checkpoint_at::<E>(io, dir, seq) {
            return Some(ck);
        }
    }
    None
}

/// Removes WAL segments every frame of which is covered by a
/// checkpoint at `upto_seq`, and checkpoints older than the newest
/// `keep_checkpoints`. A segment is prunable iff the *next* segment
/// starts at or before `upto_seq + 1` (so no frame above the
/// checkpoint lives in it); the last segment is never pruned.
pub fn prune(
    io: &dyn WalIo,
    dir: &str,
    upto_seq: u64,
    keep_checkpoints: usize,
) -> Result<u64, WalError> {
    let segments = list_segments(io, dir)?;
    let mut removed = 0u64;
    for w in segments.windows(2) {
        let (start, next_start) = (w[0], w[1]);
        if next_start <= upto_seq + 1 {
            io.remove(&join(dir, &segment_name(start)))
                .map_err(WalError::io("prune segment"))?;
            removed += 1;
        }
    }
    let mut ckpts: Vec<u64> = io
        .list(dir)
        .map_err(WalError::io("list checkpoints"))?
        .iter()
        .filter_map(|n| parse_checkpoint_name(n))
        .collect();
    ckpts.sort_unstable();
    let n = ckpts.len().saturating_sub(keep_checkpoints.max(1));
    for &seq in &ckpts[..n] {
        io.remove(&join(dir, &checkpoint_name(seq)))
            .map_err(WalError::io("prune checkpoint"))?;
    }
    Ok(removed)
}

/// The consistent cut a set of shard checkpoints belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    pub epoch: u64,
    /// Per-shard checkpoint seq (the epoch's version vector).
    pub seqs: Vec<u64>,
}

/// Durably records that every shard checkpoint of this cut exists.
/// Must be called only after all of them are on disk.
pub fn write_manifest(io: &dyn WalIo, root: &str, m: &Manifest) -> Result<(), WalError> {
    let mut body = Vec::with_capacity(16 + m.seqs.len() * 8);
    put_u64(m.epoch, &mut body);
    put_u32(m.seqs.len() as u32, &mut body);
    for &s in &m.seqs {
        put_u64(s, &mut body);
    }
    let mut file = Vec::with_capacity(body.len() + 10);
    file.extend_from_slice(MANIFEST_MAGIC);
    file.extend_from_slice(&crc32(&body).to_le_bytes());
    file.extend_from_slice(&body);
    io.atomic_write(&join(root, &manifest_name(m.epoch)), &file)
        .map_err(WalError::io("write manifest"))
}

fn decode_manifest(bytes: &[u8]) -> Option<Manifest> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(MANIFEST_MAGIC.len())? != MANIFEST_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(r.bytes(4)?.try_into().unwrap());
    let body = r.bytes(r.remaining())?;
    if crc32(body) != crc {
        return None;
    }
    let mut br = ByteReader::new(body);
    let epoch = br.u64v()?;
    let n = br.u32v()? as usize;
    if n > br.remaining() {
        return None;
    }
    let mut seqs = Vec::with_capacity(n);
    for _ in 0..n {
        seqs.push(br.u64v()?);
    }
    if !br.is_empty() {
        return None;
    }
    Some(Manifest { epoch, seqs })
}

/// Newest manifest under `root` that decodes cleanly and names
/// `num_shards` shards.
pub fn load_latest_manifest(io: &dyn WalIo, root: &str, num_shards: usize) -> Option<Manifest> {
    let mut epochs: Vec<u64> = io
        .list(root)
        .ok()?
        .iter()
        .filter_map(|n| parse_manifest_name(n))
        .collect();
    epochs.sort_unstable();
    for epoch in epochs.into_iter().rev() {
        let Ok(bytes) = io.read(&join(root, &manifest_name(epoch))) else {
            continue;
        };
        if let Some(m) = decode_manifest(&bytes) {
            if m.epoch == epoch && m.seqs.len() == num_shards {
                return Some(m);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::io::MemIo;
    use super::*;
    use aspen::{symmetrize, ChunkParams, CompressedEdges};

    type G = Graph<CompressedEdges>;

    fn graph() -> G {
        G::from_edges(
            &symmetrize(&[(0, 1), (1, 2), (4, 7), (2, 7)]),
            ChunkParams::default(),
        )
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mem = MemIo::new();
        let g = graph();
        write_checkpoint(mem.as_ref(), "d", 42, 7, &g).unwrap();
        let ck = load_latest_checkpoint::<CompressedEdges>(mem.as_ref(), "d").unwrap();
        assert_eq!(ck.seq, 42);
        assert_eq!(ck.epoch, 7);
        assert_eq!(ck.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn corrupt_checkpoint_is_skipped_not_trusted() {
        let mem = MemIo::new();
        write_checkpoint(mem.as_ref(), "d", 10, 0, &graph()).unwrap();
        // A newer checkpoint arrives corrupted (bitrot).
        write_checkpoint(mem.as_ref(), "d", 20, 0, &graph()).unwrap();
        let path = join("d", &checkpoint_name(20));
        let mut bytes = mem.read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        mem.atomic_write(&path, &bytes).unwrap();

        let ck = load_latest_checkpoint::<CompressedEdges>(mem.as_ref(), "d").unwrap();
        assert_eq!(ck.seq, 10, "must fall back to the older clean checkpoint");
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let mem = MemIo::new();
        let m = Manifest {
            epoch: 9,
            seqs: vec![3, 5, 2, 4],
        };
        write_manifest(mem.as_ref(), "root", &m).unwrap();
        assert_eq!(load_latest_manifest(mem.as_ref(), "root", 4), Some(m));
        // Wrong shard count: not trusted.
        assert_eq!(load_latest_manifest(mem.as_ref(), "root", 3), None);
    }
}
