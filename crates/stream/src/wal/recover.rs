//! Startup recovery: checkpoint load + WAL replay + tail truncation.
//!
//! Single-engine recovery is the textbook protocol — newest loadable
//! checkpoint, then contiguous batch frames above its seq, stopping at
//! (and truncating) the first torn frame.
//!
//! Sharded recovery must additionally land every shard on the **same
//! epoch cut**. Each shard writer appends an epoch marker after
//! flushing the epoch's batches, so a shard's durable log proves
//! completeness through its last marker; a manifest proves
//! completeness through its checkpoint epoch even when the marker
//! itself was lost. Recovery takes the *minimum* complete epoch `E`
//! across shards, replays each shard through its marker for `E`, and
//! truncates everything after it — partially durable epochs above `E`
//! are discarded on every shard, which is exactly what makes the
//! recovered state a consistent cut (mirror arcs of one undirected
//! edge always travel in the same epoch).

use super::checkpoint::{load_checkpoint_at, load_latest_checkpoint, load_latest_manifest};
use super::frame::{scan_segment, WalRecord};
use super::io::{join, WalIo};
use super::log::{list_segments, segment_name};
use super::{DurabilityConfig, WalError};
use aspen::{symmetrize, EdgeSet, Graph};

/// What recovery did, for logs and tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Seq of the checkpoint replay started from (0 = none).
    pub checkpoint_seq: u64,
    /// Batch frames re-applied on top of the checkpoint.
    pub frames_replayed: u64,
    /// Garbage bytes truncated off segment tails.
    pub torn_tail_bytes: u64,
    /// Segments scanned during replay.
    pub segments_scanned: u64,
}

/// A recovered single-engine state.
pub struct Recovered<E: EdgeSet> {
    pub graph: Graph<E>,
    /// Seq of the last applied batch — pass to
    /// `StreamEngineBuilder::first_seq` so acks continue the sequence.
    pub seq: u64,
    pub report: RecoveryReport,
}

/// A recovered sharded state: one graph per shard on a consistent
/// epoch cut.
pub struct RecoveredSharded<E: EdgeSet> {
    pub shards: Vec<Graph<E>>,
    /// Per-shard seq of the last applied batch (the cut's version
    /// vector).
    pub seqs: Vec<u64>,
    /// The common complete epoch recovery landed on (0 = none).
    pub epoch: u64,
    /// Pass to `ShardedEngineBuilder::first_epoch`.
    pub next_epoch: u64,
    pub reports: Vec<RecoveryReport>,
}

fn apply_batch<E: EdgeSet>(
    g: Graph<E>,
    inserts: &[(u32, u32)],
    deletes: &[(u32, u32)],
    directed: bool,
) -> Graph<E> {
    // Mirror the writer's flush: inserts first, then deletes; the two
    // sets are disjoint after coalescing so the order is immaterial,
    // but keeping it identical makes replay trivially equivalent.
    let mut next = g;
    if !inserts.is_empty() {
        next = if directed {
            next.insert_edges(inserts)
        } else {
            next.insert_edges(&symmetrize(inserts))
        };
    }
    if !deletes.is_empty() {
        next = if directed {
            next.delete_edges(deletes)
        } else {
            next.delete_edges(&symmetrize(deletes))
        };
    }
    next
}

/// One shard/engine log fully scanned into valid records, ready for a
/// replay pass. `records` holds `(segment_start, record, end_offset)`.
struct ScannedLog {
    records: Vec<(u64, WalRecord, usize)>,
    torn_tail_bytes: u64,
    segments_scanned: u64,
    /// Segment that contained a torn tail (already safe to truncate at
    /// the recorded offset), plus later segments to drop entirely.
    torn: Option<(u64, usize, Vec<u64>)>,
}

fn scan_log(io: &dyn WalIo, dir: &str) -> Result<ScannedLog, WalError> {
    let segments = list_segments(io, dir)?;
    let mut out = ScannedLog {
        records: Vec::new(),
        torn_tail_bytes: 0,
        segments_scanned: 0,
        torn: None,
    };
    for (i, &start) in segments.iter().enumerate() {
        let path = join(dir, &segment_name(start));
        let bytes = io.read(&path).map_err(WalError::io("read segment"))?;
        let scan = scan_segment(&bytes);
        out.segments_scanned += 1;
        let torn = scan.is_torn();
        for (rec, end) in scan.records {
            out.records.push((start, rec, end));
        }
        if torn {
            out.torn_tail_bytes += (scan.total_len - scan.valid_len) as u64;
            out.torn = Some((start, scan.valid_len, segments[i + 1..].to_vec()));
            break; // nothing after a torn frame is trustworthy
        }
    }
    Ok(out)
}

fn truncate_torn(io: &dyn WalIo, dir: &str, log: &ScannedLog) -> Result<(), WalError> {
    if let Some((seg, valid_len, ref later)) = log.torn {
        io.truncate(&join(dir, &segment_name(seg)), valid_len as u64)
            .map_err(WalError::io("truncate torn tail"))?;
        for &s in later {
            io.remove(&join(dir, &segment_name(s)))
                .map_err(WalError::io("remove orphan segment"))?;
        }
    }
    Ok(())
}

/// Recovers a single engine's graph from `cfg.dir`: newest loadable
/// checkpoint, plus every contiguous batch frame above it. Torn tails
/// are truncated so a subsequent `WalWriter::open` starts clean.
/// `directed` must match the engine's arc mode (shard engines run
/// directed; standalone engines symmetrize).
pub fn recover<E: EdgeSet>(
    cfg: &DurabilityConfig,
    edge_cfg: E::Config,
    directed: bool,
) -> Result<Recovered<E>, WalError> {
    let io = cfg.io.as_ref();
    io.create_dir_all(&cfg.dir)
        .map_err(WalError::io("create wal dir"))?;
    let (mut graph, mut seq, checkpoint_seq) = match load_latest_checkpoint::<E>(io, &cfg.dir) {
        Some(ck) => (ck.graph, ck.seq, ck.seq),
        None => (Graph::new(edge_cfg), 0, 0),
    };
    let log = scan_log(io, &cfg.dir)?;
    let mut frames_replayed = 0u64;
    for (_, rec, _) in &log.records {
        let WalRecord::Batch {
            seq: s,
            inserts,
            deletes,
        } = rec
        else {
            continue; // epoch markers are sharded-mode metadata
        };
        if *s <= seq {
            continue; // already folded into the checkpoint
        }
        if *s != seq + 1 {
            break; // gap: everything beyond is untrustworthy
        }
        graph = apply_batch(graph, inserts, deletes, directed);
        seq = *s;
        frames_replayed += 1;
    }
    truncate_torn(io, &cfg.dir, &log)?;
    Ok(Recovered {
        graph,
        seq,
        report: RecoveryReport {
            checkpoint_seq,
            frames_replayed,
            torn_tail_bytes: log.torn_tail_bytes,
            segments_scanned: log.segments_scanned,
        },
    })
}

/// Recovers a `num_shards`-way sharded engine onto a consistent epoch
/// cut (see the module docs for the protocol). Shard `k`'s log lives
/// in `cfg.shard(k).dir`; the manifest lives in `cfg.dir`.
///
/// Replaying truncates each shard's log right after its marker for the
/// cut epoch, discarding partially durable later epochs — after this
/// returns, the logs themselves are on the cut.
pub fn recover_sharded<E: EdgeSet>(
    cfg: &DurabilityConfig,
    num_shards: usize,
    edge_cfg: E::Config,
) -> Result<RecoveredSharded<E>, WalError> {
    assert!(num_shards > 0, "need at least one shard");
    let io = cfg.io.as_ref();
    io.create_dir_all(&cfg.dir)
        .map_err(WalError::io("create wal root"))?;
    let manifest = load_latest_manifest(io, &cfg.dir, num_shards);

    // Phase 1: per shard, load the manifest-listed checkpoint and scan
    // the durable log; a shard's provably complete epoch is the larger
    // of its checkpoint's epoch and its last durable marker.
    let mut shards = Vec::with_capacity(num_shards);
    for k in 0..num_shards {
        let sdir = cfg.shard(k).dir;
        io.create_dir_all(&sdir)
            .map_err(WalError::io("create shard wal dir"))?;
        let ck = manifest
            .as_ref()
            .and_then(|m| load_checkpoint_at::<E>(io, &sdir, m.seqs[k]).ok());
        let (graph, ck_seq, ck_epoch) = match ck {
            Some(ck) => (ck.graph, ck.seq, ck.epoch),
            None => (Graph::new(edge_cfg), 0, 0),
        };
        let log = scan_log(io, &sdir)?;
        // A marker only proves its epoch complete if every batch frame
        // below it is replayable. A lost write leaves a seq gap with
        // valid frames (and markers) beyond it; trusting those markers
        // would pin the cut on an epoch this shard cannot actually
        // reconstruct. Walk in order and stop at the first gap, exactly
        // where the phase-2 replay will stop.
        let mut reach_seq = ck_seq;
        let mut last_marker = 0u64;
        for (_, rec, _) in &log.records {
            match rec {
                WalRecord::Epoch(e) => last_marker = last_marker.max(*e),
                WalRecord::Batch { seq, .. } => {
                    if *seq <= reach_seq {
                        continue;
                    }
                    if *seq != reach_seq + 1 {
                        break;
                    }
                    reach_seq = *seq;
                }
            }
        }
        let complete_epoch = ck_epoch.max(last_marker);
        shards.push((
            sdir,
            graph,
            ck_seq,
            ck_epoch,
            last_marker,
            complete_epoch,
            log,
        ));
    }
    let cut_epoch = shards.iter().map(|s| s.5).min().expect("num_shards > 0");

    // Phase 2: replay each shard through its marker for `cut_epoch`
    // and truncate the log right after it.
    let mut graphs = Vec::with_capacity(num_shards);
    let mut seqs = Vec::with_capacity(num_shards);
    let mut reports = Vec::with_capacity(num_shards);
    for (sdir, mut graph, ck_seq, _ck_epoch, last_marker, _ce, log) in shards {
        let mut seq = ck_seq;
        let mut frames_replayed = 0u64;
        // keep = (segment, offset) of the last byte worth keeping.
        let mut keep: Option<(u64, usize)> = None;
        // When the cut is proven only by this shard's checkpoint (its
        // marker for `cut_epoch` never became durable), no frame above
        // the checkpoint may be applied: any such frame belongs to an
        // epoch past the cut.
        let marker_reachable = last_marker >= cut_epoch && cut_epoch > 0;
        for (seg, rec, end) in &log.records {
            match rec {
                WalRecord::Epoch(e) => {
                    if *e > cut_epoch {
                        break;
                    }
                    keep = Some((*seg, *end));
                    if *e == cut_epoch {
                        break; // the cut point itself
                    }
                }
                WalRecord::Batch {
                    seq: s,
                    inserts,
                    deletes,
                } => {
                    if *s <= ck_seq {
                        keep = Some((*seg, *end));
                        continue;
                    }
                    if !marker_reachable || *s != seq + 1 {
                        break; // beyond the cut, or a gap
                    }
                    graph = apply_batch(graph, inserts, deletes, true);
                    seq = *s;
                    frames_replayed += 1;
                    keep = Some((*seg, *end));
                }
            }
        }
        // Truncate the shard's log to the keep point: later epochs'
        // frames must not linger ahead of future appends.
        let segments = list_segments(io, &sdir)?;
        let (keep_seg, keep_off) =
            keep.unwrap_or_else(|| (segments.first().copied().unwrap_or(1), 0));
        let mut torn_tail_bytes = log.torn_tail_bytes;
        for &s in &segments {
            let path = join(&sdir, &segment_name(s));
            if s < keep_seg {
                continue;
            } else if s == keep_seg {
                let cur = io.read(&path).map_err(WalError::io("read segment"))?;
                if cur.len() > keep_off {
                    torn_tail_bytes += (cur.len() - keep_off) as u64;
                    io.truncate(&path, keep_off as u64)
                        .map_err(WalError::io("truncate past cut"))?;
                }
            } else {
                let cur = io.read(&path).map_err(WalError::io("read segment"))?;
                torn_tail_bytes += cur.len() as u64;
                io.remove(&path).map_err(WalError::io("remove past cut"))?;
            }
        }
        graphs.push(graph);
        seqs.push(seq);
        reports.push(RecoveryReport {
            checkpoint_seq: ck_seq,
            frames_replayed,
            torn_tail_bytes,
            segments_scanned: log.segments_scanned,
        });
    }
    Ok(RecoveredSharded {
        shards: graphs,
        seqs,
        epoch: cut_epoch,
        next_epoch: cut_epoch + 1,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::super::checkpoint::{write_checkpoint, write_manifest, Manifest};
    use super::super::io::MemIo;
    use super::super::log::WalWriter;
    use super::super::{DurabilityConfig, FsyncPolicy};
    use super::*;
    use aspen::{ChunkParams, CompressedEdges};
    use std::sync::Arc;

    type G = Graph<CompressedEdges>;

    fn cfg(mem: &Arc<MemIo>) -> DurabilityConfig {
        DurabilityConfig::with_io("wal", Arc::clone(mem) as Arc<dyn WalIo>)
    }

    fn edge_list(g: &G) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for v in g.vertex_ids() {
            for n in g.find_vertex(v).unwrap().edges.to_vec() {
                out.push((v, n));
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_dir_recovers_to_empty_graph() {
        let mem = MemIo::new();
        let r = recover::<CompressedEdges>(&cfg(&mem), ChunkParams::default(), false).unwrap();
        assert_eq!(r.seq, 0);
        assert_eq!(r.graph.num_vertices(), 0);
    }

    #[test]
    fn replay_matches_direct_application() {
        let mem = MemIo::new();
        let c = cfg(&mem);
        let mut w =
            WalWriter::open(Arc::clone(&c.io), &c.dir, FsyncPolicy::Always, 1 << 16, 0).unwrap();
        let mut oracle = G::new(ChunkParams::default());
        for i in 0..10u32 {
            let ins = [(i, i + 1)];
            let del: &[(u32, u32)] = if i >= 5 { &[(i - 5, i - 4)] } else { &[] };
            w.append_batch(i as u64 + 1, &ins, del).unwrap();
            oracle = apply_batch(oracle, &ins, del, false);
        }
        drop(w);
        mem.crash();
        let r = recover::<CompressedEdges>(&c, ChunkParams::default(), false).unwrap();
        assert_eq!(r.seq, 10);
        assert_eq!(r.report.frames_replayed, 10);
        assert_eq!(edge_list(&r.graph), edge_list(&oracle));
    }

    #[test]
    fn checkpoint_bounds_replay() {
        let mem = MemIo::new();
        let c = cfg(&mem);
        let mut w =
            WalWriter::open(Arc::clone(&c.io), &c.dir, FsyncPolicy::Always, 1 << 16, 0).unwrap();
        let mut g = G::new(ChunkParams::default());
        for i in 0..8u32 {
            let ins = [(i, 100 + i)];
            w.append_batch(i as u64 + 1, &ins, &[]).unwrap();
            g = apply_batch(g, &ins, &[], false);
            if i == 4 {
                write_checkpoint(c.io.as_ref(), &c.dir, 5, 0, &g).unwrap();
            }
        }
        drop(w);
        let r = recover::<CompressedEdges>(&c, ChunkParams::default(), false).unwrap();
        assert_eq!(r.report.checkpoint_seq, 5);
        assert_eq!(r.report.frames_replayed, 3);
        assert_eq!(r.seq, 8);
        assert_eq!(edge_list(&r.graph), edge_list(&g));
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let mem = MemIo::new();
        let c = cfg(&mem);
        let mut w =
            WalWriter::open(Arc::clone(&c.io), &c.dir, FsyncPolicy::Always, 1 << 16, 0).unwrap();
        for i in 0..3u64 {
            w.append_batch(i + 1, &[(i as u32, 9)], &[]).unwrap();
        }
        drop(w);
        // Simulate a torn append: garbage bytes at the end, synced.
        let mut f = mem.open_append("wal/wal-00000000000000000001.seg").unwrap();
        f.append(&[7, 0, 0, 0, 1, 2, 3]).unwrap();
        f.sync().unwrap();
        let r = recover::<CompressedEdges>(&c, ChunkParams::default(), false).unwrap();
        assert_eq!(r.seq, 3);
        assert!(r.report.torn_tail_bytes > 0);
        // The truncation is durable: a second recovery sees a clean log.
        let r2 = recover::<CompressedEdges>(&c, ChunkParams::default(), false).unwrap();
        assert_eq!(r2.report.torn_tail_bytes, 0);
        assert_eq!(r2.seq, 3);
    }

    /// Two shards; shard 0 has markers through epoch 3, shard 1 only
    /// through epoch 2 — recovery must land both on epoch 2 and
    /// discard shard 0's epoch-3 frames.
    #[test]
    fn sharded_recovery_lands_on_min_common_epoch() {
        let mem = MemIo::new();
        let root = cfg(&mem);
        let mut oracles: Vec<G> = vec![G::new(ChunkParams::default()); 2];
        let mut writers: Vec<WalWriter> = (0..2)
            .map(|k| {
                let sc = root.shard(k);
                WalWriter::open(Arc::clone(&sc.io), &sc.dir, FsyncPolicy::Always, 1 << 16, 0)
                    .unwrap()
            })
            .collect();
        let mut seqs = [0u64; 2];
        // Epochs 1..=2 land fully on both shards.
        for e in 1..=2u64 {
            for k in 0..2usize {
                seqs[k] += 1;
                let ins = [(10 * e as u32 + k as u32, 77)];
                writers[k].append_batch(seqs[k], &ins, &[]).unwrap();
                if e <= 2 {
                    oracles[k] = apply_batch(oracles[k].clone(), &ins, &[], true);
                }
                writers[k].append_epoch(e).unwrap();
            }
        }
        // Epoch 3 completes only on shard 0.
        seqs[0] += 1;
        writers[0].append_batch(seqs[0], &[(90, 91)], &[]).unwrap();
        writers[0].append_epoch(3).unwrap();
        drop(writers);
        mem.crash();

        let r = recover_sharded::<CompressedEdges>(&root, 2, ChunkParams::default()).unwrap();
        assert_eq!(r.epoch, 2);
        assert_eq!(r.next_epoch, 3);
        assert_eq!(r.seqs, vec![2, 2]);
        for (k, oracle) in oracles.iter().enumerate() {
            assert_eq!(edge_list(&r.shards[k]), edge_list(oracle), "shard {k}");
        }
        // The discarded epoch-3 frames are gone from shard 0's log too.
        let r2 = recover_sharded::<CompressedEdges>(&root, 2, ChunkParams::default()).unwrap();
        assert_eq!(r2.seqs, vec![2, 2]);
        assert_eq!(r2.reports[0].torn_tail_bytes, 0);
    }

    /// A lost (dropped) write leaves a seq gap with durable frames and
    /// markers beyond it. Those markers must not pin the cut on an
    /// epoch the shard cannot replay — recovery has to fall back to
    /// the last epoch below the gap on every shard.
    #[test]
    fn markers_beyond_a_lost_write_do_not_advance_the_cut() {
        use super::super::frame::encode_record_frame;
        let mem = MemIo::new();
        let root = cfg(&mem);

        // Shard 0: epoch 1 complete, then batch seq 2 is LOST, batch
        // seq 3 and the epoch-2 marker land durably after the hole.
        let mut bytes = Vec::new();
        for rec in [
            WalRecord::Batch {
                seq: 1,
                inserts: vec![(10, 77)],
                deletes: vec![],
            },
            WalRecord::Epoch(1),
            WalRecord::Batch {
                seq: 3,
                inserts: vec![(30, 77)],
                deletes: vec![],
            },
            WalRecord::Epoch(2),
        ] {
            bytes.extend_from_slice(&encode_record_frame(&rec));
        }
        let s0 = root.shard(0);
        mem.create_dir_all(&s0.dir).unwrap();
        mem.atomic_write(&join(&s0.dir, &segment_name(1)), &bytes)
            .unwrap();

        // Shard 1: epochs 1 and 2 both fully durable.
        let s1 = root.shard(1);
        let mut w1 =
            WalWriter::open(Arc::clone(&s1.io), &s1.dir, FsyncPolicy::Always, 1 << 16, 0).unwrap();
        w1.append_batch(1, &[(11, 88)], &[]).unwrap();
        w1.append_epoch(1).unwrap();
        w1.append_batch(2, &[(21, 88)], &[]).unwrap();
        w1.append_epoch(2).unwrap();
        drop(w1);
        mem.crash();

        let r = recover_sharded::<CompressedEdges>(&root, 2, ChunkParams::default()).unwrap();
        assert_eq!(r.epoch, 1, "gap-stranded marker must not prove epoch 2");
        assert_eq!(r.seqs, vec![1, 1]);
        assert!(
            r.shards[0].find_vertex(30).is_none(),
            "beyond-gap frame applied"
        );
        assert!(
            r.shards[1].find_vertex(21).is_none(),
            "cut not honored on shard 1"
        );
    }

    /// A manifest proves an epoch complete even when the shard's
    /// marker for it was lost with the page cache.
    #[test]
    fn manifest_substitutes_for_lost_markers() {
        let mem = MemIo::new();
        let root = cfg(&mem);
        let mut gs: Vec<G> = Vec::new();
        for k in 0..2usize {
            let sc = root.shard(k);
            mem.create_dir_all(&sc.dir).unwrap();
            let g = G::from_edges(&[(k as u32, 50)], ChunkParams::default());
            write_checkpoint(root.io.as_ref(), &sc.dir, 4, 6, &g).unwrap();
            gs.push(g);
        }
        write_manifest(
            root.io.as_ref(),
            &root.dir,
            &Manifest {
                epoch: 6,
                seqs: vec![4, 4],
            },
        )
        .unwrap();
        let r = recover_sharded::<CompressedEdges>(&root, 2, ChunkParams::default()).unwrap();
        assert_eq!(r.epoch, 6);
        assert_eq!(r.seqs, vec![4, 4]);
        for (k, g) in gs.iter().enumerate() {
            assert_eq!(edge_list(&r.shards[k]), edge_list(g));
        }
    }
}
