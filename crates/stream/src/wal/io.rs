//! Storage abstraction for the WAL, with a real-filesystem backend, an
//! in-memory backend modeling fsync durability, and a fault-injecting
//! wrapper for the crash-recovery harness.
//!
//! The durability model every backend must honor: bytes `append`ed to a
//! [`WalFile`] may be lost on a crash until `sync` returns; a file that
//! was never synced may vanish entirely; [`WalIo::atomic_write`] is
//! all-or-nothing and durable once it returns (write-temp + rename +
//! fsync on the real filesystem). Recovery code relies on exactly this
//! contract and nothing stronger.

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Joins a directory and a file name with `/` (paths are plain strings
/// so in-memory backends need no `PathBuf` round trips).
pub fn join(dir: &str, name: &str) -> String {
    if dir.is_empty() {
        name.to_string()
    } else {
        format!("{}/{}", dir.trim_end_matches('/'), name)
    }
}

/// An append-only log file.
pub trait WalFile: Send {
    /// Appends bytes at the end; buffered until [`sync`](Self::sync).
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Makes everything appended so far durable.
    fn sync(&mut self) -> io::Result<()>;
    /// Current (volatile) length in bytes.
    fn len(&self) -> u64;
    /// Whether nothing has been appended yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The file operations the WAL needs, small enough to fake.
pub trait WalIo: Send + Sync {
    fn create_dir_all(&self, dir: &str) -> io::Result<()>;
    /// File names (not paths) directly under `dir`, sorted.
    fn list(&self, dir: &str) -> io::Result<Vec<String>>;
    fn read(&self, path: &str) -> io::Result<Vec<u8>>;
    fn open_append(&self, path: &str) -> io::Result<Box<dyn WalFile>>;
    /// Writes the whole file all-or-nothing; durable once it returns.
    fn atomic_write(&self, path: &str, bytes: &[u8]) -> io::Result<()>;
    /// Truncates to `len` bytes, durably.
    fn truncate(&self, path: &str, len: u64) -> io::Result<()>;
    fn remove(&self, path: &str) -> io::Result<()>;
}

// ---------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------

/// [`WalIo`] over the real filesystem with `fsync`-backed durability.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdIo;

struct StdFile {
    file: std::fs::File,
    len: u64,
}

impl WalFile for StdFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// Best-effort fsync of the directory holding `path`, so renames and
/// removals inside it survive a crash (POSIX requires syncing the
/// parent directory for that; some platforms don't support it — ignore
/// failures there).
fn sync_parent_dir(path: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

impl WalIo for StdIo {
    fn create_dir_all(&self, dir: &str) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn open_append(&self, path: &str) -> io::Result<Box<dyn WalFile>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Box::new(StdFile { file, len }))
    }

    fn atomic_write(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let tmp = format!("{path}.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        std::fs::remove_file(path)?;
        sync_parent_dir(path);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// In-memory filesystem with an explicit durability frontier
// ---------------------------------------------------------------------

struct MemFileState {
    bytes: Vec<u8>,
    /// Prefix guaranteed to survive [`MemIo::crash`].
    synced_len: usize,
    /// A file never synced (and never atomically written) vanishes
    /// entirely at a crash, like a dirent that never hit the journal.
    ever_synced: bool,
}

#[derive(Default)]
struct MemState {
    files: BTreeMap<String, MemFileState>,
    dirs: BTreeSet<String>,
}

/// An in-memory [`WalIo`] that models the crash semantics of a real
/// filesystem: live reads see every appended byte, but
/// [`crash`](MemIo::crash) discards everything past each file's last `sync`
/// and drops never-synced files. The crash-recovery suite runs the
/// whole engine against this backend, "kills" it by calling `crash`,
/// and recovers from what survived.
#[derive(Default)]
pub struct MemIo {
    state: Arc<Mutex<MemState>>,
}

impl MemIo {
    pub fn new() -> Arc<MemIo> {
        Arc::new(MemIo::default())
    }

    /// Simulates `kill -9` + power loss: every file reverts to its
    /// durable prefix, never-synced files disappear.
    pub fn crash(&self) {
        let mut st = self.state.lock();
        st.files.retain(|_, f| f.ever_synced);
        for f in st.files.values_mut() {
            f.bytes.truncate(f.synced_len);
        }
    }

    /// The durable prefix of `path`, as a post-crash read would see it.
    pub fn durable(&self, path: &str) -> Option<Vec<u8>> {
        let st = self.state.lock();
        let f = st.files.get(path)?;
        if !f.ever_synced {
            return None;
        }
        Some(f.bytes[..f.synced_len].to_vec())
    }

    /// Total volatile bytes across files (test instrumentation).
    pub fn total_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.files.values().map(|f| f.bytes.len() as u64).sum()
    }
}

struct MemFile {
    state: Arc<Mutex<MemState>>,
    path: String,
}

impl WalFile for MemFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        let f = st
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed"))?;
        f.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut st = self.state.lock();
        let f = st
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed"))?;
        f.synced_len = f.bytes.len();
        f.ever_synced = true;
        Ok(())
    }

    fn len(&self) -> u64 {
        let st = self.state.lock();
        st.files.get(&self.path).map_or(0, |f| f.bytes.len() as u64)
    }
}

impl WalIo for MemIo {
    fn create_dir_all(&self, dir: &str) -> io::Result<()> {
        self.state.lock().dirs.insert(dir.to_string());
        Ok(())
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let st = self.state.lock();
        let prefix = format!("{}/", dir.trim_end_matches('/'));
        let mut names: Vec<String> = st
            .files
            .keys()
            .filter_map(|p| p.strip_prefix(&prefix))
            .filter(|rest| !rest.contains('/'))
            .map(String::from)
            .collect();
        names.sort();
        Ok(names)
    }

    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        let st = self.state.lock();
        st.files
            .get(path)
            .map(|f| f.bytes.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))
    }

    fn open_append(&self, path: &str) -> io::Result<Box<dyn WalFile>> {
        let mut st = self.state.lock();
        st.files.entry(path.to_string()).or_insert(MemFileState {
            bytes: Vec::new(),
            synced_len: 0,
            ever_synced: false,
        });
        Ok(Box::new(MemFile {
            state: Arc::clone(&self.state),
            path: path.to_string(),
        }))
    }

    fn atomic_write(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        st.files.insert(
            path.to_string(),
            MemFileState {
                bytes: bytes.to_vec(),
                synced_len: bytes.len(),
                ever_synced: true,
            },
        );
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        let mut st = self.state.lock();
        let f = st
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        f.bytes.truncate(len as usize);
        // Truncation is an fsynced metadata operation here.
        f.synced_len = f.synced_len.min(f.bytes.len());
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        let mut st = self.state.lock();
        st.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// What to do to the write that trips a [`Failpoint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The write is silently lost (e.g. dropped by a dying kernel).
    DropWrite,
    /// Only the first `n` bytes of the write land (torn write).
    TruncateWrite(usize),
    /// One bit of the written bytes is flipped (corruption in flight
    /// or at rest). The `usize` picks which byte/bit.
    BitFlip(usize),
    /// Power loss: the backing [`MemIo`] crashes to its durable state
    /// and every later operation through this shim is a silent no-op,
    /// as if the process kept running with its disk yanked.
    CrashHard,
}

/// Arms a [`Fault`] on the `at_op`-th write operation (0-based, counted
/// globally across all files, `atomic_write` included).
#[derive(Clone, Copy, Debug)]
pub struct Failpoint {
    pub at_op: u64,
    pub fault: Fault,
}

struct FailCtl {
    mem: Arc<MemIo>,
    ops: AtomicU64,
    points: Mutex<Vec<Failpoint>>,
    crashed: AtomicBool,
}

impl FailCtl {
    /// Consumes and returns the fault armed for the next write op.
    fn next_op_fault(&self) -> Option<Fault> {
        let idx = self.ops.fetch_add(1, Ordering::Relaxed);
        let mut pts = self.points.lock();
        let hit = pts.iter().position(|p| p.at_op == idx)?;
        Some(pts.swap_remove(hit).fault)
    }

    fn crash(&self) {
        self.crashed.store(true, Ordering::SeqCst);
        self.mem.crash();
    }
}

/// A [`WalIo`] shim over [`MemIo`] that injects scripted faults into
/// write operations — the fault-injection harness of the crash-recovery
/// suite. Every `append`/`atomic_write` bumps one global op counter;
/// a [`Failpoint`] whose `at_op` matches applies its [`Fault`] to that
/// specific write.
pub struct FailpointIo {
    mem: Arc<MemIo>,
    ctl: Arc<FailCtl>,
}

impl FailpointIo {
    pub fn new(mem: Arc<MemIo>) -> Self {
        let ctl = Arc::new(FailCtl {
            mem: Arc::clone(&mem),
            ops: AtomicU64::new(0),
            points: Mutex::new(Vec::new()),
            crashed: AtomicBool::new(false),
        });
        FailpointIo { mem, ctl }
    }

    /// Arms a failpoint. May be called while the engine is running.
    pub fn fail_at(&self, point: Failpoint) {
        self.ctl.points.lock().push(point);
    }

    /// Whether a [`Fault::CrashHard`] has fired (or
    /// [`crash`](Self::crash) was called).
    pub fn crashed(&self) -> bool {
        self.ctl.crashed.load(Ordering::SeqCst)
    }

    /// Write operations observed so far.
    pub fn ops(&self) -> u64 {
        self.ctl.ops.load(Ordering::Relaxed)
    }

    /// Manually pulls the plug (equivalent to an armed
    /// [`Fault::CrashHard`] firing now).
    pub fn crash(&self) {
        self.ctl.crash();
    }
}

fn corrupt(bytes: &[u8], fault: Fault) -> Option<Vec<u8>> {
    match fault {
        Fault::DropWrite => None,
        Fault::TruncateWrite(n) => Some(bytes[..n.min(bytes.len())].to_vec()),
        Fault::BitFlip(i) => {
            let mut out = bytes.to_vec();
            if !out.is_empty() {
                let byte = i % out.len();
                out[byte] ^= 1 << (i % 8);
            }
            Some(out)
        }
        Fault::CrashHard => unreachable!("CrashHard handled by callers"),
    }
}

struct FailpointFile {
    inner: Box<dyn WalFile>,
    ctl: Arc<FailCtl>,
}

impl WalFile for FailpointFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.ctl.crashed.load(Ordering::SeqCst) {
            return Ok(()); // disk is gone; writes vanish silently
        }
        match self.ctl.next_op_fault() {
            None => self.inner.append(bytes),
            Some(Fault::CrashHard) => {
                self.ctl.crash();
                Ok(())
            }
            Some(f) => match corrupt(bytes, f) {
                Some(mangled) => self.inner.append(&mangled),
                None => Ok(()),
            },
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.ctl.crashed.load(Ordering::SeqCst) {
            return Ok(());
        }
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl WalIo for FailpointIo {
    fn create_dir_all(&self, dir: &str) -> io::Result<()> {
        if self.ctl.crashed.load(Ordering::SeqCst) {
            return Ok(());
        }
        self.mem.create_dir_all(dir)
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        self.mem.list(dir)
    }

    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        self.mem.read(path)
    }

    fn open_append(&self, path: &str) -> io::Result<Box<dyn WalFile>> {
        let inner = self.mem.open_append(path)?;
        Ok(Box::new(FailpointFile {
            inner,
            ctl: Arc::clone(&self.ctl),
        }))
    }

    fn atomic_write(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        if self.ctl.crashed.load(Ordering::SeqCst) {
            return Ok(());
        }
        match self.ctl.next_op_fault() {
            None => self.mem.atomic_write(path, bytes),
            Some(Fault::CrashHard) => {
                self.ctl.crash();
                Ok(())
            }
            // Rename is atomic: a torn atomic write cannot exist. A torn
            // fault therefore degrades to "the new file never appeared";
            // a bit flip models corruption at rest, which readers must
            // catch by checksum.
            Some(Fault::DropWrite) | Some(Fault::TruncateWrite(_)) => Ok(()),
            Some(f @ Fault::BitFlip(_)) => match corrupt(bytes, f) {
                Some(mangled) => self.mem.atomic_write(path, &mangled),
                None => Ok(()),
            },
        }
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        if self.ctl.crashed.load(Ordering::SeqCst) {
            return Ok(());
        }
        self.mem.truncate(path, len)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        if self.ctl.crashed.load(Ordering::SeqCst) {
            return Ok(());
        }
        self.mem.remove(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_io_crash_keeps_synced_prefix_only() {
        let mem = MemIo::new();
        let mut f = mem.open_append("d/a").unwrap();
        f.append(b"hello").unwrap();
        f.sync().unwrap();
        f.append(b" world").unwrap();
        assert_eq!(mem.read("d/a").unwrap(), b"hello world");

        mem.crash();
        assert_eq!(mem.read("d/a").unwrap(), b"hello");
    }

    #[test]
    fn mem_io_crash_drops_never_synced_files() {
        let mem = MemIo::new();
        let mut f = mem.open_append("d/a").unwrap();
        f.append(b"volatile").unwrap();
        mem.crash();
        assert!(mem.read("d/a").is_err());
    }

    #[test]
    fn mem_io_atomic_write_is_durable() {
        let mem = MemIo::new();
        mem.atomic_write("d/ck", b"snapshot").unwrap();
        mem.crash();
        assert_eq!(mem.read("d/ck").unwrap(), b"snapshot");
    }

    #[test]
    fn mem_io_lists_only_direct_children() {
        let mem = MemIo::new();
        mem.atomic_write("d/a", b"1").unwrap();
        mem.atomic_write("d/sub/b", b"2").unwrap();
        mem.atomic_write("e/c", b"3").unwrap();
        assert_eq!(mem.list("d").unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn failpoints_mangle_the_targeted_op() {
        let mem = MemIo::new();
        let fio = FailpointIo::new(Arc::clone(&mem));
        fio.fail_at(Failpoint {
            at_op: 1,
            fault: Fault::DropWrite,
        });
        fio.fail_at(Failpoint {
            at_op: 2,
            fault: Fault::TruncateWrite(2),
        });
        let mut f = fio.open_append("d/a").unwrap();
        f.append(b"AAAA").unwrap(); // op 0: lands
        f.append(b"BBBB").unwrap(); // op 1: dropped
        f.append(b"CCCC").unwrap(); // op 2: torn to 2 bytes
        f.append(b"DDDD").unwrap(); // op 3: lands
        assert_eq!(mem.read("d/a").unwrap(), b"AAAACCDDDD");
    }

    #[test]
    fn crash_hard_freezes_the_disk() {
        let mem = MemIo::new();
        let fio = FailpointIo::new(Arc::clone(&mem));
        fio.fail_at(Failpoint {
            at_op: 1,
            fault: Fault::CrashHard,
        });
        let mut f = fio.open_append("d/a").unwrap();
        f.append(b"one").unwrap();
        f.sync().unwrap();
        f.append(b"two").unwrap(); // trips CrashHard
        assert!(fio.crashed());
        f.append(b"three").unwrap(); // silently lost
        f.sync().unwrap(); // no-op
        fio.atomic_write("d/ck", b"late").unwrap(); // no-op
        assert_eq!(mem.read("d/a").unwrap(), b"one");
        assert!(mem.read("d/ck").is_err());
    }

    #[test]
    fn bit_flip_flips_exactly_one_bit() {
        let mem = MemIo::new();
        let fio = FailpointIo::new(Arc::clone(&mem));
        fio.fail_at(Failpoint {
            at_op: 0,
            fault: Fault::BitFlip(5),
        });
        let mut f = fio.open_append("d/a").unwrap();
        f.append(&[0u8; 4]).unwrap();
        let got = mem.read("d/a").unwrap();
        let ones: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
    }
}
