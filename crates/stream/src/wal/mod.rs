//! Durability for the streaming engine: a write-ahead log, checkpoint
//! + recovery, and a fault-injection harness.
//!
//! The contract the rest of the crate builds on: once the writer loop
//! has appended a batch's frame and the fsync policy has synced it, a
//! crash at *any* later point recovers a graph containing that batch;
//! a batch whose frame never became durable is dropped **whole** —
//! recovery never applies half a batch, because a frame is guarded by
//! its CRC and replayed atomically. See `docs/DURABILITY.md` for the
//! full protocol, including how sharded recovery lands on a consistent
//! epoch cut.
//!
//! Layout on disk (all paths relative to [`DurabilityConfig::dir`]):
//!
//! ```text
//! wal-{first_seq:020}.seg     log segments (CRC-framed records)
//! ckpt-{seq:020}.ck           checkpoints (atomic, checksummed)
//! manifest-{epoch:020}.mf     sharded-cut manifests (root dir only)
//! shard{k}/...                per-shard logs of a ShardedEngine
//! ```

mod checkpoint;
mod frame;
mod io;
mod log;
mod recover;

pub use checkpoint::{
    checkpoint_name, decode_checkpoint, load_latest_checkpoint, load_latest_manifest, prune,
    write_checkpoint, write_manifest, LoadedCheckpoint, Manifest,
};
pub use frame::{
    crc32, encode_frame, encode_record_frame, scan_segment, ScannedSegment, WalRecord, KIND_BATCH,
    KIND_EPOCH,
};
pub use io::{join, Failpoint, FailpointIo, Fault, MemIo, StdIo, WalFile, WalIo};
pub use log::{list_segments, segment_name, AppendOutcome, WalWriter};
pub use recover::{recover, recover_sharded, Recovered, RecoveredSharded, RecoveryReport};

use std::sync::Arc;
use std::time::Duration;

/// When the WAL calls `fsync` relative to appends. Only a synced frame
/// is guaranteed to survive a crash — see the table in
/// `docs/DURABILITY.md` for what each policy promises an acked batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record: an installed batch is always durable.
    #[default]
    Always,
    /// Sync once per `n` appended records: bounded loss window of the
    /// most recent unsynced records.
    EveryN(u64),
    /// Sync when at least this much time passed since the last sync:
    /// bounded loss window in wall-clock terms.
    Interval(Duration),
}

/// Where and how an engine persists its WAL and checkpoints.
#[derive(Clone)]
pub struct DurabilityConfig {
    /// Directory holding segments, checkpoints, and (for sharded
    /// engines) per-shard subdirectories.
    pub dir: String,
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Automatically checkpoint every `n` installed batches
    /// (single-engine mode; sharded engines checkpoint explicitly so
    /// all shards cut at one epoch).
    pub checkpoint_every: Option<u64>,
    /// Storage backend — [`StdIo`] in production, [`MemIo`] /
    /// [`FailpointIo`] in the crash harness.
    pub io: Arc<dyn WalIo>,
}

impl DurabilityConfig {
    /// A config writing to `dir` on the real filesystem with the
    /// default policy ([`FsyncPolicy::Always`], 8 MiB segments, no
    /// automatic checkpoints).
    pub fn new(dir: impl Into<String>) -> Self {
        Self::with_io(dir, Arc::new(StdIo))
    }

    /// Same, but against an explicit storage backend.
    pub fn with_io(dir: impl Into<String>, io: Arc<dyn WalIo>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 << 20,
            checkpoint_every: None,
            io,
        }
    }

    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }

    pub fn checkpoint_every(mut self, batches: u64) -> Self {
        self.checkpoint_every = Some(batches.max(1));
        self
    }

    /// The derived config for shard `k` of a sharded engine: same
    /// backend and policy, log under `dir/shard{k}`, automatic
    /// checkpoints off (the sharded engine checkpoints all shards at
    /// one pinned cut instead).
    pub fn shard(&self, k: usize) -> Self {
        DurabilityConfig {
            dir: join(&self.dir, &format!("shard{k}")),
            fsync: self.fsync,
            segment_bytes: self.segment_bytes,
            checkpoint_every: None,
            io: Arc::clone(&self.io),
        }
    }
}

impl std::fmt::Debug for DurabilityConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityConfig")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .field("segment_bytes", &self.segment_bytes)
            .field("checkpoint_every", &self.checkpoint_every)
            .finish_non_exhaustive()
    }
}

/// A durability-layer failure.
#[derive(Debug)]
pub enum WalError {
    /// Storage I/O failed (`context`, underlying error).
    Io(&'static str, std::io::Error),
    /// On-disk state is malformed beyond the self-healing cases
    /// (checkpoints and frames that fail validation are skipped, not
    /// errors; this covers contradictions like a misnamed file).
    Corrupt(String),
    /// A checkpoint payload failed snapshot decoding.
    Snapshot(aspen::SnapshotError),
}

impl WalError {
    pub(crate) fn io(context: &'static str) -> impl Fn(std::io::Error) -> WalError {
        move |e| WalError::Io(context, e)
    }

    pub(crate) fn corrupt(msg: impl Into<String>) -> WalError {
        WalError::Corrupt(msg.into())
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(ctx, e) => write!(f, "wal io error ({ctx}): {e}"),
            WalError::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
            WalError::Snapshot(e) => write!(f, "wal checkpoint: {e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(_, e) => Some(e),
            WalError::Snapshot(e) => Some(e),
            WalError::Corrupt(_) => None,
        }
    }
}
