//! Engine observability: lock-free latency histograms and the
//! end-of-run report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// A lock-free log₂-bucketed latency histogram.
///
/// Recording is a single atomic increment into the bucket
/// `⌊log₂(nanos)⌋`, so writer- and query-thread instrumentation costs
/// nanoseconds. Quantiles are read back at bucket resolution (within a
/// factor of 2), which is what latency reporting needs — the paper
/// reports latency distributions over orders of magnitude, not
/// nanosecond-exact percentiles.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measurement. Thread-safe, wait-free.
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - nanos.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[idx.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded measurements.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of all measurements, or zero when empty.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed) / n)
    }

    /// Largest recorded measurement.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) at bucket resolution: the
    /// geometric midpoint of the bucket holding the `⌈q·n⌉`-th
    /// measurement. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds values in [2^i, 2^(i+1)); report the
                // geometric midpoint, √2·2^i, capped at the observed
                // maximum so no quantile ever exceeds `max()`.
                let lo = 1u128 << i;
                let mid = Duration::from_nanos((lo as f64 * std::f64::consts::SQRT_2) as u64);
                return mid.min(self.max());
            }
        }
        self.max()
    }

    /// Snapshot of count/mean/p50/p95/p99/max for reporting.
    pub fn summarize(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Point-in-time percentile summary of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub mean: Duration,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub max: Duration,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1?} p50={:.1?} p95={:.1?} p99={:.1?} max={:.1?}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Shared counters and histograms recorded by the writer loop and the
/// query executor while the engine runs.
///
/// All members are updated with relaxed atomics; read them at any time
/// for a live view, or let [`StreamEngine::finish`] fold them into a
/// [`StatsReport`].
///
/// [`StreamEngine::finish`]: crate::StreamEngine::finish
#[derive(Default)]
pub struct EngineStats {
    /// Latency of applying one batch run (compute + install), per the
    /// core's [`aspen::ApplyTiming`] hook.
    pub batch_apply: LatencyHistogram,
    /// End-to-end update latency: enqueue at the producer → visible in
    /// an installed version.
    pub update_e2e: LatencyHistogram,
    /// Latency of one registered query execution (including flat
    /// snapshot construction).
    pub query: LatencyHistogram,
    /// Batches applied by the writer loop.
    pub batches_applied: AtomicU64,
    /// Undirected updates consumed from the channel (raw envelope
    /// count, before coalescing).
    pub updates_applied: AtomicU64,
    /// **Net** insert operations applied after per-batch coalescing
    /// (last update per edge wins); can be less than the raw insert
    /// envelope count when a batch touches an edge more than once.
    pub inserts_applied: AtomicU64,
    /// **Net** delete operations applied after per-batch coalescing.
    pub deletes_applied: AtomicU64,
    /// Query executions completed across all query threads.
    pub queries_run: AtomicU64,
    /// Snapshots a query thread observed whose edge count did not match
    /// any installed version — **must stay zero**; a nonzero value
    /// means snapshot isolation is broken.
    pub consistency_violations: AtomicU64,
}

impl EngineStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds the live counters into an owned report.
    pub fn report(&self) -> StatsReport {
        StatsReport {
            batches_applied: self.batches_applied.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            inserts_applied: self.inserts_applied.load(Ordering::Relaxed),
            deletes_applied: self.deletes_applied.load(Ordering::Relaxed),
            queries_run: self.queries_run.load(Ordering::Relaxed),
            consistency_violations: self.consistency_violations.load(Ordering::Relaxed),
            batch_apply: self.batch_apply.summarize(),
            update_e2e: self.update_e2e.summarize(),
            query: self.query.summarize(),
        }
    }
}

/// Owned end-of-run summary returned by [`StreamEngine::finish`].
///
/// [`StreamEngine::finish`]: crate::StreamEngine::finish
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsReport {
    pub batches_applied: u64,
    pub updates_applied: u64,
    pub inserts_applied: u64,
    pub deletes_applied: u64,
    pub queries_run: u64,
    pub consistency_violations: u64,
    pub batch_apply: LatencySummary,
    pub update_e2e: LatencySummary,
    pub query: LatencySummary,
}

impl StatsReport {
    /// Mean undirected updates per applied batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_applied == 0 {
            0.0
        } else {
            self.updates_applied as f64 / self.batches_applied as f64
        }
    }
}

impl std::fmt::Display for StatsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "updates: {} (net {} ins, {} del) in {} batches (mean {:.1}/batch)",
            self.updates_applied,
            self.inserts_applied,
            self.deletes_applied,
            self.batches_applied,
            self.mean_batch_size()
        )?;
        writeln!(f, "batch apply : {}", self.batch_apply)?;
        writeln!(f, "update e2e  : {}", self.update_e2e)?;
        writeln!(f, "query       : {}", self.query)?;
        write!(f, "queries run : {}", self.queries_run)?;
        if self.consistency_violations > 0 {
            write!(
                f,
                "\nCONSISTENCY VIOLATIONS: {}",
                self.consistency_violations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        let p50 = h.quantile(0.5);
        assert!(
            p50 >= Duration::from_micros(5) && p50 <= Duration::from_micros(20),
            "p50 = {p50:?}"
        );
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_millis(5), "p99 = {p99:?}");
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), Duration::from_millis(10));
    }

    #[test]
    fn mean_tracks_sum() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        assert_eq!(h.mean(), Duration::from_micros(2));
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    h.record(Duration::from_nanos(i));
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn report_renders() {
        let s = EngineStats::new();
        s.batch_apply.record(Duration::from_micros(100));
        s.batches_applied.fetch_add(1, Ordering::Relaxed);
        s.updates_applied.fetch_add(8, Ordering::Relaxed);
        let r = s.report();
        assert_eq!(r.batches_applied, 1);
        assert!((r.mean_batch_size() - 8.0).abs() < 1e-9);
        let text = r.to_string();
        assert!(text.contains("batch apply"), "{text}");
        assert!(!text.contains("VIOLATIONS"), "{text}");
    }
}
