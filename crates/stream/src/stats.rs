//! Engine observability: the engine's metrics live in an
//! [`obs::Registry`] (one per engine), so the same counters and
//! histograms the end-of-run [`StatsReport`] folds up are also
//! nameable, snapshotable at any instant, and renderable as text or
//! JSON by generic observability tooling — without the engine having
//! to know who is watching.
//!
//! [`LatencyHistogram`] and [`LatencySummary`] moved to `aspen-obs`
//! (`obs::hist`) and are re-exported here so existing callers compile
//! unchanged. The struct-of-fields shape of [`EngineStats`] is also
//! unchanged: fields are now [`Arc`] handles into the registry, and
//! [`obs::Counter`] mirrors the `AtomicU64` `fetch_add`/`load` calls
//! the writer and query paths were already making.

pub use obs::{HistogramSnapshot, LatencyHistogram, LatencySummary};

use obs::{Counter, Gauge, Registry};
use std::sync::Arc;

/// Shared counters and histograms recorded by the writer loop and the
/// query executor while the engine runs.
///
/// All members are updated with relaxed atomics; read them at any time
/// for a live view, take a [`snapshot`](Self::snapshot) for periodic
/// delta reporting, or let [`StreamEngine::finish`] fold them into a
/// [`StatsReport`]. Every metric is registered by name (under the
/// `stream.` prefix) in this engine's [`registry`](Self::registry).
///
/// [`StreamEngine::finish`]: crate::StreamEngine::finish
pub struct EngineStats {
    registry: Arc<Registry>,
    /// Latency of applying one batch run (compute + install), per the
    /// core's [`aspen::ApplyTiming`] hook.
    pub batch_apply: Arc<LatencyHistogram>,
    /// End-to-end update latency: enqueue at the producer → visible in
    /// an installed version.
    pub update_e2e: Arc<LatencyHistogram>,
    /// Latency of one registered query execution (including flat
    /// snapshot construction).
    pub query: Arc<LatencyHistogram>,
    /// Batches applied by the writer loop.
    pub batches_applied: Arc<Counter>,
    /// Undirected updates consumed from the channel (raw envelope
    /// count, before coalescing).
    pub updates_applied: Arc<Counter>,
    /// **Net** insert operations applied after per-batch coalescing
    /// (last update per edge wins); can be less than the raw insert
    /// envelope count when a batch touches an edge more than once.
    pub inserts_applied: Arc<Counter>,
    /// **Net** delete operations applied after per-batch coalescing.
    pub deletes_applied: Arc<Counter>,
    /// Query executions completed across all query threads.
    pub queries_run: Arc<Counter>,
    /// Latency of repairing one standing query for one installed
    /// version (incremental repair, or the full-recompute fallback).
    pub standing_repair: Arc<LatencyHistogram>,
    /// Latency of extracting the version diff the standing repairs
    /// consume (one diff per batch, shared by every standing query).
    pub standing_diff: Arc<LatencyHistogram>,
    /// Standing-query repairs performed (one per query per batch).
    pub standing_repairs: Arc<Counter>,
    /// Repairs that fell back to from-scratch recomputation because
    /// the diff touched too much of the graph.
    pub standing_full_recomputes: Arc<Counter>,
    /// Total directed edge changes carried by the diffs the standing
    /// repairs consumed.
    pub standing_diff_edges: Arc<Counter>,
    /// Snapshots a query thread observed whose edge count did not match
    /// any installed version — **must stay zero**; a nonzero value
    /// means snapshot isolation is broken.
    pub consistency_violations: Arc<Counter>,
    /// Query rounds that reused a cached flat snapshot instead of
    /// rebuilding one (the installed version had not changed since the
    /// last round that flattened it).
    pub flat_reuse: Arc<Counter>,
    /// Latency of appending one batch frame to the WAL, *including* any
    /// policy-triggered fsync (this sits on the install path, so its
    /// tail is the durability tax on batch latency).
    pub wal_append: Arc<LatencyHistogram>,
    /// Latency of the fsync calls alone (a subset of
    /// [`wal_append`](Self::wal_append) samples, plus barrier/shutdown
    /// syncs).
    pub wal_fsync: Arc<LatencyHistogram>,
    /// WAL records appended (batch frames + epoch markers).
    pub wal_frames: Arc<Counter>,
    /// WAL bytes appended.
    pub wal_bytes: Arc<Counter>,
    /// fsync calls issued by the WAL.
    pub wal_fsyncs: Arc<Counter>,
    /// Segment rotations performed.
    pub wal_segments_rotated: Arc<Counter>,
    /// Checkpoints written.
    pub wal_checkpoints: Arc<Counter>,
    /// Bytes of checkpoint files written.
    pub wal_checkpoint_bytes: Arc<Counter>,
    /// Highest batch seq known durable (0 until the first sync; stays 0
    /// when the engine runs without durability).
    pub wal_durable_seq: Arc<Gauge>,
}

impl Default for EngineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineStats {
    /// Stats backed by a fresh private registry.
    pub fn new() -> Self {
        Self::on_registry(Arc::new(Registry::new()))
    }

    /// Stats registered into an existing registry (e.g. a process-wide
    /// one a `/stats` endpoint serves) under the default `stream.`
    /// prefix. Metric names are fixed, so two engines must not share
    /// one registry — unless each uses a distinct prefix via
    /// [`on_registry_with_prefix`](Self::on_registry_with_prefix).
    pub fn on_registry(registry: Arc<Registry>) -> Self {
        Self::on_registry_with_prefix(registry, "stream.")
    }

    /// Stats registered under an arbitrary name prefix (e.g.
    /// `stream.shard0.`), letting several engines share one registry —
    /// the sharded engine registers every shard's stats alongside its
    /// own coordinator metrics this way.
    pub fn on_registry_with_prefix(registry: Arc<Registry>, prefix: &str) -> Self {
        let name = |suffix: &str| format!("{prefix}{suffix}");
        EngineStats {
            batch_apply: registry.histogram(&name("batch_apply")),
            update_e2e: registry.histogram(&name("update_e2e")),
            query: registry.histogram(&name("query")),
            batches_applied: registry.counter(&name("batches_applied")),
            updates_applied: registry.counter(&name("updates_applied")),
            inserts_applied: registry.counter(&name("inserts_applied")),
            deletes_applied: registry.counter(&name("deletes_applied")),
            queries_run: registry.counter(&name("queries_run")),
            standing_repair: registry.histogram(&name("standing.repair")),
            standing_diff: registry.histogram(&name("standing.diff")),
            standing_repairs: registry.counter(&name("standing.repairs")),
            standing_full_recomputes: registry.counter(&name("standing.full_recomputes")),
            standing_diff_edges: registry.counter(&name("standing.diff_edges")),
            consistency_violations: registry.counter(&name("consistency_violations")),
            flat_reuse: registry.counter(&name("query.flat_reuse")),
            wal_append: registry.histogram(&name("wal.append")),
            wal_fsync: registry.histogram(&name("wal.fsync")),
            wal_frames: registry.counter(&name("wal.frames")),
            wal_bytes: registry.counter(&name("wal.bytes")),
            wal_fsyncs: registry.counter(&name("wal.fsyncs")),
            wal_segments_rotated: registry.counter(&name("wal.segments_rotated")),
            wal_checkpoints: registry.counter(&name("wal.checkpoints")),
            wal_checkpoint_bytes: registry.counter(&name("wal.checkpoint_bytes")),
            wal_durable_seq: registry.gauge(&name("wal.durable_seq")),
            registry,
        }
    }

    /// The registry holding this engine's metrics, for generic
    /// rendering ([`obs::Registry::snapshot`] → `render_text()` /
    /// `to_json()`) or for registering additional app-level metrics
    /// alongside the engine's.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Coherent point-in-time copy of every counter and histogram.
    /// Cheap enough for periodic polling; difference two snapshots
    /// with [`EngineSnapshot::delta_since`] for an interval report.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            batches_applied: self.batches_applied.get(),
            updates_applied: self.updates_applied.get(),
            inserts_applied: self.inserts_applied.get(),
            deletes_applied: self.deletes_applied.get(),
            queries_run: self.queries_run.get(),
            standing_repairs: self.standing_repairs.get(),
            standing_full_recomputes: self.standing_full_recomputes.get(),
            standing_diff_edges: self.standing_diff_edges.get(),
            consistency_violations: self.consistency_violations.get(),
            flat_reuse: self.flat_reuse.get(),
            wal_frames: self.wal_frames.get(),
            wal_bytes: self.wal_bytes.get(),
            wal_fsyncs: self.wal_fsyncs.get(),
            wal_segments_rotated: self.wal_segments_rotated.get(),
            wal_checkpoints: self.wal_checkpoints.get(),
            wal_checkpoint_bytes: self.wal_checkpoint_bytes.get(),
            batch_apply: self.batch_apply.snapshot(),
            update_e2e: self.update_e2e.snapshot(),
            query: self.query.snapshot(),
            standing_repair: self.standing_repair.snapshot(),
            standing_diff: self.standing_diff.snapshot(),
            wal_append: self.wal_append.snapshot(),
            wal_fsync: self.wal_fsync.snapshot(),
        }
    }

    /// Folds the live counters into an owned report.
    pub fn report(&self) -> StatsReport {
        self.snapshot().report()
    }
}

/// A point-in-time copy of all [`EngineStats`] values, including full
/// histogram bucket contents — so two snapshots can be differenced
/// into an interval-exact [`StatsReport`] (the periodic-reporting
/// building block: poll, delta, emit, repeat).
#[derive(Clone, Debug, Default)]
pub struct EngineSnapshot {
    pub batches_applied: u64,
    pub updates_applied: u64,
    pub inserts_applied: u64,
    pub deletes_applied: u64,
    pub queries_run: u64,
    pub standing_repairs: u64,
    pub standing_full_recomputes: u64,
    pub standing_diff_edges: u64,
    pub consistency_violations: u64,
    pub flat_reuse: u64,
    pub wal_frames: u64,
    pub wal_bytes: u64,
    pub wal_fsyncs: u64,
    pub wal_segments_rotated: u64,
    pub wal_checkpoints: u64,
    pub wal_checkpoint_bytes: u64,
    pub batch_apply: HistogramSnapshot,
    pub update_e2e: HistogramSnapshot,
    pub query: HistogramSnapshot,
    pub standing_repair: HistogramSnapshot,
    pub standing_diff: HistogramSnapshot,
    pub wal_append: HistogramSnapshot,
    pub wal_fsync: HistogramSnapshot,
}

impl EngineSnapshot {
    /// Cumulative report as of this snapshot.
    pub fn report(&self) -> StatsReport {
        StatsReport {
            batches_applied: self.batches_applied,
            updates_applied: self.updates_applied,
            inserts_applied: self.inserts_applied,
            deletes_applied: self.deletes_applied,
            queries_run: self.queries_run,
            standing_repairs: self.standing_repairs,
            standing_full_recomputes: self.standing_full_recomputes,
            standing_diff_edges: self.standing_diff_edges,
            consistency_violations: self.consistency_violations,
            flat_reuse: self.flat_reuse,
            wal_frames: self.wal_frames,
            wal_bytes: self.wal_bytes,
            wal_fsyncs: self.wal_fsyncs,
            wal_segments_rotated: self.wal_segments_rotated,
            wal_checkpoints: self.wal_checkpoints,
            wal_checkpoint_bytes: self.wal_checkpoint_bytes,
            batch_apply: self.batch_apply.summarize(),
            update_e2e: self.update_e2e.summarize(),
            query: self.query.summarize(),
            standing_repair: self.standing_repair.summarize(),
            standing_diff: self.standing_diff.summarize(),
            wal_append: self.wal_append.summarize(),
            wal_fsync: self.wal_fsync.summarize(),
        }
    }

    /// Report covering only the interval `earlier → self`. Counters
    /// and histogram counts/quantiles/means are interval-exact; a
    /// histogram's `max` is the cumulative maximum (an upper bound for
    /// the interval — see [`HistogramSnapshot::delta_since`]).
    pub fn delta_since(&self, earlier: &EngineSnapshot) -> StatsReport {
        StatsReport {
            batches_applied: self.batches_applied.saturating_sub(earlier.batches_applied),
            updates_applied: self.updates_applied.saturating_sub(earlier.updates_applied),
            inserts_applied: self.inserts_applied.saturating_sub(earlier.inserts_applied),
            deletes_applied: self.deletes_applied.saturating_sub(earlier.deletes_applied),
            queries_run: self.queries_run.saturating_sub(earlier.queries_run),
            standing_repairs: self
                .standing_repairs
                .saturating_sub(earlier.standing_repairs),
            standing_full_recomputes: self
                .standing_full_recomputes
                .saturating_sub(earlier.standing_full_recomputes),
            standing_diff_edges: self
                .standing_diff_edges
                .saturating_sub(earlier.standing_diff_edges),
            consistency_violations: self
                .consistency_violations
                .saturating_sub(earlier.consistency_violations),
            flat_reuse: self.flat_reuse.saturating_sub(earlier.flat_reuse),
            wal_frames: self.wal_frames.saturating_sub(earlier.wal_frames),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            wal_fsyncs: self.wal_fsyncs.saturating_sub(earlier.wal_fsyncs),
            wal_segments_rotated: self
                .wal_segments_rotated
                .saturating_sub(earlier.wal_segments_rotated),
            wal_checkpoints: self.wal_checkpoints.saturating_sub(earlier.wal_checkpoints),
            wal_checkpoint_bytes: self
                .wal_checkpoint_bytes
                .saturating_sub(earlier.wal_checkpoint_bytes),
            batch_apply: self
                .batch_apply
                .delta_since(&earlier.batch_apply)
                .summarize(),
            update_e2e: self.update_e2e.delta_since(&earlier.update_e2e).summarize(),
            query: self.query.delta_since(&earlier.query).summarize(),
            standing_repair: self
                .standing_repair
                .delta_since(&earlier.standing_repair)
                .summarize(),
            standing_diff: self
                .standing_diff
                .delta_since(&earlier.standing_diff)
                .summarize(),
            wal_append: self.wal_append.delta_since(&earlier.wal_append).summarize(),
            wal_fsync: self.wal_fsync.delta_since(&earlier.wal_fsync).summarize(),
        }
    }
}

/// Owned end-of-run summary returned by [`StreamEngine::finish`].
///
/// [`StreamEngine::finish`]: crate::StreamEngine::finish
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsReport {
    pub batches_applied: u64,
    pub updates_applied: u64,
    pub inserts_applied: u64,
    pub deletes_applied: u64,
    pub queries_run: u64,
    pub standing_repairs: u64,
    pub standing_full_recomputes: u64,
    pub standing_diff_edges: u64,
    pub consistency_violations: u64,
    pub flat_reuse: u64,
    pub wal_frames: u64,
    pub wal_bytes: u64,
    pub wal_fsyncs: u64,
    pub wal_segments_rotated: u64,
    pub wal_checkpoints: u64,
    pub wal_checkpoint_bytes: u64,
    pub batch_apply: LatencySummary,
    pub update_e2e: LatencySummary,
    pub query: LatencySummary,
    pub standing_repair: LatencySummary,
    pub standing_diff: LatencySummary,
    pub wal_append: LatencySummary,
    pub wal_fsync: LatencySummary,
}

impl StatsReport {
    /// Mean undirected updates per applied batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_applied == 0 {
            0.0
        } else {
            self.updates_applied as f64 / self.batches_applied as f64
        }
    }
}

impl std::fmt::Display for StatsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "updates: {} (net {} ins, {} del) in {} batches (mean {:.1}/batch)",
            self.updates_applied,
            self.inserts_applied,
            self.deletes_applied,
            self.batches_applied,
            self.mean_batch_size()
        )?;
        writeln!(f, "batch apply : {}", self.batch_apply)?;
        writeln!(f, "update e2e  : {}", self.update_e2e)?;
        writeln!(f, "query       : {}", self.query)?;
        if self.standing_repairs > 0 {
            writeln!(f, "standing    : {}", self.standing_repair)?;
            writeln!(
                f,
                "standing rep: {} ({} full recomputes, {} diff edges)",
                self.standing_repairs, self.standing_full_recomputes, self.standing_diff_edges
            )?;
        }
        if self.wal_frames > 0 {
            writeln!(f, "wal append  : {}", self.wal_append)?;
            writeln!(
                f,
                "wal         : {} frames, {} bytes, {} fsyncs, {} rotations, {} checkpoints",
                self.wal_frames,
                self.wal_bytes,
                self.wal_fsyncs,
                self.wal_segments_rotated,
                self.wal_checkpoints
            )?;
        }
        write!(f, "queries run : {}", self.queries_run)?;
        if self.flat_reuse > 0 {
            write!(f, " ({} flat-snapshot reuses)", self.flat_reuse)?;
        }
        if self.consistency_violations > 0 {
            write!(
                f,
                "\nCONSISTENCY VIOLATIONS: {}",
                self.consistency_violations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        let p50 = h.quantile(0.5);
        assert!(
            p50 >= Duration::from_micros(5) && p50 <= Duration::from_micros(20),
            "p50 = {p50:?}"
        );
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_millis(5), "p99 = {p99:?}");
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), Duration::from_millis(10));
    }

    #[test]
    fn mean_tracks_sum() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        assert_eq!(h.mean(), Duration::from_micros(2));
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    h.record(Duration::from_nanos(i));
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn report_renders() {
        let s = EngineStats::new();
        s.batch_apply.record(Duration::from_micros(100));
        s.batches_applied.fetch_add(1, Ordering::Relaxed);
        s.updates_applied.fetch_add(8, Ordering::Relaxed);
        let r = s.report();
        assert_eq!(r.batches_applied, 1);
        assert!((r.mean_batch_size() - 8.0).abs() < 1e-9);
        let text = r.to_string();
        assert!(text.contains("batch apply"), "{text}");
        assert!(!text.contains("VIOLATIONS"), "{text}");
    }

    #[test]
    fn stats_are_registered_by_name() {
        let s = EngineStats::new();
        s.queries_run.inc();
        s.query.record(Duration::from_micros(7));
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter("stream.queries_run"), Some(1));
        let h = snap
            .histogram("stream.query")
            .expect("histogram registered");
        assert_eq!(h.count(), 1);
        // The generic renderers see the engine metrics too.
        assert!(snap.render_text().contains("stream.batches_applied"));
        assert!(obs::json::parse(&snap.to_json().render()).is_ok());
    }

    #[test]
    fn snapshot_delta_isolates_the_interval() {
        let s = EngineStats::new();
        s.updates_applied.add(10);
        s.batches_applied.inc();
        s.update_e2e.record(Duration::from_micros(10));
        let first = s.snapshot();

        s.updates_applied.add(5);
        s.batches_applied.inc();
        for _ in 0..3 {
            s.update_e2e.record(Duration::from_millis(2));
        }
        let second = s.snapshot();

        let delta = second.delta_since(&first);
        assert_eq!(delta.updates_applied, 5);
        assert_eq!(delta.batches_applied, 1);
        assert_eq!(delta.update_e2e.count, 3);
        // Interval mean reflects only the three 2 ms samples, not the
        // earlier 10 µs one.
        assert!(delta.update_e2e.mean >= Duration::from_millis(1));
        assert!((delta.mean_batch_size() - 5.0).abs() < 1e-9);

        // Cumulative report is unaffected.
        assert_eq!(second.report().updates_applied, 15);
        assert_eq!(second.report().update_e2e.count, 4);
    }

    #[test]
    fn prefixed_stats_share_a_registry() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let a = EngineStats::on_registry_with_prefix(registry.clone(), "stream.shard0.");
        let b = EngineStats::on_registry_with_prefix(registry.clone(), "stream.shard1.");
        a.batches_applied.add(2);
        b.batches_applied.add(5);
        a.flat_reuse.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("stream.shard0.batches_applied"), Some(2));
        assert_eq!(snap.counter("stream.shard1.batches_applied"), Some(5));
        assert_eq!(snap.counter("stream.shard0.query.flat_reuse"), Some(1));
        assert_eq!(a.report().batches_applied, 2);
        assert_eq!(b.report().flat_reuse, 0);
    }

    #[test]
    fn snapshot_delta_against_empty_is_cumulative() {
        let s = EngineStats::new();
        s.queries_run.add(3);
        s.query.record(Duration::from_micros(1));
        let delta = s.snapshot().delta_since(&EngineSnapshot::default());
        assert_eq!(delta.queries_run, 3);
        assert_eq!(delta.query.count, 1);
    }
}
