//! The writer loop: drains the ingest channel into adaptive batches
//! and applies them with the paper's functional batch updates.

use crate::config::BatchPolicy;
use crate::handle::{Barrier, Envelope, Msg};
use crate::standing::StandingSet;
use crate::stats::EngineStats;
use crate::wal::{prune, write_checkpoint, DurabilityConfig, WalWriter};
use aspen::{EdgeSet, VersionedGraph};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Instant;

/// Edge counts of the versions the writer recently installed
/// (including the initial one). A snapshot acquired at *any* instant
/// must show one of these counts — a count outside the window means a
/// reader observed a torn or phantom version.
///
/// Counts are registered **before** the version carrying them is
/// installed, so there is no window where a reader can see a count
/// that is not yet tracked. Retention is bounded to the most recent
/// [`WINDOW`](Self::WINDOW) installs — memory stays constant on
/// long-running engines, and stale counts age out instead of
/// accumulating as false-negative mass. Query threads check a
/// snapshot immediately after acquiring it, so the version they hold
/// is always far younger than the window.
pub(crate) struct ConsistencyTracker {
    window: Mutex<TrackerWindow>,
}

struct TrackerWindow {
    /// Registered counts in install order, oldest first.
    order: VecDeque<u64>,
    /// Multiset view of `order` for O(1) membership.
    counts: HashMap<u64, u32>,
}

impl ConsistencyTracker {
    /// Installs remembered before the oldest ages out. Far larger than
    /// the handful of batches between a reader's `acquire` and its
    /// consistency check.
    const WINDOW: usize = 4096;

    pub fn new(initial_edges: u64) -> Self {
        let tracker = ConsistencyTracker {
            window: Mutex::new(TrackerWindow {
                order: VecDeque::new(),
                counts: HashMap::new(),
            }),
        };
        tracker.register(initial_edges);
        tracker
    }

    fn register(&self, count: u64) {
        let mut w = self.window.lock();
        w.order.push_back(count);
        *w.counts.entry(count).or_insert(0) += 1;
        if w.order.len() > Self::WINDOW {
            let old = w.order.pop_front().expect("window nonempty");
            if let std::collections::hash_map::Entry::Occupied(mut e) = w.counts.entry(old) {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                }
            }
        }
    }

    pub fn is_valid(&self, count: u64) -> bool {
        self.window.lock().counts.contains_key(&count)
    }
}

/// A batch reduced to its net effect: for every undirected edge the
/// *last* update in arrival order wins (insert/delete are set
/// operations, so the final membership of an edge depends only on the
/// last operation touching it). The result is a disjoint insert set and
/// delete set that one atomic version install applies with the same
/// outcome as replaying the batch sequentially.
struct NetBatch {
    inserts: Vec<(u32, u32)>,
    deletes: Vec<(u32, u32)>,
}

fn coalesce(batch: &[Envelope], directed: bool) -> NetBatch {
    // Undirected mode normalizes the key to (min, max) so both
    // orientations of an edge coalesce; directed-arc mode (shard
    // writers, where the mirror arc lives in another shard's engine)
    // keys on the ordered pair. Value is "last op was insert".
    let mut last: HashMap<(u32, u32), bool> = HashMap::with_capacity(batch.len());
    for env in batch {
        let (u, v) = env.update.endpoints();
        let key = if directed || u <= v { (u, v) } else { (v, u) };
        last.insert(key, env.update.is_insert());
    }
    let mut net = NetBatch {
        inserts: Vec::new(),
        deletes: Vec::new(),
    };
    for (edge, is_insert) in last {
        if is_insert {
            net.inserts.push(edge);
        } else {
            net.deletes.push(edge);
        }
    }
    net
}

/// The writer thread's durability state: the open WAL appender plus
/// the config it was built from (for checkpoint cadence and paths).
pub(crate) struct WalState {
    pub writer: WalWriter,
    pub cfg: DurabilityConfig,
}

/// Appends the batch frame for `seq` (the version about to be
/// installed) and lets the fsync policy run. A WAL write failure is
/// fatal by design: continuing would install — and thereby ack —
/// updates that can never be recovered, silently breaking the
/// durability contract, so the writer thread panics instead.
fn wal_append_batch(
    wal: &mut Option<WalState>,
    stats: &EngineStats,
    seq: u64,
    inserts: &[(u32, u32)],
    deletes: &[(u32, u32)],
) {
    let Some(w) = wal else { return };
    let t0 = Instant::now();
    let out = w
        .writer
        .append_batch(seq, inserts, deletes)
        .unwrap_or_else(|e| panic!("wal append for batch {seq} failed, refusing to ack: {e}"));
    stats.wal_append.record(t0.elapsed());
    wal_settle(stats, &w.writer, out);
}

/// Appends an epoch-complete marker before a barrier ack (sharded
/// engines); same fatality rule as batch frames.
fn wal_mark_epoch(wal: &mut Option<WalState>, stats: &EngineStats, epoch: u64) {
    let Some(w) = wal else { return };
    let out = w
        .writer
        .append_epoch(epoch)
        .unwrap_or_else(|e| panic!("wal epoch marker {epoch} failed, refusing to ack: {e}"));
    wal_settle(stats, &w.writer, out);
}

fn wal_settle(stats: &EngineStats, writer: &WalWriter, out: crate::wal::AppendOutcome) {
    stats.wal_frames.inc();
    stats.wal_bytes.add(out.bytes);
    if out.synced {
        stats.wal_fsyncs.inc();
        stats.wal_fsync.record(out.sync_time);
    }
    if out.rotated {
        stats.wal_segments_rotated.inc();
    }
    stats.wal_durable_seq.set(writer.durable_seq() as i64);
}

/// Forces the WAL tail to disk — on shutdown/disconnect, so nothing an
/// exiting engine accepted is left in a volatile tail. Failure here is
/// reported, not fatal: the engine is going away either way, and a
/// panic would poison the join the caller is blocked on.
fn wal_final_sync(wal: &mut Option<WalState>, stats: &EngineStats) {
    let Some(w) = wal else { return };
    match w.writer.sync() {
        Ok(d) => {
            stats.wal_fsyncs.inc();
            stats.wal_fsync.record(d);
            stats.wal_durable_seq.set(w.writer.durable_seq() as i64);
        }
        Err(e) => eprintln!("aspen-stream: final wal sync failed: {e}"),
    }
}

/// After installing `version`, writes a checkpoint if the config's
/// cadence says one is due, then prunes segments it covers. Errors are
/// reported but non-fatal: the WAL still holds every frame a failed
/// checkpoint would have folded up, so durability is unaffected —
/// only recovery time.
fn wal_maybe_checkpoint<E: EdgeSet>(
    wal: &mut Option<WalState>,
    stats: &EngineStats,
    vg: &VersionedGraph<E>,
    version: u64,
) {
    let Some(w) = wal else { return };
    let Some(every) = w.cfg.checkpoint_every else {
        return;
    };
    if !version.is_multiple_of(every) {
        return;
    }
    // The writer is the only installer, so this acquire is exactly the
    // version just installed.
    let g = vg.acquire();
    match write_checkpoint(w.cfg.io.as_ref(), &w.cfg.dir, version, 0, &g) {
        Ok(bytes) => {
            stats.wal_checkpoints.inc();
            stats.wal_checkpoint_bytes.add(bytes);
            if let Err(e) = prune(w.cfg.io.as_ref(), &w.cfg.dir, version, 2) {
                eprintln!("aspen-stream: wal prune after checkpoint {version} failed: {e}");
            }
        }
        Err(e) => eprintln!("aspen-stream: checkpoint at version {version} failed: {e}"),
    }
}

/// Everything the engine hands its dedicated writer thread: the graph
/// and the state the writer shares with readers (stats, the audit
/// tracker, the installed-version counter) plus writer-private state
/// (the compute pool, the standing-query set, and the WAL).
pub(crate) struct WriterShared<E: EdgeSet> {
    pub vg: Arc<VersionedGraph<E>>,
    pub stats: Arc<EngineStats>,
    pub tracker: Option<Arc<ConsistencyTracker>>,
    pub pool: Option<Arc<rayon::ThreadPool>>,
    pub installed_seq: Arc<AtomicU64>,
    pub standing: Option<StandingSet<E>>,
    /// Directed-arc mode: updates are oriented arcs that are applied
    /// as-is (no symmetrization, ordered coalescing keys). Shard
    /// engines run in this mode — the mirror arc of each undirected
    /// edge is routed to the other endpoint's shard.
    pub directed: bool,
    /// Durability: batch frames are appended (and policy-synced)
    /// *before* the version installs, so an installed batch is in the
    /// log, and a logged-but-uninstalled batch is replayed whole on
    /// recovery.
    pub wal: Option<WalState>,
}

/// Drains `rx` until every sender is gone, flushing under `policy`.
/// This is the body of the engine's dedicated writer thread.
///
/// When the engine owns a compute pool, every batch apply runs
/// `install`ed on it: the parallel `MultiInsert`/`MultiDelete` inside
/// `insert_edges`/`delete_edges` then forks onto the engine's workers
/// instead of the global pool — pool context would otherwise be lost
/// here, because this writer thread is spawned fresh and a
/// thread-local override from the builder's caller would not reach
/// it.
pub(crate) fn writer_loop<E: EdgeSet>(
    shared: WriterShared<E>,
    rx: Receiver<Msg>,
    policy: BatchPolicy,
) {
    let WriterShared {
        vg,
        stats,
        tracker,
        pool,
        installed_seq,
        mut standing,
        directed,
        mut wal,
    } = shared;
    let mut batch: Vec<Envelope> = Vec::with_capacity(policy.max_batch);
    loop {
        // Block for the first message of the next batch. A barrier with
        // nothing buffered acks immediately: every earlier update was
        // already flushed (its epoch marker still goes to the WAL
        // first, so a recovered log knows the epoch completed).
        match rx.recv() {
            Ok(Msg::Update(env)) => batch.push(env),
            Ok(Msg::Barrier(b)) => {
                wal_mark_epoch(&mut wal, &stats, b.epoch);
                b.fire();
                continue;
            }
            Ok(Msg::Shutdown) => {
                wal_final_sync(&mut wal, &stats);
                return;
            }
            Err(_) => {
                // All producers gone, nothing buffered.
                wal_final_sync(&mut wal, &stats);
                return;
            }
        }
        // Fill until max_batch or until the oldest buffered update has
        // lingered max_linger, whichever comes first. The deadline is
        // anchored at the oldest update's *enqueue* time (not at this
        // recv), so the policy's visibility bound holds even when the
        // update already aged in the channel while a previous batch
        // was being applied. A barrier ends the fill early: it must not
        // ack until the updates buffered ahead of it are installed.
        let deadline = batch[0].enqueued + policy.max_linger;
        let mut stopping = false;
        let mut pending_barrier: Option<Barrier> = None;
        while batch.len() < policy.max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(Msg::Update(env)) => batch.push(env),
                Ok(Msg::Barrier(b)) => {
                    pending_barrier = Some(b);
                    break;
                }
                Ok(Msg::Shutdown) => {
                    stopping = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    stopping = true;
                    break;
                }
            }
        }
        match &pool {
            Some(p) => p.install(|| {
                flush(
                    &vg,
                    &batch,
                    &stats,
                    tracker.as_deref(),
                    &installed_seq,
                    standing.as_mut(),
                    directed,
                    &mut wal,
                )
            }),
            None => flush(
                &vg,
                &batch,
                &stats,
                tracker.as_deref(),
                &installed_seq,
                standing.as_mut(),
                directed,
                &mut wal,
            ),
        }
        batch.clear();
        if let Some(b) = pending_barrier {
            // Fire only after the flush: the ack's version capture must
            // observe every update enqueued before the barrier. The
            // epoch marker lands before the ack for the same reason —
            // an acked cut must be reconstructible from the log.
            wal_mark_epoch(&mut wal, &stats, b.epoch);
            b.fire();
        }
        if stopping {
            wal_final_sync(&mut wal, &stats);
            return;
        }
    }
}

/// Applies one batch as a single atomic version install, repairs any
/// standing queries for the new version, and settles statistics. With
/// durability on, the batch's WAL frame is appended (and policy-
/// synced) *before* the install — write-ahead in the literal sense.
#[allow(clippy::too_many_arguments)]
fn flush<E: EdgeSet>(
    vg: &VersionedGraph<E>,
    batch: &[Envelope],
    stats: &EngineStats,
    tracker: Option<&ConsistencyTracker>,
    installed_seq: &AtomicU64,
    standing: Option<&mut StandingSet<E>>,
    directed: bool,
    wal: &mut Option<WalState>,
) {
    if batch.is_empty() {
        return;
    }
    // Phase spans (no-ops unless the `obs-trace` feature is on and
    // tracing is enabled): the whole flush, with coalesce and the
    // version install as nested sub-phases — the classic question a
    // trace answers here is how much of a slow flush was tree work
    // versus batch preprocessing.
    let _flush = obs::trace::span_cat("batch.flush", "stream");
    let net = {
        let _s = obs::trace::span_cat("batch.coalesce", "stream");
        coalesce(batch, directed)
    };
    {
        // Log before install: the frame carries the seq the install
        // below will produce, so replay order equals install order.
        let _s = obs::trace::span_cat("batch.wal", "stream");
        let seq = installed_seq.load(Ordering::Acquire) + 1;
        wal_append_batch(wal, stats, seq, &net.inserts, &net.deletes);
    }
    let timing = {
        let _s = obs::trace::span_cat("batch.apply", "stream");
        vg.update_with_timed(|g| {
            let mut next = None;
            if !net.inserts.is_empty() {
                next = Some(if directed {
                    g.insert_edges(&net.inserts)
                } else {
                    g.insert_edges(&aspen::symmetrize(&net.inserts))
                });
            }
            if !net.deletes.is_empty() {
                let base = next.as_ref().unwrap_or(g);
                next = Some(if directed {
                    base.delete_edges(&net.deletes)
                } else {
                    base.delete_edges(&aspen::symmetrize(&net.deletes))
                });
            }
            let next = next.expect("nonempty batch nets to at least one op");
            if let Some(t) = tracker {
                // Register before install: a reader that acquires the
                // new version immediately already finds its count valid.
                t.register(next.num_edges());
            }
            next
        })
    };

    // Bump the installed-version counter **before** publishing any
    // standing result for this version: a reader that sees a standing
    // result for version N is then guaranteed to read a counter ≥ N
    // (no torn repair — results never get ahead of the install).
    let version = installed_seq.fetch_add(1, Ordering::AcqRel) + 1;
    wal_maybe_checkpoint(wal, stats, vg, version);
    if let Some(standing) = standing {
        let _s = obs::trace::span_cat("batch.standing", "stream");
        // The writer is the only thread installing versions, so this
        // acquire returns exactly the version installed above.
        let new = vg.acquire();
        let t_diff = Instant::now();
        let diff = aspen::diff_graphs(&standing.prev, &new);
        stats.standing_diff.record(t_diff.elapsed());
        stats
            .standing_diff_edges
            .fetch_add(diff.num_edge_changes() as u64, Ordering::Relaxed);
        for q in &mut standing.queries {
            let t0 = Instant::now();
            let repair = q.repair(version, &diff, &new);
            stats.standing_repair.record(t0.elapsed());
            stats.standing_repairs.fetch_add(1, Ordering::Relaxed);
            if repair.full_recompute {
                stats
                    .standing_full_recomputes
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        standing.prev = new;
    }

    // The whole batch became visible at the install; settle
    // end-to-end latencies for every enqueued update it carried.
    let visible = Instant::now();
    for env in batch {
        stats
            .update_e2e
            .record(visible.saturating_duration_since(env.enqueued));
    }
    stats.batch_apply.record(timing.total());
    stats
        .updates_applied
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    stats
        .inserts_applied
        .fetch_add(net.inserts.len() as u64, Ordering::Relaxed);
    stats
        .deletes_applied
        .fetch_add(net.deletes.len() as u64, Ordering::Relaxed);
    stats.batches_applied.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::Update;

    fn env(u: Update) -> Envelope {
        Envelope {
            update: u,
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn coalesce_last_op_wins() {
        let batch = vec![
            env(Update::Insert(0, 1)),
            env(Update::Insert(1, 2)),
            env(Update::Delete(1, 0)), // other orientation of (0, 1)
            env(Update::Insert(3, 4)),
        ];
        let net = coalesce(&batch, false);
        let mut ins = net.inserts.clone();
        ins.sort_unstable();
        assert_eq!(ins, vec![(1, 2), (3, 4)]);
        assert_eq!(net.deletes, vec![(0, 1)]);
    }

    #[test]
    fn coalesce_dedupes_repeats() {
        let batch = vec![
            env(Update::Insert(5, 6)),
            env(Update::Insert(5, 6)),
            env(Update::Insert(6, 5)),
        ];
        let net = coalesce(&batch, false);
        assert_eq!(net.inserts, vec![(5, 6)]);
        assert!(net.deletes.is_empty());
    }

    #[test]
    fn coalesce_directed_keeps_orientations_distinct() {
        // In directed-arc mode (5, 6) and (6, 5) are different arcs: a
        // delete of one must not cancel an insert of the other.
        let batch = vec![
            env(Update::Insert(5, 6)),
            env(Update::Delete(6, 5)),
            env(Update::Insert(5, 6)), // repeat still dedupes
        ];
        let net = coalesce(&batch, true);
        assert_eq!(net.inserts, vec![(5, 6)]);
        assert_eq!(net.deletes, vec![(6, 5)]);
    }

    #[test]
    fn tracker_accepts_registered_counts_only() {
        let t = ConsistencyTracker::new(10);
        assert!(t.is_valid(10));
        assert!(!t.is_valid(12));
        t.register(12);
        assert!(t.is_valid(12));
    }

    #[test]
    fn tracker_window_evicts_old_counts() {
        let t = ConsistencyTracker::new(0);
        // Duplicates must survive until their last occurrence ages out.
        t.register(7);
        t.register(7);
        for i in 0..ConsistencyTracker::WINDOW as u64 {
            t.register(1_000_000 + i);
        }
        assert!(!t.is_valid(0), "initial count should have aged out");
        assert!(!t.is_valid(7), "duplicate count should age out too");
        assert!(t.is_valid(1_000_000 + ConsistencyTracker::WINDOW as u64 - 1));
    }
}
