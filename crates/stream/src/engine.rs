//! Engine assembly: builder, thread lifecycle, shutdown.

use crate::config::{BatchPolicy, EngineConfig};
use crate::handle::{Envelope, IngestHandle};
use crate::query::{QueryExecutor, QuerySpec};
use crate::stats::{EngineStats, StatsReport};
use crate::writer::{writer_loop, ConsistencyTracker};
use aspen::{EdgeSet, VersionedGraph};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configures and launches a [`StreamEngine`].
pub struct StreamEngineBuilder<E: EdgeSet> {
    vg: Arc<VersionedGraph<E>>,
    policy: BatchPolicy,
    config: EngineConfig,
    queries: Vec<QuerySpec<E>>,
    query_threads: usize,
    track_consistency: bool,
}

impl<E: EdgeSet> StreamEngineBuilder<E> {
    /// Sets the batching/backpressure policy (default:
    /// [`BatchPolicy::default`]).
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the compute configuration (default:
    /// [`EngineConfig::default`], sharing the global pool).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Shorthand for a dedicated compute pool of `n` workers, shared
    /// by the writer's batch applies and the query executor.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.config.num_threads = Some(n);
        self
    }

    /// Registers an analytic to run continuously on fresh snapshots;
    /// see [`crate::analytics`] for the built-ins.
    pub fn register_query(mut self, query: QuerySpec<E>) -> Self {
        self.queries.push(query);
        self
    }

    /// Number of query threads looping over the registered analytics
    /// (default 1; ignored when no queries are registered).
    pub fn query_threads(mut self, n: usize) -> Self {
        self.query_threads = n;
        self
    }

    /// Enables snapshot-consistency auditing: the writer registers
    /// every installed version's edge count, and query threads count a
    /// [`consistency violation`](EngineStats::consistency_violations)
    /// whenever an acquired snapshot shows an unregistered count.
    /// Costs one small mutex acquisition per batch and per query round.
    pub fn track_consistency(mut self, on: bool) -> Self {
        self.track_consistency = on;
        self
    }

    /// Validates the configuration, spawns the writer loop and query
    /// threads, and returns the running engine.
    pub fn start(self) -> StreamEngine<E> {
        self.policy.validate();
        self.config.validate();
        let (tx, rx) = sync_channel::<Envelope>(self.policy.channel_capacity);
        let stats = Arc::new(EngineStats::new());
        let tracker = self
            .track_consistency
            .then(|| Arc::new(ConsistencyTracker::new(self.vg.acquire().num_edges())));
        // One pool for the whole engine: the writer's parallel batch
        // applies and the analytics share it, so an engine sized with
        // `num_threads(n)` never fans out past `n` workers no matter
        // how many query threads race rounds.
        let pool = self.config.num_threads.map(|n| {
            Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .expect("build engine compute pool"),
            )
        });

        let writer = {
            let vg = self.vg.clone();
            let stats = stats.clone();
            let tracker = tracker.clone();
            let policy = self.policy;
            let pool = pool.clone();
            std::thread::Builder::new()
                .name("aspen-stream-writer".into())
                .spawn(move || writer_loop(vg, rx, policy, stats, tracker, pool))
                .expect("spawn writer thread")
        };

        let stop_queries = Arc::new(AtomicBool::new(false));
        let executor = Arc::new(QueryExecutor::new(
            self.vg.clone(),
            self.queries,
            stats.clone(),
            tracker,
            pool,
        ));
        let query_threads = if executor.has_queries() {
            (0..self.query_threads.max(1))
                .map(|i| {
                    let executor = executor.clone();
                    let stop = stop_queries.clone();
                    std::thread::Builder::new()
                        .name(format!("aspen-stream-query-{i}"))
                        .spawn(move || executor.run_until(&stop))
                        .expect("spawn query thread")
                })
                .collect()
        } else {
            Vec::new()
        };

        StreamEngine {
            vg: self.vg,
            handle: IngestHandle { tx },
            writer,
            query_threads,
            stop_queries,
            stats,
        }
    }
}

/// A running ingestion engine: one writer loop, any number of producer
/// handles, and a pool of query threads — all over one
/// [`VersionedGraph`].
///
/// Lifecycle: [`builder`](Self::builder) → [`start`](StreamEngineBuilder::start)
/// → clone [`handle`](Self::handle)s into producers → producers drop
/// their handles → [`finish`](Self::finish).
pub struct StreamEngine<E: EdgeSet> {
    vg: Arc<VersionedGraph<E>>,
    handle: IngestHandle,
    writer: JoinHandle<()>,
    query_threads: Vec<JoinHandle<()>>,
    stop_queries: Arc<AtomicBool>,
    stats: Arc<EngineStats>,
}

impl<E: EdgeSet> StreamEngine<E> {
    /// Starts configuring an engine over `vg`.
    pub fn builder(vg: Arc<VersionedGraph<E>>) -> StreamEngineBuilder<E> {
        StreamEngineBuilder {
            vg,
            policy: BatchPolicy::default(),
            config: EngineConfig::default(),
            queries: Vec::new(),
            query_threads: 1,
            track_consistency: false,
        }
    }

    /// A new producer handle. Clone as many as there are producers.
    pub fn handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// The graph under ingestion; `acquire` snapshots freely.
    pub fn graph(&self) -> &Arc<VersionedGraph<E>> {
        &self.vg
    }

    /// Live statistics (updated concurrently by the writer and query
    /// threads).
    pub fn stats(&self) -> &Arc<EngineStats> {
        &self.stats
    }

    /// Shuts down: drains and joins the writer (blocks until every
    /// producer [`IngestHandle`] is dropped and the channel is empty),
    /// stops and joins the query threads, and returns the final
    /// statistics report.
    pub fn finish(self) -> StatsReport {
        // Dropping the engine's own sender lets the writer's channel
        // disconnect once external producers have dropped theirs.
        drop(self.handle);
        self.writer.join().expect("writer thread panicked");
        self.stop_queries.store(true, Ordering::Release);
        for t in self.query_threads {
            t.join().expect("query thread panicked");
        }
        self.stats.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::analytics;
    use aspen::{CompressedEdges, Graph};
    use graphgen::Update;

    fn engine_over_ring(n: u32) -> StreamEngine<CompressedEdges> {
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), ((i + 1) % n, i)])
            .collect();
        let vg = Arc::new(VersionedGraph::new(Graph::from_edges(
            &edges,
            Default::default(),
        )));
        StreamEngine::builder(vg).track_consistency(true).start()
    }

    #[test]
    fn ingest_then_finish_applies_everything() {
        let engine = engine_over_ring(8);
        let vg = engine.graph().clone();
        let h = engine.handle();
        h.push(Update::Insert(0, 100)).unwrap();
        h.push(Update::Insert(100, 200)).unwrap();
        h.push(Update::Delete(0, 1)).unwrap();
        drop(h);
        let report = engine.finish();
        assert_eq!(report.updates_applied, 3);
        assert_eq!(report.update_e2e.count, 3);
        assert_eq!(report.consistency_violations, 0);
        let g = vg.acquire();
        assert!(g.contains_edge(100, 0) && g.contains_edge(200, 100));
        assert!(!g.contains_edge(0, 1));
    }

    #[test]
    fn dedicated_compute_pool_applies_batches_and_queries() {
        let edges: Vec<(u32, u32)> = (0..32u32)
            .flat_map(|i| [(i, (i + 1) % 32), ((i + 1) % 32, i)])
            .collect();
        let vg: Arc<VersionedGraph<CompressedEdges>> = Arc::new(VersionedGraph::new(
            Graph::from_edges(&edges, Default::default()),
        ));
        let engine = StreamEngine::builder(vg.clone())
            .num_threads(2)
            .register_query(analytics::connected_components())
            .track_consistency(true)
            .start();
        let h = engine.handle();
        for i in 0..300 {
            h.push(Update::Insert(i % 32, 32 + i)).unwrap();
        }
        drop(h);
        let report = engine.finish();
        assert_eq!(report.updates_applied, 300);
        assert_eq!(report.consistency_violations, 0);
        assert!(vg.acquire().contains_edge(32, 0));
    }

    #[test]
    fn finish_with_no_updates_is_clean() {
        let engine = engine_over_ring(4);
        let report = engine.finish();
        assert_eq!(report.updates_applied, 0);
        assert_eq!(report.batches_applied, 0);
    }

    #[test]
    fn queries_run_while_ingesting() {
        let edges: Vec<(u32, u32)> = (0..64u32)
            .flat_map(|i| [(i, (i + 1) % 64), ((i + 1) % 64, i)])
            .collect();
        let vg: Arc<VersionedGraph<CompressedEdges>> = Arc::new(VersionedGraph::new(
            Graph::from_edges(&edges, Default::default()),
        ));
        let engine = StreamEngine::builder(vg)
            .register_query(analytics::connected_components())
            .query_threads(2)
            .track_consistency(true)
            .start();
        let h = engine.handle();
        for i in 0..500 {
            h.push(Update::Insert(i % 64, 64 + i)).unwrap();
        }
        drop(h);
        // Let the queries observe some post-ingestion versions too.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let report = engine.finish();
        assert_eq!(report.updates_applied, 500);
        assert!(report.queries_run > 0, "query threads never ran");
        assert_eq!(report.consistency_violations, 0);
    }
}
