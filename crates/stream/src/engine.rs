//! Engine assembly: builder, thread lifecycle, shutdown.

use crate::config::{BatchPolicy, EngineConfig};
use crate::handle::{IngestHandle, Msg};
use crate::query::{QueryExecutor, QuerySpec};
use crate::standing::{StandingAnalytic, StandingHandle, StandingQueryState, StandingSet};
use crate::stats::{EngineStats, StatsReport};
use crate::wal::{DurabilityConfig, WalWriter};
use crate::writer::{writer_loop, ConsistencyTracker, WalState, WriterShared};
use aspen::{EdgeSet, VersionedGraph};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configures and launches a [`StreamEngine`].
pub struct StreamEngineBuilder<E: EdgeSet> {
    vg: Arc<VersionedGraph<E>>,
    policy: BatchPolicy,
    config: EngineConfig,
    queries: Vec<QuerySpec<E>>,
    standing: Vec<Box<dyn StandingAnalytic<E>>>,
    query_threads: usize,
    track_consistency: bool,
    directed_arcs: bool,
    stats: Option<Arc<EngineStats>>,
    durability: Option<DurabilityConfig>,
    first_seq: u64,
}

impl<E: EdgeSet> StreamEngineBuilder<E> {
    /// Sets the batching/backpressure policy (default:
    /// [`BatchPolicy::default`]).
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the compute configuration (default:
    /// [`EngineConfig::default`], sharing the global pool).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Shorthand for a dedicated compute pool of `n` workers, shared
    /// by the writer's batch applies and the query executor.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.config.num_threads = Some(n);
        self
    }

    /// Registers an analytic to run continuously on fresh snapshots;
    /// see [`crate::analytics`] for the built-ins.
    pub fn register_query(mut self, query: QuerySpec<E>) -> Self {
        self.queries.push(query);
        self
    }

    /// Registers a **standing query**: an analytic whose result the
    /// writer loop *repairs* after every installed batch — driven by
    /// the [`aspen::GraphDiff`] between consecutive versions — instead
    /// of being recomputed from scratch by query threads. Read the
    /// latest result through [`StreamEngine::standing`]; see
    /// [`crate::standing`] for the built-ins and the publication
    /// discipline.
    pub fn register_standing(mut self, analytic: impl StandingAnalytic<E> + 'static) -> Self {
        self.standing.push(Box::new(analytic));
        self
    }

    /// Number of query threads looping over the registered analytics
    /// (default 1; ignored when no queries are registered).
    pub fn query_threads(mut self, n: usize) -> Self {
        self.query_threads = n;
        self
    }

    /// Enables snapshot-consistency auditing: the writer registers
    /// every installed version's edge count, and query threads count a
    /// [`consistency violation`](EngineStats::consistency_violations)
    /// whenever an acquired snapshot shows an unregistered count.
    /// Costs one small mutex acquisition per batch and per query round.
    pub fn track_consistency(mut self, on: bool) -> Self {
        self.track_consistency = on;
        self
    }

    /// Treats every pushed update as a **directed arc** applied as-is:
    /// the writer neither symmetrizes nor coalesces opposite
    /// orientations together. This is how the sharded engine runs its
    /// per-shard engines — each undirected edge's two arcs live in the
    /// two endpoint owners' shards, so symmetrizing locally would
    /// fabricate arcs the shard does not own.
    pub fn directed_arcs(mut self, on: bool) -> Self {
        self.directed_arcs = on;
        self
    }

    /// Uses a caller-constructed stats block instead of a fresh one —
    /// the sharded engine pre-creates per-shard stats so it can attach
    /// them to an obs registry under `stream.shard<K>.*` names before
    /// the shards start.
    pub fn with_stats(mut self, stats: Arc<EngineStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Turns on durability: every batch is framed into a write-ahead
    /// log (and fsynced per [`DurabilityConfig::fsync`]) *before* its
    /// version installs, and checkpoints bound recovery work. To
    /// restart from an existing log, run [`crate::wal::recover`]
    /// first, build the [`VersionedGraph`] from the recovered graph,
    /// and pass the recovered seq to [`first_seq`](Self::first_seq).
    pub fn durability(mut self, cfg: DurabilityConfig) -> Self {
        self.durability = Some(cfg);
        self
    }

    /// Starts version numbering at `seq` instead of 0 — set this to
    /// [`crate::wal::Recovered::seq`] when resuming a durable engine,
    /// so new WAL frames continue the recovered sequence.
    pub fn first_seq(mut self, seq: u64) -> Self {
        self.first_seq = seq;
        self
    }

    /// Validates the configuration, spawns the writer loop and query
    /// threads, and returns the running engine.
    pub fn start(self) -> StreamEngine<E> {
        self.policy.validate();
        self.config.validate();
        let (tx, rx) = sync_channel::<Msg>(self.policy.channel_capacity);
        let stats = self.stats.unwrap_or_else(|| Arc::new(EngineStats::new()));
        // Open (or create) the WAL before anything can be ingested.
        // `first_seq` anchors both the version counter and the log, so
        // frame seqs always equal the versions they produce.
        let wal = self.durability.map(|cfg| {
            let writer = WalWriter::open(
                Arc::clone(&cfg.io),
                &cfg.dir,
                cfg.fsync,
                cfg.segment_bytes,
                self.first_seq,
            )
            .unwrap_or_else(|e| panic!("open write-ahead log in {:?}: {e}", cfg.dir));
            assert_eq!(
                writer.next_seq(),
                self.first_seq + 1,
                "WAL in {:?} continues past first_seq {} — recover() it first \
                 and pass the recovered seq to first_seq()",
                cfg.dir,
                self.first_seq
            );
            stats.wal_durable_seq.set(writer.durable_seq() as i64);
            WalState { writer, cfg }
        });
        let tracker = self
            .track_consistency
            .then(|| Arc::new(ConsistencyTracker::new(self.vg.acquire().num_edges())));
        // One pool for the whole engine: the writer's parallel batch
        // applies and the analytics share it, so an engine sized with
        // `num_threads(n)` never fans out past `n` workers no matter
        // how many query threads race rounds.
        let pool = self.config.num_threads.map(|n| {
            Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .expect("build engine compute pool"),
            )
        });

        // Standing queries initialize on the caller's thread (from the
        // engine's starting snapshot) so their version-0 results are
        // readable before `start` even returns.
        let installed_seq = Arc::new(AtomicU64::new(self.first_seq));
        let mut standing_handles = Vec::with_capacity(self.standing.len());
        let standing_set = if self.standing.is_empty() {
            None
        } else {
            let initial = self.vg.acquire();
            let init_one = |analytic| {
                let (state, handle) = StandingQueryState::init(analytic, &initial);
                standing_handles.push(handle);
                state
            };
            let queries = match &pool {
                Some(p) => p.install(|| self.standing.into_iter().map(init_one).collect()),
                None => self.standing.into_iter().map(init_one).collect(),
            };
            Some(StandingSet {
                prev: initial,
                queries,
            })
        };

        let writer = {
            let vg = self.vg.clone();
            let stats = stats.clone();
            let tracker = tracker.clone();
            let policy = self.policy;
            let pool = pool.clone();
            let installed_seq = installed_seq.clone();
            let directed = self.directed_arcs;
            std::thread::Builder::new()
                .name("aspen-stream-writer".into())
                .spawn(move || {
                    let shared = WriterShared {
                        vg,
                        stats,
                        tracker,
                        pool,
                        installed_seq,
                        standing: standing_set,
                        directed,
                        wal,
                    };
                    writer_loop(shared, rx, policy)
                })
                .expect("spawn writer thread")
        };

        let stop_queries = Arc::new(AtomicBool::new(false));
        let executor = Arc::new(QueryExecutor::new(
            self.vg.clone(),
            self.queries,
            stats.clone(),
            tracker,
            pool,
        ));
        let query_threads = if executor.has_queries() {
            (0..self.query_threads.max(1))
                .map(|i| {
                    let executor = executor.clone();
                    let stop = stop_queries.clone();
                    std::thread::Builder::new()
                        .name(format!("aspen-stream-query-{i}"))
                        .spawn(move || executor.run_until(&stop))
                        .expect("spawn query thread")
                })
                .collect()
        } else {
            Vec::new()
        };

        StreamEngine {
            vg: self.vg,
            handle: IngestHandle {
                tx,
                closed: Arc::new(AtomicBool::new(false)),
            },
            writer,
            query_threads,
            stop_queries,
            stats,
            installed_seq,
            standing_handles,
        }
    }
}

/// A running ingestion engine: one writer loop, any number of producer
/// handles, and a pool of query threads — all over one
/// [`VersionedGraph`].
///
/// Lifecycle: [`builder`](Self::builder) → [`start`](StreamEngineBuilder::start)
/// → clone [`handle`](Self::handle)s into producers → producers drop
/// their handles → [`finish`](Self::finish).
pub struct StreamEngine<E: EdgeSet> {
    vg: Arc<VersionedGraph<E>>,
    handle: IngestHandle,
    writer: JoinHandle<()>,
    query_threads: Vec<JoinHandle<()>>,
    stop_queries: Arc<AtomicBool>,
    stats: Arc<EngineStats>,
    installed_seq: Arc<AtomicU64>,
    standing_handles: Vec<StandingHandle>,
}

impl<E: EdgeSet> StreamEngine<E> {
    /// Starts configuring an engine over `vg`.
    pub fn builder(vg: Arc<VersionedGraph<E>>) -> StreamEngineBuilder<E> {
        StreamEngineBuilder {
            vg,
            policy: BatchPolicy::default(),
            config: EngineConfig::default(),
            queries: Vec::new(),
            standing: Vec::new(),
            query_threads: 1,
            track_consistency: false,
            directed_arcs: false,
            stats: None,
            durability: None,
            first_seq: 0,
        }
    }

    /// A new producer handle. Clone as many as there are producers.
    pub fn handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// The graph under ingestion; `acquire` snapshots freely.
    pub fn graph(&self) -> &Arc<VersionedGraph<E>> {
        &self.vg
    }

    /// Live statistics (updated concurrently by the writer and query
    /// threads).
    pub fn stats(&self) -> &Arc<EngineStats> {
        &self.stats
    }

    /// Version sequence number of the most recently installed batch
    /// (0 = the initial snapshot, +1 per batch). Any standing result
    /// readable *now* has `version <= installed_version()` — the
    /// torn-repair-freedom invariant.
    pub fn installed_version(&self) -> u64 {
        self.installed_seq.load(Ordering::Acquire)
    }

    /// The shared installed-version counter itself; the sharded engine
    /// reads per-shard counters when assembling version vectors.
    pub(crate) fn installed_counter(&self) -> Arc<AtomicU64> {
        self.installed_seq.clone()
    }

    /// Reader handle for the standing query named `name` (as given by
    /// its [`StandingAnalytic::name`]), if one was registered.
    pub fn standing(&self, name: &str) -> Option<StandingHandle> {
        self.standing_handles
            .iter()
            .find(|h| h.name() == name)
            .cloned()
    }

    /// Reader handles for every registered standing query, in
    /// registration order.
    pub fn standing_handles(&self) -> &[StandingHandle] {
        &self.standing_handles
    }

    /// Shuts down: drains and joins the writer (blocks until every
    /// producer [`IngestHandle`] is dropped and the channel is empty),
    /// stops and joins the query threads, and returns the final
    /// statistics report.
    pub fn finish(self) -> StatsReport {
        // Dropping the engine's own sender lets the writer's channel
        // disconnect once external producers have dropped theirs.
        drop(self.handle);
        self.writer.join().expect("writer thread panicked");
        self.stop_queries.store(true, Ordering::Release);
        for t in self.query_threads {
            t.join().expect("query thread panicked");
        }
        self.stats.report()
    }

    /// Graceful shutdown that does **not** wait for producers to drop
    /// their handles: everything already enqueued is drained, flushed,
    /// and installed, the WAL tail is fsynced, and then the writer and
    /// query threads are joined. Producers racing the close see
    /// [`crate::IngestError::Closed`] on their next push instead of
    /// blocking forever on an undrained channel.
    pub fn close(self) -> StatsReport {
        self.handle.closed.store(true, Ordering::Release);
        // FIFO channel: the shutdown message sorts after every update
        // already accepted, so nothing acked is abandoned. The send
        // only fails if the writer is already gone — equally done.
        let _ = self.handle.push_shutdown();
        drop(self.handle);
        self.writer.join().expect("writer thread panicked");
        self.stop_queries.store(true, Ordering::Release);
        for t in self.query_threads {
            t.join().expect("query thread panicked");
        }
        self.stats.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::analytics;
    use aspen::{CompressedEdges, Graph};
    use graphgen::Update;

    fn engine_over_ring(n: u32) -> StreamEngine<CompressedEdges> {
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), ((i + 1) % n, i)])
            .collect();
        let vg = Arc::new(VersionedGraph::new(Graph::from_edges(
            &edges,
            Default::default(),
        )));
        StreamEngine::builder(vg).track_consistency(true).start()
    }

    #[test]
    fn ingest_then_finish_applies_everything() {
        let engine = engine_over_ring(8);
        let vg = engine.graph().clone();
        let h = engine.handle();
        h.push(Update::Insert(0, 100)).unwrap();
        h.push(Update::Insert(100, 200)).unwrap();
        h.push(Update::Delete(0, 1)).unwrap();
        drop(h);
        let report = engine.finish();
        assert_eq!(report.updates_applied, 3);
        assert_eq!(report.update_e2e.count, 3);
        assert_eq!(report.consistency_violations, 0);
        let g = vg.acquire();
        assert!(g.contains_edge(100, 0) && g.contains_edge(200, 100));
        assert!(!g.contains_edge(0, 1));
    }

    #[test]
    fn dedicated_compute_pool_applies_batches_and_queries() {
        let edges: Vec<(u32, u32)> = (0..32u32)
            .flat_map(|i| [(i, (i + 1) % 32), ((i + 1) % 32, i)])
            .collect();
        let vg: Arc<VersionedGraph<CompressedEdges>> = Arc::new(VersionedGraph::new(
            Graph::from_edges(&edges, Default::default()),
        ));
        let engine = StreamEngine::builder(vg.clone())
            .num_threads(2)
            .register_query(analytics::connected_components())
            .track_consistency(true)
            .start();
        let h = engine.handle();
        for i in 0..300 {
            h.push(Update::Insert(i % 32, 32 + i)).unwrap();
        }
        drop(h);
        let report = engine.finish();
        assert_eq!(report.updates_applied, 300);
        assert_eq!(report.consistency_violations, 0);
        assert!(vg.acquire().contains_edge(32, 0));
    }

    #[test]
    fn standing_query_repairs_across_ingestion() {
        let engine = engine_over_ring(16);
        let builder_engine = {
            // Rebuild with a standing CC query (engine_over_ring has none).
            let vg = engine.graph().clone();
            drop(engine);
            StreamEngine::builder(vg)
                .register_standing(crate::standing::connected_components())
                .register_standing(crate::standing::bfs_from(0))
                .start()
        };
        let cc = builder_engine.standing("cc").expect("cc registered");
        let bfs = builder_engine.standing("bfs").expect("bfs registered");
        assert!(builder_engine.standing("nope").is_none());
        assert_eq!(builder_engine.standing_handles().len(), 2);
        // Version-0 results are readable before any ingestion.
        assert_eq!(cc.read().version, 0);
        assert_eq!(bfs.read().values[0], 0);
        let h = builder_engine.handle();
        for i in 0..200u32 {
            h.push(Update::Insert(i % 16, 16 + i)).unwrap();
        }
        h.push(Update::Delete(0, 1)).unwrap();
        drop(h);
        let vg = builder_engine.graph().clone();
        let report = builder_engine.finish();
        assert!(report.standing_repairs >= 2, "writer never repaired");
        let g = vg.acquire();
        let r = cc.read();
        assert_eq!(*r.values, algorithms::connected_components(&*g));
        // After drain, the final result reflects the last installed batch.
        assert_eq!(r.version, report.batches_applied);
        assert_eq!(*bfs.read().values, algorithms::bfs(&*g, 0).dist);
    }

    #[test]
    fn finish_with_no_updates_is_clean() {
        let engine = engine_over_ring(4);
        let report = engine.finish();
        assert_eq!(report.updates_applied, 0);
        assert_eq!(report.batches_applied, 0);
    }

    #[test]
    fn queries_run_while_ingesting() {
        let edges: Vec<(u32, u32)> = (0..64u32)
            .flat_map(|i| [(i, (i + 1) % 64), ((i + 1) % 64, i)])
            .collect();
        let vg: Arc<VersionedGraph<CompressedEdges>> = Arc::new(VersionedGraph::new(
            Graph::from_edges(&edges, Default::default()),
        ));
        let engine = StreamEngine::builder(vg)
            .register_query(analytics::connected_components())
            .query_threads(2)
            .track_consistency(true)
            .start();
        let h = engine.handle();
        for i in 0..500 {
            h.push(Update::Insert(i % 64, 64 + i)).unwrap();
        }
        drop(h);
        // Let the queries observe some post-ingestion versions too.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let report = engine.finish();
        assert_eq!(report.updates_applied, 500);
        assert!(report.queries_run > 0, "query threads never ran");
        assert_eq!(report.consistency_violations, 0);
    }
}
