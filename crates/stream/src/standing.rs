//! Standing queries: analytics maintained **incrementally** by the
//! writer loop instead of recomputed per snapshot by query threads.
//!
//! A [`StandingAnalytic`] initializes from the engine's starting
//! snapshot and is thereafter *repaired* after every batch install,
//! driven by the [`aspen::GraphDiff`] between the consecutive versions
//! (cheap to extract thanks to structural sharing). Results are
//! published as immutable [`StandingResult`]s behind an `O(1)`
//! pointer-swap slot — readers clone an `Arc` under a never-held-long
//! mutex, exactly the publication discipline
//! [`aspen::VersionedGraph::acquire`] uses — so readers never block
//! the writer and never observe a partially repaired result.
//!
//! Torn-repair freedom: the writer bumps the engine's installed-version
//! counter *before* publishing the results repaired for that version,
//! so a reader that sees a result for version `v` is guaranteed the
//! counter already reads at least `v`
//! ([`StreamEngine::installed_version`]). The test suite asserts this
//! invariant under concurrent producers and readers.
//!
//! Because incremental repair is the classic source of silent
//! wrong-answer bugs, every analytic also exposes its from-scratch
//! [`oracle`](StandingAnalytic::oracle), and the differential harness
//! in `tests/incremental_oracle.rs` replays randomized histories
//! comparing repair against recomputation after every batch.
//!
//! [`StreamEngine::installed_version`]: crate::StreamEngine::installed_version

use algorithms::incremental::{DeltaBfs, DeltaCc, RepairStats};
use aspen::{EdgeSet, Graph, GraphDiff, GraphView};
use parking_lot::Mutex;
use std::sync::Arc;

/// An analytic the writer can maintain across versions.
///
/// Implementations own whatever auxiliary state repair needs (spanning
/// forests, BFS trees, …). `repair` must produce values identical to
/// re-running `init` on `graph` — the differential harness enforces it.
pub trait StandingAnalytic<E: EdgeSet>: Send {
    /// Short name; the lookup key for [`StandingHandle`]s.
    fn name(&self) -> &'static str;

    /// Computes the result from scratch on `graph` and adopts it as
    /// the maintained state.
    fn init(&mut self, graph: &Graph<E>) -> Arc<Vec<u32>>;

    /// Repairs the maintained result for `graph`, given the diff from
    /// the previously applied version to `graph`.
    fn repair(&mut self, diff: &GraphDiff, graph: &Graph<E>) -> (Arc<Vec<u32>>, RepairStats);

    /// The from-scratch reference answer on `graph` (pure; does not
    /// touch maintained state). Differential tests compare `repair`
    /// output against this after every batch.
    fn oracle(&self, graph: &Graph<E>) -> Vec<u32>;
}

/// One published standing-query result (immutable once published).
#[derive(Clone, Debug)]
pub struct StandingResult {
    /// Engine version sequence number this result reflects: 0 is the
    /// initial snapshot, +1 per installed batch. Never exceeds
    /// [`StreamEngine::installed_version`] at the time of any read.
    ///
    /// [`StreamEngine::installed_version`]: crate::StreamEngine::installed_version
    pub version: u64,
    /// The analytic's value array (CC labels, BFS distances, …).
    pub values: Arc<Vec<u32>>,
    /// FNV-1a digest of `values`, for cheap cross-checking.
    pub digest: u64,
    /// Whether this result came from incremental repair (`false` for
    /// the initial result and for full-recompute fallbacks).
    pub repaired_incrementally: bool,
    /// Repair effort details for the batch that produced this result.
    pub stats: RepairStats,
}

/// FNV-1a over the little-endian bytes of `values`.
pub fn digest_values(values: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// The publication slot: readers clone the current `Arc` under a
/// pointer-copy critical section (same discipline as
/// [`aspen::VersionedGraph::acquire`]).
pub(crate) struct Slot {
    result: Mutex<Arc<StandingResult>>,
}

impl Slot {
    fn new(initial: StandingResult) -> Self {
        Slot {
            result: Mutex::new(Arc::new(initial)),
        }
    }

    fn publish(&self, result: StandingResult) {
        *self.result.lock() = Arc::new(result);
    }

    fn read(&self) -> Arc<StandingResult> {
        self.result.lock().clone()
    }
}

/// A cloneable reader handle onto one standing query's latest result.
#[derive(Clone)]
pub struct StandingHandle {
    pub(crate) name: &'static str,
    pub(crate) slot: Arc<Slot>,
}

impl StandingHandle {
    /// The query's name (as given by its [`StandingAnalytic::name`]).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The latest published result; `O(1)`, never blocks the writer
    /// for longer than a pointer copy.
    pub fn read(&self) -> Arc<StandingResult> {
        self.slot.read()
    }
}

/// The writer-side registry: every registered analytic plus its slot.
pub(crate) struct StandingQueryState<E: EdgeSet> {
    pub(crate) analytic: Box<dyn StandingAnalytic<E>>,
    pub(crate) slot: Arc<Slot>,
}

impl<E: EdgeSet> StandingQueryState<E> {
    /// Initializes the analytic on `graph` and returns the state plus
    /// a reader handle, with the version-0 result already published.
    pub(crate) fn init(
        mut analytic: Box<dyn StandingAnalytic<E>>,
        graph: &Graph<E>,
    ) -> (Self, StandingHandle) {
        let values = analytic.init(graph);
        let digest = digest_values(&values);
        let slot = Arc::new(Slot::new(StandingResult {
            version: 0,
            values,
            digest,
            repaired_incrementally: false,
            stats: RepairStats::default(),
        }));
        let handle = StandingHandle {
            name: analytic.name(),
            slot: slot.clone(),
        };
        (StandingQueryState { analytic, slot }, handle)
    }

    /// Repairs for version `version` of `graph` and publishes.
    pub(crate) fn repair(
        &mut self,
        version: u64,
        diff: &GraphDiff,
        graph: &Graph<E>,
    ) -> RepairStats {
        let (values, stats) = self.analytic.repair(diff, graph);
        let digest = digest_values(&values);
        self.slot.publish(StandingResult {
            version,
            values,
            digest,
            repaired_incrementally: !stats.full_recompute,
            stats,
        });
        stats
    }
}

/// Everything the writer loop carries to maintain standing queries:
/// the previously applied version (diff base) and the registry.
pub(crate) struct StandingSet<E: EdgeSet> {
    pub(crate) prev: aspen::Version<E>,
    pub(crate) queries: Vec<StandingQueryState<E>>,
}

/// Standing connected components ([`algorithms::incremental::DeltaCc`]
/// under the hood); values are min-id component labels.
pub struct StandingCc {
    cc: Option<DeltaCc>,
}

/// Builds the standing connected-components analytic.
pub fn connected_components() -> StandingCc {
    StandingCc { cc: None }
}

impl<E: EdgeSet> StandingAnalytic<E> for StandingCc {
    fn name(&self) -> &'static str {
        "cc"
    }

    fn init(&mut self, graph: &Graph<E>) -> Arc<Vec<u32>> {
        let cc = DeltaCc::new(graph);
        let values = Arc::new(cc.labels().to_vec());
        self.cc = Some(cc);
        values
    }

    fn repair(&mut self, diff: &GraphDiff, graph: &Graph<E>) -> (Arc<Vec<u32>>, RepairStats) {
        let cc = self.cc.as_mut().expect("repair before init");
        let stats = cc.apply_diff(diff, graph);
        (Arc::new(cc.labels().to_vec()), stats)
    }

    fn oracle(&self, graph: &Graph<E>) -> Vec<u32> {
        algorithms::connected_components(graph)
    }
}

/// Standing single-source BFS distances
/// ([`algorithms::incremental::DeltaBfs`] under the hood); values are
/// hop distances with `u32::MAX` for unreached.
pub struct StandingBfs {
    src: u32,
    bfs: Option<DeltaBfs>,
}

/// Builds the standing BFS analytic rooted at `src`.
pub fn bfs_from(src: u32) -> StandingBfs {
    StandingBfs { src, bfs: None }
}

impl<E: EdgeSet> StandingAnalytic<E> for StandingBfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn init(&mut self, graph: &Graph<E>) -> Arc<Vec<u32>> {
        let bfs = DeltaBfs::new(graph, self.src);
        let values = Arc::new(bfs.dist().to_vec());
        self.bfs = Some(bfs);
        values
    }

    fn repair(&mut self, diff: &GraphDiff, graph: &Graph<E>) -> (Arc<Vec<u32>>, RepairStats) {
        let bfs = self.bfs.as_mut().expect("repair before init");
        let stats = bfs.apply_diff(diff, graph);
        (Arc::new(bfs.dist().to_vec()), stats)
    }

    fn oracle(&self, graph: &Graph<E>) -> Vec<u32> {
        if (self.src as usize) >= graph.id_bound() {
            return vec![u32::MAX; graph.id_bound()];
        }
        algorithms::bfs(graph, self.src).dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{diff_graphs, CompressedEdges, Graph};

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn standing_cc_matches_oracle_across_repairs() {
        let g = G::from_edges(&sym(&[(0, 1), (2, 3)]), Default::default());
        let mut q: Box<dyn StandingAnalytic<CompressedEdges>> = Box::new(connected_components());
        let init = q.init(&g);
        assert_eq!(*init, q.oracle(&g));
        let g2 = g
            .insert_edges(&sym(&[(1, 2)]))
            .delete_edges(&sym(&[(0, 1)]));
        let (vals, _) = q.repair(&diff_graphs(&g, &g2), &g2);
        assert_eq!(*vals, q.oracle(&g2));
    }

    #[test]
    fn standing_bfs_matches_oracle_across_repairs() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 3)]), Default::default());
        let mut q: Box<dyn StandingAnalytic<CompressedEdges>> = Box::new(bfs_from(0));
        let init = q.init(&g);
        assert_eq!(*init, q.oracle(&g));
        let g2 = g
            .delete_edges(&sym(&[(1, 2)]))
            .insert_edges(&sym(&[(0, 3)]));
        let (vals, _) = q.repair(&diff_graphs(&g, &g2), &g2);
        assert_eq!(*vals, q.oracle(&g2));
    }

    #[test]
    fn slot_publishes_monotone_versions() {
        let g = G::from_edges(&sym(&[(0, 1)]), Default::default());
        let (mut state, handle) =
            StandingQueryState::<CompressedEdges>::init(Box::new(connected_components()), &g);
        assert_eq!(handle.read().version, 0);
        let g2 = g.insert_edges(&sym(&[(1, 2)]));
        state.repair(1, &diff_graphs(&g, &g2), &g2);
        let r = handle.read();
        assert_eq!(r.version, 1);
        assert!(r.repaired_incrementally);
        assert_eq!(r.digest, digest_values(&r.values));
    }

    #[test]
    fn digest_is_order_sensitive() {
        assert_ne!(digest_values(&[1, 2]), digest_values(&[2, 1]));
        assert_ne!(digest_values(&[]), digest_values(&[0]));
    }
}
