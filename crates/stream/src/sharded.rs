//! The sharded multi-writer engine: N independent [`StreamEngine`]s,
//! one per vertex-space shard, behind a single ingest front end and a
//! consistent-cut query surface.
//!
//! # Why
//!
//! One [`aspen::VersionedGraph`] means one writer loop: every batch
//! serializes through a single root install. Partitioning the vertex
//! space across shards gives each partition its own writer loop,
//! version chain, and batch pipeline — inserts touching different
//! shards proceed concurrently end to end.
//!
//! # Topology
//!
//! An [`aspen::ShardRouter`] owns the partitioning decision. The
//! undirected edge `{u, v}` is stored as the directed arc `(u, v)` in
//! `shard_of(u)` and the mirror arc `(v, u)` in `shard_of(v)`
//! (per-shard engines run in [`directed-arc mode`]), so any vertex's
//! full adjacency list lives in its owner shard and neighbor scans
//! never cross shards. Summing per-shard directed edge counts yields
//! the global count with no double counting.
//!
//! [`directed-arc mode`]: crate::StreamEngineBuilder::directed_arcs
//!
//! # Consistency: epoch barriers and version vectors
//!
//! Concurrent shard writers flush on their own schedules, so "acquire
//! every shard's latest version" can observe a **mirror-torn** state:
//! arc `(u, v)` applied in `shard_of(u)` but `(v, u)` not yet applied
//! in `shard_of(v)`. The front end prevents this by construction:
//!
//! 1. A single **router thread** drains the producer channel into
//!    **epochs** under the engine's [`BatchPolicy`], splitting each
//!    update into its two arcs and forwarding them to the owner
//!    shards' channels (both arcs routed in the same epoch).
//! 2. After routing an epoch it pushes a barrier message onto **every**
//!    shard channel. Shard channels are FIFO and each shard has
//!    exactly one writer, so by the time a shard's writer reaches the
//!    barrier it has installed every update of that epoch (and none of
//!    a later one) — it flushes its pending batch and acks with its
//!    post-epoch version.
//! 3. When all shards have acked epoch `e`, the collector publishes a
//!    [`ShardedCut`]: the per-shard snapshots plus the
//!    [`VersionVector`] labeling them. Successive cuts' vectors are
//!    totally ordered ([`VersionVector::dominates`]).
//!
//! Queries [`pin`](ShardedEngine::pin) the latest cut and run either
//! through the [`GraphView`] impl (any existing algorithm, unchanged)
//! or through the sharded-native fan-out/merge paths
//! ([`algorithms::bfs_sharded`], [`algorithms::cc_sharded`]).

use crate::config::BatchPolicy;
use crate::handle::{Barrier, Envelope, IngestError};
use crate::stats::{EngineStats, StatsReport};
use crate::wal::{
    prune, write_checkpoint, write_manifest, DurabilityConfig, Manifest, RecoveredSharded, WalError,
};
use crate::StreamEngine;
use aspen::{
    EdgeSet, Graph, GraphView, ShardRouter, Version, VersionVector, VersionedGraph, VertexId,
};
use graphgen::{partition_arcs, route_update, Update};
use obs::{Counter, Gauge, Registry};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A consistent cut across every shard: one immutable snapshot per
/// shard, all aligned on the same ingest epoch, labeled by the
/// [`VersionVector`] of per-shard installed versions.
///
/// Implements [`GraphView`] by routing every vertex access to the
/// owner shard, so any unsharded algorithm runs on a cut unchanged;
/// [`bfs`](Self::bfs) and [`connected_components`](Self::connected_components)
/// run the sharded-native fan-out/merge versions instead.
pub struct ShardedCut<E: EdgeSet> {
    router: ShardRouter,
    epoch: u64,
    vector: VersionVector,
    shards: Vec<Version<E>>,
}

impl<E: EdgeSet> ShardedCut<E> {
    /// The ingest epoch this cut closed (0 = the initial state).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-shard installed-version numbers at this cut.
    pub fn vector(&self) -> &VersionVector {
        &self.vector
    }

    /// The router that partitioned this cut's vertex space.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Shard `k`'s snapshot.
    pub fn local(&self, k: usize) -> &Version<E> {
        &self.shards[k]
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_refs(&self) -> Vec<&Graph<E>> {
        self.shards.iter().map(|s| s.as_ref()).collect()
    }

    /// Fan-out/merge BFS from `src` (frontier exchange per round);
    /// distances match the unsharded [`algorithms::bfs`] exactly.
    pub fn bfs(&self, src: VertexId) -> algorithms::BfsResult {
        algorithms::bfs_sharded(&self.shard_refs(), &self.router, src)
    }

    /// Fan-out/merge connected components (per-shard union-find, then
    /// a boundary merge); labels match the unsharded
    /// [`algorithms::connected_components`] exactly.
    pub fn connected_components(&self) -> Vec<u32> {
        algorithms::cc_sharded(&self.shard_refs(), &self.router)
    }

    /// Audits the mirror invariant: every arc `(u, v)` in `u`'s owner
    /// shard must have its mirror `(v, u)` in `v`'s owner shard.
    /// Returns the number of violations (0 on any published cut — a
    /// nonzero count means the epoch-barrier protocol broke).
    pub fn check_mirror_consistency(&self) -> usize {
        let mut violations = 0usize;
        for (k, shard) in self.shards.iter().enumerate() {
            for v in 0..shard.id_bound() as u32 {
                if self.router.shard_of(v) != k {
                    continue;
                }
                shard.for_each_neighbor(v, &mut |w| {
                    let owner = &self.shards[self.router.shard_of(w)];
                    if !owner.contains_edge(w, v) {
                        violations += 1;
                    }
                });
            }
        }
        violations
    }
}

impl<E: EdgeSet> GraphView for ShardedCut<E> {
    fn id_bound(&self) -> usize {
        // Mirroring makes every edge endpoint a source in its owner
        // shard, so the max over shard-local bounds is the global one.
        self.shards.iter().map(|s| s.id_bound()).max().unwrap_or(0)
    }

    fn num_edges(&self) -> u64 {
        self.shards.iter().map(|s| s.num_edges()).sum()
    }

    fn degree(&self, v: VertexId) -> usize {
        let shard = &self.shards[self.router.shard_of(v)];
        if (v as usize) < shard.id_bound() {
            shard.degree(v)
        } else {
            0
        }
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        let shard = &self.shards[self.router.shard_of(v)];
        if (v as usize) < shard.id_bound() {
            shard.for_each_neighbor(v, f);
        }
    }

    fn for_each_neighbor_until(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        let shard = &self.shards[self.router.shard_of(v)];
        if (v as usize) < shard.id_bound() {
            shard.for_each_neighbor_until(v, f)
        } else {
            true
        }
    }
}

/// Tracks barrier acknowledgements and publishes each epoch's cut once
/// every shard has reported.
struct CutCollector<E: EdgeSet> {
    state: Mutex<CollectorState<E>>,
    published: Mutex<Arc<ShardedCut<E>>>,
    cut_epoch: Arc<Gauge>,
}

struct CollectorState<E: EdgeSet> {
    /// Per-epoch partial cuts, keyed by epoch; entries complete (and
    /// leave the map) in epoch order because each shard acks epochs in
    /// order.
    pending: BTreeMap<u64, PendingCut<E>>,
    last_published: u64,
}

struct PendingCut<E: EdgeSet> {
    versions: Vec<Option<(u64, Version<E>)>>,
    remaining: usize,
}

impl<E: EdgeSet> CutCollector<E> {
    fn new(initial: Arc<ShardedCut<E>>, cut_epoch: Arc<Gauge>) -> Self {
        CutCollector {
            state: Mutex::new(CollectorState {
                pending: BTreeMap::new(),
                last_published: 0,
            }),
            published: Mutex::new(initial),
            cut_epoch,
        }
    }

    /// Shard `k` acks `epoch` with its post-epoch version number and
    /// snapshot. Called from the shard writer thread.
    fn report(
        &self,
        router: ShardRouter,
        shards: usize,
        epoch: u64,
        k: usize,
        version: u64,
        snapshot: Version<E>,
    ) {
        let complete = {
            let mut state = self.state.lock();
            let entry = state.pending.entry(epoch).or_insert_with(|| PendingCut {
                versions: (0..shards).map(|_| None).collect(),
                remaining: shards,
            });
            debug_assert!(entry.versions[k].is_none(), "double ack from shard {k}");
            entry.versions[k] = Some((version, snapshot));
            entry.remaining -= 1;
            if entry.remaining == 0 {
                let entry = state.pending.remove(&epoch).expect("entry just filled");
                if epoch > state.last_published {
                    state.last_published = epoch;
                    Some(entry)
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some(entry) = complete {
            let mut versions = Vec::with_capacity(shards);
            let mut snapshots = Vec::with_capacity(shards);
            for slot in entry.versions {
                let (version, snapshot) = slot.expect("complete cut has every shard");
                versions.push(version);
                snapshots.push(snapshot);
            }
            let cut = Arc::new(ShardedCut {
                router,
                epoch,
                vector: VersionVector::from_versions(versions),
                shards: snapshots,
            });
            self.cut_epoch.set(epoch as i64);
            *self.published.lock() = cut;
        }
    }

    fn pin(&self) -> Arc<ShardedCut<E>> {
        self.published.lock().clone()
    }
}

/// Coordinator-level counters, registered as `stream.sharded.*` in the
/// engine's registry alongside every shard's `stream.shard<K>.*`.
struct ShardedMetrics {
    epochs: Arc<Counter>,
    updates_routed: Arc<Counter>,
    cross_shard_updates: Arc<Counter>,
    cut_epoch: Arc<Gauge>,
}

impl ShardedMetrics {
    fn on_registry(registry: &Registry) -> Self {
        ShardedMetrics {
            epochs: registry.counter("stream.sharded.epochs"),
            updates_routed: registry.counter("stream.sharded.updates_routed"),
            cross_shard_updates: registry.counter("stream.sharded.cross_shard_updates"),
            cut_epoch: registry.gauge("stream.sharded.cut_epoch"),
        }
    }
}

/// Configures and launches a [`ShardedEngine`].
pub struct ShardedEngineBuilder<E: EdgeSet> {
    router: ShardRouter,
    initial_arcs: Vec<(u32, u32)>,
    initial_shards: Option<Vec<Graph<E>>>,
    policy: BatchPolicy,
    cfg: E::Config,
    shard_threads: Option<usize>,
    registry: Option<Arc<Registry>>,
    durability: Option<DurabilityConfig>,
    first_seqs: Option<Vec<u64>>,
    first_epoch: u64,
}

impl<E: EdgeSet> ShardedEngineBuilder<E> {
    /// Seeds the engine with a **symmetric** directed arc list (both
    /// orientations present, as [`aspen::symmetrize`] produces); each
    /// arc is stored in its source's owner shard.
    pub fn initial_arcs(mut self, arcs: &[(u32, u32)]) -> Self {
        self.initial_arcs = arcs.to_vec();
        self
    }

    /// Batching policy, used both by the front end's epoch formation
    /// and by every shard writer (default: [`BatchPolicy::default`]).
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Edge-set construction parameters (chunk size for C-trees).
    pub fn edge_config(mut self, cfg: E::Config) -> Self {
        self.cfg = cfg;
        self
    }

    /// Dedicated compute pool size for **each** shard's batch applies
    /// (default: shards share the global pool).
    pub fn shard_threads(mut self, n: usize) -> Self {
        self.shard_threads = Some(n);
        self
    }

    /// Registers all metrics into an existing registry (default: a
    /// fresh private one). Shard `k`'s engine metrics appear under
    /// `stream.shard<k>.*`, coordinator metrics under `stream.sharded.*`.
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Turns on durability: shard `k` logs to `cfg.dir/shard{k}` (see
    /// [`DurabilityConfig::shard`]) and epoch markers in each shard's
    /// log let recovery land on a consistent cut. Checkpoints are
    /// taken across all shards at one pinned cut by
    /// [`ShardedEngine::checkpoint`] and on [`ShardedEngine::close`].
    pub fn durability(mut self, cfg: DurabilityConfig) -> Self {
        self.durability = Some(cfg);
        self
    }

    /// Seeds the engine with pre-built per-shard graphs (already
    /// partitioned and mirror-consistent) instead of partitioning
    /// [`initial_arcs`](Self::initial_arcs). Used when resuming from
    /// recovered state.
    pub fn initial_shards(mut self, shards: Vec<Graph<E>>) -> Self {
        self.initial_shards = Some(shards);
        self
    }

    /// Per-shard starting seqs (version numbers), so new WAL frames
    /// continue each shard's recovered sequence. Default: all zeros.
    pub fn first_seqs(mut self, seqs: Vec<u64>) -> Self {
        self.first_seqs = Some(seqs);
        self
    }

    /// The epoch number the router assigns to its first new epoch
    /// (default 1). Set to [`RecoveredSharded::next_epoch`] when
    /// resuming, so epoch markers in the logs stay monotone.
    pub fn first_epoch(mut self, epoch: u64) -> Self {
        self.first_epoch = epoch.max(1);
        self
    }

    /// Resumes from a [`crate::wal::recover_sharded`] result: seeds the
    /// per-shard graphs, continues each shard's seq, and continues the
    /// epoch numbering — one call instead of three.
    pub fn recovered(self, rec: &RecoveredSharded<E>) -> Self {
        self.initial_shards(rec.shards.clone())
            .first_seqs(rec.seqs.clone())
            .first_epoch(rec.next_epoch)
    }

    /// Builds the per-shard graphs, starts every shard engine and the
    /// router thread, and publishes the epoch-0 cut.
    pub fn start(self) -> ShardedEngine<E> {
        self.policy.validate();
        let router = self.router;
        let shards = router.num_shards();
        let registry = self.registry.unwrap_or_else(|| Arc::new(Registry::new()));
        let metrics = ShardedMetrics::on_registry(&registry);

        // Per-shard engines, each in directed-arc mode with stats
        // prefixed by its shard index. The shard graphs either come
        // pre-built (resuming from recovery) or from partitioning the
        // initial arc list.
        let initial: Vec<Graph<E>> = match self.initial_shards {
            Some(graphs) => {
                assert_eq!(
                    graphs.len(),
                    shards,
                    "initial_shards must match the router's shard count"
                );
                graphs
            }
            None => partition_arcs(&self.initial_arcs, shards, |v| router.shard_of(v))
                .into_iter()
                .map(|arcs| Graph::from_edges(&arcs, self.cfg))
                .collect(),
        };
        let first_seqs = self.first_seqs.unwrap_or_else(|| vec![0; shards]);
        assert_eq!(
            first_seqs.len(),
            shards,
            "first_seqs must match the router's shard count"
        );
        let mut engines = Vec::with_capacity(shards);
        let mut graphs = Vec::with_capacity(shards);
        let mut initial_cut = Vec::with_capacity(shards);
        for (k, g) in initial.into_iter().enumerate() {
            let vg = Arc::new(VersionedGraph::new(g));
            let stats = Arc::new(EngineStats::on_registry_with_prefix(
                registry.clone(),
                &format!("stream.shard{k}."),
            ));
            let mut builder = StreamEngine::builder(vg.clone())
                .policy(self.policy)
                .directed_arcs(true)
                .with_stats(stats)
                .first_seq(first_seqs[k]);
            if let Some(cfg) = &self.durability {
                builder = builder.durability(cfg.shard(k));
            }
            if let Some(n) = self.shard_threads {
                builder = builder.num_threads(n);
            }
            initial_cut.push(vg.acquire());
            graphs.push(vg);
            engines.push(builder.start());
        }

        // The pre-ingest cut carries the epoch/vector the engine is
        // resuming at (both zero on a fresh start).
        let base_epoch = self.first_epoch - 1;
        metrics.cut_epoch.set(base_epoch as i64);
        let collector = Arc::new(CutCollector::new(
            Arc::new(ShardedCut {
                router,
                epoch: base_epoch,
                vector: VersionVector::from_versions(first_seqs),
                shards: initial_cut,
            }),
            metrics.cut_epoch.clone(),
        ));

        // One ack closure per shard, fired by that shard's writer when
        // it passes a barrier. The writer is the shard's only
        // installer and fires synchronously between messages, so the
        // acquired snapshot is exactly the post-epoch state.
        let acks: Vec<Arc<dyn Fn(u64) + Send + Sync>> = (0..shards)
            .map(|k| {
                let collector = collector.clone();
                let vg = graphs[k].clone();
                let installed = engines[k].installed_counter();
                Arc::new(move |epoch: u64| {
                    let version = installed.load(Ordering::Acquire);
                    collector.report(router, shards, epoch, k, version, vg.acquire());
                }) as Arc<dyn Fn(u64) + Send + Sync>
            })
            .collect();

        let (tx, rx) = sync_channel::<RouterMsg>(self.policy.channel_capacity);
        let router_thread = {
            let shard_handles: Vec<_> = engines.iter().map(|e| e.handle()).collect();
            let policy = self.policy;
            let epochs = metrics.epochs.clone();
            let updates_routed = metrics.updates_routed.clone();
            let cross_shard = metrics.cross_shard_updates.clone();
            std::thread::Builder::new()
                .name("aspen-shard-router".into())
                .spawn(move || {
                    router_loop(RouterShared {
                        router,
                        shard_handles,
                        acks,
                        epochs,
                        updates_routed,
                        cross_shard,
                        rx,
                        policy,
                        base_epoch,
                    })
                })
                .expect("spawn shard router thread")
        };

        ShardedEngine {
            router,
            engines,
            graphs,
            handle: ShardedIngestHandle {
                tx,
                closed: Arc::new(AtomicBool::new(false)),
            },
            router_thread,
            collector,
            registry,
            durability: self.durability,
        }
    }
}

/// What flows through the sharded front-end channel.
enum RouterMsg {
    Env(Envelope),
    /// Route what is buffered as a final epoch, then exit
    /// ([`ShardedEngine::close`]).
    Shutdown,
}

/// Everything the router thread owns.
struct RouterShared {
    router: ShardRouter,
    shard_handles: Vec<crate::IngestHandle>,
    acks: Vec<Arc<dyn Fn(u64) + Send + Sync>>,
    epochs: Arc<Counter>,
    updates_routed: Arc<Counter>,
    cross_shard: Arc<Counter>,
    rx: Receiver<RouterMsg>,
    policy: BatchPolicy,
    /// Last already-completed epoch; the first epoch formed here is
    /// `base_epoch + 1` (resuming engines continue the numbering).
    base_epoch: u64,
}

/// The router thread's body: drain producer envelopes into epochs
/// under the batch policy, forward each update's two arcs to the owner
/// shards, close every epoch with a barrier on every shard channel.
fn router_loop(shared: RouterShared) {
    let RouterShared {
        router,
        shard_handles,
        acks,
        epochs,
        updates_routed,
        cross_shard,
        rx,
        policy,
        base_epoch,
    } = shared;
    let mut epoch = base_epoch;
    let mut batch: Vec<Envelope> = Vec::with_capacity(policy.max_batch);
    loop {
        match rx.recv() {
            Ok(RouterMsg::Env(env)) => batch.push(env),
            Ok(RouterMsg::Shutdown) => return, // nothing buffered
            Err(_) => return,                  // producers gone, everything routed
        }
        let deadline = batch[0].enqueued + policy.max_linger;
        let mut stopping = false;
        while batch.len() < policy.max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(RouterMsg::Env(env)) => batch.push(env),
                Ok(RouterMsg::Shutdown) => {
                    stopping = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    stopping = true;
                    break;
                }
            }
        }
        // Route the epoch: both arcs of each update go out before the
        // epoch closes, so no cut can observe a half-routed edge.
        for env in batch.drain(..) {
            let (u, v) = env.update.endpoints();
            if router.is_cross_shard(u, v) {
                cross_shard.inc();
            }
            for (k, arc) in route_update(env.update, |x| router.shard_of(x)) {
                // Preserve the producer's enqueue instant so shard
                // engines attribute true end-to-end latency.
                let _ = shard_handles[k].push_envelope(Envelope {
                    update: arc,
                    enqueued: env.enqueued,
                });
            }
            updates_routed.inc();
        }
        epoch += 1;
        epochs.inc();
        for (k, handle) in shard_handles.iter().enumerate() {
            let _ = handle.push_barrier(Barrier {
                epoch,
                ack: acks[k].clone(),
            });
        }
        if stopping {
            return;
        }
    }
}

/// Producer handle into the sharded engine's front end. Clone freely;
/// pushes block when the front-end channel is full (backpressure);
/// [`try_send`](Self::try_send) and [`send_timeout`](Self::send_timeout)
/// mirror the single-engine [`crate::IngestHandle`] variants.
#[derive(Clone)]
pub struct ShardedIngestHandle {
    tx: SyncSender<RouterMsg>,
    closed: Arc<AtomicBool>,
}

/// The update an errored front-end send carried (shutdown sends report
/// a placeholder; they never fail while the router lives).
fn rejected(msg: RouterMsg) -> Update {
    match msg {
        RouterMsg::Env(env) => env.update,
        RouterMsg::Shutdown => Update::Insert(0, 0),
    }
}

impl ShardedIngestHandle {
    /// Enqueues one update, blocking while the channel is full.
    pub fn push(&self, update: Update) -> Result<(), IngestError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(IngestError::Closed(update));
        }
        self.tx
            .send(RouterMsg::Env(Envelope {
                update,
                enqueued: Instant::now(),
            }))
            .map_err(|e| IngestError::Closed(rejected(e.0)))
    }

    /// Non-blocking push: [`IngestError::Full`] instead of blocking.
    pub fn try_send(&self, update: Update) -> Result<(), IngestError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(IngestError::Closed(update));
        }
        self.tx
            .try_send(RouterMsg::Env(Envelope {
                update,
                enqueued: Instant::now(),
            }))
            .map_err(|e| match e {
                TrySendError::Full(msg) => IngestError::Full(rejected(msg)),
                TrySendError::Disconnected(msg) => IngestError::Closed(rejected(msg)),
            })
    }

    /// Alias of [`try_send`](Self::try_send).
    pub fn try_push(&self, update: Update) -> Result<(), IngestError> {
        self.try_send(update)
    }

    /// Push with a bounded wait; [`IngestError::TimedOut`] hands the
    /// update back once `timeout` elapses with the channel still full.
    pub fn send_timeout(&self, update: Update, timeout: Duration) -> Result<(), IngestError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_micros(50);
        loop {
            match self.try_send(update) {
                Err(IngestError::Full(u)) => {
                    if Instant::now() >= deadline {
                        return Err(IngestError::TimedOut(u));
                    }
                    std::thread::sleep(
                        backoff.min(deadline.saturating_duration_since(Instant::now())),
                    );
                    backoff = (backoff * 2).min(Duration::from_millis(1));
                }
                other => return other,
            }
        }
    }

    /// Pushes a whole slice in order, blocking as needed.
    pub fn push_all(&self, updates: &[Update]) -> Result<(), IngestError> {
        for &u in updates {
            self.push(u)?;
        }
        Ok(())
    }
}

/// End-of-run summary of a sharded engine: per-shard reports plus the
/// final consistent cut.
pub struct ShardedReport<E: EdgeSet> {
    /// Shard `k`'s engine report.
    pub shards: Vec<StatsReport>,
    /// The cut closing the final epoch (equals the fully-drained state).
    pub final_cut: Arc<ShardedCut<E>>,
    /// Ingest epochs formed by the router thread.
    pub epochs: u64,
    /// Updates routed through the front end.
    pub updates_routed: u64,
    /// Routed updates whose endpoints live in different shards.
    pub cross_shard_updates: u64,
}

impl<E: EdgeSet> ShardedReport<E> {
    /// Sum of per-shard applied update counts (arcs; two per routed
    /// update).
    pub fn arcs_applied(&self) -> u64 {
        self.shards.iter().map(|r| r.updates_applied).sum()
    }
}

/// A running sharded engine. Lifecycle mirrors [`StreamEngine`]:
/// builder → start → clone [`handle`](Self::handle)s into producers →
/// producers drop their handles → [`finish`](Self::finish).
pub struct ShardedEngine<E: EdgeSet> {
    router: ShardRouter,
    engines: Vec<StreamEngine<E>>,
    graphs: Vec<Arc<VersionedGraph<E>>>,
    handle: ShardedIngestHandle,
    router_thread: JoinHandle<()>,
    collector: Arc<CutCollector<E>>,
    registry: Arc<Registry>,
    durability: Option<DurabilityConfig>,
}

impl<E: EdgeSet> ShardedEngine<E> {
    /// Starts configuring a sharded engine over `router`'s partitions.
    pub fn builder(router: ShardRouter) -> ShardedEngineBuilder<E> {
        ShardedEngineBuilder {
            router,
            initial_arcs: Vec::new(),
            initial_shards: None,
            policy: BatchPolicy::default(),
            cfg: E::Config::default(),
            shard_threads: None,
            registry: None,
            durability: None,
            first_seqs: None,
            first_epoch: 1,
        }
    }

    /// A new producer handle into the front end.
    pub fn handle(&self) -> ShardedIngestHandle {
        self.handle.clone()
    }

    /// The router partitioning this engine's vertex space.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.engines.len()
    }

    /// The latest published consistent cut. O(1); the cut is immutable
    /// and shared, so hold it as long as the query needs.
    pub fn pin(&self) -> Arc<ShardedCut<E>> {
        self.collector.pin()
    }

    /// Shard `k`'s underlying versioned graph (its latest version may
    /// be *ahead* of the latest cut; use [`pin`](Self::pin) for
    /// cross-shard-consistent reads).
    pub fn shard_graph(&self, k: usize) -> &Arc<VersionedGraph<E>> {
        &self.graphs[k]
    }

    /// The registry holding `stream.shard<K>.*` and `stream.sharded.*`
    /// metrics.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Checkpoints every shard at one consistent cut: writes shard `k`'s
    /// snapshot under `dir/shard{k}`, then durably publishes the cut
    /// with a root-level manifest, then prunes covered WAL segments.
    /// A crash anywhere in the middle is safe — recovery only trusts
    /// shard checkpoints a manifest names. Returns the checkpointed
    /// epoch, or `Ok(None)` when the engine runs without durability.
    pub fn checkpoint(&self) -> Result<Option<u64>, WalError> {
        match &self.durability {
            Some(cfg) => Self::checkpoint_cut(cfg, &self.pin()).map(Some),
            None => Ok(None),
        }
    }

    fn checkpoint_cut(cfg: &DurabilityConfig, cut: &ShardedCut<E>) -> Result<u64, WalError> {
        let seqs: Vec<u64> = cut.vector().as_slice().to_vec();
        for (k, &seq) in seqs.iter().enumerate() {
            let shard_cfg = cfg.shard(k);
            write_checkpoint(
                cfg.io.as_ref(),
                &shard_cfg.dir,
                seq,
                cut.epoch(),
                cut.local(k).as_ref(),
            )?;
        }
        // Only now is the cut complete on disk; the manifest makes it
        // eligible for recovery atomically.
        write_manifest(
            cfg.io.as_ref(),
            &cfg.dir,
            &Manifest {
                epoch: cut.epoch(),
                seqs: seqs.clone(),
            },
        )?;
        for (k, &seq) in seqs.iter().enumerate() {
            let shard_cfg = cfg.shard(k);
            if let Err(e) = prune(cfg.io.as_ref(), &shard_cfg.dir, seq, 2) {
                eprintln!("aspen-stream: prune of shard {k} wal failed: {e}");
            }
        }
        Ok(cut.epoch())
    }

    /// Shuts down: waits for producers to drop their handles, drains
    /// and joins the router thread and every shard engine, and returns
    /// the final reports plus the fully-drained cut.
    pub fn finish(self) -> ShardedReport<E> {
        drop(self.handle);
        self.router_thread.join().expect("router thread panicked");
        // The router's shard handles died with it; each shard engine's
        // finish drops its own handle, disconnecting the shard channel
        // after the final barrier, so the last epoch's cut is published
        // before the writer exits.
        let shards: Vec<StatsReport> = self.engines.into_iter().map(|e| e.finish()).collect();
        let snap = self.registry.snapshot();
        ShardedReport {
            shards,
            final_cut: self.collector.pin(),
            epochs: snap.counter("stream.sharded.epochs").unwrap_or(0),
            updates_routed: snap.counter("stream.sharded.updates_routed").unwrap_or(0),
            cross_shard_updates: snap
                .counter("stream.sharded.cross_shard_updates")
                .unwrap_or(0),
        }
    }

    /// Graceful shutdown that does **not** wait for producers to drop
    /// their handles: the router routes what it has buffered as a
    /// final epoch, every shard drains through that epoch's barrier
    /// (making it durable when a WAL is configured), and — with
    /// durability on — a full checkpoint is taken at the final cut so
    /// the next start recovers instantly. Producers racing the close
    /// get [`IngestError::Closed`].
    pub fn close(self) -> ShardedReport<E> {
        let ShardedEngine {
            engines,
            handle,
            router_thread,
            collector,
            registry,
            durability,
            ..
        } = self;
        handle.closed.store(true, Ordering::Release);
        let _ = handle.tx.send(RouterMsg::Shutdown);
        drop(handle);
        router_thread.join().expect("router thread panicked");
        // The router pushed its final barriers before exiting; each
        // shard's close message sorts after them (FIFO), so every
        // shard installs the final epoch and acks the cut before its
        // writer exits and syncs its WAL tail.
        let shards: Vec<StatsReport> = engines.into_iter().map(|e| e.close()).collect();
        let final_cut = collector.pin();
        if let Some(cfg) = &durability {
            if let Err(e) = Self::checkpoint_cut(cfg, &final_cut) {
                eprintln!("aspen-stream: checkpoint on close failed: {e}");
            }
        }
        let snap = registry.snapshot();
        ShardedReport {
            shards,
            final_cut,
            epochs: snap.counter("stream.sharded.epochs").unwrap_or(0),
            updates_routed: snap.counter("stream.sharded.updates_routed").unwrap_or(0),
            cross_shard_updates: snap
                .counter("stream.sharded.cross_shard_updates")
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::CompressedEdges;

    type Sharded = ShardedEngine<CompressedEdges>;

    fn ring_arcs(n: u32) -> Vec<(u32, u32)> {
        (0..n)
            .flat_map(|i| [(i, (i + 1) % n), ((i + 1) % n, i)])
            .collect()
    }

    /// The unsharded oracle: same initial edges, updates applied
    /// sequentially.
    fn oracle(initial: &[(u32, u32)], updates: &[Update]) -> Graph<CompressedEdges> {
        let vg: VersionedGraph<CompressedEdges> =
            VersionedGraph::new(Graph::from_edges(initial, Default::default()));
        for &u in updates {
            match u {
                Update::Insert(a, b) => vg.insert_edges_undirected(&[(a, b)]),
                Update::Delete(a, b) => {
                    vg.update_with_timed(|g| g.delete_edges(&aspen::symmetrize(&[(a, b)])));
                }
            }
        }
        Arc::try_unwrap(vg.acquire()).unwrap_or_else(|arc| (*arc).clone())
    }

    fn drive(
        router: ShardRouter,
        initial: &[(u32, u32)],
        updates: &[Update],
    ) -> ShardedReport<CompressedEdges> {
        let engine = Sharded::builder(router).initial_arcs(initial).start();
        let h = engine.handle();
        h.push_all(updates).unwrap();
        drop(h);
        engine.finish()
    }

    #[test]
    fn sharded_ingest_matches_unsharded_oracle() {
        let initial = ring_arcs(16);
        let updates: Vec<Update> = (0..200u32)
            .map(|i| {
                if i % 5 == 4 {
                    Update::Delete(i % 16, (i + 1) % 16)
                } else {
                    Update::Insert(i % 16, 16 + i)
                }
            })
            .collect();
        let want = oracle(&initial, &updates);
        for router in [
            ShardRouter::hash(1),
            ShardRouter::hash(2),
            ShardRouter::hash(4),
        ] {
            let report = drive(router, &initial, &updates);
            let cut = &report.final_cut;
            assert_eq!(cut.check_mirror_consistency(), 0, "router {router:?}");
            assert_eq!(cut.num_edges(), want.num_edges(), "router {router:?}");
            assert_eq!(
                cut.connected_components(),
                algorithms::connected_components(&want),
                "router {router:?}"
            );
            assert_eq!(
                cut.bfs(0).dist,
                algorithms::bfs(&want, 0).dist,
                "router {router:?}"
            );
            assert_eq!(report.updates_routed, updates.len() as u64);
            // Every routed update lands as two arcs somewhere.
            assert_eq!(report.arcs_applied(), 2 * updates.len() as u64);
            assert!(report.epochs >= 1);
        }
    }

    #[test]
    fn cut_graphview_runs_unsharded_algorithms() {
        let initial = ring_arcs(12);
        let report = drive(ShardRouter::hash(3), &initial, &[]);
        let cut = &report.final_cut;
        // Through the GraphView impl, the standard algorithms see the
        // logical graph.
        let r = algorithms::bfs(&**cut, 0);
        assert_eq!(r.num_reached(), 12);
        assert_eq!(
            algorithms::num_components(&algorithms::connected_components(&**cut)),
            1
        );
        assert_eq!(cut.id_bound(), 12);
        assert_eq!(cut.num_edges(), 24);
        assert_eq!(cut.degree(5), 2);
        let mut n = cut.neighbors(5);
        n.sort_unstable();
        assert_eq!(n, vec![4, 6]);
    }

    #[test]
    fn cuts_are_epoch_labeled_and_monotone() {
        let engine = Sharded::builder(ShardRouter::hash(2))
            .initial_arcs(&ring_arcs(8))
            .start();
        let epoch0 = engine.pin();
        assert_eq!(epoch0.epoch(), 0);
        assert_eq!(epoch0.vector().as_slice(), &[0, 0]);
        let h = engine.handle();
        for i in 0..50u32 {
            h.push(Update::Insert(i % 8, 8 + i)).unwrap();
        }
        drop(h);
        let report = engine.finish();
        let last = &report.final_cut;
        assert!(last.epoch() >= 1);
        assert!(last.vector().dominates(epoch0.vector()));
        assert_eq!(last.vector().len(), 2);
        // The pinned epoch-0 cut still shows only the ring.
        assert_eq!(epoch0.num_edges(), 16);
        assert_eq!(last.num_edges(), 16 + 100);
    }

    #[test]
    fn per_shard_metrics_share_the_registry() {
        let registry = Arc::new(Registry::new());
        let engine = Sharded::builder(ShardRouter::hash(2))
            .initial_arcs(&ring_arcs(8))
            .registry(registry.clone())
            .start();
        let h = engine.handle();
        for i in 0..40u32 {
            h.push(Update::Insert(i % 8, 100 + i)).unwrap();
        }
        drop(h);
        let report = engine.finish();
        let snap = registry.snapshot();
        let s0 = snap.counter("stream.shard0.updates_applied").unwrap_or(0);
        let s1 = snap.counter("stream.shard1.updates_applied").unwrap_or(0);
        assert_eq!(s0 + s1, 80, "40 updates = 80 arcs across the shards");
        assert!(s0 > 0 && s1 > 0, "hash routing spreads arcs: {s0}/{s1}");
        assert_eq!(
            snap.counter("stream.sharded.updates_routed"),
            Some(40),
            "coordinator metrics registered alongside"
        );
        // The cross-shard counter must match the router's own verdict.
        let router = ShardRouter::hash(2);
        let want_cross = (0..40u32)
            .filter(|i| router.is_cross_shard(i % 8, 100 + i))
            .count() as u64;
        assert_eq!(report.cross_shard_updates, want_cross);
    }

    #[test]
    fn empty_engine_finishes_clean() {
        let report = drive(ShardRouter::hash(4), &[], &[]);
        assert_eq!(report.final_cut.num_edges(), 0);
        assert_eq!(report.final_cut.id_bound(), 0);
        assert_eq!(report.epochs, 0);
        assert_eq!(report.updates_routed, 0);
    }

    #[test]
    fn deletes_of_missing_edges_are_harmless() {
        let report = drive(
            ShardRouter::hash(2),
            &ring_arcs(4),
            &[Update::Delete(0, 3), Update::Delete(100, 200)],
        );
        // (0,3) is a ring edge; (100,200) never existed.
        assert_eq!(report.final_cut.num_edges(), 8 - 2);
        assert_eq!(report.final_cut.check_mirror_consistency(), 0);
    }
}
