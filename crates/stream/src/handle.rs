//! Producer-side ingestion: a cloneable handle over a bounded MPSC
//! channel with blocking backpressure.

use graphgen::Update;
use std::sync::mpsc::{SyncSender, TrySendError};
use std::time::Instant;

/// An update plus the instant a producer enqueued it; the writer loop
/// uses the timestamp to attribute end-to-end (enqueue → visible)
/// latency.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Envelope {
    pub update: Update,
    pub enqueued: Instant,
}

/// The ingestion channel is closed: the engine shut down before the
/// push. The rejected update is returned to the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestError(pub Update);

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ingest channel closed; rejected {}", self.0)
    }
}

impl std::error::Error for IngestError {}

/// Outcome of a non-blocking [`IngestHandle::try_push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryIngestError {
    /// The channel is at capacity; pushing would have blocked.
    Full(Update),
    /// The engine shut down.
    Closed(Update),
}

impl std::fmt::Display for TryIngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryIngestError::Full(u) => write!(f, "ingest channel full; rejected {u}"),
            TryIngestError::Closed(u) => write!(f, "ingest channel closed; rejected {u}"),
        }
    }
}

impl std::error::Error for TryIngestError {}

/// A producer's handle into the engine: push updates, clone freely
/// across threads.
///
/// The underlying channel is bounded ([`crate::BatchPolicy::channel_capacity`]);
/// [`push`](Self::push) on a full channel **blocks** until the writer
/// loop drains space — that is the engine's backpressure, keeping
/// memory bounded when producers outrun the writer.
///
/// The writer loop exits (after a final flush) once every handle has
/// been dropped; hold a handle only as long as you intend to produce.
#[derive(Clone)]
pub struct IngestHandle {
    pub(crate) tx: SyncSender<Envelope>,
}

impl IngestHandle {
    /// Enqueues one update, blocking while the channel is full.
    ///
    /// The update's end-to-end latency clock starts now.
    pub fn push(&self, update: Update) -> Result<(), IngestError> {
        self.tx
            .send(Envelope {
                update,
                enqueued: Instant::now(),
            })
            .map_err(|e| IngestError(e.0.update))
    }

    /// Non-blocking push: fails fast when the channel is full instead
    /// of exerting backpressure on the caller.
    pub fn try_push(&self, update: Update) -> Result<(), TryIngestError> {
        self.tx
            .try_send(Envelope {
                update,
                enqueued: Instant::now(),
            })
            .map_err(|e| match e {
                TrySendError::Full(env) => TryIngestError::Full(env.update),
                TrySendError::Disconnected(env) => TryIngestError::Closed(env.update),
            })
    }

    /// Pushes a whole slice in order, blocking as needed.
    pub fn push_all(&self, updates: &[Update]) -> Result<(), IngestError> {
        for &u in updates {
            self.push(u)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn push_then_receive() {
        let (tx, rx) = sync_channel(4);
        let h = IngestHandle { tx };
        h.push(Update::Insert(1, 2)).unwrap();
        let env = rx.recv().unwrap();
        assert_eq!(env.update, Update::Insert(1, 2));
    }

    #[test]
    fn try_push_full_reports_update() {
        let (tx, _rx) = sync_channel(1);
        let h = IngestHandle { tx };
        h.try_push(Update::Insert(0, 1)).unwrap();
        match h.try_push(Update::Delete(2, 3)) {
            Err(TryIngestError::Full(u)) => assert_eq!(u, Update::Delete(2, 3)),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn push_after_close_errors() {
        let (tx, rx) = sync_channel(1);
        drop(rx);
        let h = IngestHandle { tx };
        assert_eq!(
            h.push(Update::Insert(7, 8)),
            Err(IngestError(Update::Insert(7, 8)))
        );
    }
}
