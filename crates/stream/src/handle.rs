//! Producer-side ingestion: a cloneable handle over a bounded MPSC
//! channel with blocking backpressure.

use graphgen::Update;
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

/// An update plus the instant a producer enqueued it; the writer loop
/// uses the timestamp to attribute end-to-end (enqueue → visible)
/// latency.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Envelope {
    pub update: Update,
    pub enqueued: Instant,
}

/// An epoch barrier: when the writer loop dequeues one, every update
/// enqueued before it (FIFO channel) has been applied, so the writer
/// flushes whatever batch it is holding and then fires `ack` with the
/// barrier's epoch. The sharded engine's ingest front end uses
/// barriers to align per-shard version chains on epoch boundaries;
/// the `ack` closure captures whatever the coordinator needs (the
/// shard id, the shard's `VersionedGraph` to acquire the post-epoch
/// version from, the cut collector).
pub(crate) struct Barrier {
    pub epoch: u64,
    pub ack: Arc<dyn Fn(u64) + Send + Sync>,
}

impl Barrier {
    /// Invokes the acknowledgement callback with this barrier's epoch.
    pub fn fire(&self) {
        (self.ack)(self.epoch);
    }
}

/// What flows through the ingest channel: updates, or epoch barriers.
pub(crate) enum Msg {
    Update(Envelope),
    Barrier(Barrier),
}

/// The ingestion channel is closed: the engine shut down before the
/// push. The rejected update is returned to the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestError(pub Update);

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ingest channel closed; rejected {}", self.0)
    }
}

impl std::error::Error for IngestError {}

/// Outcome of a non-blocking [`IngestHandle::try_push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryIngestError {
    /// The channel is at capacity; pushing would have blocked.
    Full(Update),
    /// The engine shut down.
    Closed(Update),
}

impl std::fmt::Display for TryIngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryIngestError::Full(u) => write!(f, "ingest channel full; rejected {u}"),
            TryIngestError::Closed(u) => write!(f, "ingest channel closed; rejected {u}"),
        }
    }
}

impl std::error::Error for TryIngestError {}

/// A producer's handle into the engine: push updates, clone freely
/// across threads.
///
/// The underlying channel is bounded ([`crate::BatchPolicy::channel_capacity`]);
/// [`push`](Self::push) on a full channel **blocks** until the writer
/// loop drains space — that is the engine's backpressure, keeping
/// memory bounded when producers outrun the writer.
///
/// The writer loop exits (after a final flush) once every handle has
/// been dropped; hold a handle only as long as you intend to produce.
#[derive(Clone)]
pub struct IngestHandle {
    pub(crate) tx: SyncSender<Msg>,
}

/// Extracts the update an errored send carried (barrier sends report a
/// placeholder; they never fail in practice because the engine keeps
/// the receiver alive while barriers are in flight).
fn rejected(msg: Msg) -> Update {
    match msg {
        Msg::Update(env) => env.update,
        Msg::Barrier(_) => Update::Insert(0, 0),
    }
}

impl IngestHandle {
    /// Enqueues one update, blocking while the channel is full.
    ///
    /// The update's end-to-end latency clock starts now.
    pub fn push(&self, update: Update) -> Result<(), IngestError> {
        self.push_envelope(Envelope {
            update,
            enqueued: Instant::now(),
        })
    }

    /// Enqueues an update with a caller-provided enqueue instant — the
    /// sharded front end forwards producer envelopes through here so
    /// end-to-end latency is measured from the *original* producer
    /// push, not from the routing hop.
    pub(crate) fn push_envelope(&self, env: Envelope) -> Result<(), IngestError> {
        self.tx
            .send(Msg::Update(env))
            .map_err(|e| IngestError(rejected(e.0)))
    }

    /// Enqueues an epoch barrier (see [`Barrier`]); blocking, like
    /// [`push`](Self::push).
    pub(crate) fn push_barrier(&self, barrier: Barrier) -> Result<(), IngestError> {
        self.tx
            .send(Msg::Barrier(barrier))
            .map_err(|e| IngestError(rejected(e.0)))
    }

    /// Non-blocking push: fails fast when the channel is full instead
    /// of exerting backpressure on the caller.
    pub fn try_push(&self, update: Update) -> Result<(), TryIngestError> {
        self.tx
            .try_send(Msg::Update(Envelope {
                update,
                enqueued: Instant::now(),
            }))
            .map_err(|e| match e {
                TrySendError::Full(msg) => TryIngestError::Full(rejected(msg)),
                TrySendError::Disconnected(msg) => TryIngestError::Closed(rejected(msg)),
            })
    }

    /// Pushes a whole slice in order, blocking as needed.
    pub fn push_all(&self, updates: &[Update]) -> Result<(), IngestError> {
        for &u in updates {
            self.push(u)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn push_then_receive() {
        let (tx, rx) = sync_channel(4);
        let h = IngestHandle { tx };
        h.push(Update::Insert(1, 2)).unwrap();
        match rx.recv().unwrap() {
            Msg::Update(env) => assert_eq!(env.update, Update::Insert(1, 2)),
            Msg::Barrier(_) => panic!("expected an update"),
        }
    }

    #[test]
    fn barrier_fires_with_its_epoch() {
        let (tx, rx) = sync_channel(4);
        let h = IngestHandle { tx };
        let seen = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen2 = seen.clone();
        h.push_barrier(Barrier {
            epoch: 7,
            ack: std::sync::Arc::new(move |e| seen2.store(e, std::sync::atomic::Ordering::SeqCst)),
        })
        .unwrap();
        match rx.recv().unwrap() {
            Msg::Barrier(b) => b.fire(),
            Msg::Update(_) => panic!("expected a barrier"),
        }
        assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 7);
    }

    #[test]
    fn try_push_full_reports_update() {
        let (tx, _rx) = sync_channel(1);
        let h = IngestHandle { tx };
        h.try_push(Update::Insert(0, 1)).unwrap();
        match h.try_push(Update::Delete(2, 3)) {
            Err(TryIngestError::Full(u)) => assert_eq!(u, Update::Delete(2, 3)),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn push_after_close_errors() {
        let (tx, rx) = sync_channel(1);
        drop(rx);
        let h = IngestHandle { tx };
        assert_eq!(
            h.push(Update::Insert(7, 8)),
            Err(IngestError(Update::Insert(7, 8)))
        );
    }
}
