//! Producer-side ingestion: a cloneable handle over a bounded MPSC
//! channel with blocking backpressure, plus non-blocking and bounded-
//! wait variants for producers that cannot afford to stall forever.

use graphgen::Update;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An update plus the instant a producer enqueued it; the writer loop
/// uses the timestamp to attribute end-to-end (enqueue → visible)
/// latency.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Envelope {
    pub update: Update,
    pub enqueued: Instant,
}

/// An epoch barrier: when the writer loop dequeues one, every update
/// enqueued before it (FIFO channel) has been applied, so the writer
/// flushes whatever batch it is holding and then fires `ack` with the
/// barrier's epoch. The sharded engine's ingest front end uses
/// barriers to align per-shard version chains on epoch boundaries;
/// the `ack` closure captures whatever the coordinator needs (the
/// shard id, the shard's `VersionedGraph` to acquire the post-epoch
/// version from, the cut collector).
pub(crate) struct Barrier {
    pub epoch: u64,
    pub ack: Arc<dyn Fn(u64) + Send + Sync>,
}

impl Barrier {
    /// Invokes the acknowledgement callback with this barrier's epoch.
    pub fn fire(&self) {
        (self.ack)(self.epoch);
    }
}

/// What flows through the ingest channel: updates, epoch barriers, or
/// an explicit shutdown request ([`crate::StreamEngine::close`]).
pub(crate) enum Msg {
    Update(Envelope),
    Barrier(Barrier),
    /// Flush what is buffered, sync the WAL tail, and exit the writer
    /// loop even though producer handles may still be alive.
    Shutdown,
}

/// Why an ingest attempt was rejected; the update is handed back so
/// the producer can retry, reroute, or drop it deliberately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The channel is at capacity; a non-blocking push would have
    /// blocked ([`IngestHandle::try_send`] only).
    Full(Update),
    /// The engine shut down (or [`crate::StreamEngine::close`] was
    /// called); no further updates will be accepted.
    Closed(Update),
    /// The channel stayed full past the caller's deadline
    /// ([`IngestHandle::send_timeout`] only).
    TimedOut(Update),
}

impl IngestError {
    /// The update the failed push carried.
    pub fn update(&self) -> Update {
        match *self {
            IngestError::Full(u) | IngestError::Closed(u) | IngestError::TimedOut(u) => u,
        }
    }
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Full(u) => write!(f, "ingest channel full; rejected {u}"),
            IngestError::Closed(u) => write!(f, "ingest channel closed; rejected {u}"),
            IngestError::TimedOut(u) => write!(f, "ingest timed out; rejected {u}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// A producer's handle into the engine: push updates, clone freely
/// across threads.
///
/// The underlying channel is bounded ([`crate::BatchPolicy::channel_capacity`]);
/// [`push`](Self::push) on a full channel **blocks** until the writer
/// loop drains space — that is the engine's backpressure, keeping
/// memory bounded when producers outrun the writer. Producers that
/// cannot block use [`try_send`](Self::try_send) (fail fast) or
/// [`send_timeout`](Self::send_timeout) (bounded wait).
///
/// The writer loop exits (after a final flush) once every handle has
/// been dropped; hold a handle only as long as you intend to produce.
#[derive(Clone)]
pub struct IngestHandle {
    pub(crate) tx: SyncSender<Msg>,
    /// Set by [`crate::StreamEngine::close`] so producers racing a
    /// shutdown fail fast instead of blocking on a channel whose
    /// consumer is about to stop draining it.
    pub(crate) closed: Arc<AtomicBool>,
}

/// Extracts the update an errored send carried (barrier/shutdown sends
/// report a placeholder; they never fail in practice because the
/// engine keeps the receiver alive while they are in flight).
fn rejected(msg: Msg) -> Update {
    match msg {
        Msg::Update(env) => env.update,
        Msg::Barrier(_) | Msg::Shutdown => Update::Insert(0, 0),
    }
}

impl IngestHandle {
    /// Enqueues one update, blocking while the channel is full.
    ///
    /// The update's end-to-end latency clock starts now.
    pub fn push(&self, update: Update) -> Result<(), IngestError> {
        self.push_envelope(Envelope {
            update,
            enqueued: Instant::now(),
        })
    }

    /// Enqueues an update with a caller-provided enqueue instant — the
    /// sharded front end forwards producer envelopes through here so
    /// end-to-end latency is measured from the *original* producer
    /// push, not from the routing hop.
    pub(crate) fn push_envelope(&self, env: Envelope) -> Result<(), IngestError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(IngestError::Closed(env.update));
        }
        self.tx
            .send(Msg::Update(env))
            .map_err(|e| IngestError::Closed(rejected(e.0)))
    }

    /// Enqueues an epoch barrier (see [`Barrier`]); blocking, like
    /// [`push`](Self::push).
    pub(crate) fn push_barrier(&self, barrier: Barrier) -> Result<(), IngestError> {
        self.tx
            .send(Msg::Barrier(barrier))
            .map_err(|e| IngestError::Closed(rejected(e.0)))
    }

    /// Asks the writer loop to flush, sync, and exit; used by
    /// [`crate::StreamEngine::close`]. Blocking, FIFO-ordered after
    /// everything already enqueued.
    pub(crate) fn push_shutdown(&self) -> Result<(), IngestError> {
        self.tx
            .send(Msg::Shutdown)
            .map_err(|e| IngestError::Closed(rejected(e.0)))
    }

    /// Non-blocking push: fails fast with [`IngestError::Full`] when
    /// the channel is at capacity instead of exerting backpressure on
    /// the caller.
    pub fn try_send(&self, update: Update) -> Result<(), IngestError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(IngestError::Closed(update));
        }
        self.tx
            .try_send(Msg::Update(Envelope {
                update,
                enqueued: Instant::now(),
            }))
            .map_err(|e| match e {
                TrySendError::Full(msg) => IngestError::Full(rejected(msg)),
                TrySendError::Disconnected(msg) => IngestError::Closed(rejected(msg)),
            })
    }

    /// Alias of [`try_send`](Self::try_send), kept for callers reading
    /// better as a push.
    pub fn try_push(&self, update: Update) -> Result<(), IngestError> {
        self.try_send(update)
    }

    /// Push with a bounded wait: retries a full channel until
    /// `timeout` elapses, then gives the update back as
    /// [`IngestError::TimedOut`]. Closure is still reported
    /// immediately.
    pub fn send_timeout(&self, update: Update, timeout: Duration) -> Result<(), IngestError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_micros(50);
        loop {
            match self.try_send(update) {
                Err(IngestError::Full(u)) => {
                    if Instant::now() >= deadline {
                        return Err(IngestError::TimedOut(u));
                    }
                    std::thread::sleep(
                        backoff.min(deadline.saturating_duration_since(Instant::now())),
                    );
                    backoff = (backoff * 2).min(Duration::from_millis(1));
                }
                other => return other,
            }
        }
    }

    /// Pushes a whole slice in order, blocking as needed.
    pub fn push_all(&self, updates: &[Update]) -> Result<(), IngestError> {
        for &u in updates {
            self.push(u)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn handle(tx: SyncSender<Msg>) -> IngestHandle {
        IngestHandle {
            tx,
            closed: Arc::new(AtomicBool::new(false)),
        }
    }

    #[test]
    fn push_then_receive() {
        let (tx, rx) = sync_channel(4);
        let h = handle(tx);
        h.push(Update::Insert(1, 2)).unwrap();
        match rx.recv().unwrap() {
            Msg::Update(env) => assert_eq!(env.update, Update::Insert(1, 2)),
            _ => panic!("expected an update"),
        }
    }

    #[test]
    fn barrier_fires_with_its_epoch() {
        let (tx, rx) = sync_channel(4);
        let h = handle(tx);
        let seen = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen2 = seen.clone();
        h.push_barrier(Barrier {
            epoch: 7,
            ack: std::sync::Arc::new(move |e| seen2.store(e, std::sync::atomic::Ordering::SeqCst)),
        })
        .unwrap();
        match rx.recv().unwrap() {
            Msg::Barrier(b) => b.fire(),
            _ => panic!("expected a barrier"),
        }
        assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 7);
    }

    #[test]
    fn try_send_full_reports_update() {
        let (tx, _rx) = sync_channel(1);
        let h = handle(tx);
        h.try_send(Update::Insert(0, 1)).unwrap();
        match h.try_send(Update::Delete(2, 3)) {
            Err(IngestError::Full(u)) => assert_eq!(u, Update::Delete(2, 3)),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn push_after_close_errors() {
        let (tx, rx) = sync_channel(1);
        drop(rx);
        let h = handle(tx);
        assert_eq!(
            h.push(Update::Insert(7, 8)),
            Err(IngestError::Closed(Update::Insert(7, 8)))
        );
    }

    #[test]
    fn closed_flag_fails_fast_even_with_receiver_alive() {
        let (tx, _rx) = sync_channel(1);
        let h = handle(tx);
        h.closed.store(true, Ordering::Release);
        assert_eq!(
            h.push(Update::Insert(1, 2)),
            Err(IngestError::Closed(Update::Insert(1, 2)))
        );
        assert_eq!(
            h.try_send(Update::Insert(1, 2)),
            Err(IngestError::Closed(Update::Insert(1, 2)))
        );
    }

    #[test]
    fn send_timeout_reports_timed_out_on_sustained_full() {
        let (tx, _rx) = sync_channel(1);
        let h = handle(tx);
        h.push(Update::Insert(0, 1)).unwrap();
        match h.send_timeout(Update::Delete(2, 3), Duration::from_millis(5)) {
            Err(IngestError::TimedOut(u)) => assert_eq!(u, Update::Delete(2, 3)),
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }
}
