//! Live analytics: registered queries running on acquired snapshots
//! concurrently with ingestion.

use crate::stats::EngineStats;
use crate::writer::ConsistencyTracker;
use aspen::{EdgeSet, FlatSnapshot, Version, VersionedGraph};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A named analytic to run repeatedly over fresh snapshots.
///
/// The closure receives a [`FlatSnapshot`] (the §5.1 representation
/// global algorithms want) and returns a `u64` digest of its result —
/// enough for throughput accounting and sanity checks without keeping
/// every output alive.
pub struct QuerySpec<E: EdgeSet> {
    /// Label used in logs and reports.
    pub name: &'static str,
    /// The analytic body.
    pub run: QueryFn<E>,
}

/// The boxed body of a registered query: flat snapshot in, digest out.
pub type QueryFn<E> = Box<dyn Fn(&FlatSnapshot<E>) -> u64 + Send + Sync>;

/// The executor's memo of the last flattened version: the exact
/// [`Version`] it came from plus the shared flat snapshot.
type FlatCache<E> = Mutex<Option<(Version<E>, Arc<FlatSnapshot<E>>)>>;

impl<E: EdgeSet> QuerySpec<E> {
    /// Wraps a closure as a named query.
    pub fn new(
        name: &'static str,
        run: impl Fn(&FlatSnapshot<E>) -> u64 + Send + Sync + 'static,
    ) -> Self {
        QuerySpec {
            name,
            run: Box::new(run),
        }
    }
}

/// Built-in [`QuerySpec`] constructors for the paper's analytics.
pub mod analytics {
    use super::*;
    use aspen::GraphView;

    /// BFS from the highest-degree vertex; digest is the number of
    /// vertices reached (zero on an empty snapshot).
    pub fn bfs_from_hub<E: EdgeSet>() -> QuerySpec<E> {
        QuerySpec::new("bfs", |snap| {
            let Some(hub) = (0..snap.id_bound() as u32).max_by_key(|&v| snap.degree(v)) else {
                return 0;
            };
            algorithms::bfs(snap, hub).num_reached() as u64
        })
    }

    /// Connected components; digest is the number of components.
    pub fn connected_components<E: EdgeSet>() -> QuerySpec<E> {
        QuerySpec::new("cc", |snap| {
            algorithms::num_components(&algorithms::connected_components(snap)) as u64
        })
    }

    /// PageRank to tolerance `1e-4` (capped at 20 sweeps); digest is
    /// the index of the top-ranked vertex.
    pub fn pagerank<E: EdgeSet>() -> QuerySpec<E> {
        QuerySpec::new("pagerank", |snap| {
            let (ranks, _iters) = algorithms::pagerank(snap, 1e-4, 20);
            ranks
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("ranks are finite"))
                .map(|(i, _)| i as u64)
                .unwrap_or(0)
        })
    }
}

/// Runs registered queries in a loop over fresh snapshots until told to
/// stop. One `QueryExecutor` is shared by every query thread the engine
/// spawns.
pub struct QueryExecutor<E: EdgeSet> {
    vg: Arc<VersionedGraph<E>>,
    queries: Vec<QuerySpec<E>>,
    stats: Arc<EngineStats>,
    tracker: Option<Arc<ConsistencyTracker>>,
    /// The engine's compute pool; analytics `install` onto it so
    /// their parallel kernels share the writer's workers instead of
    /// fanning out to the machine width.
    pool: Option<Arc<rayon::ThreadPool>>,
    /// The flat snapshot built by the most recent round, keyed by the
    /// exact version it flattened. Query rounds outpace batch installs
    /// whenever ingestion idles, and the `O(n)` flatten dominates a
    /// round on large graphs — so a round whose acquired version is
    /// pointer-identical to the cached one reuses the flat snapshot
    /// instead of rebuilding it (counted in
    /// [`EngineStats::flat_reuse`]).
    flat_cache: FlatCache<E>,
}

impl<E: EdgeSet> QueryExecutor<E> {
    pub(crate) fn new(
        vg: Arc<VersionedGraph<E>>,
        queries: Vec<QuerySpec<E>>,
        stats: Arc<EngineStats>,
        tracker: Option<Arc<ConsistencyTracker>>,
        pool: Option<Arc<rayon::ThreadPool>>,
    ) -> Self {
        QueryExecutor {
            vg,
            queries,
            stats,
            tracker,
            pool,
            flat_cache: Mutex::new(None),
        }
    }

    /// The round's flat snapshot: cached if `snapshot` is the same
    /// version the previous round flattened, freshly built (and cached)
    /// otherwise. Identity is `Arc::ptr_eq` on the version — exact and
    /// race-free, unlike mapping install counters to snapshots.
    fn flat_for(&self, snapshot: &Version<E>) -> Arc<FlatSnapshot<E>> {
        let mut cache = self.flat_cache.lock();
        if let Some((version, flat)) = cache.as_ref() {
            if Arc::ptr_eq(version, snapshot) {
                self.stats.flat_reuse.inc();
                return flat.clone();
            }
        }
        let flat = {
            let _s = obs::trace::span_cat("query.flatten", "stream");
            Arc::new(FlatSnapshot::new(snapshot))
        };
        *cache = Some((snapshot.clone(), flat.clone()));
        flat
    }

    fn with_pool<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(p) => p.install(f),
            None => f(),
        }
    }

    /// Whether any queries are registered (the engine skips spawning
    /// query threads otherwise).
    pub fn has_queries(&self) -> bool {
        !self.queries.is_empty()
    }

    /// Acquires one snapshot and runs every registered query on it.
    /// Returns the digests in registration order.
    ///
    /// The flat snapshot (§5.1) is built **once per version** and
    /// shared by every registered query and query thread — its `O(n)`
    /// construction is a round's setup cost only when the installed
    /// version actually changed since the previous round (reuses are
    /// counted in [`EngineStats::flat_reuse`]); the
    /// [`query`](EngineStats::query) histogram records each analytic's
    /// pure run time on top of it.
    pub fn run_once(&self) -> Vec<u64> {
        self.with_pool(|| {
            let _round = obs::trace::span_cat("query.round", "stream");
            let snapshot = self.vg.acquire();
            if let Some(t) = &self.tracker {
                if !t.is_valid(snapshot.num_edges()) {
                    self.stats
                        .consistency_violations
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            let flat = self.flat_for(&snapshot);
            let mut digests = Vec::with_capacity(self.queries.len());
            for q in &self.queries {
                // One span per analytic, named after it ("bfs", "cc",
                // …) so Perfetto's aggregation groups by query.
                let _s = obs::trace::span_cat(q.name, "query");
                let t0 = Instant::now();
                digests.push((q.run)(&flat));
                self.stats.query.record(t0.elapsed());
                self.stats.queries_run.fetch_add(1, Ordering::Relaxed);
            }
            digests
        })
    }

    /// The body of one query thread: run rounds until `stop` is set.
    pub(crate) fn run_until(&self, stop: &AtomicBool) {
        while !stop.load(Ordering::Acquire) {
            self.run_once();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{CompressedEdges, Graph};

    fn ring(n: u32) -> Arc<VersionedGraph<CompressedEdges>> {
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), ((i + 1) % n, i)])
            .collect();
        Arc::new(VersionedGraph::new(Graph::from_edges(
            &edges,
            Default::default(),
        )))
    }

    #[test]
    fn builtin_analytics_digest_a_ring() {
        let vg = ring(16);
        let ex = QueryExecutor::new(
            vg,
            vec![
                analytics::bfs_from_hub(),
                analytics::connected_components(),
                analytics::pagerank(),
            ],
            Arc::new(EngineStats::new()),
            None,
            None,
        );
        let digests = ex.run_once();
        assert_eq!(digests[0], 16, "BFS reaches the whole ring");
        assert_eq!(digests[1], 1, "a ring is one component");
        assert!(digests[2] < 16, "top-ranked vertex is in range");
    }

    #[test]
    fn builtin_analytics_survive_an_empty_graph() {
        let vg: Arc<VersionedGraph<CompressedEdges>> =
            Arc::new(VersionedGraph::new(Graph::new(Default::default())));
        let ex = QueryExecutor::new(
            vg,
            vec![
                analytics::bfs_from_hub(),
                analytics::connected_components(),
                analytics::pagerank(),
            ],
            Arc::new(EngineStats::new()),
            None,
            None,
        );
        let digests = ex.run_once();
        assert_eq!(digests[0], 0, "BFS over nothing reaches nothing");
    }

    #[test]
    fn stats_and_tracker_are_updated() {
        let vg = ring(8);
        let stats = Arc::new(EngineStats::new());
        let tracker = Arc::new(ConsistencyTracker::new(16));
        let ex = QueryExecutor::new(
            vg,
            vec![analytics::connected_components()],
            stats.clone(),
            Some(tracker),
            None,
        );
        ex.run_once();
        assert_eq!(stats.queries_run.load(Ordering::Relaxed), 1);
        assert_eq!(stats.query.count(), 1);
        assert_eq!(stats.consistency_violations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn flat_snapshot_reused_until_version_changes() {
        let vg = ring(8);
        let stats = Arc::new(EngineStats::new());
        let ex = QueryExecutor::new(
            vg.clone(),
            vec![analytics::connected_components()],
            stats.clone(),
            None,
            None,
        );
        ex.run_once(); // builds and caches the flat snapshot
        ex.run_once(); // same version: reuse
        ex.run_once(); // same version: reuse
        assert_eq!(stats.flat_reuse.get(), 2);
        // A new installed version invalidates the cache...
        vg.insert_edges_undirected(&[(0, 100)]);
        let digests = ex.run_once();
        assert_eq!(stats.flat_reuse.get(), 2);
        // Ring ∪ {100} is one component; ids 8..100 minus vertex 100
        // are 92 isolated singletons — 93 total. A stale cache would
        // still report the ring's single component.
        assert_eq!(digests[0], 93, "new edge is visible, not stale-cached");
        // ...and the fresh flat snapshot is itself cached again.
        ex.run_once();
        assert_eq!(stats.flat_reuse.get(), 3);
    }

    #[test]
    fn tracker_mismatch_counts_violation() {
        let vg = ring(8);
        let stats = Arc::new(EngineStats::new());
        // Deliberately wrong initial count: every snapshot is "invalid".
        let tracker = Arc::new(ConsistencyTracker::new(1));
        let ex = QueryExecutor::new(
            vg,
            vec![analytics::connected_components()],
            stats.clone(),
            Some(tracker),
            None,
        );
        ex.run_once();
        assert_eq!(stats.consistency_violations.load(Ordering::Relaxed), 1);
    }
}
