//! `aspen-stream`: a concurrent streaming-ingestion engine over
//! [`aspen::VersionedGraph`].
//!
//! The paper's headline result (§7.4, Table 9) is running batch updates
//! *simultaneously* with graph queries at low latency. This crate is
//! the subsystem that actually does that, rather than replaying a
//! stream synchronously inside a bench loop:
//!
//! * **[`IngestHandle`]** — producers push [`graphgen::Update`]s
//!   into a bounded MPSC channel; a full channel blocks the producer
//!   (backpressure) instead of buffering without bound.
//! * **Writer loop** — a dedicated thread drains the channel into
//!   batches under an adaptive [`BatchPolicy`] (flush on max batch size
//!   or max linger time, whichever comes first, so throughput spikes
//!   get large batches and quiet periods keep latency low) and applies
//!   them with the paper's functional batch insert/delete via the
//!   core's timed-apply hook.
//! * **[`QueryExecutor`]** — registered analytics (BFS, connected
//!   components, PageRank, or anything custom) run on `acquire`d
//!   snapshots concurrently with ingestion; readers never block the
//!   writer and vice versa.
//! * **[`standing`] queries** — analytics the writer maintains
//!   *incrementally*: after each batch install it diffs the consecutive
//!   versions ([`aspen::diff_graphs`], cheap under structural sharing)
//!   and repairs the result in place instead of recomputing, publishing
//!   immutable [`StandingResult`]s that readers fetch in `O(1)`.
//! * **[`EngineStats`]** — per-batch apply latency, end-to-end update
//!   latency (enqueue → visible in an installed version), and query
//!   latency, all as log-bucketed histograms with percentile reporting.
//!
//! # Quick start
//!
//! ```
//! use aspen::{CompressedEdges, Graph, VersionedGraph};
//! use graphgen::Update;
//! use std::sync::Arc;
//! use stream::{analytics, BatchPolicy, StreamEngine};
//!
//! let vg: Arc<VersionedGraph<CompressedEdges>> = Arc::new(VersionedGraph::new(
//!     Graph::from_edges(&[(0, 1), (1, 0)], Default::default()),
//! ));
//!
//! let engine = StreamEngine::builder(vg.clone())
//!     .policy(BatchPolicy::default())
//!     .register_query(analytics::bfs_from_hub())
//!     .query_threads(1)
//!     .start();
//!
//! // Producers (any number of threads) push updates with backpressure.
//! let h = engine.handle();
//! h.push(Update::Insert(1, 2)).unwrap();
//! h.push(Update::Insert(2, 3)).unwrap();
//! drop(h);
//!
//! // Drains the channel, joins the writer and query threads.
//! let report = engine.finish();
//! assert_eq!(report.updates_applied, 2);
//! assert!(vg.acquire().contains_edge(2, 3));
//! ```

mod config;
mod engine;
mod handle;
mod query;
pub mod sharded;
pub mod standing;
mod stats;
pub mod wal;
mod writer;

pub use config::{BatchPolicy, EngineConfig};
pub use engine::{StreamEngine, StreamEngineBuilder};
pub use handle::{IngestError, IngestHandle};
pub use query::{analytics, QueryExecutor, QueryFn, QuerySpec};
pub use sharded::{
    ShardedCut, ShardedEngine, ShardedEngineBuilder, ShardedIngestHandle, ShardedReport,
};
pub use standing::{digest_values, StandingAnalytic, StandingHandle, StandingResult};
pub use stats::{
    EngineSnapshot, EngineStats, HistogramSnapshot, LatencyHistogram, LatencySummary, StatsReport,
};
pub use wal::{DurabilityConfig, FsyncPolicy, WalError};
