//! Ingestion tuning knobs.

use std::time::Duration;

/// Compute-resource configuration for one engine: how many
/// work-stealing pool workers the writer's batch applies and the
/// query executor's analytics share.
///
/// Both sides of the engine run parallel tree operations — the writer
/// through `insert_edges`/`delete_edges` (parallel `MultiInsert`), the
/// query threads through the parallel graph kernels — so on a shared
/// machine an engine should own an explicitly sized pool rather than
/// letting every thread fan out to the full machine width. With
/// [`num_threads`](Self::num_threads) `None` (the default) the engine
/// uses the process-global pool (sized by `ASPEN_THREADS` or the
/// machine parallelism).
///
/// Since the runtime moved to lock-free Chase–Lev deques with
/// adaptive split-on-steal iterators (`docs/RUNTIME.md`), sharing one
/// pool between the writer and the query threads is cheaper than it
/// used to be: the writer's small trickle batches apply nearly
/// fork-free when the pool is busy with queries (the adaptive
/// splitter only subdivides under observed steal pressure), and
/// neither side can convoy the other on a deque lock — there are
/// none. The practical guidance stands: size the pool to the cores
/// the engine *owns*, and prefer one shared pool per engine over
/// per-thread pools.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Workers in the engine's dedicated compute pool; `None` shares
    /// the global pool.
    pub num_threads: Option<usize>,
}

impl EngineConfig {
    /// Validates the configuration; called by the engine builder.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is `Some(0)`.
    pub fn validate(&self) {
        assert!(
            self.num_threads != Some(0),
            "num_threads must be positive (use None for the global pool)"
        );
    }
}

/// The adaptive batching policy of the writer loop.
///
/// The writer flushes its buffered updates when **either** limit is
/// hit, whichever comes first:
///
/// * [`max_batch`](Self::max_batch) updates are buffered — under a
///   throughput spike the engine degrades gracefully into large batches
///   and rides the paper's batch-update scalability (§7.4: throughput
///   grows with batch size);
/// * the oldest buffered update has lingered for
///   [`max_linger`](Self::max_linger) — under a trickle of updates the
///   engine bounds visibility latency instead of waiting for a full
///   batch.
///
/// The effective batch size therefore *adapts to the arrival rate*
/// between `1` and `max_batch` with no explicit rate measurement.
///
/// [`channel_capacity`](Self::channel_capacity) bounds the ingest
/// channel; producers pushing into a full channel block until the
/// writer drains it (backpressure), so engine memory stays bounded no
/// matter how fast producers run.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Flush as soon as this many updates are buffered.
    pub max_batch: usize,
    /// Flush when the oldest buffered update is this old.
    pub max_linger: Duration,
    /// Capacity of the bounded ingest channel.
    pub channel_capacity: usize,
}

impl Default for BatchPolicy {
    /// `max_batch` 4096, `max_linger` 2 ms, `channel_capacity` 65536 —
    /// batch sizes in the range where Table 8 shows batching already
    /// pays, with a visibility bound far below a human-perceptible lag.
    fn default() -> Self {
        BatchPolicy {
            max_batch: 4096,
            max_linger: Duration::from_millis(2),
            channel_capacity: 64 * 1024,
        }
    }
}

impl BatchPolicy {
    /// Validates the policy; called by the engine builder.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `channel_capacity` is zero.
    pub fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(
            self.channel_capacity > 0,
            "channel_capacity must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        BatchPolicy::default().validate();
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        BatchPolicy {
            max_batch: 0,
            ..Default::default()
        }
        .validate();
    }
}
