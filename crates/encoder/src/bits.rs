//! MSB-first bit streams and instantaneous integer codes.
//!
//! The varint byte-code in this crate pays a whole byte for every gap;
//! WebGraph-style codes spend *bits*. This module provides the two
//! primitives the `ctree` chunk codecs build on:
//!
//! - [`BitWriter`] / [`BitReader`]: an MSB-first bit stream over a byte
//!   buffer (the first bit written is the high bit of byte 0).
//! - Scalar codes on top of it: **unary**, **Elias γ**, **minimal
//!   binary**, and **Boldi–Vigna ζ_k**.
//!
//! γ(x), for x ≥ 1, writes N = ⌊log₂ x⌋ in unary (N zeros, then a 1)
//! followed by the N low bits of x — short codes for small gaps, ideal
//! for dense adjacency lists. ζ_k generalises γ with a coarser
//! exponent: x ∈ [2^(hk), 2^((h+1)k)) writes h in unary then the offset
//! in a minimal binary code; k tunes the code toward the gap
//! distribution of power-law graphs (ζ₁ ≡ γ, a property the tests pin).

/// Accumulates bits MSB-first into a byte buffer.
///
/// ```
/// use encoder::{BitReader, BitWriter};
/// let mut w = BitWriter::new();
/// w.write_gamma(9);
/// w.write_unary(3);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_gamma(), 9);
/// assert_eq!(r.read_unary(), 3);
/// ```
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// An empty bit stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits written so far (before final padding).
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Writes the low `n` bits of `v`, most significant first. `n ≤ 64`.
    #[inline]
    pub fn write_bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 64);
        if n > 32 {
            self.push(v >> 32, n - 32);
            self.push(v & 0xffff_ffff, 32);
        } else {
            self.push(v & mask(n), n);
        }
    }

    /// Writes a single bit (`0` or `1`).
    #[inline]
    pub fn write_bit(&mut self, b: u32) {
        debug_assert!(b <= 1);
        self.push(u64::from(b), 1);
    }

    /// Unary code: `n` zeros followed by a terminating one.
    #[inline]
    pub fn write_unary(&mut self, mut n: u32) {
        while n >= 32 {
            self.push(0, 32);
            n -= 32;
        }
        self.push(1, n + 1);
    }

    /// Elias γ code of `x ≥ 1`: unary ⌊log₂ x⌋ then that many low bits.
    #[inline]
    pub fn write_gamma(&mut self, x: u64) {
        debug_assert!(x >= 1, "gamma is defined for x >= 1");
        let n = 63 - x.leading_zeros();
        self.write_unary(n);
        self.write_bits(x & !(1u64 << n), n);
    }

    /// Minimal binary code of `v` over the interval `[0, m)`.
    ///
    /// With `s = ⌈log₂ m⌉` and `t = 2^s − m`, values below `t` take
    /// `s − 1` bits and the rest take `s` bits — a prefix-free code that
    /// wastes nothing when `m` is not a power of two.
    #[inline]
    pub fn write_minimal_binary(&mut self, v: u64, m: u64) {
        debug_assert!(v < m, "minimal binary value {v} out of range [0, {m})");
        if m == 1 {
            return; // zero bits: the value is forced
        }
        let s = 64 - (m - 1).leading_zeros();
        let t = (1u64 << s) - m;
        if v < t {
            self.write_bits(v, s - 1);
        } else {
            self.write_bits(v + t, s);
        }
    }

    /// Boldi–Vigna ζ_k code of `x ≥ 1` (`1 ≤ k`, `x < 2^62`).
    ///
    /// Writes `h` in unary for `x ∈ [2^(hk), 2^((h+1)k))`, then the
    /// offset `x − 2^(hk)` in minimal binary over an interval of size
    /// `2^(hk)·(2^k − 1)`. `ζ_1` coincides bit-for-bit with γ.
    #[inline]
    pub fn write_zeta(&mut self, x: u64, k: u32) {
        debug_assert!(x >= 1, "zeta is defined for x >= 1");
        debug_assert!((1..=16).contains(&k));
        debug_assert!(x < 1u64 << 62);
        let mut h = 0u32;
        while (h + 1) * k <= 62 && x >= 1u64 << ((h + 1) * k) {
            h += 1;
        }
        self.write_unary(h);
        let low = 1u64 << (h * k);
        let m = ((1u64 << k) - 1) * low;
        self.write_minimal_binary(x - low, m);
    }

    /// Flushes the accumulator, zero-padding the final byte.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.push(0, pad);
        }
        self.out
    }

    /// Appends `n ≤ 32` already-masked bits.
    #[inline]
    fn push(&mut self, v: u64, n: u32) {
        self.acc = (self.acc << n) | v;
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }
}

#[inline]
fn mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Reads an MSB-first bit stream produced by [`BitWriter`].
///
/// Keeps a 64-bit refill buffer so multi-bit reads touch bytes in
/// bulk; the chunk codecs call this once per decoded neighbour, so the
/// per-call cost matters.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Starts reading from the first (most significant) bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.bytes.len() {
            self.acc = (self.acc << 8) | u64::from(self.bytes[self.pos]);
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Reads `n ≤ 64` bits, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if the stream is exhausted.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        if n > 32 {
            let hi = self.read_small(n - 32);
            let lo = self.read_small(32);
            (hi << 32) | lo
        } else {
            self.read_small(n)
        }
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> u32 {
        self.read_small(1) as u32
    }

    /// Reads a unary code: the number of zeros before the next one bit.
    #[inline]
    pub fn read_unary(&mut self) -> u32 {
        let mut count = 0u32;
        loop {
            self.refill();
            assert!(self.nbits > 0, "truncated bit stream");
            // Valid bits live in the low `nbits` of `acc`; shift them to
            // the top so leading_zeros counts only real data.
            let window = self.acc << (64 - self.nbits);
            let lz = window.leading_zeros();
            if lz >= self.nbits {
                count += self.nbits;
                self.nbits = 0;
            } else {
                self.nbits -= lz + 1;
                return count + lz;
            }
        }
    }

    /// Reads an Elias γ code (inverse of [`BitWriter::write_gamma`]).
    #[inline]
    pub fn read_gamma(&mut self) -> u64 {
        let n = self.read_unary();
        (1u64 << n) | self.read_bits(n)
    }

    /// Reads a minimal binary code over `[0, m)`.
    #[inline]
    pub fn read_minimal_binary(&mut self, m: u64) -> u64 {
        if m == 1 {
            return 0;
        }
        let s = 64 - (m - 1).leading_zeros();
        let t = (1u64 << s) - m;
        let v = self.read_bits(s - 1);
        if v < t {
            v
        } else {
            ((v << 1) | u64::from(self.read_bit())) - t
        }
    }

    /// Reads a ζ_k code (inverse of [`BitWriter::write_zeta`]).
    #[inline]
    pub fn read_zeta(&mut self, k: u32) -> u64 {
        let h = self.read_unary();
        let low = 1u64 << (h * k);
        let m = ((1u64 << k) - 1) * low;
        low + self.read_minimal_binary(m)
    }

    #[inline]
    fn read_small(&mut self, n: u32) -> u64 {
        if n == 0 {
            return 0;
        }
        if self.nbits < n {
            self.refill();
            assert!(self.nbits >= n, "truncated bit stream");
        }
        self.nbits -= n;
        (self.acc >> self.nbits) & mask(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_are_msb_first() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    fn gamma_known_codewords() {
        // γ(1) = "1", γ(2) = "010", γ(3) = "011", γ(4) = "00100".
        for (x, code, len) in [
            (1u64, 0b1u64, 1u32),
            (2, 0b010, 3),
            (3, 0b011, 3),
            (4, 0b00100, 5),
        ] {
            let mut w = BitWriter::new();
            w.write_gamma(x);
            assert_eq!(w.bit_len(), len as usize, "γ({x}) length");
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_bits(len), code, "γ({x}) bits");
        }
    }

    #[test]
    fn unary_across_refill_boundaries() {
        let mut w = BitWriter::new();
        for n in [0u32, 7, 63, 64, 100, 1] {
            w.write_unary(n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for n in [0u32, 7, 63, 64, 100, 1] {
            assert_eq!(r.read_unary(), n);
        }
    }

    #[test]
    fn minimal_binary_is_prefix_free_and_exact() {
        for m in 1u64..=48 {
            let mut w = BitWriter::new();
            for v in 0..m {
                w.write_minimal_binary(v, m);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for v in 0..m {
                assert_eq!(r.read_minimal_binary(m), v, "m={m} v={v}");
            }
        }
    }

    #[test]
    fn zeta1_equals_gamma() {
        for x in (1u64..200).chain([1 << 20, (1 << 32) + 1, 1 << 40]) {
            let mut wz = BitWriter::new();
            wz.write_zeta(x, 1);
            let mut wg = BitWriter::new();
            wg.write_gamma(x);
            assert_eq!(wz.bit_len(), wg.bit_len(), "ζ₁({x}) length");
            assert_eq!(wz.finish(), wg.finish(), "ζ₁({x}) bits");
        }
    }

    #[test]
    fn zeta2_unit_gap_is_two_bits() {
        // The intervalization codec leans on ζ₂(1) = 2 bits (vs 8 for a
        // varint byte), which is where it beats DeltaCodec on dense sets.
        let mut w = BitWriter::new();
        w.write_zeta(1, 2);
        assert_eq!(w.bit_len(), 2);
    }

    #[test]
    fn max_gap_roundtrips() {
        // A chunk whose first value is u32::MAX encodes gap 2^32.
        let big = 1u64 << 32;
        let mut w = BitWriter::new();
        w.write_gamma(big);
        w.write_zeta(big, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_gamma(), big);
        assert_eq!(r.read_zeta(2), big);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_stream_panics() {
        let mut r = BitReader::new(&[0x00]);
        r.read_unary();
    }

    proptest! {
        #[test]
        fn roundtrip_mixed_codes(xs in proptest::collection::vec(1u64..=(1u64 << 33), 1..120), k in 1u32..=8) {
            let mut w = BitWriter::new();
            for (i, &x) in xs.iter().enumerate() {
                match i % 3 {
                    0 => w.write_gamma(x),
                    1 => w.write_zeta(x, k),
                    _ => w.write_bits(x, 34),
                }
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for (i, &x) in xs.iter().enumerate() {
                let got = match i % 3 {
                    0 => r.read_gamma(),
                    1 => r.read_zeta(k),
                    _ => r.read_bits(34),
                };
                prop_assert_eq!(got, x);
            }
        }
    }
}
