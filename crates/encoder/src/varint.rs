//! LEB128-style variable-length byte codes.
//!
//! Each byte carries 7 payload bits; the high bit marks continuation.
//! Small gaps — the common case after difference encoding a real-world
//! adjacency list — take a single byte.

/// Appends the byte-code of `v` to `out`.
///
/// ```
/// let mut buf = Vec::new();
/// encoder::encode_u32(300, &mut buf);
/// assert_eq!(encoder::decode_u32(&buf), (300, 2));
/// ```
#[inline]
pub fn encode_u32(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends the byte-code of a 64-bit value.
#[inline]
pub fn encode_u64(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one value from the front of `bytes`; returns `(value,
/// bytes_consumed)`.
///
/// # Panics
///
/// Panics if `bytes` is empty or the code is truncated.
#[inline]
pub fn decode_u32(bytes: &[u8]) -> (u32, usize) {
    let mut v = 0u32;
    let mut shift = 0u32;
    for (i, &byte) in bytes.iter().enumerate() {
        v |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return (v, i + 1);
        }
        shift += 7;
    }
    panic!("truncated varint");
}

/// Decodes one 64-bit value from the front of `bytes`.
///
/// # Panics
///
/// Panics if `bytes` is empty or the code is truncated.
#[inline]
pub fn decode_u64(bytes: &[u8]) -> (u64, usize) {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in bytes.iter().enumerate() {
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return (v, i + 1);
        }
        shift += 7;
    }
    panic!("truncated varint");
}

/// Number of bytes [`encode_u32`] uses for `v`.
#[inline]
pub fn encoded_len_u32(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn boundaries_u32() {
        for v in [
            0u32,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            0x1f_ffff,
            0x20_0000,
            u32::MAX,
        ] {
            let mut buf = Vec::new();
            encode_u32(v, &mut buf);
            assert_eq!(buf.len(), encoded_len_u32(v), "len mismatch for {v}");
            assert_eq!(decode_u32(&buf), (v, buf.len()));
        }
    }

    #[test]
    fn boundaries_u64() {
        for v in [0u64, 127, 128, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            assert_eq!(decode_u64(&buf), (v, buf.len()));
        }
    }

    #[test]
    fn back_to_back_codes() {
        let mut buf = Vec::new();
        encode_u32(1, &mut buf);
        encode_u32(1_000_000, &mut buf);
        let (a, used_a) = decode_u32(&buf);
        let (b, used_b) = decode_u32(&buf[used_a..]);
        assert_eq!((a, b), (1, 1_000_000));
        assert_eq!(used_a + used_b, buf.len());
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_code_panics() {
        decode_u32(&[0x80]);
    }

    proptest! {
        #[test]
        fn roundtrip_u32(v in any::<u32>()) {
            let mut buf = Vec::new();
            encode_u32(v, &mut buf);
            prop_assert_eq!(decode_u32(&buf), (v, buf.len()));
        }

        #[test]
        fn roundtrip_u64(v in any::<u64>()) {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            prop_assert_eq!(decode_u64(&buf), (v, buf.len()));
        }
    }
}
