//! Byte-code compression for sorted integer sequences.
//!
//! C-trees exploit that each chunk stores a *sorted* set of integers
//! (§3.2, "Integer C-trees"): a chunk `{I1, …, Id}` is stored as the
//! differences `{I1, I2−I1, …, Id−I(d−1)}`, each encoded with a variable
//! length byte-code [Witten–Moffat–Bell; Ligra+]. Byte-codes decode fast
//! while capturing most of the savings of shorter codes, which is the
//! trade-off the paper makes.
//!
//! This crate provides the raw codec; the chunk structure that carries
//! cached `first`/`last`/`len` headers lives in the `ctree` crate.
//!
//! # Example
//!
//! ```
//! let xs = [3u32, 7, 8, 100, 1000];
//! let bytes = encoder::encode_sorted(&xs);
//! assert_eq!(encoder::decode_sorted(&bytes, xs.len()), xs);
//! ```

mod bits;
mod varint;

pub use bits::{BitReader, BitWriter};
pub use varint::{decode_u32, decode_u64, encode_u32, encode_u64, encoded_len_u32};

/// Difference-encodes a strictly increasing slice of `u32` into a byte
/// buffer: the first value verbatim (varint), then each gap.
///
/// # Panics
///
/// Panics (in debug builds) if `xs` is not strictly increasing.
pub fn encode_sorted(xs: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() + 4);
    encode_sorted_into(xs, &mut out);
    out
}

/// Like [`encode_sorted`] but appends to an existing buffer, avoiding
/// an allocation when packing many chunks.
pub fn encode_sorted_into(xs: &[u32], out: &mut Vec<u8>) {
    let mut prev: Option<u32> = None;
    for &x in xs {
        match prev {
            None => encode_u32(x, out),
            Some(p) => {
                debug_assert!(x > p, "input not strictly increasing: {p} then {x}");
                encode_u32(x - p, out);
            }
        }
        prev = Some(x);
    }
}

/// Decodes `count` difference-encoded values from `bytes`.
///
/// # Panics
///
/// Panics if `bytes` is truncated.
pub fn decode_sorted(bytes: &[u8], count: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(count);
    let it = SortedDecoder::new(bytes, count);
    for x in it {
        out.push(x);
    }
    out
}

/// Streaming decoder over a difference-encoded buffer.
///
/// Decoding is sequential within a chunk; chunks are short
/// (`O(b log n)` w.h.p., Lemma 3.1) so this does not affect the depth of
/// parallel tree methods.
#[derive(Debug, Clone)]
pub struct SortedDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: Option<u32>,
}

impl<'a> SortedDecoder<'a> {
    /// Starts decoding `count` values from `bytes`.
    pub fn new(bytes: &'a [u8], count: usize) -> Self {
        Self {
            bytes,
            pos: 0,
            remaining: count,
            prev: None,
        }
    }
}

impl Iterator for SortedDecoder<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (delta, used) = decode_u32(&self.bytes[self.pos..]);
        self.pos += used;
        let v = match self.prev {
            None => delta,
            Some(p) => p + delta,
        };
        self.prev = Some(v);
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for SortedDecoder<'_> {}

/// Number of bytes [`encode_sorted`] would produce, without allocating.
pub fn encoded_size(xs: &[u32]) -> usize {
    let mut total = 0usize;
    let mut prev: Option<u32> = None;
    for &x in xs {
        total += encoded_len_u32(match prev {
            None => x,
            Some(p) => x - p,
        });
        prev = Some(x);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_roundtrip() {
        let bytes = encode_sorted(&[]);
        assert!(bytes.is_empty());
        assert!(decode_sorted(&bytes, 0).is_empty());
    }

    #[test]
    fn single_value_roundtrip() {
        for v in [0u32, 1, 127, 128, u32::MAX] {
            let bytes = encode_sorted(&[v]);
            assert_eq!(decode_sorted(&bytes, 1), vec![v]);
        }
    }

    #[test]
    fn dense_run_compresses_to_one_byte_per_gap() {
        let xs: Vec<u32> = (1000..2000).collect();
        let bytes = encode_sorted(&xs);
        // first value takes 2 bytes, every unit gap takes 1.
        assert_eq!(bytes.len(), 2 + (xs.len() - 1));
    }

    #[test]
    fn encoded_size_matches_actual() {
        let xs = [5u32, 6, 300, 70_000, 70_001, 1 << 30];
        assert_eq!(encoded_size(&xs), encode_sorted(&xs).len());
    }

    #[test]
    fn decoder_is_exact_size() {
        let xs = [1u32, 5, 9];
        let bytes = encode_sorted(&xs);
        let it = SortedDecoder::new(&bytes, 3);
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), xs);
    }

    proptest! {
        #[test]
        fn roundtrip_random_sorted_sets(mut xs in proptest::collection::vec(0u32..=u32::MAX, 0..300)) {
            xs.sort_unstable();
            xs.dedup();
            let bytes = encode_sorted(&xs);
            prop_assert_eq!(decode_sorted(&bytes, xs.len()), xs);
        }

        #[test]
        fn compressed_never_larger_than_5x_count(mut xs in proptest::collection::vec(0u32..=u32::MAX, 1..300)) {
            xs.sort_unstable();
            xs.dedup();
            let bytes = encode_sorted(&xs);
            prop_assert!(bytes.len() <= 5 * xs.len());
        }
    }
}
