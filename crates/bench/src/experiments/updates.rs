//! Update-throughput experiments: Tables 7, 8, 10 and Figure 5.

use super::build_aspen;
use crate::datasets::{default_b, Dataset};
use crate::tables::Table;
use crate::{fmt_rate, fmt_secs, median_time, timed};
use algorithms::bfs;
use aspen::{CompressedEdges, FlatSnapshot, Graph, VersionedGraph};
use baselines::StingerLike;
use graphgen::{build_update_stream, Rmat, Update};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Undirected edges sampled for the §7.3 stream (paper: 2M; scaled).
const STREAM_SAMPLE: usize = 50_000;

/// BFS queries timed against the concurrent update stream.
const CONCURRENT_QUERIES: usize = 4;

/// Table 7: simultaneous updates and global queries. A writer thread
/// replays the §7.3 stream one edge at a time while BFS queries run;
/// query latency is then re-measured in isolation.
pub fn run_table7(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Table 7: concurrent updates and queries",
        &[
            "graph",
            "updates/s (directed)",
            "update latency",
            "BFS (concurrent)",
            "BFS (isolated)",
        ],
    );
    for d in datasets {
        let edges = d.edges();
        let undirected = edges.iter().filter(|&&(u, v)| u < v).count();
        let sample = STREAM_SAMPLE.min(undirected / 2).max(1);
        let setup = build_update_stream(&edges, sample, 0x517);
        let vg: Arc<VersionedGraph<CompressedEdges>> = Arc::new(VersionedGraph::new(
            Graph::from_edges(&setup.initial_edges, default_b()),
        ));
        let src = super::hub(&*vg.acquire());

        let stop = Arc::new(AtomicBool::new(false));
        let applied = Arc::new(AtomicU64::new(0));
        let writer = {
            let vg = vg.clone();
            let stop = stop.clone();
            let applied = applied.clone();
            let updates = setup.updates.clone();
            std::thread::spawn(move || {
                let start = std::time::Instant::now();
                for u in updates.iter().cycle() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match *u {
                        Update::Insert(a, b) => vg.insert_edges_undirected(&[(a, b)]),
                        Update::Delete(a, b) => vg.delete_edges_undirected(&[(a, b)]),
                    }
                    applied.fetch_add(1, Ordering::Relaxed);
                }
                start.elapsed().as_secs_f64()
            })
        };

        // Concurrent global queries, each on a fresh snapshot.
        let (_, concurrent_total) = timed(|| {
            for _ in 0..CONCURRENT_QUERIES {
                let snap = vg.acquire();
                let f = FlatSnapshot::new(&snap);
                std::hint::black_box(bfs(&f, src));
            }
        });
        stop.store(true, Ordering::Relaxed);
        let writer_secs = writer.join().expect("writer thread");
        let n_applied = applied.load(Ordering::Relaxed);
        let rate = 2.0 * n_applied as f64 / writer_secs; // directed

        // Isolated query latency on the final version.
        let snap = vg.acquire();
        let flat = FlatSnapshot::new(&snap);
        let (_, isolated_total) = timed(|| {
            for _ in 0..CONCURRENT_QUERIES {
                std::hint::black_box(bfs(&flat, src));
            }
        });

        t.row(&[
            d.name.to_owned(),
            fmt_rate(rate),
            fmt_secs(1.0 / rate.max(1e-12)),
            fmt_secs(concurrent_total / CONCURRENT_QUERIES as f64),
            fmt_secs(isolated_total / CONCURRENT_QUERIES as f64),
        ]);
    }
    t
}

/// Batch sizes for Table 8 / Figure 5 (paper sweeps 10 … 2·10⁹; scaled
/// to the machine).
pub const BATCH_SIZES: &[usize] = &[10, 1_000, 100_000, 1_000_000, 5_000_000];

fn rmat_batch(d: &Dataset, offset: u64, size: usize) -> Vec<(u32, u32)> {
    // Paper §7.4: updates are drawn from an rMAT stream (duplicates
    // possible) over the same id space.
    Rmat::new(d.scale, d.seed ^ 0xBA7C4).edges(offset, size)
}

/// Table 8: parallel batch-insert throughput across batch sizes.
pub fn run_table8(datasets: &[Dataset]) -> Table {
    let mut header: Vec<String> = vec!["graph".into()];
    header.extend(BATCH_SIZES.iter().map(|b| format!("batch {b}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table 8: batch insertion throughput (directed edges/s)",
        &header_refs,
    );
    for d in datasets {
        let (g, _) = build_aspen(d);
        let mut cells = vec![d.name.to_owned()];
        for &bs in BATCH_SIZES {
            let batch = rmat_batch(d, 0, bs);
            let secs = median_time(3, || {
                std::hint::black_box(g.insert_edges(&batch));
            });
            cells.push(fmt_rate(bs as f64 / secs));
        }
        t.row(&cells);
    }
    t
}

/// Figure 5: insertion *and* deletion throughput series per batch
/// size, for the smallest and largest stand-in (log-log series in the
/// paper).
pub fn run_figure5(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Figure 5: batch size vs throughput (insert and delete)",
        &["graph", "op", "batch", "throughput"],
    );
    for d in datasets {
        let (g, _) = build_aspen(d);
        for &bs in BATCH_SIZES {
            let batch = rmat_batch(d, 0, bs);
            let ins = median_time(3, || {
                std::hint::black_box(g.insert_edges(&batch));
            });
            // Delete from a graph that contains the batch, as the paper
            // does (insert then delete the same batch).
            let with = g.insert_edges(&batch);
            let del = median_time(3, || {
                std::hint::black_box(with.delete_edges(&batch));
            });
            t.row(&[
                d.name.to_owned(),
                "insert".into(),
                bs.to_string(),
                fmt_rate(bs as f64 / ins),
            ]);
            t.row(&[
                d.name.to_owned(),
                "delete".into(),
                bs.to_string(),
                fmt_rate(bs as f64 / del),
            ]);
        }
    }
    t
}

/// Batch sizes for the Stinger comparison (paper: 10 … 2·10⁶, the
/// largest batch Stinger supports).
pub const STINGER_BATCHES: &[usize] = &[10, 100, 1_000, 10_000, 100_000, 1_000_000, 2_000_000];

/// Table 10: batch insertions into an (almost) empty graph — the
/// regime Stinger's update path favors — Stinger-like vs Aspen.
pub fn run_table10() -> Table {
    let mut t = Table::new(
        "Table 10: batch updates into an empty graph (directed edges/s)",
        &[
            "batch",
            "Stinger-like time",
            "Stinger-like rate",
            "Aspen time",
            "Aspen rate",
        ],
    );
    // Paper: rMAT updates with n = 2^30; scaled to 2^20 ids.
    let scale = 20u32;
    let gen = Rmat::new(scale, 0x10_57);
    for &bs in STINGER_BATCHES {
        // Ten successive batches; median time (§7.5 methodology).
        let batches: Vec<Vec<(u32, u32)>> =
            (0..10u64).map(|i| gen.edges(i * bs as u64, bs)).collect();

        let stinger = StingerLike::new(1 << scale);
        let mut it = batches.iter();
        let st = median_time(10, || {
            stinger.insert_batch(it.next().expect("10 batches"));
        });

        let mut aspen_g: Graph<CompressedEdges> = Graph::new(default_b());
        let mut it = batches.iter();
        let asp = median_time(10, || {
            aspen_g = aspen_g.insert_edges(it.next().expect("10 batches"));
        });

        t.row(&[
            bs.to_string(),
            fmt_secs(st),
            fmt_rate(bs as f64 / st),
            fmt_secs(asp),
            fmt_rate(bs as f64 / asp),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::tiny;

    #[test]
    fn smoke_table7_on_tiny() {
        let t = run_table7(&[tiny()]);
        let s = t.render();
        assert!(s.contains("tiny"));
    }

    #[test]
    fn rmat_batch_is_reproducible() {
        let d = tiny();
        assert_eq!(rmat_batch(&d, 0, 100), rmat_batch(&d, 0, 100));
    }
}
