//! Memory-accounting experiments: Tables 1, 2, 5 and 9, plus the
//! chunk-codec compression frontier (`repro memory`).

use super::{build_aspen, hub};
use crate::datasets::{default_b, Dataset};
use crate::tables::Table;
use crate::{fmt_bytes, fmt_secs, timed};
use aspen::{
    CTreeEdges, ChunkParams, CompressedEdges, FlatSnapshot, Graph, GraphView, PlainEdges,
    UncompressedEdges,
};
use baselines::CompressedCsr;
use ctree::{ChunkCodec, DeltaCodec, GammaCodec, IntervalCodec, PlainCodec};

/// Table 1: statistics of the stand-in graphs.
pub fn run_table1(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Table 1: input graph statistics (synthetic stand-ins)",
        &["graph", "vertices", "directed edges", "avg degree"],
    );
    for d in datasets {
        let g = d.build();
        let avg = g.num_edges() as f64 / g.num_vertices().max(1) as f64;
        t.row(&[
            d.name.to_owned(),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            format!("{avg:.1}"),
        ]);
    }
    t
}

/// Table 2: memory usage of flat snapshots and the three edge
/// representations, plus the savings of Aspen (DE) over uncompressed
/// trees.
pub fn run_table2(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Table 2: memory usage by representation",
        &[
            "graph",
            "flat snap.",
            "uncompressed",
            "no-DE (C-tree)",
            "DE (C-tree)",
            "savings",
        ],
    );
    for d in datasets {
        let edges = d.edges();
        let unc: Graph<UncompressedEdges> = Graph::from_edges(&edges, ());
        let plain: Graph<PlainEdges> = Graph::from_edges(&edges, default_b());
        let delta: Graph<CompressedEdges> = Graph::from_edges(&edges, default_b());
        let flat = FlatSnapshot::new(&delta);
        let (u, p, de) = (
            unc.memory_bytes(),
            plain.memory_bytes(),
            delta.memory_bytes(),
        );
        t.row(&[
            d.name.to_owned(),
            fmt_bytes(flat.memory_bytes()),
            fmt_bytes(u),
            fmt_bytes(p),
            fmt_bytes(de),
            format!("{:.2}x", u as f64 / de as f64),
        ]);
    }
    t
}

/// Table 5: memory and algorithm performance as a function of the
/// chunk size `b` (swept over `2^1 .. 2^12` on the Twitter stand-in).
pub fn run_table5(d: &Dataset) -> Table {
    let mut t = Table::new(
        &format!("Table 5: chunk-size sweep on {}", d.name),
        &["b", "memory", "BFS", "BC", "MIS"],
    );
    let edges = d.edges();
    for log_b in 1..=12u32 {
        let g: Graph<CompressedEdges> = Graph::from_edges(&edges, ChunkParams::with_b(1 << log_b));
        let f = FlatSnapshot::new(&g);
        let src = hub(&f);
        let (_, bfs_t) = timed(|| algorithms::bfs(&f, src));
        let (_, bc_t) = timed(|| algorithms::bc(&f, src));
        let (_, mis_t) = timed(|| algorithms::mis(&f, 1));
        t.row(&[
            format!("2^{log_b}"),
            fmt_bytes(g.memory_bytes()),
            fmt_secs(bfs_t),
            fmt_secs(bc_t),
            fmt_secs(mis_t),
        ]);
    }
    t
}

/// Table 9: memory of the Stinger-like and LLAMA-like streaming
/// systems and the Ligra+-like compressed CSR, against Aspen (DE).
pub fn run_table9(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Table 9: memory across systems",
        &[
            "graph",
            "Stinger-like",
            "LLAMA-like",
            "Ligra+ (ccsr)",
            "Aspen (DE)",
            "ST/Asp",
            "LL/Asp",
            "L+/Asp",
        ],
    );
    for d in datasets {
        let edges = d.edges();
        // The streaming systems are measured in streamed-in state (the
        // per-batch indirection copies are LLAMA's documented memory
        // cost); the static Ligra+-like CSR is built in one shot.
        let (stinger, llama) = super::build_streamed_baselines(&edges);
        let ccsr = CompressedCsr::from_edges(&edges);
        let (aspen_g, _) = build_aspen(d);
        let (s, l, c, a) = (
            stinger.memory_bytes(),
            llama.memory_bytes(),
            ccsr.memory_bytes(),
            aspen_g.memory_bytes(),
        );
        t.row(&[
            d.name.to_owned(),
            fmt_bytes(s),
            fmt_bytes(l),
            fmt_bytes(c),
            fmt_bytes(a),
            format!("{:.2}x", s as f64 / a as f64),
            format!("{:.2}x", l as f64 / a as f64),
            format!("{:.2}x", c as f64 / a as f64),
        ]);
    }
    t
}

/// Timed sequential decode passes over every adjacency list; the number
/// of passes amortizes timer noise on the small stand-ins.
const DECODE_REPS: u32 = 3;

/// One (dataset, codec) row of the compression frontier: space as
/// bytes-per-edge and sequential decode throughput as ns-per-edge,
/// both also attached as raw metrics
/// (`{dataset}.{codec}.bytes_per_edge` / `.decode_ns_per_edge`).
fn codec_row<C: ChunkCodec>(t: &mut Table, dataset: &str, edges: &[(u32, u32)]) {
    let g: Graph<CTreeEdges<C>> = Graph::from_edges(edges, default_b());
    let mem = g.memory_bytes();
    let ne = g.num_edges().max(1);
    let bytes_per_edge = mem as f64 / ne as f64;

    // Full sequential neighbor scans through the lazy chunk decoders;
    // the checksum keeps the traversal from being optimized away.
    let scan = || {
        let mut acc = 0u64;
        for v in 0..g.id_bound() as u32 {
            g.for_each_neighbor(v, &mut |u| acc = acc.wrapping_add(u64::from(u)));
        }
        acc
    };
    let warm = scan();
    let (check, secs) = timed(|| {
        let mut acc = 0u64;
        for _ in 0..DECODE_REPS {
            acc = acc.wrapping_add(std::hint::black_box(scan()));
        }
        acc
    });
    assert_eq!(check, warm.wrapping_mul(u64::from(DECODE_REPS)));
    let decode_ns_per_edge = secs * 1e9 / (f64::from(DECODE_REPS) * ne as f64);

    t.row(&[
        dataset.to_owned(),
        C::name().to_owned(),
        fmt_bytes(mem),
        format!("{bytes_per_edge:.2}"),
        format!("{decode_ns_per_edge:.1}"),
    ]);
    t.metric(
        &format!("{dataset}.{}.bytes_per_edge", C::name()),
        bytes_per_edge,
    );
    t.metric(
        &format!("{dataset}.{}.decode_ns_per_edge", C::name()),
        decode_ns_per_edge,
    );
}

/// `repro memory` — the codec axis: the Plain/Delta/Gamma/Interval
/// space–time frontier, measured per dataset. Bytes-per-edge counts all
/// C-tree overhead (vertex tree, heads, chunk storage) against the
/// directed edge count; decode-ns-per-edge is a full sequential
/// neighbor scan through [`ChunkCodec::iter`].
pub fn run_memory(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Memory: chunk-codec compression frontier",
        &["graph", "codec", "memory", "bytes/edge", "decode ns/edge"],
    );
    for d in datasets {
        let edges = d.edges();
        codec_row::<PlainCodec>(&mut t, d.name, &edges);
        codec_row::<DeltaCodec>(&mut t, d.name, &edges);
        codec_row::<GammaCodec>(&mut t, d.name, &edges);
        codec_row::<IntervalCodec>(&mut t, d.name, &edges);
    }
    t
}
