//! Thread-scaling experiment: batch inserts and graph kernels at
//! 1/2/4/8 workers.
//!
//! The paper's self-relative speedups (Tables 3, 4 and 8 report 1
//! thread vs 72 cores) are the evidence that its tree operations run
//! with the claimed parallel depth. This experiment is the reduced
//! version: one rMAT stand-in, pools of 1/2/4/8 work-stealing workers
//! (via [`parlib::with_threads`]), and the two op families whose
//! scalability the system lives on —
//!
//! * **`insert_edges`** with a large batch: the functional
//!   `MultiInsert` path (`Build` + `Union`), the writer's hot loop;
//! * **BFS and connected components** on a snapshot: the
//!   frontier-parallel kernels queries run concurrently.
//!
//! Speedups are reported relative to the 1-thread pool. On a machine
//! with fewer physical cores than a pool has workers the extra
//! workers timeshare and the speedup column flattens accordingly —
//! the experiment prints the machine parallelism so reports stay
//! interpretable.

use crate::datasets::{default_b, Dataset};
use crate::tables::Table;
use aspen::{symmetrize, CompressedEdges, Graph, GraphView, ShardRouter};
use graphgen::{build_update_stream, Rmat};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stream::{BatchPolicy, ShardedEngine, StreamEngine};

/// Pool widths the experiment sweeps.
const THREADS: &[usize] = &[1, 2, 4, 8];

/// Shard counts the sharded-engine axis sweeps.
const SHARDS: &[usize] = &[1, 2, 4, 8];

#[derive(Clone, Copy)]
struct OpTimes {
    fork_ns: f64,
    insert: f64,
    bfs: f64,
    cc: f64,
}

/// Wall-clock cost of one `rayon::join`, measured on the *current*
/// pool by timing a perfect binary join tree with trivial leaves.
///
/// This is the per-fork constant the grain thresholds across the
/// workspace (`SEQ_BUILD`, `SEQ_BULK`, `SEQ_SETOP`, parlib block
/// sizes) amortize against; the runtime book (`docs/RUNTIME.md`)
/// records the measured values. At 1 worker the pool inlines both
/// closures, so the 1-worker figure is the sequential-fallback cost;
/// at ≥2 workers the figure includes all deque and latch traffic,
/// averaged over the tree (most forks are pushed-then-popped-back
/// un-stolen, a minority are genuine steals).
fn fork_overhead_ns(depth: u32, reps: usize) -> f64 {
    fn tree(d: u32) -> u64 {
        if d == 0 {
            return 1;
        }
        let (a, b) = rayon::join(|| tree(d - 1), || tree(d - 1));
        a + b
    }
    let joins = (1u64 << depth) - 1;
    let t = crate::median_time(reps, || {
        std::hint::black_box(tree(depth));
    });
    t / joins as f64 * 1e9
}

fn measure(g: &Graph<CompressedEdges>, batch: &[(u32, u32)], hub: u32, reps: usize) -> OpTimes {
    let fork_ns = fork_overhead_ns(14, reps);
    let insert = crate::median_time(reps, || {
        std::hint::black_box(g.insert_edges(batch));
    });
    let bfs = crate::median_time(reps, || {
        std::hint::black_box(algorithms::bfs(g, hub));
    });
    let cc = crate::median_time(reps, || {
        std::hint::black_box(algorithms::connected_components(g));
    });
    OpTimes {
        fork_ns,
        insert,
        bfs,
        cc,
    }
}

/// Renders the thread-scaling experiment on `d`.
pub fn run_scaling(d: &Dataset, quick: bool) -> Table {
    let edges = d.edges();
    let g = Graph::from_edges(&edges, default_b());
    let hub = super::hub(&g);

    // A fresh batch of rMAT edges drawn past the base graph's stream
    // position, symmetrized like every update path in the workspace.
    // Large enough that `MultiInsert` dominates fork overhead (the
    // regime where Table 8 shows batching pays).
    let batch_target = if quick { 10_000 } else { 100_000 };
    let raw = Rmat::new(d.scale, d.seed ^ 0x5CA1E).edges(edges.len() as u64, batch_target / 2);
    let batch = symmetrize(&raw);

    let reps = if quick { 2 } else { 3 };
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut t = Table::new(
        &format!(
            "scaling: {} (|batch| = {}, machine parallelism = {machine})",
            d.name,
            batch.len()
        ),
        &[
            "threads",
            "fork ns",
            "insert",
            "ins x",
            "ins edges/s",
            "bfs",
            "bfs x",
            "cc",
            "cc x",
        ],
    );

    let mut base: Option<OpTimes> = None;
    for &threads in THREADS {
        let times = parlib::with_threads(threads, || measure(&g, &batch, hub, reps));
        let b = base.get_or_insert(times);
        t.row(&[
            threads.to_string(),
            format!("{:.0}", times.fork_ns),
            crate::fmt_secs(times.insert),
            format!("{:.2}x", b.insert / times.insert),
            crate::fmt_rate(batch.len() as f64 / times.insert),
            crate::fmt_secs(times.bfs),
            format!("{:.2}x", b.bfs / times.bfs),
            crate::fmt_secs(times.cc),
            format!("{:.2}x", b.cc / times.cc),
        ]);
        t.metric(&format!("t{threads}.fork_ns"), times.fork_ns);
        t.metric(&format!("t{threads}.insert_s"), times.insert);
        t.metric(
            &format!("t{threads}.insert_edges_per_s"),
            batch.len() as f64 / times.insert,
        );
        t.metric(&format!("t{threads}.bfs_s"), times.bfs);
        t.metric(&format!("t{threads}.cc_s"), times.cc);
    }
    t
}

/// One shard-count configuration's measurements.
struct ShardRun {
    wall: Duration,
    install_p50: Duration,
    e2e_p50: Duration,
    bfs: Duration,
    cc: Duration,
    cross_shard: u64,
    digest_ok: bool,
}

/// Analytics digests used to verify every configuration computes the
/// same logical graph.
struct Digests {
    num_edges: u64,
    cc: Vec<u32>,
    bfs_dist: Vec<u32>,
}

fn digests_of<G: GraphView>(g: &G, hub: u32) -> Digests {
    Digests {
        num_edges: g.num_edges(),
        cc: algorithms::connected_components(g),
        bfs_dist: algorithms::bfs(g, hub).dist,
    }
}

fn shard_policy() -> BatchPolicy {
    BatchPolicy {
        max_batch: 2048,
        max_linger: Duration::from_millis(1),
        channel_capacity: 16 * 1024,
    }
}

/// Renders the sharded-engine scaling experiment on `d`: the same
/// mixed insert/delete stream pushed through the unsharded
/// [`StreamEngine`] (the baseline row) and through [`ShardedEngine`]s
/// of 1/2/4/8 hash-routed shards, reporting ingest throughput, install
/// and end-to-end latency, and fan-out/merge query latency — with
/// every configuration's analytics digest-checked against the
/// unsharded result.
pub fn run_scaling_shards(d: &Dataset, quick: bool) -> Table {
    let edges = d.edges();
    let undirected = edges.len() / 2;
    let cap = if quick { 20_000 } else { 200_000 };
    let sample = (undirected / 10).clamp(100, cap);
    let setup = build_update_stream(&edges, sample, d.seed ^ 0x54A2D);
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Baseline: the unsharded engine. Its fully-drained graph is also
    // the oracle every sharded configuration is digest-checked against
    // (per-batch last-wins coalescing makes the final state equal to a
    // sequential replay, independent of batch boundaries).
    let vg = Arc::new(aspen::VersionedGraph::<CompressedEdges>::new(
        Graph::from_edges(&setup.initial_edges, default_b()),
    ));
    let engine = StreamEngine::builder(vg.clone())
        .policy(shard_policy())
        .start();
    let h = engine.handle();
    let wall = Instant::now();
    h.push_all(&setup.updates).expect("engine closed early");
    drop(h);
    let base_report = engine.finish();
    let base_wall = wall.elapsed();
    let oracle = vg.acquire();
    let hub = super::hub(&*oracle);
    let want = digests_of(&*oracle, hub);
    let t_bfs = Instant::now();
    std::hint::black_box(algorithms::bfs(&*oracle, hub));
    let base_bfs = t_bfs.elapsed();
    let t_cc = Instant::now();
    std::hint::black_box(algorithms::connected_components(&*oracle));
    let base_cc = t_cc.elapsed();

    let mut t = Table::new(
        &format!(
            "sharded scaling: {} (|updates| = {}, machine parallelism = {machine})",
            d.name,
            setup.updates.len()
        ),
        &[
            "config",
            "ingest",
            "upd/s",
            "x",
            "install p50",
            "e2e p50",
            "bfs",
            "cc",
            "xshard",
            "digest",
        ],
    );
    let updates = setup.updates.len() as f64;
    t.row(&[
        "unsharded".into(),
        crate::fmt_secs(base_wall.as_secs_f64()),
        crate::fmt_rate(updates / base_wall.as_secs_f64()),
        "1.00x".into(),
        crate::fmt_secs(base_report.batch_apply.p50.as_secs_f64()),
        crate::fmt_secs(base_report.update_e2e.p50.as_secs_f64()),
        crate::fmt_secs(base_bfs.as_secs_f64()),
        crate::fmt_secs(base_cc.as_secs_f64()),
        "-".into(),
        "ok".into(),
    ]);
    t.metric("unsharded.ingest_s", base_wall.as_secs_f64());
    t.metric(
        "unsharded.ingest_updates_per_s",
        updates / base_wall.as_secs_f64(),
    );
    t.metric(
        "unsharded.install_p50_s",
        base_report.batch_apply.p50.as_secs_f64(),
    );
    t.metric(
        "unsharded.e2e_p50_s",
        base_report.update_e2e.p50.as_secs_f64(),
    );
    t.metric("unsharded.bfs_s", base_bfs.as_secs_f64());
    t.metric("unsharded.cc_s", base_cc.as_secs_f64());

    for &shards in SHARDS {
        let run = run_sharded(&setup.initial_edges, &setup.updates, shards, hub, &want);
        t.row(&[
            format!("{shards} shards"),
            crate::fmt_secs(run.wall.as_secs_f64()),
            crate::fmt_rate(updates / run.wall.as_secs_f64()),
            format!("{:.2}x", base_wall.as_secs_f64() / run.wall.as_secs_f64()),
            crate::fmt_secs(run.install_p50.as_secs_f64()),
            crate::fmt_secs(run.e2e_p50.as_secs_f64()),
            crate::fmt_secs(run.bfs.as_secs_f64()),
            crate::fmt_secs(run.cc.as_secs_f64()),
            run.cross_shard.to_string(),
            if run.digest_ok { "ok" } else { "MISMATCH" }.into(),
        ]);
        t.metric(&format!("shards{shards}.ingest_s"), run.wall.as_secs_f64());
        t.metric(
            &format!("shards{shards}.ingest_updates_per_s"),
            updates / run.wall.as_secs_f64(),
        );
        t.metric(
            &format!("shards{shards}.install_p50_s"),
            run.install_p50.as_secs_f64(),
        );
        t.metric(
            &format!("shards{shards}.e2e_p50_s"),
            run.e2e_p50.as_secs_f64(),
        );
        t.metric(&format!("shards{shards}.bfs_s"), run.bfs.as_secs_f64());
        t.metric(&format!("shards{shards}.cc_s"), run.cc.as_secs_f64());
        t.metric(
            &format!("shards{shards}.cross_shard_updates"),
            run.cross_shard as f64,
        );
        t.metric(
            &format!("shards{shards}.digest_ok"),
            if run.digest_ok { 1.0 } else { 0.0 },
        );
        assert!(
            run.digest_ok,
            "{shards}-shard analytics diverged from the unsharded oracle"
        );
    }
    t
}

fn run_sharded(
    initial: &[(u32, u32)],
    updates: &[graphgen::Update],
    shards: usize,
    hub: u32,
    want: &Digests,
) -> ShardRun {
    let engine = ShardedEngine::<CompressedEdges>::builder(ShardRouter::hash(shards))
        .initial_arcs(initial)
        .policy(shard_policy())
        .start();
    let h = engine.handle();
    let wall = Instant::now();
    h.push_all(updates).expect("sharded engine closed early");
    drop(h);
    let report = engine.finish();
    let wall = wall.elapsed();
    let cut = &report.final_cut;

    let t_bfs = Instant::now();
    let bfs_got = cut.bfs(hub);
    let bfs = t_bfs.elapsed();
    let t_cc = Instant::now();
    let cc_got = cut.connected_components();
    let cc = t_cc.elapsed();
    let digest_ok =
        cut.num_edges() == want.num_edges && cc_got == want.cc && bfs_got.dist == want.bfs_dist;

    // Aggregate install/e2e latency across shards: the worst shard's
    // median — the shard a consistent cut waits for.
    let install_p50 = report
        .shards
        .iter()
        .map(|r| r.batch_apply.p50)
        .max()
        .unwrap_or_default();
    let e2e_p50 = report
        .shards
        .iter()
        .map(|r| r.update_e2e.p50)
        .max()
        .unwrap_or_default();
    ShardRun {
        wall,
        install_p50,
        e2e_p50,
        bfs,
        cc,
        cross_shard: report.cross_shard_updates,
        digest_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn scaling_runs_on_tiny_dataset() {
        // Smoke: all four pool widths complete and produce rows.
        let t = run_scaling(&datasets::tiny(), true);
        assert_eq!(t.num_rows(), THREADS.len());
    }

    #[test]
    fn shard_scaling_runs_and_digests_agree() {
        let t = run_scaling_shards(&datasets::tiny(), true);
        // One baseline row plus one per shard count; run_scaling_shards
        // panics internally on any digest mismatch.
        assert_eq!(t.num_rows(), 1 + SHARDS.len());
        let metrics = t.metrics();
        for shards in SHARDS {
            let name = format!("shards{shards}.digest_ok");
            let ok = metrics
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            assert_eq!(ok, 1.0, "{name}");
        }
    }
}
