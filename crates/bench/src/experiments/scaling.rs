//! Thread-scaling experiment: batch inserts and graph kernels at
//! 1/2/4/8 workers.
//!
//! The paper's self-relative speedups (Tables 3, 4 and 8 report 1
//! thread vs 72 cores) are the evidence that its tree operations run
//! with the claimed parallel depth. This experiment is the reduced
//! version: one rMAT stand-in, pools of 1/2/4/8 work-stealing workers
//! (via [`parlib::with_threads`]), and the two op families whose
//! scalability the system lives on —
//!
//! * **`insert_edges`** with a large batch: the functional
//!   `MultiInsert` path (`Build` + `Union`), the writer's hot loop;
//! * **BFS and connected components** on a snapshot: the
//!   frontier-parallel kernels queries run concurrently.
//!
//! Speedups are reported relative to the 1-thread pool. On a machine
//! with fewer physical cores than a pool has workers the extra
//! workers timeshare and the speedup column flattens accordingly —
//! the experiment prints the machine parallelism so reports stay
//! interpretable.

use crate::datasets::{default_b, Dataset};
use crate::tables::Table;
use aspen::{symmetrize, CompressedEdges, Graph};
use graphgen::Rmat;

/// Pool widths the experiment sweeps.
const THREADS: &[usize] = &[1, 2, 4, 8];

#[derive(Clone, Copy)]
struct OpTimes {
    fork_ns: f64,
    insert: f64,
    bfs: f64,
    cc: f64,
}

/// Wall-clock cost of one `rayon::join`, measured on the *current*
/// pool by timing a perfect binary join tree with trivial leaves.
///
/// This is the per-fork constant the grain thresholds across the
/// workspace (`SEQ_BUILD`, `SEQ_BULK`, `SEQ_SETOP`, parlib block
/// sizes) amortize against; the runtime book (`docs/RUNTIME.md`)
/// records the measured values. At 1 worker the pool inlines both
/// closures, so the 1-worker figure is the sequential-fallback cost;
/// at ≥2 workers the figure includes all deque and latch traffic,
/// averaged over the tree (most forks are pushed-then-popped-back
/// un-stolen, a minority are genuine steals).
fn fork_overhead_ns(depth: u32, reps: usize) -> f64 {
    fn tree(d: u32) -> u64 {
        if d == 0 {
            return 1;
        }
        let (a, b) = rayon::join(|| tree(d - 1), || tree(d - 1));
        a + b
    }
    let joins = (1u64 << depth) - 1;
    let t = crate::median_time(reps, || {
        std::hint::black_box(tree(depth));
    });
    t / joins as f64 * 1e9
}

fn measure(g: &Graph<CompressedEdges>, batch: &[(u32, u32)], hub: u32, reps: usize) -> OpTimes {
    let fork_ns = fork_overhead_ns(14, reps);
    let insert = crate::median_time(reps, || {
        std::hint::black_box(g.insert_edges(batch));
    });
    let bfs = crate::median_time(reps, || {
        std::hint::black_box(algorithms::bfs(g, hub));
    });
    let cc = crate::median_time(reps, || {
        std::hint::black_box(algorithms::connected_components(g));
    });
    OpTimes {
        fork_ns,
        insert,
        bfs,
        cc,
    }
}

/// Renders the thread-scaling experiment on `d`.
pub fn run_scaling(d: &Dataset, quick: bool) -> Table {
    let edges = d.edges();
    let g = Graph::from_edges(&edges, default_b());
    let hub = super::hub(&g);

    // A fresh batch of rMAT edges drawn past the base graph's stream
    // position, symmetrized like every update path in the workspace.
    // Large enough that `MultiInsert` dominates fork overhead (the
    // regime where Table 8 shows batching pays).
    let batch_target = if quick { 10_000 } else { 100_000 };
    let raw = Rmat::new(d.scale, d.seed ^ 0x5CA1E).edges(edges.len() as u64, batch_target / 2);
    let batch = symmetrize(&raw);

    let reps = if quick { 2 } else { 3 };
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut t = Table::new(
        &format!(
            "scaling: {} (|batch| = {}, machine parallelism = {machine})",
            d.name,
            batch.len()
        ),
        &[
            "threads",
            "fork ns",
            "insert",
            "ins x",
            "ins edges/s",
            "bfs",
            "bfs x",
            "cc",
            "cc x",
        ],
    );

    let mut base: Option<OpTimes> = None;
    for &threads in THREADS {
        let times = parlib::with_threads(threads, || measure(&g, &batch, hub, reps));
        let b = base.get_or_insert(times);
        t.row(&[
            threads.to_string(),
            format!("{:.0}", times.fork_ns),
            crate::fmt_secs(times.insert),
            format!("{:.2}x", b.insert / times.insert),
            crate::fmt_rate(batch.len() as f64 / times.insert),
            crate::fmt_secs(times.bfs),
            format!("{:.2}x", b.bfs / times.bfs),
            crate::fmt_secs(times.cc),
            format!("{:.2}x", b.cc / times.cc),
        ]);
        t.metric(&format!("t{threads}.fork_ns"), times.fork_ns);
        t.metric(&format!("t{threads}.insert_s"), times.insert);
        t.metric(
            &format!("t{threads}.insert_edges_per_s"),
            batch.len() as f64 / times.insert,
        );
        t.metric(&format!("t{threads}.bfs_s"), times.bfs);
        t.metric(&format!("t{threads}.cc_s"), times.cc);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn scaling_runs_on_tiny_dataset() {
        // Smoke: all four pool widths complete and produce rows.
        let t = run_scaling(&datasets::tiny(), true);
        assert_eq!(t.num_rows(), THREADS.len());
    }
}
