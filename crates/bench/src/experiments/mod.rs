//! One module per experiment family; each function regenerates the
//! rows of a paper table (or figure series) and returns a renderable
//! [`Table`](crate::tables::Table).
//!
//! The per-experiment index lives in DESIGN.md §5; paper-vs-measured
//! shape comparisons live in EXPERIMENTS.md.

mod algos;
mod concurrent;
mod durability;
mod incremental;
mod memory;
mod scaling;
mod updates;

pub use algos::{run_table11, run_table12, run_table13, run_table14_15, run_table3_4, run_table6};
pub use concurrent::run_stream_engine;
pub use durability::run_durability;
pub use incremental::run_incremental;
pub use memory::{run_memory, run_table1, run_table2, run_table5, run_table9};
pub use scaling::{run_scaling, run_scaling_shards};
pub use updates::{run_figure5, run_table10, run_table7, run_table8};

use crate::datasets::{default_b, Dataset};
use aspen::{CompressedEdges, FlatSnapshot, Graph, GraphView};

/// Builds the default Aspen graph plus its flat snapshot.
pub(crate) fn build_aspen(d: &Dataset) -> (Graph<CompressedEdges>, FlatSnapshot<CompressedEdges>) {
    let g = Graph::from_edges(&d.edges(), default_b());
    let f = FlatSnapshot::new(&g);
    (g, f)
}

/// Loads the streaming baselines the way a stream would leave them:
/// `INGEST_BATCHES` ingestion rounds (LLAMA: one delta snapshot each,
/// chaining adjacency fragments across snapshots) plus a
/// delete/re-insert churn pass for Stinger (holes in edge blocks) —
/// the fragmented state §7.5–7.6 attribute both systems' weaknesses to.
pub(crate) fn build_streamed_baselines(
    edges: &[(u32, u32)],
) -> (baselines::StingerLike, baselines::LlamaLike) {
    const INGEST_BATCHES: usize = 50;
    let n = edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0);
    let stinger = baselines::StingerLike::new(n);
    let mut llama = baselines::LlamaLike::new(n);
    let per = edges.len().div_ceil(INGEST_BATCHES).max(1);
    for chunk in edges.chunks(per) {
        stinger.insert_batch(chunk);
        llama.ingest_batch(chunk);
    }
    let churn: Vec<(u32, u32)> = edges.iter().copied().step_by(10).collect();
    stinger.delete_batch(&churn);
    stinger.insert_batch(&churn);
    (stinger, llama)
}

/// The max-degree vertex: a deterministic source inside the giant
/// component (the paper samples random sources; rMAT's giant component
/// always contains the hubs).
pub(crate) fn hub<G: GraphView>(g: &G) -> u32 {
    (0..g.id_bound() as u32)
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0)
}

/// A deterministic set of `k` query vertices with nonzero degree,
/// spread over the id space.
pub(crate) fn query_vertices<G: GraphView>(g: &G, k: usize) -> Vec<u32> {
    let n = g.id_bound() as u64;
    let mut out = Vec::with_capacity(k);
    let mut i = 0u64;
    while out.len() < k && i < n * 4 {
        let v = (parlib::hash64_with_seed(i, 0x9e) % n) as u32;
        if g.degree(v) > 0 {
            out.push(v);
        }
        i += 1;
    }
    out
}
