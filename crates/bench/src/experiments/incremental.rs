//! Incremental repair vs from-scratch recomputation for standing
//! queries (the `aspen-stream` standing-query machinery measured in
//! isolation).
//!
//! For each (batch size, delete ratio) configuration the experiment
//! replays a deterministic batched update stream onto the dataset
//! graph and, after every installed version, answers connected
//! components + single-source BFS two ways:
//!
//! * **incremental** — `aspen::diff_graphs` between the consecutive
//!   versions (cheap under structural sharing) followed by
//!   `DeltaCc::apply_diff` + `DeltaBfs::apply_diff`;
//! * **recompute** — the §5.1 flat-snapshot path: build a
//!   [`aspen::FlatSnapshot`] of the new version and run
//!   [`algorithms::connected_components`] + [`algorithms::bfs`] from
//!   scratch.
//!
//! Both answers are digest-compared after every batch — this is the
//! bench-side arm of the differential-oracle strategy
//! (`tests/incremental_oracle.rs` is the randomized arm). Reported
//! medians show where repair wins (small deltas) and where the delete
//! ratio pushes repair regions wide enough that recomputation takes
//! over; docs/INCREMENTAL.md discusses the crossover.

use crate::datasets::{default_b, Dataset};
use crate::tables::Table;
use algorithms::{DeltaBfs, DeltaCc};
use aspen::{diff_graphs, CompressedEdges, FlatSnapshot, Graph, GraphView};
use std::time::Instant;
use stream::digest_values;

/// Deletion ratios swept per batch size; 0.0 = insert-only batches,
/// 0.9 = delete-heavy churn (where repair regions grow widest).
const DELETE_RATIOS: &[f64] = &[0.0, 0.1, 0.5, 0.9];

struct ConfigResult {
    batch: usize,
    ratio: f64,
    diff_s: f64,
    incremental_s: f64,
    recompute_s: f64,
    diff_edges: f64,
    fallbacks: u64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if xs.is_empty() {
        return 0.0;
    }
    xs[xs.len() / 2]
}

/// A deterministic pseudo-random insert edge inside the id space
/// (avoiding self-loops); duplicates of existing edges are fine — they
/// just shrink the diff.
fn fresh_edge(i: u64, n: u32, seed: u64) -> (u32, u32) {
    let h = parlib::hash64_with_seed(i, seed);
    let u = (h % u64::from(n)) as u32;
    let v = ((h >> 32) % u64::from(n)) as u32;
    if u == v {
        (u, (v + 1) % n)
    } else {
        (u, v)
    }
}

fn run_config(
    g0: &Graph<CompressedEdges>,
    deletable: &[(u32, u32)],
    src: u32,
    batch: usize,
    ratio: f64,
    rounds: usize,
    seed: u64,
) -> ConfigResult {
    let n = g0.id_bound() as u32;
    let mut cur = g0.clone();
    let mut cc = DeltaCc::new(&cur);
    let mut bfs = DeltaBfs::new(&cur, src);

    let mut diff_times = Vec::with_capacity(rounds);
    let mut inc_times = Vec::with_capacity(rounds);
    let mut rec_times = Vec::with_capacity(rounds);
    let mut diff_edges = Vec::with_capacity(rounds);
    let mut fallbacks = 0u64;
    let mut del_cursor = 0usize;
    let mut ins_cursor = 0u64;

    for _ in 0..rounds {
        let n_del = ((batch as f64 * ratio).round() as usize).min(deletable.len() - del_cursor);
        let n_ins = batch - n_del;
        let deletes = &deletable[del_cursor..del_cursor + n_del];
        del_cursor += n_del;
        let inserts: Vec<(u32, u32)> = (0..n_ins as u64)
            .map(|i| fresh_edge(ins_cursor + i, n, seed ^ 0x1A5E))
            .collect();
        ins_cursor += n_ins as u64;

        let mut next = cur.clone();
        if !inserts.is_empty() {
            next = next.insert_edges(&aspen::symmetrize(&inserts));
        }
        if !deletes.is_empty() {
            next = next.delete_edges(&aspen::symmetrize(deletes));
        }

        // Incremental arm: extract the diff, repair both analytics.
        let t0 = Instant::now();
        let diff = diff_graphs(&cur, &next);
        let t_diff = t0.elapsed().as_secs_f64();
        let s_cc = cc.apply_diff(&diff, &next);
        let s_bfs = bfs.apply_diff(&diff, &next);
        let t_inc = t0.elapsed().as_secs_f64();
        fallbacks += u64::from(s_cc.full_recompute) + u64::from(s_bfs.full_recompute);

        // Recompute arm: the fastest from-scratch path Aspen has.
        let t1 = Instant::now();
        let flat = FlatSnapshot::new(&next);
        let labels = algorithms::connected_components(&flat);
        let dist = algorithms::bfs(&flat, src).dist;
        let t_rec = t1.elapsed().as_secs_f64();

        // Differential oracle: both arms must answer identically.
        assert_eq!(
            digest_values(cc.labels()),
            digest_values(&labels),
            "incremental CC diverged from recompute (batch={batch}, ratio={ratio})"
        );
        assert_eq!(
            digest_values(bfs.dist()),
            digest_values(&dist),
            "incremental BFS diverged from recompute (batch={batch}, ratio={ratio})"
        );

        diff_times.push(t_diff);
        inc_times.push(t_inc);
        rec_times.push(t_rec);
        diff_edges.push(diff.num_edge_changes() as f64);
        cur = next;
    }

    ConfigResult {
        batch,
        ratio,
        diff_s: median(diff_times),
        incremental_s: median(inc_times),
        recompute_s: median(rec_times),
        diff_edges: median(diff_edges),
        fallbacks,
    }
}

/// Renders the incremental-vs-recompute sweep on `d`.
pub fn run_incremental(d: &Dataset, quick: bool) -> Table {
    let edges = d.edges();
    let g0 = Graph::from_edges(&edges, default_b());
    let src = super::hub(&g0);
    let rounds = if quick { 4 } else { 6 };

    // Undirected representatives in a deterministic pseudo-random
    // order: each config consumes a prefix as its deletion pool.
    let mut deletable: Vec<(u32, u32)> = edges.iter().copied().filter(|&(u, v)| u < v).collect();
    deletable.sort_unstable_by_key(|&(u, v)| {
        parlib::hash64_with_seed(u64::from(u) << 32 | u64::from(v), d.seed ^ 0xDE1)
    });

    // Batch sizes scaled to the graph: ~0.1%, ~1% and ~5% of its
    // undirected edges (floors keep tiny datasets meaningful).
    let m = deletable.len();
    let mut batches = vec![(m / 1000).max(8), (m / 100).max(64), (m / 20).max(512)];
    batches.dedup();
    if quick {
        batches.truncate(2);
    }

    let mut t = Table::new(
        &format!(
            "incremental: standing-query repair vs recompute on {} ({} rounds/config, CC + BFS)",
            d.name, rounds
        ),
        &[
            "batch",
            "del%",
            "diff edges",
            "diff med",
            "incremental med",
            "recompute med",
            "speedup",
            "fallbacks",
        ],
    );
    for &batch in &batches {
        for &ratio in DELETE_RATIOS {
            let r = run_config(&g0, &deletable, src, batch, ratio, rounds, d.seed);
            let speedup = r.recompute_s / r.incremental_s.max(1e-12);
            t.row(&[
                r.batch.to_string(),
                format!("{:.0}%", r.ratio * 100.0),
                format!("{:.0}", r.diff_edges),
                crate::fmt_secs(r.diff_s),
                crate::fmt_secs(r.incremental_s),
                crate::fmt_secs(r.recompute_s),
                format!("{speedup:.2}x"),
                r.fallbacks.to_string(),
            ]);
            let key = format!("{}.b{}.r{:02}", d.name, r.batch, (r.ratio * 100.0) as u32);
            t.metric(&format!("{key}.diff_edges"), r.diff_edges);
            t.metric(&format!("{key}.diff_ns"), r.diff_s * 1e9);
            t.metric(&format!("{key}.incremental_ns"), r.incremental_s * 1e9);
            t.metric(&format!("{key}.recompute_ns"), r.recompute_s * 1e9);
            t.metric(&format!("{key}.speedup"), speedup);
            t.metric(&format!("{key}.fallbacks"), r.fallbacks as f64);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn quick_sweep_agrees_with_oracle_and_reports() {
        // run_config asserts digest equality internally, so a clean
        // return means repair matched recompute on every batch.
        let t = run_incremental(&datasets::tiny(), true);
        assert!(t.num_rows() >= 4, "expected at least one batch sweep");
        let speedups: Vec<&(String, f64)> = t
            .metrics()
            .iter()
            .filter(|(k, _)| k.ends_with(".speedup"))
            .collect();
        assert_eq!(speedups.len(), t.num_rows());
        assert!(speedups.iter().all(|(_, v)| *v > 0.0));
    }

    #[test]
    fn fresh_edges_stay_in_bounds() {
        for i in 0..1000 {
            let (u, v) = fresh_edge(i, 64, 9);
            assert!(u < 64 && v < 64 && u != v);
        }
    }
}
