//! The simultaneous-updates-and-queries measurement (§7.4, Table 9's
//! headline claim) reproduced through the `aspen-stream` engine rather
//! than a synchronous replay loop: producer threads push the §7.3
//! update stream through the bounded ingest channel while query
//! threads run BFS + connected components on live snapshots, and the
//! engine's histograms report batch-apply, end-to-end update and query
//! latency side by side.

use crate::datasets::{default_b, Dataset};
use crate::tables::Table;
use aspen::{CompressedEdges, Graph, VersionedGraph};
use graphgen::build_update_stream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use stream::{analytics, BatchPolicy, StatsReport, StreamEngine};

/// How one dataset behaved under concurrent ingestion + analytics.
struct ConcurrentRun {
    report: StatsReport,
    wall: Duration,
}

fn run_one(d: &Dataset, producers: usize, query_threads: usize) -> ConcurrentRun {
    let edges = d.edges();
    // Sample 10% of the graph's undirected edges (capped) as updates,
    // matching the §7.3 recipe's shape at bench-friendly scale.
    let undirected = edges.len() / 2;
    let sample = (undirected / 10).clamp(100, 200_000);
    let setup = build_update_stream(&edges, sample, d.seed ^ 0xC0CC);

    let vg: Arc<VersionedGraph<CompressedEdges>> = Arc::new(VersionedGraph::new(
        Graph::from_edges(&setup.initial_edges, default_b()),
    ));

    let engine = StreamEngine::builder(vg)
        .policy(BatchPolicy {
            max_batch: 2048,
            max_linger: Duration::from_millis(1),
            channel_capacity: 16 * 1024,
        })
        .register_query(analytics::bfs_from_hub())
        .register_query(analytics::connected_components())
        .query_threads(query_threads)
        .track_consistency(true)
        .start();

    let wall = Instant::now();
    let per = setup.updates.len().div_ceil(producers).max(1);
    let handles: Vec<_> = setup
        .updates
        .chunks(per)
        .map(|chunk| {
            let h = engine.handle();
            let chunk = chunk.to_vec();
            std::thread::spawn(move || h.push_all(&chunk).expect("engine closed early"))
        })
        .collect();
    for h in handles {
        h.join().expect("producer panicked");
    }
    let report = engine.finish();
    let wall = wall.elapsed();
    assert_eq!(
        report.consistency_violations, 0,
        "snapshot isolation violated on {}",
        d.name
    );
    ConcurrentRun { report, wall }
}

/// Renders the concurrent-ingestion experiment over `sets`.
pub fn run_stream_engine(sets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "stream: concurrent ingestion engine (2 producers + 2 query threads, adaptive batching)",
        &[
            "graph",
            "updates",
            "batches",
            "mean batch",
            "apply p50",
            "apply p99",
            "e2e p50",
            "e2e p99",
            "query p50",
            "queries",
            "updates/s",
        ],
    );
    for d in sets {
        let run = run_one(d, 2, 2);
        let r = &run.report;
        let rate = r.updates_applied as f64 / run.wall.as_secs_f64();
        t.row(&[
            d.name.to_owned(),
            r.updates_applied.to_string(),
            r.batches_applied.to_string(),
            format!("{:.1}", r.mean_batch_size()),
            crate::fmt_secs(r.batch_apply.p50.as_secs_f64()),
            crate::fmt_secs(r.batch_apply.p99.as_secs_f64()),
            crate::fmt_secs(r.update_e2e.p50.as_secs_f64()),
            crate::fmt_secs(r.update_e2e.p99.as_secs_f64()),
            crate::fmt_secs(r.query.p50.as_secs_f64()),
            r.queries_run.to_string(),
            crate::fmt_rate(rate),
        ]);
        // Raw values for the --json manifest (the cells above are
        // human-formatted strings).
        t.metric(&format!("{}.updates_per_s", d.name), rate);
        t.metric(
            &format!("{}.updates_applied", d.name),
            r.updates_applied as f64,
        );
        t.metric(
            &format!("{}.apply_p50_ns", d.name),
            r.batch_apply.p50.as_nanos() as f64,
        );
        t.metric(
            &format!("{}.apply_p99_ns", d.name),
            r.batch_apply.p99.as_nanos() as f64,
        );
        t.metric(
            &format!("{}.e2e_p99_ns", d.name),
            r.update_e2e.p99.as_nanos() as f64,
        );
        t.metric(
            &format!("{}.query_p50_ns", d.name),
            r.query.p50.as_nanos() as f64,
        );
        t.metric(&format!("{}.queries_run", d.name), r.queries_run as f64);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn tiny_dataset_round_trips() {
        let run = run_one(&datasets::tiny(), 2, 1);
        assert!(run.report.updates_applied > 0);
        assert_eq!(run.report.update_e2e.count, run.report.updates_applied);
    }
}
