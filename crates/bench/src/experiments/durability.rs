//! Durability cost and recovery measurement: what each fsync policy
//! charges per acked update, and how long crash recovery takes to
//! rebuild the graph from the log — with and without checkpoints
//! bounding the replay. Every durable run is recovered and
//! digest-compared against the live engine's final state, so a passing
//! run is also an end-to-end audit of the WAL → recovery pipeline.

use crate::datasets::Dataset;
use crate::tables::Table;
use aspen::{ChunkParams, CompressedEdges, EdgeSet, Graph, VersionedGraph};
use graphgen::build_update_stream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use stream::wal::recover;
use stream::{BatchPolicy, DurabilityConfig, FsyncPolicy, StatsReport, StreamEngine};

/// One fsync configuration of the sweep.
struct Policy {
    name: &'static str,
    fsync: Option<FsyncPolicy>,
    checkpoint_every: Option<u64>,
}

const POLICIES: &[Policy] = &[
    Policy {
        name: "none",
        fsync: None,
        checkpoint_every: None,
    },
    Policy {
        name: "always",
        fsync: Some(FsyncPolicy::Always),
        checkpoint_every: None,
    },
    Policy {
        name: "everyn8",
        fsync: Some(FsyncPolicy::EveryN(8)),
        checkpoint_every: None,
    },
    Policy {
        name: "interval1ms",
        fsync: Some(FsyncPolicy::Interval(Duration::from_millis(1))),
        checkpoint_every: None,
    },
    // Batches are coalesced, so even long streams install few
    // versions; checkpoint often enough that every run exercises the
    // checkpoint-bounded replay path.
    Policy {
        name: "checkpoint",
        fsync: Some(FsyncPolicy::EveryN(8)),
        checkpoint_every: Some(4),
    },
];

/// Order-independent digest of a graph's directed edge set.
fn digest(g: &Graph<CompressedEdges>) -> u64 {
    let mut acc = 0u64;
    for v in g.vertex_ids() {
        for n in g.find_vertex(v).unwrap().edges.to_vec() {
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ ((v as u64) << 32 | n as u64);
            h = h.wrapping_mul(0x1000_0000_01b3);
            h ^= h >> 29;
            acc = acc.wrapping_add(h.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }
    acc
}

struct PolicyRun {
    report: StatsReport,
    wall: Duration,
    /// `None` for the no-WAL baseline.
    recovery: Option<RecoveryRun>,
}

struct RecoveryRun {
    wall: Duration,
    frames_replayed: u64,
    checkpoint_seq: u64,
    digest_ok: bool,
}

fn run_one(updates: &[graphgen::Update], policy: &Policy, dir: &str) -> PolicyRun {
    let vg: Arc<VersionedGraph<CompressedEdges>> =
        Arc::new(VersionedGraph::new(Graph::new(ChunkParams::default())));
    let mut builder = StreamEngine::builder(Arc::clone(&vg)).policy(BatchPolicy {
        max_batch: 256,
        max_linger: Duration::from_micros(500),
        channel_capacity: 4096,
    });
    if let Some(fsync) = policy.fsync {
        let _ = std::fs::remove_dir_all(dir);
        let mut cfg = DurabilityConfig::new(dir).fsync(fsync);
        if let Some(n) = policy.checkpoint_every {
            cfg = cfg.checkpoint_every(n);
        }
        builder = builder.durability(cfg);
    }
    let engine = builder.start();

    let wall = Instant::now();
    let h = engine.handle();
    h.push_all(updates).expect("engine closed early");
    drop(h);
    let report = engine.close();
    let wall = wall.elapsed();

    let recovery = policy.fsync.map(|fsync| {
        let cfg = DurabilityConfig::new(dir).fsync(fsync);
        let t0 = Instant::now();
        let r = recover::<CompressedEdges>(&cfg, ChunkParams::default(), false)
            .expect("recovery failed");
        let rec_wall = t0.elapsed();
        let live = vg.acquire();
        let ok = r.seq == report.batches_applied && digest(&r.graph) == digest(&live);
        let _ = std::fs::remove_dir_all(dir);
        RecoveryRun {
            wall: rec_wall,
            frames_replayed: r.report.frames_replayed,
            checkpoint_seq: r.report.checkpoint_seq,
            digest_ok: ok,
        }
    });
    PolicyRun {
        report,
        wall,
        recovery,
    }
}

/// Renders the fsync-policy sweep on `d`: ack latency and fsync count
/// per policy, then recovery wall time and replay size per durable
/// policy (digest-checked against the live engine).
pub fn run_durability(d: &Dataset, quick: bool) -> Table {
    let edges = d.edges();
    let sample = if quick { 2_000 } else { 20_000 };
    let sample = sample.min((edges.len() / 2).max(100));
    let setup = build_update_stream(&edges, sample, d.seed ^ 0xD0BE);

    let mut t = Table::new(
        "durability: ack latency + crash recovery by fsync policy (empty start, 1 producer)",
        &[
            "policy",
            "updates",
            "e2e p50",
            "e2e p99",
            "fsync p50",
            "fsyncs",
            "frames",
            "updates/s",
            "recovery",
            "replayed",
            "digest",
        ],
    );
    let tmp_root = std::env::temp_dir().join(format!("aspen-durability-{}", std::process::id()));
    let tmp_root = tmp_root.to_string_lossy().into_owned();
    for p in POLICIES {
        let dir = format!("{tmp_root}/{}", p.name);
        let run = run_one(&setup.updates, p, &dir);
        let r = &run.report;
        let rate = r.updates_applied as f64 / run.wall.as_secs_f64();
        let (rec_cell, replay_cell, digest_cell) = match &run.recovery {
            Some(rec) => (
                crate::fmt_secs(rec.wall.as_secs_f64()),
                format!("{} frames", rec.frames_replayed),
                if rec.digest_ok { "ok" } else { "MISMATCH" }.to_owned(),
            ),
            None => ("-".to_owned(), "-".to_owned(), "-".to_owned()),
        };
        t.row(&[
            p.name.to_owned(),
            r.updates_applied.to_string(),
            crate::fmt_secs(r.update_e2e.p50.as_secs_f64()),
            crate::fmt_secs(r.update_e2e.p99.as_secs_f64()),
            crate::fmt_secs(r.wal_fsync.p50.as_secs_f64()),
            r.wal_fsyncs.to_string(),
            r.wal_frames.to_string(),
            crate::fmt_rate(rate),
            rec_cell,
            replay_cell,
            digest_cell,
        ]);

        let key = |m: &str| format!("{}.{}.{m}", d.name, p.name);
        t.metric(&key("ack_p50_us"), r.update_e2e.p50.as_secs_f64() * 1e6);
        t.metric(&key("ack_p99_us"), r.update_e2e.p99.as_secs_f64() * 1e6);
        t.metric(&key("updates_per_s"), rate);
        t.metric(&key("fsyncs"), r.wal_fsyncs as f64);
        t.metric(&key("frames"), r.wal_frames as f64);
        t.metric(&key("wal_bytes"), r.wal_bytes as f64);
        if let Some(rec) = &run.recovery {
            t.metric(&key("recovery_ms"), rec.wall.as_secs_f64() * 1e3);
            t.metric(&key("frames_replayed"), rec.frames_replayed as f64);
            t.metric(&key("checkpoint_seq"), rec.checkpoint_seq as f64);
            t.metric(&key("digest_ok"), if rec.digest_ok { 1.0 } else { 0.0 });
            assert!(
                rec.digest_ok,
                "recovery diverged from the live engine under policy {}",
                p.name
            );
        }
    }
    let _ = std::fs::remove_dir_all(&tmp_root);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn tiny_sweep_recovers_with_matching_digests() {
        let t = run_durability(&datasets::tiny(), true);
        let get = |k: &str| t.metrics().iter().find(|(n, _)| n == k).map(|&(_, v)| v);
        for p in ["always", "everyn8", "interval1ms", "checkpoint"] {
            let key = format!("tiny.{p}.digest_ok");
            assert_eq!(get(&key), Some(1.0), "{key}");
        }
        assert!(get("tiny.checkpoint.checkpoint_seq").unwrap_or(0.0) > 0.0);
    }
}
