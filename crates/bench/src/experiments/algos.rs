//! Algorithm-performance experiments: Tables 3–4, 6, 11, 12, 13, 14–15.

use super::{build_aspen, hub, query_vertices};
use crate::datasets::Dataset;
use crate::tables::Table;
use crate::{fmt_secs, timed};
use algorithms::{bc, bfs, bfs_directed, local_cluster, mis, two_hop};
use aspen::{Direction, FlatSnapshot, Graph, UncompressedEdges};
use baselines::{worklist_bfs, worklist_mis, CompressedCsr, Csr};
use rayon::prelude::*;

/// Number of local queries per measurement (the paper uses 2048; scale
/// with the machine).
const LOCAL_QUERIES: usize = 256;

/// Tables 3 and 4: all five algorithms, single-thread vs all threads,
/// with self-relative speedup.
pub fn run_table3_4(datasets: &[Dataset]) -> Table {
    let threads = parlib::num_threads();
    let mut t = Table::new(
        &format!("Tables 3-4: runtimes — 1 thread vs {threads} threads (speedup)"),
        &["graph", "algorithm", "T(1)", &format!("T({threads})"), "SU"],
    );
    for d in datasets {
        let (g, f) = build_aspen(d);
        let src = hub(&f);
        let locals = query_vertices(&f, LOCAL_QUERIES);

        let mut push = |name: &str, t1: f64, tp: f64| {
            t.row(&[
                d.name.to_owned(),
                name.to_owned(),
                fmt_secs(t1),
                fmt_secs(tp),
                format!("{:.2}x", t1 / tp),
            ]);
        };

        let (_, bfs_p) = timed(|| bfs(&f, src));
        let bfs_1 = parlib::with_threads(1, || timed(|| bfs(&f, src)).1);
        push("BFS", bfs_1, bfs_p);

        let (_, bc_p) = timed(|| bc(&f, src));
        let bc_1 = parlib::with_threads(1, || timed(|| bc(&f, src)).1);
        push("BC", bc_1, bc_p);

        let (_, mis_p) = timed(|| mis(&f, 42));
        let mis_1 = parlib::with_threads(1, || timed(|| mis(&f, 42)).1);
        push("MIS", mis_1, mis_p);

        // Local queries: the sequential column runs them one after
        // another on one thread; the parallel column runs the batch
        // concurrently. Reported per-query.
        let nq = locals.len().max(1) as f64;
        let (_, th_seq) = timed(|| {
            for &v in &locals {
                std::hint::black_box(two_hop(&g, v));
            }
        });
        let (_, th_par) = timed(|| {
            locals.par_iter().for_each(|&v| {
                std::hint::black_box(two_hop(&g, v));
            });
        });
        push("2-hop", th_seq / nq, th_par / nq);

        let (_, lc_seq) = timed(|| {
            for &v in &locals {
                std::hint::black_box(local_cluster(&g, v));
            }
        });
        let (_, lc_par) = timed(|| {
            locals.par_iter().for_each(|&v| {
                std::hint::black_box(local_cluster(&g, v));
            });
        });
        push("Local-Cluster", lc_seq / nq, lc_par / nq);
    }
    t
}

/// Table 6: BFS with and without a flat snapshot, plus the snapshot
/// construction time.
pub fn run_table6(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Table 6: flat snapshots (§5.1)",
        &["graph", "BFS w/o FS", "BFS with FS", "speedup", "FS build"],
    );
    for d in datasets {
        let (g, _) = build_aspen(d);
        let src = hub(&g);
        let (_, without) = timed(|| bfs(&g, src));
        let (f, fs_build) = timed(|| FlatSnapshot::new(&g));
        let (_, with) = timed(|| bfs(&f, src));
        t.row(&[
            d.name.to_owned(),
            fmt_secs(without),
            fmt_secs(with + fs_build),
            format!("{:.2}x", without / (with + fs_build)),
            fmt_secs(fs_build),
        ]);
    }
    t
}

/// Table 11: BFS and BC against the streaming baselines, all without
/// direction optimization (neither Stinger's nor LLAMA's reference
/// implementations use it).
pub fn run_table11(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Table 11: vs streaming systems (no direction optimization)",
        &[
            "graph",
            "algo",
            "Stinger-like",
            "LLAMA-like",
            "Aspen",
            "ST/A",
            "LL/A",
        ],
    );
    for d in datasets {
        let edges = d.edges();
        // Aspen reaches the same state through batches too — but its
        // C-trees are canonical, so batching leaves no scar tissue.
        let (stinger, llama) = super::build_streamed_baselines(&edges);
        let (_, f) = build_aspen(d);
        let src = hub(&f);

        let (_, st) = timed(|| bfs_directed(&stinger, src, Direction::ForceSparse));
        let (_, ll) = timed(|| bfs_directed(&llama, src, Direction::ForceSparse));
        let (_, asp) = timed(|| bfs_directed(&f, src, Direction::ForceSparse));
        t.row(&[
            d.name.to_owned(),
            "BFS".into(),
            fmt_secs(st),
            fmt_secs(ll),
            fmt_secs(asp),
            format!("{:.2}x", st / asp),
            format!("{:.2}x", ll / asp),
        ]);

        let (_, st) = timed(|| bc(&stinger, src));
        let (_, ll) = timed(|| bc(&llama, src));
        let (_, asp) = timed(|| bc(&f, src));
        t.row(&[
            d.name.to_owned(),
            "BC".into(),
            fmt_secs(st),
            fmt_secs(ll),
            fmt_secs(asp),
            format!("{:.2}x", st / asp),
            format!("{:.2}x", ll / asp),
        ]);
    }
    t
}

/// Table 12: BFS, BC and MIS against the static frameworks: CSR
/// (GAP-like), worklist scheduling (Galois-like) and compressed CSR
/// (Ligra+-like).
pub fn run_table12(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Table 12: vs static frameworks",
        &[
            "graph",
            "algo",
            "GAP (csr)",
            "Galois (worklist)",
            "Ligra+ (ccsr)",
            "Aspen",
        ],
    );
    for d in datasets {
        let edges = d.edges();
        let csr = Csr::from_edges(&edges);
        let ccsr = CompressedCsr::from_edges(&edges);
        let (_, f) = build_aspen(d);
        let src = hub(&csr);

        let (_, gap) = timed(|| bfs(&csr, src));
        let (_, gal) = timed(|| worklist_bfs(&csr, src));
        let (_, lig) = timed(|| bfs(&ccsr, src));
        let (_, asp) = timed(|| bfs(&f, src));
        t.row(&[
            d.name.to_owned(),
            "BFS".into(),
            fmt_secs(gap),
            fmt_secs(gal),
            fmt_secs(lig),
            fmt_secs(asp),
        ]);

        let (_, gap) = timed(|| bc(&csr, src));
        let (_, lig) = timed(|| bc(&ccsr, src));
        let (_, asp) = timed(|| bc(&f, src));
        t.row(&[
            d.name.to_owned(),
            "BC".into(),
            fmt_secs(gap),
            "-".into(),
            fmt_secs(lig),
            fmt_secs(asp),
        ]);

        let (_, gal) = timed(|| worklist_mis(&csr, 1));
        let (_, lig) = timed(|| mis(&ccsr, 1));
        let (_, asp) = timed(|| mis(&f, 1));
        t.row(&[
            d.name.to_owned(),
            "MIS".into(),
            "-".into(),
            fmt_secs(gal),
            fmt_secs(lig),
            fmt_secs(asp),
        ]);
    }
    t
}

/// Table 13: BFS over uncompressed purely-functional trees vs C-trees
/// with difference encoding.
pub fn run_table13(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Table 13: uncompressed trees vs C-trees (DE)",
        &["graph", "uncompressed", "C-tree (DE)", "speedup"],
    );
    for d in datasets {
        let edges = d.edges();
        let unc: Graph<UncompressedEdges> = Graph::from_edges(&edges, ());
        let unc_f = FlatSnapshot::new(&unc);
        let (_, f) = build_aspen(d);
        let src = hub(&f);
        let (_, u) = timed(|| bfs(&unc_f, src));
        let (_, c) = timed(|| bfs(&f, src));
        t.row(&[
            d.name.to_owned(),
            fmt_secs(u),
            fmt_secs(c),
            format!("{:.2}x", u / c),
        ]);
    }
    t
}

/// Tables 14–15: all five algorithms, Ligra+ (compressed CSR) vs
/// Aspen, reporting Aspen's slowdown.
pub fn run_table14_15(datasets: &[Dataset]) -> Table {
    let mut t = Table::new(
        "Tables 14-15: Ligra+ (ccsr) vs Aspen across all algorithms",
        &["graph", "algorithm", "Ligra+", "Aspen", "A/L+"],
    );
    for d in datasets {
        let edges = d.edges();
        let ccsr = CompressedCsr::from_edges(&edges);
        let (g, f) = build_aspen(d);
        let src = hub(&ccsr);
        let locals = query_vertices(&ccsr, LOCAL_QUERIES);
        let nq = locals.len().max(1) as f64;

        let mut push = |name: &str, lig: f64, asp: f64| {
            t.row(&[
                d.name.to_owned(),
                name.to_owned(),
                fmt_secs(lig),
                fmt_secs(asp),
                format!("{:.2}x", asp / lig),
            ]);
        };

        let (_, lig) = timed(|| bfs(&ccsr, src));
        let (_, asp) = timed(|| bfs(&f, src));
        push("BFS", lig, asp);

        let (_, lig) = timed(|| bc(&ccsr, src));
        let (_, asp) = timed(|| bc(&f, src));
        push("BC", lig, asp);

        let (_, lig) = timed(|| mis(&ccsr, 5));
        let (_, asp) = timed(|| mis(&f, 5));
        push("MIS", lig, asp);

        let (_, lig) = timed(|| {
            locals.par_iter().for_each(|&v| {
                std::hint::black_box(two_hop(&ccsr, v));
            });
        });
        let (_, asp) = timed(|| {
            locals.par_iter().for_each(|&v| {
                std::hint::black_box(two_hop(&g, v));
            });
        });
        push("2-hop", lig / nq, asp / nq);

        let (_, lig) = timed(|| {
            locals.par_iter().for_each(|&v| {
                std::hint::black_box(local_cluster(&ccsr, v));
            });
        });
        let (_, asp) = timed(|| {
            locals.par_iter().for_each(|&v| {
                std::hint::black_box(local_cluster(&g, v));
            });
        });
        push("Local-Cluster", lig / nq, asp / nq);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::tiny;

    #[test]
    fn smoke_table6_and_13_on_tiny() {
        let d = tiny();
        let t6 = run_table6(&[d]);
        assert!(t6.render().contains("tiny"));
        let t13 = run_table13(&[d]);
        assert!(t13.render().contains("tiny"));
    }
}
