//! Minimal fixed-width table rendering for the `repro` output, plus
//! the machine-readable (`--json`) projection of the same data.

use obs::Json;

/// A plain-text table with a title, header row and data rows.
///
/// Experiments can also attach named **metrics** — raw numbers (units
/// in the name) that bypass the human formatting of the cells, so the
/// `--json` output carries comparable values instead of strings like
/// `"3.1 ms"`.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    metrics: Vec<(String, f64)>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Attaches a raw numeric metric (name the units, e.g.
    /// `"tiny.updates_per_s"`). Not rendered in the text table; carried
    /// by [`to_json`](Self::to_json) for downstream comparison.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_owned(), value));
    }

    /// The attached raw metrics, in insertion order.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// The table's title line.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Machine-readable projection: title, header, the formatted rows,
    /// and the raw metrics as a name→number object.
    pub fn to_json(&self) -> Json {
        let strings =
            |cells: &[String]| Json::Arr(cells.iter().map(|c| c.as_str().into()).collect());
        Json::obj([
            ("title", Json::from(self.title.as_str())),
            ("header", strings(&self.header)),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| strings(r)).collect()),
            ),
            (
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders with per-column alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["graph", "time"]);
        t.row(&["tiny".into(), "0.1 s".into()]);
        t.row(&["a-much-longer-name".into(), "12.0 s".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("a-much-longer-name  12.0 s"));
        // header padded to widest cell
        assert!(s.lines().nth(1).unwrap().starts_with("graph "));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_projection_round_trips() {
        let mut t = Table::new("Demo", &["graph", "time"]);
        t.row(&["tiny".into(), "0.1 s".into()]);
        t.metric("tiny.time_s", 0.1);
        let rendered = t.to_json().render();
        let parsed = obs::json::parse(&rendered).expect("table JSON parses");
        assert_eq!(parsed.get("title").and_then(Json::as_str), Some("Demo"));
        assert_eq!(
            parsed.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        let m = parsed.get("metrics").expect("metrics present");
        assert_eq!(m.get("tiny.time_s").and_then(Json::as_f64), Some(0.1));
    }
}
