//! Minimal fixed-width table rendering for the `repro` output.

/// A plain-text table with a title, header row and data rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with per-column alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["graph", "time"]);
        t.row(&["tiny".into(), "0.1 s".into()]);
        t.row(&["a-much-longer-name".into(), "12.0 s".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("a-much-longer-name  12.0 s"));
        // header padded to widest cell
        assert!(s.lines().nth(1).unwrap().starts_with("graph "));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
