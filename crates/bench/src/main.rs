//! `repro` — regenerates every table and data figure of the paper's
//! evaluation (§7) on the synthetic stand-in datasets.
//!
//! ```text
//! repro <experiment> [--large] [--quick] [--json <path>] [--trace <path>]
//!
//! experiments:
//!   table1    graph statistics
//!   table2    memory by representation
//!   table3    algorithm runtimes + scalability (covers tables 3 and 4)
//!   table5    chunk-size sweep
//!   table6    flat snapshots
//!   table7    concurrent updates + queries
//!   table8    batch insertion throughput
//!   figure5   insert/delete throughput series
//!   table9    memory across systems
//!   table10   batch updates into an empty graph (vs Stinger-like)
//!   table11   vs streaming systems
//!   table12   vs static frameworks
//!   table13   uncompressed trees vs C-trees
//!   table14   Ligra+ vs Aspen, all algorithms (covers tables 14 and 15)
//!   memory    chunk-codec frontier: bytes/edge + decode ns/edge per codec
//!   stream    concurrent ingestion engine: updates + queries (aspen-stream)
//!   incremental  standing-query repair vs from-scratch recompute
//!   durability   WAL fsync-policy ack-latency sweep + crash recovery
//!             (every durable run is recovered and digest-audited)
//!   scaling   batch inserts + BFS/CC at 1/2/4/8 pool workers, plus the
//!             sharded engine at 1/2/4/8 shards vs the unsharded baseline
//!   all       everything above, in order
//!
//! flags:
//!   --large        also run the web-graph stand-ins (slower)
//!   --quick        tiny dataset only (CI smoke run)
//!   --json <path>  also write the run (tables, raw metrics, runtime
//!                  counters) as a JSON manifest
//!   --trace <path> record task spans and write Chrome trace_event
//!                  JSON (open in chrome://tracing or Perfetto);
//!                  needs the default `obs-trace` build
//! ```

use bench_support::datasets::{self, Dataset};
use bench_support::experiments as exp;
use bench_support::tables::Table;
use obs::Json;

struct Cli {
    which: String,
    large: bool,
    quick: bool,
    json_path: Option<String>,
    trace_path: Option<String>,
}

fn parse_cli(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        which: String::new(),
        large: false,
        quick: false,
        json_path: None,
        trace_path: None,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--large" => cli.large = true,
            "--quick" => cli.quick = true,
            "--json" => {
                cli.json_path = Some(args.next().ok_or("--json needs a file path")?);
            }
            "--trace" => {
                cli.trace_path = Some(args.next().ok_or("--trace needs a file path")?);
            }
            _ if a.starts_with("--") => return Err(format!("unknown flag: {a}")),
            _ if cli.which.is_empty() => cli.which = a,
            _ => return Err(format!("more than one experiment given: {a}")),
        }
    }
    if cli.which.is_empty() {
        cli.which = "all".to_owned();
    }
    Ok(cli)
}

/// The `--json` manifest: run parameters, every table (formatted rows
/// plus raw metrics), and the work-stealing runtime's counters.
fn manifest(cli: &Cli, tables: &[Table]) -> Json {
    let rt = rayon::current_runtime_stats();
    let worker = |w: &rayon::WorkerRuntimeStats| {
        Json::obj([
            ("jobs", Json::from(w.jobs)),
            ("forks", Json::from(w.forks)),
            ("steals", Json::from(w.steals)),
            ("steal_retries", Json::from(w.steal_retries)),
            ("splitter_resets", Json::from(w.splitter_resets)),
            ("sleeps", Json::from(w.sleeps)),
            ("depth_mean", Json::from(w.depth_mean)),
            ("depth_max", Json::from(w.depth_max)),
        ])
    };
    Json::obj([
        ("schema", Json::from("aspen-repro/bench/v1")),
        ("experiment", Json::from(cli.which.as_str())),
        ("quick", Json::from(cli.quick)),
        ("large", Json::from(cli.large)),
        ("threads", Json::from(parlib::num_threads() as u64)),
        (
            "tables",
            Json::Arr(tables.iter().map(Table::to_json).collect()),
        ),
        (
            "runtime",
            Json::obj([
                // Counters of the *global* pool; experiments that build
                // dedicated pools (stream, scaling) report their own
                // numbers through table metrics instead.
                ("pool", Json::from("global")),
                ("injected", Json::from(rt.injected)),
                ("wakes", Json::from(rt.wakes)),
                ("totals", worker(&rt.totals())),
                (
                    "workers",
                    Json::Arr(rt.workers.iter().map(worker).collect()),
                ),
            ]),
        ),
    ])
}

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("repro: cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("repro: wrote {what} to {path}");
}

fn main() {
    let cli = match parse_cli(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("repro: {msg}");
            std::process::exit(2);
        }
    };

    if cli.trace_path.is_some() {
        if cfg!(feature = "obs-trace") {
            obs::trace::enable();
        } else {
            eprintln!(
                "repro: built without the `obs-trace` feature — the trace \
                 will contain no task spans (rebuild with default features)"
            );
        }
    }

    let mut sets: Vec<Dataset> = if cli.quick {
        vec![datasets::tiny()]
    } else {
        datasets::SMALL.to_vec()
    };
    if cli.large {
        sets.extend_from_slice(datasets::LARGE);
    }
    let sweep_target = if cli.quick {
        datasets::tiny()
    } else {
        *datasets::SMALL.last().expect("small tier nonempty")
    };

    println!(
        "# repro: {} on {} datasets, {} threads\n",
        cli.which,
        sets.len(),
        parlib::num_threads()
    );

    let run = |name: &str| cli.which == name || cli.which == "all";
    let mut tables: Vec<Table> = Vec::new();
    let mut emit = |t: Table| {
        t.print();
        tables.push(t);
    };

    if run("table1") {
        emit(exp::run_table1(&sets));
    }
    if run("table2") {
        emit(exp::run_table2(&sets));
    }
    if run("table3") || cli.which == "table4" {
        emit(exp::run_table3_4(&sets));
    }
    if run("table5") {
        emit(exp::run_table5(&sweep_target));
    }
    if run("table6") {
        emit(exp::run_table6(&sets));
    }
    if run("table7") {
        emit(exp::run_table7(&sets));
    }
    if run("table8") {
        emit(exp::run_table8(&sets));
    }
    if run("figure5") {
        emit(exp::run_figure5(&sets));
    }
    if run("table9") {
        emit(exp::run_table9(&sets));
    }
    if run("table10") {
        emit(exp::run_table10());
    }
    if run("table11") {
        emit(exp::run_table11(&sets));
    }
    if run("table12") {
        emit(exp::run_table12(&sets));
    }
    if run("table13") {
        emit(exp::run_table13(&sets));
    }
    if run("table14") || cli.which == "table15" {
        emit(exp::run_table14_15(&sets));
    }
    if run("memory") {
        emit(exp::run_memory(&sets));
    }
    if run("stream") {
        emit(exp::run_stream_engine(&sets));
    }
    if run("incremental") {
        emit(exp::run_incremental(&sweep_target, cli.quick));
    }
    if run("durability") {
        emit(exp::run_durability(&sweep_target, cli.quick));
    }
    if run("scaling") {
        emit(exp::run_scaling(&sweep_target, cli.quick));
        emit(exp::run_scaling_shards(&sweep_target, cli.quick));
    }

    if let Some(path) = &cli.json_path {
        write_or_die(path, &manifest(&cli, &tables).render(), "results JSON");
    }
    if let Some(path) = &cli.trace_path {
        obs::trace::disable();
        write_or_die(path, &obs::trace::chrome_trace_json(), "trace");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter()
            .map(|a| (*a).to_owned())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn cli_defaults_to_all() {
        let cli = parse_cli(args(&[])).unwrap();
        assert_eq!(cli.which, "all");
        assert!(!cli.quick && !cli.large);
        assert!(cli.json_path.is_none() && cli.trace_path.is_none());
    }

    #[test]
    fn cli_flag_values_are_not_experiments() {
        // Regression: `--json r.json` must not make "r.json" the
        // experiment selector.
        let cli = parse_cli(args(&[
            "stream", "--json", "r.json", "--trace", "t.json", "--quick",
        ]))
        .unwrap();
        assert_eq!(cli.which, "stream");
        assert!(cli.quick);
        assert_eq!(cli.json_path.as_deref(), Some("r.json"));
        assert_eq!(cli.trace_path.as_deref(), Some("t.json"));
    }

    #[test]
    fn cli_rejects_dangling_and_unknown_flags() {
        assert!(parse_cli(args(&["--json"])).is_err());
        assert!(parse_cli(args(&["--frobnicate"])).is_err());
        assert!(parse_cli(args(&["stream", "scaling"])).is_err());
    }

    #[test]
    fn manifest_renders_parseable_json() {
        let cli = parse_cli(args(&["stream", "--quick"])).unwrap();
        let mut t = Table::new("demo", &["col"]);
        t.row(&["v".into()]);
        t.metric("demo.value", 42.0);
        let m = manifest(&cli, &[t]);
        let parsed = obs::json::parse(&m.render()).expect("manifest parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("aspen-repro/bench/v1")
        );
        assert_eq!(
            parsed.get("experiment").and_then(Json::as_str),
            Some("stream")
        );
        let tables = parsed.get("tables").and_then(Json::as_arr).expect("tables");
        assert_eq!(tables.len(), 1);
        assert!(parsed
            .get("runtime")
            .and_then(|r| r.get("totals"))
            .is_some());
    }
}
