//! `repro` — regenerates every table and data figure of the paper's
//! evaluation (§7) on the synthetic stand-in datasets.
//!
//! ```text
//! repro <experiment> [--large] [--quick]
//!
//! experiments:
//!   table1    graph statistics
//!   table2    memory by representation
//!   table3    algorithm runtimes + scalability (covers tables 3 and 4)
//!   table5    chunk-size sweep
//!   table6    flat snapshots
//!   table7    concurrent updates + queries
//!   table8    batch insertion throughput
//!   figure5   insert/delete throughput series
//!   table9    memory across systems
//!   table10   batch updates into an empty graph (vs Stinger-like)
//!   table11   vs streaming systems
//!   table12   vs static frameworks
//!   table13   uncompressed trees vs C-trees
//!   table14   Ligra+ vs Aspen, all algorithms (covers tables 14 and 15)
//!   stream    concurrent ingestion engine: updates + queries (aspen-stream)
//!   scaling   batch inserts + BFS/CC at 1/2/4/8 pool workers
//!   all       everything above, in order
//!
//! flags:
//!   --large   also run the web-graph stand-ins (slower)
//!   --quick   tiny dataset only (CI smoke run)
//! ```

use bench_support::datasets::{self, Dataset};
use bench_support::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_owned());
    let large = args.iter().any(|a| a == "--large");
    let quick = args.iter().any(|a| a == "--quick");

    let mut sets: Vec<Dataset> = if quick {
        vec![datasets::tiny()]
    } else {
        datasets::SMALL.to_vec()
    };
    if large {
        sets.extend_from_slice(datasets::LARGE);
    }
    let sweep_target = if quick {
        datasets::tiny()
    } else {
        *datasets::SMALL.last().expect("small tier nonempty")
    };

    println!(
        "# repro: {} on {} datasets, {} threads\n",
        which,
        sets.len(),
        parlib::num_threads()
    );

    let run = |name: &str| which == name || which == "all";

    if run("table1") {
        exp::run_table1(&sets).print();
    }
    if run("table2") {
        exp::run_table2(&sets).print();
    }
    if run("table3") || which == "table4" {
        exp::run_table3_4(&sets).print();
    }
    if run("table5") {
        exp::run_table5(&sweep_target).print();
    }
    if run("table6") {
        exp::run_table6(&sets).print();
    }
    if run("table7") {
        exp::run_table7(&sets).print();
    }
    if run("table8") {
        exp::run_table8(&sets).print();
    }
    if run("figure5") {
        exp::run_figure5(&sets).print();
    }
    if run("table9") {
        exp::run_table9(&sets).print();
    }
    if run("table10") {
        exp::run_table10().print();
    }
    if run("table11") {
        exp::run_table11(&sets).print();
    }
    if run("table12") {
        exp::run_table12(&sets).print();
    }
    if run("table13") {
        exp::run_table13(&sets).print();
    }
    if run("table14") || which == "table15" {
        exp::run_table14_15(&sets).print();
    }
    if run("stream") {
        exp::run_stream_engine(&sets).print();
    }
    if run("scaling") {
        exp::run_scaling(&sweep_target, quick).print();
    }
}
