//! Synthetic stand-ins for the paper's input graphs (Table 1).
//!
//! The real datasets (LiveJournal … Hyperlink2012, up to 225B edges)
//! are multi-gigabyte downloads evaluated on a 72-core/1TB machine.
//! This reproduction substitutes rMAT graphs with *matched average
//! degree* at scales sized for a small machine; rMAT's heavy-tailed
//! degree distribution is the standard proxy for such social/web
//! graphs. Every experiment keeps the paper's structure — the sweeps,
//! the derived metrics, and the cross-system ratios — at the reduced
//! scale. See DESIGN.md §2 and EXPERIMENTS.md.

use aspen::{ChunkParams, CompressedEdges, Graph};
use graphgen::Rmat;

/// A named synthetic dataset specification.
#[derive(Clone, Copy, Debug)]
pub struct Dataset {
    /// Stand-in name, matching the paper's dataset it substitutes.
    pub name: &'static str,
    /// log2 of the vertex-id space.
    pub scale: u32,
    /// Target average (directed) degree, matching Table 1.
    pub avg_degree: u32,
    /// rMAT seed.
    pub seed: u64,
}

impl Dataset {
    /// Target number of directed edges.
    pub fn target_edges(&self) -> usize {
        (1usize << self.scale) * self.avg_degree as usize
    }

    /// Generates the symmetric directed edge list.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        Rmat::new(self.scale, self.seed).symmetric_graph_edges(self.target_edges())
    }

    /// Builds the default Aspen graph (C-trees with difference
    /// encoding, `b = 2⁸` as in §7).
    pub fn build(&self) -> Graph<CompressedEdges> {
        Graph::from_edges(&self.edges(), default_b())
    }
}

/// The paper's main-experiment chunk parameter (`b = 2⁸`, Table 5).
pub fn default_b() -> ChunkParams {
    ChunkParams::with_b(1 << 8)
}

/// The small tier: stand-ins for LiveJournal, com-Orkut and Twitter
/// with the paper's average degrees (17.8, 76.2, 57.7) at reduced
/// scale.
pub const SMALL: &[Dataset] = &[
    Dataset {
        name: "soc-LJ-sim",
        scale: 16,
        avg_degree: 18,
        seed: 0xA5,
    },
    Dataset {
        name: "com-Orkut-sim",
        scale: 14,
        avg_degree: 76,
        seed: 0xB6,
    },
    Dataset {
        name: "Twitter-sim",
        scale: 16,
        avg_degree: 58,
        seed: 0xC7,
    },
];

/// The large tier: stand-ins for the web graphs (ClueWeb and the two
/// Hyperlink crawls, avg degrees 76.4 / 72.0 / 63.3), still reduced to
/// laptop scale.
pub const LARGE: &[Dataset] = &[
    Dataset {
        name: "ClueWeb-sim",
        scale: 17,
        avg_degree: 76,
        seed: 0xD8,
    },
    Dataset {
        name: "Hyperlink14-sim",
        scale: 18,
        avg_degree: 72,
        seed: 0xE9,
    },
    Dataset {
        name: "Hyperlink12-sim",
        scale: 18,
        avg_degree: 63,
        seed: 0xFA,
    },
];

/// Look up a dataset by name across both tiers.
pub fn by_name(name: &str) -> Option<Dataset> {
    SMALL
        .iter()
        .chain(LARGE.iter())
        .copied()
        .find(|d| d.name == name)
}

/// A tiny dataset for smoke tests and examples.
pub fn tiny() -> Dataset {
    Dataset {
        name: "tiny",
        scale: 10,
        avg_degree: 8,
        seed: 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_builds_and_matches_spec() {
        let d = tiny();
        let g = d.build();
        assert!(g.num_vertices() > 0);
        // average degree should be within 2x of target (rMAT dedup
        // and isolated vertices shift it)
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 2.0, "avg degree {avg} too low");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("soc-LJ-sim").is_some());
        assert!(by_name("ClueWeb-sim").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn small_tier_has_three_graphs() {
        assert_eq!(SMALL.len(), 3);
        assert_eq!(LARGE.len(), 3);
    }
}
