//! Shared support for the `repro` harness and the Criterion benches:
//! the synthetic stand-in datasets, timing utilities, and plain-text
//! table rendering.

pub mod datasets;
pub mod tables;

use std::time::Instant;

/// Times `f`, returning `(result, seconds)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Times `f` over `reps` runs and returns the median seconds
/// (the paper reports medians for its update benchmarks, §7.4).
pub fn median_time(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps >= 1);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("time is finite"));
    times[times.len() / 2]
}

/// Formats a byte count as GB/MB/KB with 3 significant-ish digits.
pub fn fmt_bytes(bytes: usize) -> String {
    const GB: f64 = 1e9;
    const MB: f64 = 1e6;
    const KB: f64 = 1e3;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2} GB", b / GB)
    } else if b >= MB {
        format!("{:.2} MB", b / MB)
    } else if b >= KB {
        format!("{:.2} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a rate (per second) with engineering suffixes.
pub fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}B/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K/s", rate / 1e3)
    } else {
        format!("{rate:.1}/s")
    }
}

/// Formats seconds adaptively (s / ms / µs).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_value() {
        let (v, t) = timed(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(t >= 0.0);
    }

    #[test]
    fn median_of_reps() {
        let mut n = 0;
        let t = median_time(3, || n += 1);
        assert_eq!(n, 3);
        assert!(t >= 0.0);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2_500), "2.50 KB");
        assert_eq!(fmt_bytes(3_000_000), "3.00 MB");
        assert_eq!(fmt_bytes(1_500_000_000), "1.50 GB");
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(500.0), "500.0/s");
        assert_eq!(fmt_rate(2.5e6), "2.50M/s");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(2.0), "2.000 s");
        assert_eq!(fmt_secs(0.002), "2.000 ms");
        assert_eq!(fmt_secs(0.000002), "2.000 µs");
    }
}
pub mod experiments;
