//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * chunking on/off (C-tree vs plain purely-functional tree),
//! * difference encoding on/off within chunks,
//! * flat snapshot on/off for a global traversal,
//! * direction optimization on/off for BFS.

use algorithms::{bfs, bfs_directed};
use aspen::{CompressedEdges, Direction, FlatSnapshot, Graph, PlainEdges, UncompressedEdges};
use bench_support::datasets::{default_b, tiny};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_representation_ablation(c: &mut Criterion) {
    let edges = tiny().edges();
    let mut grp = c.benchmark_group("ablation_representation_bfs");
    grp.sample_size(20);

    let unc: Graph<UncompressedEdges> = Graph::from_edges(&edges, ());
    let unc_f = FlatSnapshot::new(&unc);
    let src = (0..unc_f.len() as u32)
        .max_by_key(|&v| unc_f.degree(v))
        .unwrap_or(0);
    grp.bench_function("uncompressed_tree", |bench| {
        bench.iter(|| black_box(bfs(&unc_f, src)));
    });

    let plain: Graph<PlainEdges> = Graph::from_edges(&edges, default_b());
    let plain_f = FlatSnapshot::new(&plain);
    grp.bench_function("ctree_no_de", |bench| {
        bench.iter(|| black_box(bfs(&plain_f, src)));
    });

    let delta: Graph<CompressedEdges> = Graph::from_edges(&edges, default_b());
    let delta_f = FlatSnapshot::new(&delta);
    grp.bench_function("ctree_de", |bench| {
        bench.iter(|| black_box(bfs(&delta_f, src)));
    });
    grp.finish();
}

fn bench_flat_snapshot_ablation(c: &mut Criterion) {
    let g = tiny().build();
    let f = FlatSnapshot::new(&g);
    let src = (0..f.len() as u32)
        .max_by_key(|&v| f.degree(v))
        .unwrap_or(0);
    let mut grp = c.benchmark_group("ablation_flat_snapshot_bfs");
    grp.sample_size(20);
    grp.bench_function("with_flat_snapshot", |bench| {
        bench.iter(|| black_box(bfs(&f, src)));
    });
    grp.bench_function("tree_lookups_only", |bench| {
        bench.iter(|| black_box(bfs(&g, src)));
    });
    grp.bench_function("including_fs_build", |bench| {
        bench.iter(|| {
            let fresh = FlatSnapshot::new(&g);
            black_box(bfs(&fresh, src))
        });
    });
    grp.finish();
}

fn bench_direction_ablation(c: &mut Criterion) {
    let g = tiny().build();
    let f = FlatSnapshot::new(&g);
    let src = (0..f.len() as u32)
        .max_by_key(|&v| f.degree(v))
        .unwrap_or(0);
    let mut grp = c.benchmark_group("ablation_direction_bfs");
    grp.sample_size(20);
    for (name, dir) in [
        ("auto", Direction::Auto),
        ("sparse_only", Direction::ForceSparse),
        ("dense_only", Direction::ForceDense),
    ] {
        grp.bench_function(name, |bench| {
            bench.iter(|| black_box(bfs_directed(&f, src, dir)));
        });
    }
    grp.finish();
}

criterion_group!(
    benches,
    bench_representation_ablation,
    bench_flat_snapshot_ablation,
    bench_direction_ablation
);
criterion_main!(benches);
