//! Criterion micro-benchmarks for the purely-functional tree substrate
//! (the PAM-equivalent layer): build, point ops and bulk set ops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptree::Tree;
use std::hint::black_box;

const N: u32 = 100_000;

fn keys(step: usize) -> Vec<u32> {
    (0..N).step_by(step).collect()
}

fn bench_build(c: &mut Criterion) {
    let xs = keys(1);
    let mut g = c.benchmark_group("ptree_build");
    g.sample_size(10);
    g.bench_function("from_sorted_100k", |bench| {
        bench.iter(|| black_box(Tree::<u32>::from_sorted(&xs)));
    });
    g.finish();
}

fn bench_point_ops(c: &mut Criterion) {
    let t = Tree::<u32>::from_sorted(&keys(1));
    c.bench_function("ptree_find", |bench| {
        let mut i = 0u32;
        bench.iter(|| {
            i = (i + 7919) % N;
            black_box(t.find(&i))
        });
    });
    c.bench_function("ptree_insert_persistent", |bench| {
        let mut i = N;
        bench.iter(|| {
            i += 1;
            black_box(t.insert(i, |_, n| n))
        });
    });
}

fn bench_set_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("ptree_set_ops");
    g.sample_size(10);
    let a = Tree::<u32>::from_sorted(&keys(2));
    for step in [3usize, 101] {
        let b = Tree::<u32>::from_sorted(&keys(step));
        g.bench_with_input(BenchmarkId::new("union", b.len()), &b, |bench, other| {
            bench.iter(|| black_box(a.union(other, |x, _| *x)));
        });
        g.bench_with_input(
            BenchmarkId::new("difference", b.len()),
            &b,
            |bench, other| {
                bench.iter(|| black_box(a.difference(other)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_point_ops, bench_set_ops);
criterion_main!(benches);
