//! Criterion micro-benchmarks for the byte-code codec: the per-chunk
//! encode/decode costs that §3.2 argues are cheap enough to leave the
//! tree-operation bounds unchanged.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn chunk(len: usize, gap: u32) -> Vec<u32> {
    (0..len as u32).map(|i| i * gap).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode_sorted");
    for (name, gap) in [("dense_gap1", 1u32), ("sparse_gap1000", 1000)] {
        let xs = chunk(256, gap);
        g.bench_with_input(BenchmarkId::new(name, xs.len()), &xs, |bench, xs| {
            bench.iter(|| black_box(encoder::encode_sorted(xs)));
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_sorted");
    for (name, gap) in [("dense_gap1", 1u32), ("sparse_gap1000", 1000)] {
        let xs = chunk(256, gap);
        let bytes = encoder::encode_sorted(&xs);
        g.bench_function(name, |bench| {
            bench.iter(|| black_box(encoder::decode_sorted(&bytes, xs.len())));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
