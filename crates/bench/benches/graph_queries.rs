//! Criterion benchmarks for the query side: BFS/BC/MIS over the tiny
//! dataset, edgeMap steps, and flat-snapshot construction — the
//! micro-scale companions to Tables 3–6.

use algorithms::{bc, bfs, mis, two_hop};
use aspen::{edge_map, FlatSnapshot, VertexSubset};
use bench_support::datasets::tiny;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_global_algorithms(c: &mut Criterion) {
    let g = tiny().build();
    let f = FlatSnapshot::new(&g);
    let src = (0..f.len() as u32)
        .max_by_key(|&v| f.degree(v))
        .unwrap_or(0);
    let mut grp = c.benchmark_group("global_algorithms");
    grp.sample_size(20);
    grp.bench_function("bfs_flat", |bench| {
        bench.iter(|| black_box(bfs(&f, src)));
    });
    grp.bench_function("bfs_tree_lookups", |bench| {
        bench.iter(|| black_box(bfs(&g, src)));
    });
    grp.bench_function("bc_flat", |bench| {
        bench.iter(|| black_box(bc(&f, src)));
    });
    grp.bench_function("mis_flat", |bench| {
        bench.iter(|| black_box(mis(&f, 3)));
    });
    grp.finish();
}

fn bench_flat_snapshot_build(c: &mut Criterion) {
    let g = tiny().build();
    c.bench_function("flat_snapshot_build", |bench| {
        bench.iter(|| black_box(FlatSnapshot::new(&g)));
    });
}

fn bench_edge_map_step(c: &mut Criterion) {
    let g = tiny().build();
    let f = FlatSnapshot::new(&g);
    let n = f.len();
    let frontier = VertexSubset::sparse(n, (0..64u32).collect());
    c.bench_function("edge_map_one_step", |bench| {
        bench.iter(|| black_box(edge_map(&f, &frontier, |_, _| true, |_| true)));
    });
}

fn bench_local_query(c: &mut Criterion) {
    let g = tiny().build();
    let mut v = 0u32;
    c.bench_function("two_hop_tree_lookups", |bench| {
        bench.iter(|| {
            v = (v + 37) % 1024;
            black_box(two_hop(&g, v))
        });
    });
}

criterion_group!(
    benches,
    bench_global_algorithms,
    bench_flat_snapshot_build,
    bench_edge_map_step,
    bench_local_query
);
criterion_main!(benches);
