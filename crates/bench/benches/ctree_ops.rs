//! Criterion micro-benchmarks for the C-tree primitives underlying the
//! paper's batch-update numbers: build, find, union, multi-insert and
//! split.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctree::{CTree, ChunkParams, DeltaCodec, PlainCodec};
use std::hint::black_box;

const N: u32 = 200_000;

fn sorted_set(step: usize) -> Vec<u32> {
    (0..N).step_by(step).collect()
}

fn bench_build(c: &mut Criterion) {
    let xs = sorted_set(1);
    let mut g = c.benchmark_group("ctree_build");
    g.sample_size(10);
    for b in [8u32, 128, 1024] {
        g.bench_with_input(BenchmarkId::new("delta", b), &b, |bench, &b| {
            bench.iter(|| {
                black_box(CTree::<DeltaCodec>::from_sorted(
                    &xs,
                    ChunkParams::with_b(b),
                ))
            });
        });
    }
    g.bench_function("plain_b128", |bench| {
        bench.iter(|| {
            black_box(CTree::<PlainCodec>::from_sorted(
                &xs,
                ChunkParams::with_b(128),
            ))
        });
    });
    g.finish();
}

fn bench_find(c: &mut Criterion) {
    let t = CTree::<DeltaCodec>::from_sorted(&sorted_set(1), ChunkParams::with_b(128));
    c.bench_function("ctree_find_hit", |bench| {
        let mut i = 0u32;
        bench.iter(|| {
            i = (i + 7919) % N;
            black_box(t.contains(i))
        });
    });
}

fn bench_union(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctree_union");
    g.sample_size(10);
    let a = CTree::<DeltaCodec>::from_sorted(&sorted_set(2), ChunkParams::with_b(128));
    for step in [3usize, 17, 1001] {
        let b = CTree::<DeltaCodec>::from_sorted(&sorted_set(step), ChunkParams::with_b(128));
        g.bench_with_input(
            BenchmarkId::new("other_size", b.len()),
            &b,
            |bench, other| {
                bench.iter(|| black_box(a.union(other)));
            },
        );
    }
    g.finish();
}

fn bench_multi_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctree_multi_insert");
    g.sample_size(10);
    let t = CTree::<DeltaCodec>::from_sorted(&sorted_set(2), ChunkParams::with_b(128));
    for k in [10usize, 1000, 100_000] {
        let batch: Vec<u32> = (0..k as u32).map(|i| i * 13 % N).collect();
        g.bench_with_input(BenchmarkId::new("batch", k), &batch, |bench, batch| {
            bench.iter(|| black_box(t.multi_insert(batch.clone())));
        });
    }
    g.finish();
}

fn bench_split(c: &mut Criterion) {
    let t = CTree::<DeltaCodec>::from_sorted(&sorted_set(1), ChunkParams::with_b(128));
    c.bench_function("ctree_split_mid", |bench| {
        bench.iter(|| black_box(t.split(N / 2)));
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_find,
    bench_union,
    bench_multi_insert,
    bench_split
);
criterion_main!(benches);
