//! Criterion benchmarks for graph batch updates — the micro-scale
//! companion to Table 8: insertion/deletion throughput as a function
//! of batch size, plus single-edge update latency (§7.3's sequential
//! update regime).

use aspen::{CompressedEdges, Graph, VersionedGraph};
use bench_support::datasets::tiny;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphgen::Rmat;
use std::hint::black_box;

fn base_graph() -> Graph<CompressedEdges> {
    tiny().build()
}

fn bench_batch_insert(c: &mut Criterion) {
    let g = base_graph();
    let gen = Rmat::new(tiny().scale, 0xFEED);
    let mut grp = c.benchmark_group("graph_insert_edges");
    grp.sample_size(10);
    for k in [10usize, 1_000, 50_000] {
        let batch = gen.edges(0, k);
        grp.throughput(Throughput::Elements(k as u64));
        grp.bench_with_input(BenchmarkId::from_parameter(k), &batch, |bench, batch| {
            bench.iter(|| black_box(g.insert_edges(batch)));
        });
    }
    grp.finish();
}

fn bench_batch_delete(c: &mut Criterion) {
    let gen = Rmat::new(tiny().scale, 0xFEED);
    let mut grp = c.benchmark_group("graph_delete_edges");
    grp.sample_size(10);
    for k in [10usize, 1_000, 50_000] {
        let batch = gen.edges(0, k);
        let g = base_graph().insert_edges(&batch);
        grp.throughput(Throughput::Elements(k as u64));
        grp.bench_with_input(BenchmarkId::from_parameter(k), &batch, |bench, batch| {
            bench.iter(|| black_box(g.delete_edges(batch)));
        });
    }
    grp.finish();
}

fn bench_single_edge_latency(c: &mut Criterion) {
    let vg = VersionedGraph::new(base_graph());
    let mut i = 0u32;
    c.bench_function("versioned_single_undirected_update", |bench| {
        bench.iter(|| {
            i += 1;
            vg.insert_edges_undirected(&[(i % 1024, (i / 2) % 1024)]);
        });
    });
}

fn bench_snapshot_acquire(c: &mut Criterion) {
    let vg = VersionedGraph::new(base_graph());
    c.bench_function("versioned_acquire_release", |bench| {
        bench.iter(|| {
            let v = vg.acquire();
            black_box(v.num_edges());
        });
    });
}

criterion_group!(
    benches,
    bench_batch_insert,
    bench_batch_delete,
    bench_single_edge_latency,
    bench_snapshot_acquire
);
criterion_main!(benches);
