//! Set operations on C-trees: `Split`, `Union`, `Difference`,
//! `Intersect`, and the batch wrappers `MultiInsert`/`MultiDelete`.
//!
//! These follow Algorithms 1–3 of the paper. The structure of all three
//! binary operations is the same: expose the root `(k₂, v₂)` of one
//! tree, split the other C-tree at `k₂`, route the two straddling
//! chunks (`k₂`'s tail and the split-off prefix) across the recursion
//! boundary using the `O(1)` chunk headers, recurse on both sides in
//! parallel, and reassemble with `join`/`join2` over the head trees.
//!
//! Because heads are selected by a hash of the element (§3.1), an
//! element is a head in *every* C-tree that contains it; chunks
//! therefore never hide a key that the other tree uses as a tree node,
//! which is the property all the routing logic relies on.
//!
//! Cost bounds (§4.2): `Union`/`Difference`/`Intersect` run in
//! `O(b²·k·log(n/k + 1))` expected work and `O(b log k log n)` depth
//! w.h.p. for `k = min(|A|,|B|)`, `n = max(|A|,|B|)`; `Split` runs in
//! `O(b log n)` w.h.p.

use crate::chunk::{Chunk, ChunkCodec};
use crate::tree::{CTree, ChunkParams, HeadTail, HeadTree};
use ptree::Tree;

/// Combined **element** count (not head count) below which recursions
/// stop forking and run sequentially.
///
/// Grain rationale (re-audited against the lock-free Chase–Lev
/// runtime; `docs/RUNTIME.md` has the measurements): with the paper's
/// default `b = 2⁸`, 2048 elements are only ~8 heads, but one
/// recursion level moves whole chunks — `split`/`split_lt`/
/// chunk-`union` are `O(b)` decodes, several µs each — so a leaf
/// still carries tens of µs of work against a fork that now costs
/// ~0.1 µs un-stolen (allocation-, lock- and CAS-free owner path) and
/// ~1 µs when genuinely stolen. Halving the old 4096 threshold
/// doubles the exposed parallelism for the small-batch updates the
/// streaming engine applies. Counting elements rather than heads
/// keeps the threshold meaningful across the `b` sweep of Table 5:
/// small-`b` trees (many cheap heads) and large-`b` trees (few
/// expensive chunks) both bottom out near the same leaf cost.
const SEQ_SETOP: usize = 1 << 11;

impl<C: ChunkCodec> CTree<C> {
    /// Splits into `(elements < k, k ∈ self, elements > k)`
    /// (Algorithm 3). `O(b log n)` work and depth w.h.p.
    ///
    /// ```
    /// use ctree::{ChunkParams, CTree};
    /// let t: CTree = CTree::from_sorted(&[1, 4, 9, 16], ChunkParams::with_b(4));
    /// let (lo, found, hi) = t.split(9);
    /// assert_eq!(lo.to_vec(), vec![1, 4]);
    /// assert!(found);
    /// assert_eq!(hi.to_vec(), vec![16]);
    /// ```
    pub fn split(&self, k: u32) -> (CTree<C>, bool, CTree<C>) {
        let p = self.params;
        // Case 1: k lands inside (or before) the prefix — resolved with
        // the O(1) header reads, no tree descent.
        if let Some(last) = self.prefix.last() {
            if k <= last {
                let (pl, found, pr) = self.prefix.split3(k);
                return (
                    CTree::assemble(p, Tree::new(), pl),
                    found,
                    CTree::assemble(p, self.tree.clone(), pr),
                );
            }
        }
        // Case 2: k is beyond the prefix; recurse on the head tree. The
        // left result keeps our prefix; the recursion never produces a
        // left prefix of its own.
        let (lt, found, right) = split_tree(p, &self.tree, k);
        (CTree::assemble(p, lt, self.prefix.clone()), found, right)
    }

    /// The union of two C-trees (Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if the two trees were built with different
    /// [`ChunkParams`] — head selection must agree for the recursive
    /// decomposition to be meaningful.
    pub fn union(&self, other: &CTree<C>) -> CTree<C> {
        assert_eq!(
            self.params, other.params,
            "union of C-trees with different chunk parameters"
        );
        union_rec(self, other)
    }

    /// Elements of `self` not present in `other`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched [`ChunkParams`].
    pub fn difference(&self, other: &CTree<C>) -> CTree<C> {
        assert_eq!(
            self.params, other.params,
            "difference of C-trees with different chunk parameters"
        );
        difference_rec(self, other)
    }

    /// Elements present in both trees.
    ///
    /// # Panics
    ///
    /// Panics on mismatched [`ChunkParams`].
    pub fn intersect(&self, other: &CTree<C>) -> CTree<C> {
        assert_eq!(
            self.params, other.params,
            "intersect of C-trees with different chunk parameters"
        );
        intersect_rec(self, other)
    }

    /// Inserts a batch of values: `Build` over the batch, then `Union`
    /// (§4.1). Duplicates within the batch are collapsed.
    pub fn multi_insert(&self, batch: Vec<u32>) -> CTree<C> {
        if batch.is_empty() {
            return self.clone();
        }
        self.union(&CTree::build(batch, self.params))
    }

    /// Deletes a batch of values: `Build`, then `Difference` (§4.1).
    pub fn multi_delete(&self, batch: Vec<u32>) -> CTree<C> {
        if batch.is_empty() {
            return self.clone();
        }
        self.difference(&CTree::build(batch, self.params))
    }
}

/// `join2` over C-trees: concatenates two key-disjoint C-trees where
/// every element of `left` precedes every element of `right`. The right
/// prefix — non-head elements with no head of their own to the left in
/// `right` — is absorbed into the tail of `left`'s last head (or into
/// `left`'s prefix when `left` has no heads).
pub(crate) fn ctree_join2<C: ChunkCodec>(left: CTree<C>, right: CTree<C>) -> CTree<C> {
    let p = left.params;
    match left.tree.split_last() {
        None => {
            // `left` is prefix-only.
            CTree::assemble(p, right.tree, left.prefix.concat(&right.prefix))
        }
        Some((rest, last)) => {
            let tail = last.tail.concat(&right.prefix);
            let tree = Tree::join(
                rest,
                HeadTail {
                    head: last.head,
                    tail,
                },
                right.tree,
            );
            CTree::assemble(p, tree, left.prefix)
        }
    }
}

/// Splits a head tree (whose enclosing prefix has already been handled)
/// at `k`. Returns `(left head tree, found, right C-tree)`; the left
/// side never acquires a prefix because the input has none.
fn split_tree<C: ChunkCodec>(
    p: ChunkParams,
    tree: &HeadTree<C>,
    k: u32,
) -> (HeadTree<C>, bool, CTree<C>) {
    let Some((l, ht, r)) = tree.expose() else {
        return (Tree::new(), false, CTree::new(p));
    };
    let (head, tail) = (ht.head, ht.tail.clone());
    match k.cmp(&head) {
        std::cmp::Ordering::Equal => {
            // The matched head is dropped; its tail survives as the
            // right part's prefix (paper Algorithm 3, case EQ).
            (l, true, CTree::assemble(p, r, tail))
        }
        std::cmp::Ordering::Less => {
            let (ll, found, lr) = split_tree(p, &l, k);
            let right_tree = Tree::join(lr.tree, HeadTail { head, tail }, r);
            (ll, found, CTree::assemble(p, right_tree, lr.prefix))
        }
        std::cmp::Ordering::Greater => {
            // O(1) header read decides whether k splits this tail.
            if tail.last().is_some_and(|last| k <= last) {
                let (vl, found, vr) = tail.split3(k);
                let left_tree = Tree::join(l, HeadTail { head, tail: vl }, Tree::new());
                (left_tree, found, CTree::assemble(p, r, vr))
            } else {
                let (rl, found, right) = split_tree(p, &r, k);
                let left_tree = Tree::join(l, HeadTail { head, tail }, rl);
                (left_tree, found, right)
            }
        }
    }
}

fn maybe_par<L: Send, R: Send>(
    par: bool,
    l: impl FnOnce() -> L + Send,
    r: impl FnOnce() -> R + Send,
) -> (L, R) {
    if par {
        rayon::join(l, r)
    } else {
        (l(), r())
    }
}

fn union_rec<C: ChunkCodec>(a: &CTree<C>, b: &CTree<C>) -> CTree<C> {
    let p = a.params;
    if a.tree.is_empty() {
        return union_bc(&a.prefix, b);
    }
    if b.tree.is_empty() {
        return union_bc(&b.prefix, a);
    }
    let (l2, ht2, r2) = b.tree.expose().expect("b.tree nonempty");
    let (k2, v2) = (ht2.head, ht2.tail.clone());
    let (b1, _found, bright) = a.split(k2);
    let (bt2, bp2) = (bright.tree, bright.prefix);

    // Route the straddling chunks (paper lines 9–11): elements of k2's
    // tail past the first head of A's right part belong deeper right;
    // elements of A's split-off prefix past the first head of R2
    // likewise. What remains of both merges into k2's new tail.
    let m1 = bt2.first().map(|ht| ht.head);
    let m2 = r2.first().map(|ht| ht.head);
    let (vl, vr) = v2.split_lt(m1);
    let (pl, pr) = bp2.split_lt(m2);
    let new_tail = vl.union(&pl);

    let left_a = b1;
    let left_b = CTree::assemble(p, l2, b.prefix.clone());
    let right_a = CTree::assemble(p, bt2, pr);
    let right_b = CTree::assemble(p, r2, vr);
    let par = left_a.len() + left_b.len() + right_a.len() + right_b.len() > SEQ_SETOP;
    let (cl, cr) = maybe_par(
        par,
        || union_rec(&left_a, &left_b),
        || union_rec(&right_a, &right_b),
    );
    // The right recursion's prefix is empty (its inputs' prefixes both
    // sit above a head); concat keeps this robust either way.
    let tail = new_tail.concat(&cr.prefix);
    let tree = Tree::join(cl.tree, HeadTail { head: k2, tail }, cr.tree);
    CTree::assemble(p, tree, cl.prefix)
}

/// Base case of `Union` (Algorithm 2): merges a prefix-only C-tree
/// (`p1`) into `c2`.
fn union_bc<C: ChunkCodec>(p1: &Chunk<C>, c2: &CTree<C>) -> CTree<C> {
    let p = c2.params;
    if p1.is_empty() {
        return c2.clone();
    }
    let Some(first_head) = c2.first_head() else {
        // Both sides are prefix-only.
        return CTree::assemble(p, Tree::new(), p1.union(&c2.prefix));
    };
    let (pl, pr) = p1.split_lt(Some(first_head));
    let new_prefix = pl.union(&c2.prefix);
    if pr.is_empty() {
        return CTree::assemble(p, c2.tree.clone(), new_prefix);
    }
    // Distribute the remaining elements to their heads (paper lines
    // 7–9): group the sorted run by predecessor head, then MultiInsert
    // the freshened (head, tail) pairs.
    let updates = group_by_head(&c2.tree, &pr);
    let tree = c2.tree.multi_insert(updates, |old, new| HeadTail {
        head: old.head,
        tail: old.tail.union(&new.tail),
    });
    CTree::assemble(p, tree, new_prefix)
}

/// Groups the sorted non-head elements of `chunk` by their predecessor
/// head in `tree`, returning one `(head, chunk-of-elements)` entry per
/// distinct head. Every element must lie above the first head of
/// `tree`.
fn group_by_head<C: ChunkCodec>(tree: &HeadTree<C>, chunk: &Chunk<C>) -> Vec<HeadTail<C>> {
    let mut groups: Vec<HeadTail<C>> = Vec::new();
    let mut run: Vec<u32> = Vec::new();
    let mut cur_head: Option<u32> = None;
    for x in chunk.iter() {
        let h = tree
            .find_le(&x)
            .expect("element below every head reached group_by_head")
            .head;
        if Some(h) != cur_head {
            if let Some(head) = cur_head {
                groups.push(HeadTail {
                    head,
                    tail: Chunk::from_sorted(&run),
                });
                run.clear();
            }
            cur_head = Some(h);
        }
        run.push(x);
    }
    if let Some(head) = cur_head {
        groups.push(HeadTail {
            head,
            tail: Chunk::from_sorted(&run),
        });
    }
    groups
}

fn difference_rec<C: ChunkCodec>(a: &CTree<C>, b: &CTree<C>) -> CTree<C> {
    let p = a.params;
    if a.is_empty() || b.is_empty() {
        return a.clone();
    }
    if b.tree.is_empty() {
        return difference_bc(a, &b.prefix);
    }
    if a.tree.is_empty() {
        // `a` is prefix-only; keep what `b` does not contain.
        return CTree::assemble(p, Tree::new(), a.prefix.filter(|x| !b.contains(x)));
    }
    let (l2, ht2, r2) = b.tree.expose().expect("b.tree nonempty");
    let (k2, v2) = (ht2.head, ht2.tail.clone());
    // k2 ∈ B, so if A holds it (necessarily as a head) the split drops
    // it; A's copy of the tail survives as the right part's prefix.
    let (al, _found, aright) = a.split(k2);
    let (atr, apr) = (aright.tree, aright.prefix);

    let m1 = atr.first().map(|ht| ht.head);
    let (vl, vr) = v2.split_lt(m1);
    // vl's removals can only hit A's straddling prefix; vr's reach into
    // the tails of A's right tree, carried there as B's prefix.
    let apr2 = apr.difference(&vl);

    let left_a = al;
    let left_b = CTree::assemble(p, l2, b.prefix.clone());
    let right_a = CTree::assemble(p, atr, apr2);
    let right_b = CTree::assemble(p, r2, vr);
    let par = left_a.len() + left_b.len() + right_a.len() + right_b.len() > SEQ_SETOP;
    let (dl, dr) = maybe_par(
        par,
        || difference_rec(&left_a, &left_b),
        || difference_rec(&right_a, &right_b),
    );
    ctree_join2(dl, dr)
}

/// Base case of `Difference`: removes the (non-head) elements of `p2`
/// from `a`.
fn difference_bc<C: ChunkCodec>(a: &CTree<C>, p2: &Chunk<C>) -> CTree<C> {
    let p = a.params;
    if p2.is_empty() {
        return a.clone();
    }
    let Some(first_head) = a.first_head() else {
        return CTree::assemble(p, Tree::new(), a.prefix.difference(p2));
    };
    let (pl, pr) = p2.split_lt(Some(first_head));
    let new_prefix = a.prefix.difference(&pl);
    if pr.is_empty() {
        return CTree::assemble(p, a.tree.clone(), new_prefix);
    }
    let updates = group_by_head(&a.tree, &pr);
    let tree = a.tree.multi_insert(updates, |old, new| HeadTail {
        head: old.head,
        tail: old.tail.difference(&new.tail),
    });
    CTree::assemble(p, tree, new_prefix)
}

fn intersect_rec<C: ChunkCodec>(a: &CTree<C>, b: &CTree<C>) -> CTree<C> {
    let p = a.params;
    if a.is_empty() || b.is_empty() {
        return CTree::new(p);
    }
    if b.tree.is_empty() {
        // Result elements are exactly b.prefix ∩ a: all non-heads, so
        // the result is prefix-only.
        return CTree::assemble(p, Tree::new(), b.prefix.filter(|x| a.contains(x)));
    }
    if a.tree.is_empty() {
        return CTree::assemble(p, Tree::new(), a.prefix.filter(|x| b.contains(x)));
    }
    let (l2, ht2, r2) = b.tree.expose().expect("b.tree nonempty");
    let (k2, v2) = (ht2.head, ht2.tail.clone());
    let (al, found, aright) = a.split(k2);
    let (atr, apr) = (aright.tree, aright.prefix);

    let m1 = atr.first().map(|ht| ht.head);
    let m2 = r2.first().map(|ht| ht.head);
    // The zone (k2, min(m1, m2)) holds A-elements only in `apr` and
    // B-elements only in `v2`; their intersection is settled here. The
    // leftovers (`ph` beyond R2's first head, `vr` beyond A's) travel
    // into the right recursion as prefixes.
    let mid = apr.intersect(&v2);
    let (_, vr) = v2.split_lt(m1);
    let (_, ph) = apr.split_lt(m2);

    let left_a = al;
    let left_b = CTree::assemble(p, l2, b.prefix.clone());
    let right_a = CTree::assemble(p, atr, ph);
    let right_b = CTree::assemble(p, r2, vr);
    let par = left_a.len() + left_b.len() + right_a.len() + right_b.len() > SEQ_SETOP;
    let (il, ir) = maybe_par(
        par,
        || intersect_rec(&left_a, &left_b),
        || intersect_rec(&right_a, &right_b),
    );
    let after_k2 = mid.concat(&ir.prefix);
    if found {
        let tree = Tree::join(
            il.tree,
            HeadTail {
                head: k2,
                tail: after_k2,
            },
            ir.tree,
        );
        CTree::assemble(p, tree, il.prefix)
    } else {
        ctree_join2(il, CTree::assemble(p, ir.tree, after_k2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::DeltaCodec;
    use std::collections::BTreeSet;

    fn ct(xs: &[u32], b: u32) -> CTree<DeltaCodec> {
        CTree::build(xs.to_vec(), ChunkParams::with_b(b))
    }

    fn oracle_union(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter()
            .chain(b)
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    #[test]
    fn split_basic() {
        let t = ct(&(0..100).collect::<Vec<_>>(), 8);
        let (lo, found, hi) = t.split(50);
        assert!(found);
        assert_eq!(lo.to_vec(), (0..50).collect::<Vec<_>>());
        assert_eq!(hi.to_vec(), (51..100).collect::<Vec<_>>());
        lo.check_invariants();
        hi.check_invariants();
    }

    #[test]
    fn split_missing_key_and_extremes() {
        let t = ct(&(0..100).step_by(2).collect::<Vec<_>>(), 8);
        let (lo, found, hi) = t.split(51);
        assert!(!found);
        assert_eq!(lo.len() + hi.len(), t.len());
        let (lo, found, hi) = t.split(1000);
        assert!(!found && hi.is_empty());
        assert_eq!(lo.len(), t.len());
        let (lo, found, _hi) = t.split(0);
        assert!(found);
        assert!(lo.is_empty());
    }

    #[test]
    fn union_disjoint_and_overlapping() {
        for b in [2, 16, 128] {
            let a = ct(&(0..500).step_by(2).collect::<Vec<_>>(), b);
            let c = ct(&(0..500).step_by(3).collect::<Vec<_>>(), b);
            let u = a.union(&c);
            assert_eq!(u.to_vec(), oracle_union(&a.to_vec(), &c.to_vec()), "b={b}");
            u.check_invariants();
            // persistence
            assert_eq!(a.len(), 250);
        }
    }

    #[test]
    fn union_with_empty_sides() {
        let a = ct(&[1, 2, 3], 4);
        let e = CTree::new(ChunkParams::with_b(4));
        assert_eq!(a.union(&e).to_vec(), vec![1, 2, 3]);
        assert_eq!(e.union(&a).to_vec(), vec![1, 2, 3]);
        assert!(e.union(&e).is_empty());
    }

    #[test]
    fn union_prefix_only_sides() {
        // With a huge b nothing is promoted: both trees are prefix-only.
        let a = ct(&[1, 5, 9], 1 << 20);
        let c = ct(&[2, 5, 7], 1 << 20);
        let u = a.union(&c);
        assert_eq!(u.to_vec(), vec![1, 2, 5, 7, 9]);
        u.check_invariants();
    }

    #[test]
    fn difference_matches_oracle() {
        for b in [2, 16, 128] {
            let xs: Vec<u32> = (0..600).filter(|x| x % 7 != 0).collect();
            let ys: Vec<u32> = (0..600).step_by(2).collect();
            let d = ct(&xs, b).difference(&ct(&ys, b));
            let sy: BTreeSet<u32> = ys.iter().copied().collect();
            let expect: Vec<u32> = xs.iter().copied().filter(|x| !sy.contains(x)).collect();
            assert_eq!(d.to_vec(), expect, "b={b}");
            d.check_invariants();
        }
    }

    #[test]
    fn difference_removes_heads_and_reattaches_tails() {
        // Remove only the head elements; their tails must survive,
        // re-attached to predecessors.
        let xs: Vec<u32> = (0..2000).collect();
        let t = ct(&xs, 16);
        let heads: Vec<u32> = xs
            .iter()
            .copied()
            .filter(|&x| t.params().is_head(x))
            .collect();
        assert!(!heads.is_empty());
        let d = t.difference(&ct(&heads, 16));
        let hs: BTreeSet<u32> = heads.into_iter().collect();
        let expect: Vec<u32> = xs.into_iter().filter(|x| !hs.contains(x)).collect();
        assert_eq!(d.to_vec(), expect);
        d.check_invariants();
    }

    #[test]
    fn intersect_matches_oracle() {
        for b in [2, 16, 128] {
            let xs: Vec<u32> = (0..600).step_by(2).collect();
            let ys: Vec<u32> = (0..600).step_by(3).collect();
            let i = ct(&xs, b).intersect(&ct(&ys, b));
            let expect: Vec<u32> = (0..600).step_by(6).collect();
            assert_eq!(i.to_vec(), expect, "b={b}");
            i.check_invariants();
        }
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = ct(&(0..100).collect::<Vec<_>>(), 8);
        let c = ct(&(1000..1100).collect::<Vec<_>>(), 8);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn multi_insert_delete_roundtrip() {
        let base = ct(&(0..1000).step_by(3).collect::<Vec<_>>(), 32);
        let batch: Vec<u32> = (0..1000).step_by(5).collect();
        let inserted = base.multi_insert(batch.clone());
        for &x in &batch {
            assert!(inserted.contains(x));
        }
        inserted.check_invariants();
        let removed = inserted.multi_delete(batch.clone());
        let sb: BTreeSet<u32> = batch.into_iter().collect();
        let expect: Vec<u32> = (0..1000).step_by(3).filter(|x| !sb.contains(x)).collect();
        assert_eq!(removed.to_vec(), expect);
        removed.check_invariants();
    }

    #[test]
    fn multi_insert_empty_batch_is_noop_clone() {
        let base = ct(&[1, 2, 3], 8);
        assert_eq!(base.multi_insert(vec![]).to_vec(), vec![1, 2, 3]);
        assert_eq!(base.multi_delete(vec![]).to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "different chunk parameters")]
    fn union_rejects_mismatched_params() {
        let a = ct(&[1], 8);
        let b = ct(&[2], 16);
        let _ = a.union(&b);
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let a = ct(&(0..300).step_by(2).collect::<Vec<_>>(), 16);
        let b = ct(&(0..300).step_by(5).collect::<Vec<_>>(), 16);
        assert_eq!(a.union(&b).to_vec(), b.union(&a).to_vec());
        assert_eq!(a.union(&a).to_vec(), a.to_vec());
    }

    #[test]
    fn large_union_parallel_path() {
        // Crosses SEQ_SETOP to exercise the rayon branch.
        let xs: Vec<u32> = (0..40_000).step_by(2).collect();
        let ys: Vec<u32> = (0..40_000).step_by(3).collect();
        let u = ct(&xs, 128).union(&ct(&ys, 128));
        assert_eq!(u.to_vec(), oracle_union(&xs, &ys));
        u.check_invariants();
    }
}
