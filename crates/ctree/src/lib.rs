//! C-trees: compressed purely-functional search trees.
//!
//! This crate implements the core contribution of *"Low-Latency Graph
//! Streaming Using Compressed Purely-Functional Trees"* (Dhulipala,
//! Blelloch, Shun — PLDI 2019): a chunked purely-functional search tree
//! that keeps the asymptotic bounds of balanced binary trees while
//! slashing space usage and improving cache locality.
//!
//! # How it works (§3)
//!
//! Given a set of elements and a chunking parameter `b`, each element is
//! promoted to a **head** with probability `1/b` by hashing the element
//! itself. Heads are stored in an ordinary purely-functional tree (the
//! [`ptree`] crate); each head carries its **tail** — the run of
//! non-head elements up to the next head — as a contiguous, optionally
//! compressed array. Elements before the first head form the
//! **prefix**. Chunks have expected size `b` and are `O(b log n)` w.h.p.
//! (Lemma 3.1).
//!
//! Because the head decision depends only on the element, two C-trees
//! over overlapping sets agree on what is a head — the property that
//! lets `Union`/`Difference`/`Intersect` recurse structurally
//! ([`CTree::union`] and friends; Algorithms 1–3).
//!
//! When elements are integers (this crate specializes to `u32` vertex
//! identifiers, the case the paper's evaluation exercises), each chunk
//! is difference-encoded and byte-coded ([`DeltaCodec`]), reaching a few
//! bytes per element on real-world-like inputs — the key to storing
//! massive graphs on one machine.
//!
//! # Example
//!
//! ```
//! use ctree::{ChunkParams, CTree};
//!
//! let params = ChunkParams::with_b(128);
//! let evens: CTree = CTree::from_sorted(&(0..10_000).step_by(2).collect::<Vec<_>>(), params);
//! let threes: CTree = CTree::from_sorted(&(0..10_000).step_by(3).collect::<Vec<_>>(), params);
//!
//! let both = evens.intersect(&threes); // multiples of 6
//! assert_eq!(both.len(), 1667);
//! // purely functional: inputs are untouched snapshots
//! assert_eq!(evens.len(), 5000);
//! ```

mod chunk;
mod setops;
mod tree;
mod wtree;

pub use chunk::{
    Chunk, ChunkCodec, DeltaCodec, GammaCodec, GammaIter, IntervalCodec, IntervalIter, PlainCodec,
    MIN_RUN,
};
pub use tree::{CTree, ChunkParams, ElementCount, HeadTail, HeadTree};
pub use wtree::{WCTree, WChunk, WElem, WHeadTail, Weight};

/// The chunk codec used when a tree leaves its codec parameter to the
/// default — selected at compile time by the `default-codec-*` cargo
/// features so the whole test suite (ctree, algorithms) can be re-run
/// with any codec as the tree's type parameter. Without a feature this
/// is [`DeltaCodec`], the paper's "Aspen (DE)" configuration.
#[cfg(feature = "default-codec-plain")]
pub type DefaultCodec = PlainCodec;
#[cfg(all(feature = "default-codec-gamma", not(feature = "default-codec-plain")))]
pub type DefaultCodec = GammaCodec;
#[cfg(all(
    feature = "default-codec-interval",
    not(any(feature = "default-codec-plain", feature = "default-codec-gamma"))
))]
pub type DefaultCodec = IntervalCodec;
#[cfg(not(any(
    feature = "default-codec-plain",
    feature = "default-codec-gamma",
    feature = "default-codec-interval"
)))]
pub type DefaultCodec = DeltaCodec;

#[cfg(test)]
mod proptests;
