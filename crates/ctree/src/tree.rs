//! The [`CTree`] structure: construction, search, traversal, validation.

use crate::chunk::{Chunk, ChunkCodec};
use crate::DefaultCodec;
use ptree::{CountAug, Entry, Measure, Tree};
use std::marker::PhantomData;

/// Seed for head selection; independent from the treap-priority seed in
/// `ptree` so the two samplings are uncorrelated (§2's hash family
/// assumption).
const HEAD_SEED: u64 = 0x0c0f_fee1_2345_6789;

/// Chunking configuration shared by every C-tree participating in a
/// binary operation.
///
/// `b` is the expected chunk size: each element is promoted to a *head*
/// independently with probability `1/b` (§3.1). The paper fixes
/// `b = 2⁸` for its main experiments (Table 5); [`ChunkParams::default`]
/// matches that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkParams {
    /// Expected chunk size (must be ≥ 1).
    pub b: u32,
    /// Seed selecting the hash function used for head promotion.
    pub seed: u64,
}

impl ChunkParams {
    /// Parameters with expected chunk size `b` and the default seed.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn with_b(b: u32) -> Self {
        assert!(b >= 1, "chunk parameter b must be >= 1");
        ChunkParams { b, seed: HEAD_SEED }
    }

    /// Whether `x` is promoted to a head under these parameters.
    ///
    /// An element chosen as head is a head in *every* C-tree containing
    /// it (with equal params) — the stability property that makes the
    /// recursive set operations line up (§3.1).
    #[inline]
    pub fn is_head(&self, x: u32) -> bool {
        parlib::hash64_with_seed(u64::from(x), self.seed).is_multiple_of(u64::from(self.b))
    }
}

impl Default for ChunkParams {
    fn default() -> Self {
        Self::with_b(128)
    }
}

/// A head element together with its tail chunk; the entry type of the
/// underlying purely-functional head tree.
#[derive(Clone, Debug)]
pub struct HeadTail<C: ChunkCodec> {
    /// The promoted element.
    pub head: u32,
    /// The non-head elements between `head` and the next head.
    pub tail: Chunk<C>,
}

impl<C: ChunkCodec> Entry for HeadTail<C> {
    type Key = u32;

    #[inline]
    fn key(&self) -> &u32 {
        &self.head
    }
}

/// Measures a head-tail pair as `1 + |tail|`, so the head tree's
/// augmented value is the total element count — giving `O(1)`
/// [`CTree::len`].
#[derive(Clone, Debug)]
pub struct ElementCount<C>(PhantomData<C>);

impl<C: ChunkCodec> Measure<HeadTail<C>> for ElementCount<C> {
    #[inline]
    fn measure(entry: &HeadTail<C>) -> u64 {
        1 + entry.tail.len() as u64
    }
}

/// The purely-functional tree over heads, augmented with element counts.
pub type HeadTree<C> = Tree<HeadTail<C>, CountAug<ElementCount<C>>>;

/// A compressed purely-functional search tree over `u32` elements
/// (§3, the paper's core contribution).
///
/// A C-tree is a balanced tree over hash-promoted *heads*, each carrying
/// a contiguous compressed *tail* chunk, plus one *prefix* chunk for the
/// elements before the first head. Relative to a plain purely-functional
/// tree this cuts the number of tree nodes by a factor of `b` and stores
/// elements contiguously, which is what makes graph compression
/// techniques applicable (difference encoding within chunks).
///
/// All operations are persistent: they return new trees and never
/// mutate, so a clone is an `O(1)` snapshot.
///
/// # Example
///
/// ```
/// use ctree::{ChunkParams, CTree};
///
/// let t: CTree = CTree::from_sorted(&[1, 5, 9, 12], ChunkParams::with_b(4));
/// let t2 = t.union(&CTree::from_sorted(&[5, 7], ChunkParams::with_b(4)));
/// assert_eq!(t2.to_vec(), vec![1, 5, 7, 9, 12]);
/// assert_eq!(t.len(), 4); // original snapshot untouched
/// ```
pub struct CTree<C: ChunkCodec = DefaultCodec> {
    pub(crate) params: ChunkParams,
    pub(crate) prefix: Chunk<C>,
    pub(crate) tree: HeadTree<C>,
}

impl<C: ChunkCodec> Clone for CTree<C> {
    #[inline]
    fn clone(&self) -> Self {
        CTree {
            params: self.params,
            prefix: self.prefix.clone(),
            tree: self.tree.clone(),
        }
    }
}

impl<C: ChunkCodec> std::fmt::Debug for CTree<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CTree")
            .field("b", &self.params.b)
            .field("elements", &self.to_vec())
            .finish()
    }
}

impl<C: ChunkCodec> PartialEq for CTree<C> {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params && self.len() == other.len() && self.to_vec() == other.to_vec()
    }
}

impl<C: ChunkCodec> Eq for CTree<C> {}

impl<C: ChunkCodec> Default for CTree<C> {
    fn default() -> Self {
        Self::new(ChunkParams::default())
    }
}

impl<C: ChunkCodec> CTree<C> {
    /// Creates an empty C-tree with the given chunking parameters.
    pub fn new(params: ChunkParams) -> Self {
        CTree {
            params,
            prefix: Chunk::empty(),
            tree: Tree::new(),
        }
    }

    pub(crate) fn assemble(params: ChunkParams, tree: HeadTree<C>, prefix: Chunk<C>) -> Self {
        CTree {
            params,
            prefix,
            tree,
        }
    }

    /// The chunking parameters this tree was built with.
    #[inline]
    pub fn params(&self) -> ChunkParams {
        self.params
    }

    /// Builds a C-tree from a strictly increasing slice.
    ///
    /// `O(n)` work after sorting; partitions the input at head
    /// positions and builds the head tree bottom-up (the paper's
    /// `Build`, §4).
    ///
    /// # Panics
    ///
    /// Debug builds assert strict monotonicity.
    pub fn from_sorted(xs: &[u32], params: ChunkParams) -> Self {
        debug_assert!(xs.windows(2).all(|w| w[0] < w[1]), "input unsorted");
        let head_idx = parlib::filter_indices(xs, |&x| params.is_head(x));
        let Some(&first_head) = head_idx.first() else {
            return CTree {
                params,
                prefix: Chunk::from_sorted(xs),
                tree: Tree::new(),
            };
        };
        let prefix = Chunk::from_sorted(&xs[..first_head]);
        let entries: Vec<HeadTail<C>> = head_idx
            .iter()
            .enumerate()
            .map(|(i, &hi)| {
                let tail_end = head_idx.get(i + 1).copied().unwrap_or(xs.len());
                HeadTail {
                    head: xs[hi],
                    tail: Chunk::from_sorted(&xs[hi + 1..tail_end]),
                }
            })
            .collect();
        CTree {
            params,
            prefix,
            tree: Tree::from_sorted(&entries),
        }
    }

    /// Builds from an arbitrary (unsorted, possibly duplicated) set of
    /// values. `O(n log n)` work from the sort.
    pub fn build(mut xs: Vec<u32>, params: ChunkParams) -> Self {
        xs.sort_unstable();
        xs.dedup();
        Self::from_sorted(&xs, params)
    }

    /// Total number of elements; `O(1)` via the count augmentation.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix.len() + self.tree.aug().value() as usize
    }

    /// Whether no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty() && self.tree.is_empty()
    }

    /// Whether the two C-trees share both their prefix storage and
    /// their head-tree root (`Arc` identity). A `true` answer proves
    /// the sets are equal without decoding a single chunk — the
    /// structural-sharing fast path version diffing relies on. `false`
    /// proves nothing: equal trees built independently share nothing.
    #[inline]
    pub fn ptr_eq(&self, other: &Self) -> bool {
        self.prefix.ptr_eq(&other.prefix) && self.tree.ptr_eq(&other.tree)
    }

    /// Membership test — the paper's `Find` (§4): a head-tree search
    /// plus one chunk scan; `O(b + log n)` expected work.
    pub fn contains(&self, x: u32) -> bool {
        if self.prefix.last().is_some_and(|l| x <= l) {
            return self.prefix.contains(x);
        }
        match self.tree.find_le(&x) {
            Some(ht) => ht.head == x || ht.tail.contains(x),
            None => false,
        }
    }

    /// Smallest element, `O(log n)`.
    pub fn first(&self) -> Option<u32> {
        self.prefix
            .first()
            .or_else(|| self.tree.first().map(|ht| ht.head))
    }

    /// Largest element, `O(log n)`.
    pub fn last(&self) -> Option<u32> {
        match self.tree.last() {
            Some(ht) => ht.tail.last().or(Some(ht.head)),
            None => self.prefix.last(),
        }
    }

    /// Smallest head in the head tree, if any. Drives the chunk routing
    /// decisions inside the set operations.
    #[inline]
    pub(crate) fn first_head(&self) -> Option<u32> {
        self.tree.first().map(|ht| ht.head)
    }

    /// Sequential in-order traversal (the paper's `Map` with a
    /// sequential driver). Streams each chunk's lazy decoder — no
    /// per-chunk allocation.
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        self.prefix.for_each(&mut f);
        self.tree.for_each_seq(&mut |ht| {
            f(ht.head);
            ht.tail.for_each(&mut f);
        });
    }

    /// Sequential in-order traversal that stops (returning `false`) the
    /// first time `f` returns `false`.
    ///
    /// Early-exit consumers (frontier checks, bounded scans) used to
    /// materialize the whole tree with [`to_vec`](Self::to_vec); this
    /// streams chunk decoders and abandons the walk mid-chunk.
    pub fn for_each_until(&self, mut f: impl FnMut(u32) -> bool) -> bool {
        if !self.prefix.for_each_until(&mut f) {
            return false;
        }
        for ht in self.tree.iter() {
            if !f(ht.head) {
                return false;
            }
            if !ht.tail.for_each_until(&mut f) {
                return false;
            }
        }
        true
    }

    /// Parallel traversal: `f` is applied to every element, chunks in
    /// parallel across tree nodes. `O(n)` work, `O(b log n)` depth
    /// w.h.p. (§4.2). Order of invocation is unspecified. Chunks are
    /// streamed, not materialized.
    pub fn par_for_each(&self, f: impl Fn(u32) + Sync) {
        self.prefix.for_each(&f);
        self.tree.par_for_each(|ht| {
            f(ht.head);
            ht.tail.for_each(&f);
        });
    }

    /// All elements in increasing order.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        self.prefix.decode_into(&mut out);
        self.tree.for_each_seq(&mut |ht| {
            out.push(ht.head);
            ht.tail.decode_into(&mut out);
        });
        out
    }

    /// Number of head (tree) nodes; `n/b` in expectation. Exposed for
    /// the space accounting in Tables 2 and 5.
    pub fn num_heads(&self) -> usize {
        self.tree.len()
    }

    /// Heap bytes used by this C-tree: tree nodes plus chunk payloads.
    ///
    /// Structural sharing is *not* deducted — this reports the size of
    /// the tree as if it were the sole owner, matching how the paper
    /// accounts for a single version.
    pub fn memory_bytes(&self) -> usize {
        let chunk_bytes =
            self.tree
                .map_reduce(|ht| ht.tail.memory_bytes() as u64, |a, b| a + b, || 0)
                as usize;
        self.prefix.memory_bytes() + chunk_bytes + self.tree.memory_bytes()
    }

    /// Validates every structural invariant; used heavily by tests.
    ///
    /// # Panics
    ///
    /// Panics on: unsorted/overlapping chunks, stale chunk headers,
    /// non-head elements in the head tree, head elements inside chunks,
    /// prefix overlapping the first head, or a stale count augmentation.
    pub fn check_invariants(&self) {
        self.tree.check_invariants();
        self.prefix.check();
        for x in self.prefix.to_vec() {
            assert!(!self.params.is_head(x), "head {x} found in prefix");
        }
        if let Some(h) = self.first_head() {
            if let Some(l) = self.prefix.last() {
                assert!(l < h, "prefix reaches past first head");
            }
        } else {
            // no heads -> no tree
            assert!(self.tree.is_empty());
        }
        let entries: Vec<HeadTail<C>> = self.tree.to_vec();
        for (i, ht) in entries.iter().enumerate() {
            assert!(
                self.params.is_head(ht.head),
                "non-head {} used as tree key",
                ht.head
            );
            ht.tail.check();
            let next = entries.get(i + 1).map(|n| n.head);
            for x in ht.tail.to_vec() {
                assert!(x > ht.head, "tail element {x} <= head {}", ht.head);
                assert!(!self.params.is_head(x), "head {x} stored in a tail");
                if let Some(nx) = next {
                    assert!(x < nx, "tail element {x} >= next head {nx}");
                }
            }
        }
    }
}

impl<C: ChunkCodec> FromIterator<u32> for CTree<C> {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Self::build(iter.into_iter().collect(), ChunkParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{DeltaCodec, PlainCodec};

    fn dt(xs: &[u32], b: u32) -> CTree<DeltaCodec> {
        CTree::build(xs.to_vec(), ChunkParams::with_b(b))
    }

    #[test]
    fn empty_tree() {
        let t: CTree = CTree::new(ChunkParams::default());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.first(), None);
        assert_eq!(t.last(), None);
        assert!(!t.contains(3));
        t.check_invariants();
    }

    #[test]
    fn build_roundtrip_various_b() {
        let xs: Vec<u32> = (0..3000).map(|i| i * 3 + 1).collect();
        for b in [1, 2, 8, 64, 256, 4096] {
            let t = dt(&xs, b);
            assert_eq!(t.to_vec(), xs, "b={b}");
            assert_eq!(t.len(), xs.len());
            t.check_invariants();
        }
    }

    #[test]
    fn b_one_promotes_everything() {
        let t = dt(&[1, 2, 3, 4, 5], 1);
        assert_eq!(t.num_heads(), 5);
        assert!(t.prefix.is_empty());
    }

    #[test]
    fn head_count_is_about_n_over_b() {
        let n = 50_000u32;
        let xs: Vec<u32> = (0..n).collect();
        let b = 64;
        let t = dt(&xs, b);
        let heads = t.num_heads() as f64;
        let expect = f64::from(n) / f64::from(b);
        assert!(
            (heads - expect).abs() < expect * 0.3,
            "heads {heads} vs expected {expect}"
        );
    }

    #[test]
    fn contains_everything_built() {
        let xs: Vec<u32> = (0..2000).map(|i| i * 7 % 16_384).collect();
        let t = dt(&xs, 32);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for &x in &sorted {
            assert!(t.contains(x), "missing {x}");
        }
        assert!(!t.contains(16_385));
    }

    #[test]
    fn first_last() {
        let t = dt(&[100, 7, 5000], 16);
        assert_eq!(t.first(), Some(7));
        assert_eq!(t.last(), Some(5000));
    }

    #[test]
    fn len_is_o1_and_correct() {
        let xs: Vec<u32> = (0..10_000).step_by(2).collect();
        let t = dt(&xs, 128);
        assert_eq!(t.len(), xs.len());
    }

    #[test]
    fn for_each_in_order() {
        let xs: Vec<u32> = (0..1000).map(|i| i * 11 % 8192).collect();
        let t = dt(&xs, 16);
        let mut seen = Vec::new();
        t.for_each(|x| seen.push(x));
        assert_eq!(seen, t.to_vec());
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn for_each_until_early_exit() {
        let xs: Vec<u32> = (0..5000).collect();
        let t = dt(&xs, 64);
        let mut seen = Vec::new();
        let finished = t.for_each_until(|x| {
            seen.push(x);
            x < 137
        });
        assert!(!finished);
        assert_eq!(seen, (0..=137).collect::<Vec<u32>>());
        let mut all = Vec::new();
        assert!(t.for_each_until(|x| {
            all.push(x);
            true
        }));
        assert_eq!(all, xs);
    }

    #[test]
    fn par_for_each_visits_all() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let xs: Vec<u32> = (1..=3000).collect();
        let t = dt(&xs, 64);
        let sum = AtomicU64::new(0);
        t.par_for_each(|x| {
            sum.fetch_add(u64::from(x), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 3000 * 3001 / 2);
    }

    #[test]
    fn memory_shrinks_with_bigger_b() {
        let xs: Vec<u32> = (0..20_000).collect();
        let small_b = CTree::<DeltaCodec>::from_sorted(&xs, ChunkParams::with_b(2));
        let big_b = CTree::<DeltaCodec>::from_sorted(&xs, ChunkParams::with_b(256));
        assert!(big_b.memory_bytes() < small_b.memory_bytes());
    }

    #[test]
    fn delta_beats_plain_on_dense_sets() {
        let xs: Vec<u32> = (0..20_000).collect();
        let plain = CTree::<PlainCodec>::from_sorted(&xs, ChunkParams::with_b(128));
        let delta = CTree::<DeltaCodec>::from_sorted(&xs, ChunkParams::with_b(128));
        assert!(delta.memory_bytes() < plain.memory_bytes() / 2);
        assert_eq!(plain.to_vec(), delta.to_vec());
    }

    #[test]
    fn from_iterator_dedups() {
        let t: CTree = vec![5u32, 1, 5, 3].into_iter().collect();
        assert_eq!(t.to_vec(), vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "b must be >= 1")]
    fn zero_b_rejected() {
        let _ = ChunkParams::with_b(0);
    }
}
