//! Weighted C-trees: the paper's stated future-work extension.
//!
//! §6: *"Aspen currently does not support weighted edges, but we plan
//! to add this functionality using a similar compression scheme for
//! weights as used in Ligra+ in the future."* This module implements
//! that plan: a C-tree over `(id, weight)` pairs ordered by id, whose
//! chunks store byte-coded id *differences* interleaved with varint
//! weights — the Ligra+ weight layout.
//!
//! The structure mirrors [`CTree`](crate::CTree): hash-promoted heads
//! (on ids, so an id is a head in every weighted C-tree containing it),
//! a prefix chunk, and tails hanging off a purely-functional head tree.
//! `union` takes a weight combiner for ids present on both sides;
//! `difference` removes by id. These two are what the weighted graph
//! layer needs for `InsertEdges`/`DeleteEdges`.

use crate::tree::ChunkParams;
use ptree::{CountAug, Entry, Measure, Tree};
use std::sync::Arc;

/// Edge weight type: 32-bit, as in Ligra+'s integer-weight mode.
pub type Weight = u32;

/// A weighted element: a vertex id and its weight.
pub type WElem = (u32, Weight);

/// A compressed chunk of `(id, weight)` pairs sorted by id.
///
/// Ids are difference-encoded; each gap is followed by the varint
/// weight. Headers cache `first`/`last` ids and the length for the
/// `O(1)` boundary reads the split routing needs.
#[derive(Clone)]
pub struct WChunk {
    len: u32,
    first: u32,
    last: u32,
    bytes: Arc<[u8]>,
}

impl std::fmt::Debug for WChunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.to_vec()).finish()
    }
}

impl Default for WChunk {
    fn default() -> Self {
        Self::empty()
    }
}

impl WChunk {
    /// The empty chunk.
    pub fn empty() -> Self {
        WChunk {
            len: 0,
            first: 0,
            last: 0,
            bytes: Arc::from([] as [u8; 0]),
        }
    }

    /// Builds from pairs strictly increasing in id.
    ///
    /// # Panics
    ///
    /// Debug builds assert id monotonicity.
    pub fn from_sorted(pairs: &[WElem]) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        let Some((&(first, _), &(last, _))) = pairs.first().zip(pairs.last()) else {
            return Self::empty();
        };
        let mut bytes = Vec::with_capacity(pairs.len() * 3);
        let mut prev = None;
        for &(id, w) in pairs {
            let gap = match prev {
                None => id,
                Some(p) => id - p,
            };
            encoder::encode_u32(gap, &mut bytes);
            encoder::encode_u32(w, &mut bytes);
            prev = Some(id);
        }
        WChunk {
            len: pairs.len() as u32,
            first,
            last,
            bytes: bytes.into(),
        }
    }

    /// Number of pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the chunk is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest id (`O(1)`).
    #[inline]
    pub fn first_id(&self) -> Option<u32> {
        (self.len > 0).then_some(self.first)
    }

    /// Largest id (`O(1)`).
    #[inline]
    pub fn last_id(&self) -> Option<u32> {
        (self.len > 0).then_some(self.last)
    }

    /// Lazily decodes the pairs in id order without allocating.
    pub fn iter(&self) -> WChunkIter<'_> {
        WChunkIter {
            bytes: &self.bytes,
            pos: 0,
            remaining: self.len(),
            prev: None,
        }
    }

    /// Decodes all pairs.
    pub fn to_vec(&self) -> Vec<WElem> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.iter());
        out
    }

    /// Applies `f` to every `(id, weight)` pair in id order, streaming
    /// the decode walk.
    pub fn for_each(&self, mut f: impl FnMut(u32, Weight)) {
        for (id, w) in self.iter() {
            f(id, w);
        }
    }

    /// Weight of `id`, if present. `O(chunk size)`.
    ///
    /// A single streaming decode walk with early exit at the first id
    /// `≥ id` — the old implementation materialized the chunk twice.
    pub fn get(&self, id: u32) -> Option<Weight> {
        if self.len == 0 || id < self.first || id > self.last {
            return None;
        }
        for (i, w) in self.iter() {
            if i >= id {
                return (i == id).then_some(w);
            }
        }
        None
    }

    /// Splits into `(pairs with id < k, pair at k, pairs with id > k)`.
    pub fn split3(&self, k: u32) -> (WChunk, Option<WElem>, WChunk) {
        if self.is_empty() || k < self.first {
            return (Self::empty(), None, self.clone());
        }
        if k > self.last {
            return (self.clone(), None, Self::empty());
        }
        let xs = self.to_vec();
        match xs.binary_search_by_key(&k, |&(i, _)| i) {
            Ok(i) => (
                Self::from_sorted(&xs[..i]),
                Some(xs[i]),
                Self::from_sorted(&xs[i + 1..]),
            ),
            Err(i) => (
                Self::from_sorted(&xs[..i]),
                None,
                Self::from_sorted(&xs[i..]),
            ),
        }
    }

    /// Splits by an optional exclusive upper bound (`None` = +∞).
    pub fn split_lt(&self, bound: Option<u32>) -> (WChunk, WChunk) {
        match bound {
            None => (self.clone(), Self::empty()),
            Some(b) => {
                let (lo, mid, hi) = self.split3(b);
                debug_assert!(mid.is_none(), "head id found inside a weighted chunk");
                (lo, hi)
            }
        }
    }

    /// Sorted merge; ids on both sides combine weights with `f`.
    pub fn union(&self, other: &WChunk, f: impl Fn(Weight, Weight) -> Weight) -> WChunk {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let (a, b) = (self.to_vec(), other.to_vec());
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a[i].0, f(a[i].1, b[j].1)));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Self::from_sorted(&out)
    }

    /// Concatenation: all ids of `self` must precede all ids of
    /// `other`.
    pub fn concat(&self, other: &WChunk) -> WChunk {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        debug_assert!(self.last < other.first, "weighted concat overlap");
        let mut xs = self.to_vec();
        xs.extend(other.to_vec());
        Self::from_sorted(&xs)
    }

    /// Pairs of `self` whose ids are absent from `ids`; streams both
    /// decode walks.
    pub fn difference_ids(&self, ids: &crate::chunk::Chunk<crate::chunk::DeltaCodec>) -> WChunk {
        if self.is_empty() || ids.is_empty() {
            return self.clone();
        }
        let mut remove = ids.iter().peekable();
        let mut kept: Vec<WElem> = Vec::with_capacity(self.len());
        for (id, w) in self.iter() {
            while remove.peek().is_some_and(|&r| r < id) {
                remove.next();
            }
            if remove.peek() != Some(&id) {
                kept.push((id, w));
            }
        }
        Self::from_sorted(&kept)
    }

    /// Heap bytes of the payload.
    pub fn memory_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Header-vs-payload consistency check for tests.
    ///
    /// # Panics
    ///
    /// Panics on stale headers or unsorted payloads.
    pub fn check(&self) {
        let xs = self.to_vec();
        assert_eq!(xs.len(), self.len());
        assert!(xs.windows(2).all(|w| w[0].0 < w[1].0));
        if let (Some(f), Some(l)) = (xs.first(), xs.last()) {
            assert_eq!(f.0, self.first);
            assert_eq!(l.0, self.last);
        }
    }
}

/// Streaming decoder over a [`WChunk`]'s interleaved gap+weight codes.
#[derive(Clone, Debug)]
pub struct WChunkIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: Option<u32>,
}

impl Iterator for WChunkIter<'_> {
    type Item = WElem;

    #[inline]
    fn next(&mut self) -> Option<WElem> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (gap, used) = encoder::decode_u32(&self.bytes[self.pos..]);
        self.pos += used;
        let (w, used) = encoder::decode_u32(&self.bytes[self.pos..]);
        self.pos += used;
        let id = match self.prev {
            None => gap,
            Some(p) => p + gap,
        };
        self.prev = Some(id);
        Some((id, w))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for WChunkIter<'_> {}

/// A head entry in the weighted C-tree.
#[derive(Clone, Debug)]
pub struct WHeadTail {
    /// The promoted id.
    pub head: u32,
    /// The head's own weight.
    pub weight: Weight,
    /// Pairs between this head and the next.
    pub tail: WChunk,
}

impl Entry for WHeadTail {
    type Key = u32;

    #[inline]
    fn key(&self) -> &u32 {
        &self.head
    }
}

/// Counts `1 + |tail|` per head for `O(1)` length.
#[derive(Clone, Debug)]
pub struct WCount;

impl Measure<WHeadTail> for WCount {
    #[inline]
    fn measure(e: &WHeadTail) -> u64 {
        1 + e.tail.len() as u64
    }
}

type WHeadTree = Tree<WHeadTail, CountAug<WCount>>;

/// A weighted C-tree: a sorted map from `u32` ids to [`Weight`]s with
/// the C-tree layout and compression.
///
/// # Example
///
/// ```
/// use ctree::{ChunkParams, WCTree};
///
/// let a = WCTree::from_sorted(&[(1, 10), (5, 50)], ChunkParams::with_b(4));
/// let b = WCTree::from_sorted(&[(5, 7), (9, 90)], ChunkParams::with_b(4));
/// let u = a.union(&b, |x, y| x + y);
/// assert_eq!(u.get(5), Some(57));
/// assert_eq!(u.len(), 3);
/// ```
#[derive(Clone)]
pub struct WCTree {
    params: ChunkParams,
    prefix: WChunk,
    tree: WHeadTree,
}

impl std::fmt::Debug for WCTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WCTree")
            .field("b", &self.params.b)
            .field("pairs", &self.to_vec())
            .finish()
    }
}

impl WCTree {
    /// Empty weighted C-tree.
    pub fn new(params: ChunkParams) -> Self {
        WCTree {
            params,
            prefix: WChunk::empty(),
            tree: Tree::new(),
        }
    }

    fn assemble(params: ChunkParams, tree: WHeadTree, prefix: WChunk) -> Self {
        WCTree {
            params,
            prefix,
            tree,
        }
    }

    /// The chunking parameters.
    #[inline]
    pub fn params(&self) -> ChunkParams {
        self.params
    }

    /// Builds from pairs strictly increasing in id.
    pub fn from_sorted(pairs: &[WElem], params: ChunkParams) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        let head_idx: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(id, _))| params.is_head(id))
            .map(|(i, _)| i)
            .collect();
        let Some(&first_head) = head_idx.first() else {
            return WCTree::assemble(params, Tree::new(), WChunk::from_sorted(pairs));
        };
        let prefix = WChunk::from_sorted(&pairs[..first_head]);
        let entries: Vec<WHeadTail> = head_idx
            .iter()
            .enumerate()
            .map(|(i, &hi)| {
                let tail_end = head_idx.get(i + 1).copied().unwrap_or(pairs.len());
                WHeadTail {
                    head: pairs[hi].0,
                    weight: pairs[hi].1,
                    tail: WChunk::from_sorted(&pairs[hi + 1..tail_end]),
                }
            })
            .collect();
        WCTree::assemble(params, Tree::from_sorted(&entries), prefix)
    }

    /// Builds from arbitrary pairs; duplicate ids combine weights with
    /// `f` (later occurrences are `f`'s second argument).
    pub fn build(
        mut pairs: Vec<WElem>,
        params: ChunkParams,
        f: impl Fn(Weight, Weight) -> Weight,
    ) -> Self {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut merged: Vec<WElem> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match merged.last_mut() {
                Some(last) if last.0 == id => last.1 = f(last.1, w),
                _ => merged.push((id, w)),
            }
        }
        Self::from_sorted(&merged, params)
    }

    /// Total number of pairs; `O(1)`.
    pub fn len(&self) -> usize {
        self.prefix.len() + self.tree.aug().value() as usize
    }

    /// Whether no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty() && self.tree.is_empty()
    }

    /// The weight of `id`, if present.
    pub fn get(&self, id: u32) -> Option<Weight> {
        if self.prefix.last_id().is_some_and(|l| id <= l) {
            return self.prefix.get(id);
        }
        let ht = self.tree.find_le(&id)?;
        if ht.head == id {
            Some(ht.weight)
        } else {
            ht.tail.get(id)
        }
    }

    /// All pairs in id order.
    pub fn to_vec(&self) -> Vec<WElem> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|id, w| out.push((id, w)));
        out
    }

    /// Applies `f` to every `(id, weight)` pair in id order, streaming
    /// each chunk's decode walk.
    pub fn for_each(&self, mut f: impl FnMut(u32, Weight)) {
        self.prefix.for_each(&mut f);
        self.tree.for_each_seq(&mut |ht| {
            f(ht.head, ht.weight);
            ht.tail.for_each(&mut f);
        });
    }

    /// Splits at `k` into `(pairs < k, pair at k, pairs > k)`.
    pub fn split(&self, k: u32) -> (WCTree, Option<WElem>, WCTree) {
        let p = self.params;
        if let Some(last) = self.prefix.last_id() {
            if k <= last {
                let (pl, found, pr) = self.prefix.split3(k);
                return (
                    WCTree::assemble(p, Tree::new(), pl),
                    found,
                    WCTree::assemble(p, self.tree.clone(), pr),
                );
            }
        }
        let (lt, found, right) = split_wtree(p, &self.tree, k);
        (WCTree::assemble(p, lt, self.prefix.clone()), found, right)
    }

    /// Union with `f` combining weights of shared ids
    /// (`f(self_weight, other_weight)`).
    ///
    /// # Panics
    ///
    /// Panics on mismatched [`ChunkParams`].
    pub fn union(
        &self,
        other: &WCTree,
        f: impl Fn(Weight, Weight) -> Weight + Copy + Sync,
    ) -> WCTree {
        assert_eq!(self.params, other.params, "weighted union params mismatch");
        wunion(self, other, f)
    }

    /// Removes all pairs whose id appears in `ids`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched [`ChunkParams`].
    pub fn difference(&self, ids: &crate::CTree<crate::DeltaCodec>) -> WCTree {
        assert_eq!(
            self.params,
            ids.params(),
            "weighted difference params mismatch"
        );
        wdifference(self, ids)
    }

    /// Inserts pairs, combining duplicate ids with `f`.
    pub fn multi_insert(
        &self,
        pairs: Vec<WElem>,
        f: impl Fn(Weight, Weight) -> Weight + Copy + Sync,
    ) -> WCTree {
        if pairs.is_empty() {
            return self.clone();
        }
        self.union(&WCTree::build(pairs, self.params, f), f)
    }

    /// Deletes ids.
    pub fn multi_delete(&self, ids: Vec<u32>) -> WCTree {
        if ids.is_empty() {
            return self.clone();
        }
        self.difference(&crate::CTree::build(ids, self.params))
    }

    /// Heap bytes: head-tree nodes plus all chunk payloads.
    pub fn memory_bytes(&self) -> usize {
        let chunks = self
            .tree
            .map_reduce(|ht| ht.tail.memory_bytes() as u64, |a, b| a + b, || 0)
            as usize;
        self.prefix.memory_bytes() + chunks + self.tree.memory_bytes()
    }

    /// Validates all structural invariants (tests).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violation.
    pub fn check_invariants(&self) {
        self.tree.check_invariants();
        self.prefix.check();
        for (id, _) in self.prefix.to_vec() {
            assert!(!self.params.is_head(id), "head {id} in weighted prefix");
        }
        let entries: Vec<WHeadTail> = self.tree.to_vec();
        if let Some(first) = entries.first() {
            if let Some(l) = self.prefix.last_id() {
                assert!(l < first.head, "weighted prefix reaches past first head");
            }
        }
        for (i, ht) in entries.iter().enumerate() {
            assert!(self.params.is_head(ht.head), "non-head key {}", ht.head);
            ht.tail.check();
            let next = entries.get(i + 1).map(|n| n.head);
            for (id, _) in ht.tail.to_vec() {
                assert!(id > ht.head);
                assert!(!self.params.is_head(id), "head {id} inside weighted tail");
                if let Some(nx) = next {
                    assert!(id < nx);
                }
            }
        }
    }

    fn first_head(&self) -> Option<u32> {
        self.tree.first().map(|ht| ht.head)
    }
}

fn split_wtree(p: ChunkParams, tree: &WHeadTree, k: u32) -> (WHeadTree, Option<WElem>, WCTree) {
    let Some((l, ht, r)) = tree.expose() else {
        return (Tree::new(), None, WCTree::new(p));
    };
    let (head, weight, tail) = (ht.head, ht.weight, ht.tail.clone());
    match k.cmp(&head) {
        std::cmp::Ordering::Equal => (l, Some((head, weight)), WCTree::assemble(p, r, tail)),
        std::cmp::Ordering::Less => {
            let (ll, found, lr) = split_wtree(p, &l, k);
            let right = Tree::join(lr.tree, WHeadTail { head, weight, tail }, r);
            (ll, found, WCTree::assemble(p, right, lr.prefix))
        }
        std::cmp::Ordering::Greater => {
            if tail.last_id().is_some_and(|last| k <= last) {
                let (vl, found, vr) = tail.split3(k);
                let left = Tree::join(
                    l,
                    WHeadTail {
                        head,
                        weight,
                        tail: vl,
                    },
                    Tree::new(),
                );
                (left, found, WCTree::assemble(p, r, vr))
            } else {
                let (rl, found, right) = split_wtree(p, &r, k);
                let left = Tree::join(l, WHeadTail { head, weight, tail }, rl);
                (left, found, right)
            }
        }
    }
}

fn wjoin2(left: WCTree, right: WCTree) -> WCTree {
    let p = left.params;
    match left.tree.split_last() {
        None => WCTree::assemble(p, right.tree, left.prefix.concat(&right.prefix)),
        Some((rest, last)) => {
            let tail = last.tail.concat(&right.prefix);
            let tree = Tree::join(
                rest,
                WHeadTail {
                    head: last.head,
                    weight: last.weight,
                    tail,
                },
                right.tree,
            );
            WCTree::assemble(p, tree, left.prefix)
        }
    }
}

fn wunion(a: &WCTree, b: &WCTree, f: impl Fn(Weight, Weight) -> Weight + Copy + Sync) -> WCTree {
    let p = a.params;
    if a.tree.is_empty() {
        return wunion_bc(&a.prefix, b, |b_w, a_w| f(a_w, b_w));
    }
    if b.tree.is_empty() {
        return wunion_bc(&b.prefix, a, f);
    }
    let (l2, ht2, r2) = b.tree.expose().expect("b.tree nonempty");
    let (k2, w2, v2) = (ht2.head, ht2.weight, ht2.tail.clone());
    let (b1, found, bright) = a.split(k2);
    let (bt2, bp2) = (bright.tree, bright.prefix);
    let m1 = bt2.first().map(|ht| ht.head);
    let m2 = r2.first().map(|ht| ht.head);
    let (vl, vr) = v2.split_lt(m1);
    let (pl, pr) = bp2.split_lt(m2);
    // Shared ids inside the straddling chunks combine as (a, b).
    let new_tail = pl.union(&vl, f);
    let weight = match found {
        Some((_, aw)) => f(aw, w2),
        None => w2,
    };
    let cl = wunion(&b1, &WCTree::assemble(p, l2, b.prefix.clone()), f);
    let cr = wunion(
        &WCTree::assemble(p, bt2, pr),
        &WCTree::assemble(p, r2, vr),
        f,
    );
    let tail = new_tail.concat(&cr.prefix);
    let tree = Tree::join(
        cl.tree,
        WHeadTail {
            head: k2,
            weight,
            tail,
        },
        cr.tree,
    );
    WCTree::assemble(p, tree, cl.prefix)
}

/// Merges a prefix-only weighted C-tree into `c`; `f(c_weight,
/// prefix_weight)` combines shared ids.
fn wunion_bc(
    p1: &WChunk,
    c: &WCTree,
    f: impl Fn(Weight, Weight) -> Weight + Copy + Sync,
) -> WCTree {
    let p = c.params;
    if p1.is_empty() {
        return c.clone();
    }
    let Some(first_head) = c.first_head() else {
        return WCTree::assemble(p, Tree::new(), c.prefix.union(p1, f));
    };
    let (pl, pr) = p1.split_lt(Some(first_head));
    let new_prefix = c.prefix.union(&pl, f);
    if pr.is_empty() {
        return WCTree::assemble(p, c.tree.clone(), new_prefix);
    }
    // Group the leftover pairs by predecessor head and MultiInsert.
    let mut groups: Vec<WHeadTail> = Vec::new();
    let mut run: Vec<WElem> = Vec::new();
    let mut cur: Option<u32> = None;
    for (id, w) in pr.iter() {
        let h = c
            .tree
            .find_le(&id)
            .expect("pair below all heads in wunion_bc")
            .head;
        if Some(h) != cur {
            if let Some(head) = cur {
                groups.push(WHeadTail {
                    head,
                    weight: 0,
                    tail: WChunk::from_sorted(&run),
                });
                run.clear();
            }
            cur = Some(h);
        }
        run.push((id, w));
    }
    if let Some(head) = cur {
        groups.push(WHeadTail {
            head,
            weight: 0,
            tail: WChunk::from_sorted(&run),
        });
    }
    let tree = c.tree.multi_insert(groups, |old, new| WHeadTail {
        head: old.head,
        weight: old.weight,
        tail: old.tail.union(&new.tail, f),
    });
    WCTree::assemble(p, tree, new_prefix)
}

fn wdifference(a: &WCTree, ids: &crate::CTree<crate::DeltaCodec>) -> WCTree {
    // Head stability: an id is a head in the weighted tree iff it is a
    // head in the id C-tree, so the same recursive decomposition
    // applies. For simplicity and because deletions carry no weights,
    // we route on the id tree's structure via its sorted id runs.
    let p = a.params;
    if a.is_empty() || ids.is_empty() {
        return a.clone();
    }
    // Expose the id-tree through its split interface indirectly: take
    // the ids in sorted order and split them into head ids (which must
    // be deleted from the head tree) and non-head ids (deleted from
    // chunks). Work is O(|ids| log n + moved chunks), the MultiDelete
    // bound with b-factor constants.
    let all_ids = ids.to_vec();
    let (head_ids, chunk_ids): (Vec<u32>, Vec<u32>) =
        all_ids.into_iter().partition(|&id| p.is_head(id));

    // 1. Remove non-head ids from prefix and tails.
    let remove_chunk = crate::Chunk::<crate::DeltaCodec>::from_sorted(&chunk_ids);
    let mut out = WCTree::assemble(p, a.tree.clone(), a.prefix.difference_ids(&remove_chunk));
    if !chunk_ids.is_empty() {
        if let Some(first_head) = out.first_head() {
            let (_, beyond) = remove_chunk.split_lt(Some(first_head));
            if !beyond.is_empty() {
                let mut groups: Vec<WHeadTail> = Vec::new();
                let mut run: Vec<u32> = Vec::new();
                let mut cur: Option<u32> = None;
                let flush = |head: Option<u32>, run: &mut Vec<u32>, groups: &mut Vec<WHeadTail>| {
                    if let Some(head) = head {
                        groups.push(WHeadTail {
                            head,
                            weight: 0,
                            tail: wchunk_of_ids(&crate::Chunk::from_sorted(run)),
                        });
                        run.clear();
                    }
                };
                for id in beyond.iter() {
                    let h = out.tree.find_le(&id).expect("id beyond first head").head;
                    if Some(h) != cur {
                        flush(cur, &mut run, &mut groups);
                        cur = Some(h);
                    }
                    run.push(id);
                }
                flush(cur, &mut run, &mut groups);
                let tree = out.tree.multi_insert(groups, |old, new| WHeadTail {
                    head: old.head,
                    weight: old.weight,
                    tail: old.tail.difference_ids(&id_chunk_of(&new.tail)),
                });
                out = WCTree::assemble(p, tree, out.prefix);
            }
        }
    }

    // 2. Remove head ids: split each out of the tree; its tail merges
    //    back via join2 (ids deleted one head at a time; head deletions
    //    are a 1/b fraction of the batch in expectation).
    for hid in head_ids {
        let (l, _, r) = out.split(hid);
        out = wjoin2(l, r);
    }
    out
}

/// Lifts an id chunk into a weighted chunk with zero weights (carrier
/// for deletion batches inside the head tree's MultiInsert).
fn wchunk_of_ids(ids: &crate::Chunk<crate::DeltaCodec>) -> WChunk {
    let pairs: Vec<WElem> = ids.iter().map(|id| (id, 0)).collect();
    WChunk::from_sorted(&pairs)
}

/// Extracts the ids of a weighted chunk.
fn id_chunk_of(w: &WChunk) -> crate::Chunk<crate::DeltaCodec> {
    let ids: Vec<u32> = w.iter().map(|(id, _)| id).collect();
    crate::Chunk::from_sorted(&ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn wt(pairs: &[(u32, u32)], b: u32) -> WCTree {
        WCTree::build(pairs.to_vec(), ChunkParams::with_b(b), |_, new| new)
    }

    #[test]
    fn wchunk_roundtrip() {
        let pairs: Vec<WElem> = (0..100).map(|i| (i * 3, i * 7 + 1)).collect();
        let c = WChunk::from_sorted(&pairs);
        assert_eq!(c.to_vec(), pairs);
        assert_eq!(c.first_id(), Some(0));
        assert_eq!(c.last_id(), Some(297));
        c.check();
    }

    #[test]
    fn wchunk_union_combines() {
        let a = WChunk::from_sorted(&[(1, 10), (3, 30)]);
        let b = WChunk::from_sorted(&[(2, 20), (3, 5)]);
        let u = a.union(&b, |x, y| x + y);
        assert_eq!(u.to_vec(), vec![(1, 10), (2, 20), (3, 35)]);
    }

    #[test]
    fn build_find_roundtrip_various_b() {
        let pairs: Vec<WElem> = (0..800).map(|i| (i * 2, i + 1)).collect();
        for b in [1u32, 4, 64, 1 << 16] {
            let t = WCTree::from_sorted(&pairs, ChunkParams::with_b(b));
            assert_eq!(t.to_vec(), pairs, "b={b}");
            assert_eq!(t.len(), pairs.len());
            assert_eq!(t.get(10), Some(6));
            assert_eq!(t.get(11), None);
            t.check_invariants();
        }
    }

    #[test]
    fn union_matches_map_oracle() {
        for b in [2u32, 16, 256] {
            let xs: Vec<WElem> = (0..500).step_by(2).map(|i| (i, i + 1)).collect();
            let ys: Vec<WElem> = (0..500).step_by(3).map(|i| (i, 1000 + i)).collect();
            let u = wt(&xs, b).union(&wt(&ys, b), |a, c| a + c);
            let mut oracle: BTreeMap<u32, u32> = xs.iter().copied().collect();
            for &(id, w) in &ys {
                oracle.entry(id).and_modify(|cur| *cur += w).or_insert(w);
            }
            assert_eq!(u.to_vec(), oracle.into_iter().collect::<Vec<_>>(), "b={b}");
            u.check_invariants();
        }
    }

    #[test]
    fn difference_removes_heads_and_nonheads() {
        for b in [2u32, 16, 256] {
            let p = ChunkParams::with_b(b);
            let pairs: Vec<WElem> = (0..600).map(|i| (i, i * 2)).collect();
            let t = WCTree::from_sorted(&pairs, p);
            let kill: Vec<u32> = (0..600).step_by(5).collect();
            let d = t.difference(&crate::CTree::build(kill.clone(), p));
            let ks: std::collections::BTreeSet<u32> = kill.into_iter().collect();
            let expect: Vec<WElem> = pairs
                .iter()
                .copied()
                .filter(|(id, _)| !ks.contains(id))
                .collect();
            assert_eq!(d.to_vec(), expect, "b={b}");
            d.check_invariants();
        }
    }

    #[test]
    fn multi_insert_then_delete_roundtrip() {
        let p = ChunkParams::with_b(8);
        let t = WCTree::from_sorted(&[(1, 1), (5, 5), (9, 9)], p);
        let t2 = t.multi_insert(vec![(3, 3), (5, 50)], |old, new| old + new);
        assert_eq!(t2.get(5), Some(55));
        assert_eq!(t2.get(3), Some(3));
        let t3 = t2.multi_delete(vec![3, 5]);
        assert_eq!(t3.to_vec(), vec![(1, 1), (9, 9)]);
        t3.check_invariants();
    }

    #[test]
    fn split_partitions_pairs() {
        let pairs: Vec<WElem> = (0..200).map(|i| (i, i)).collect();
        let t = WCTree::from_sorted(&pairs, ChunkParams::with_b(8));
        let (lo, found, hi) = t.split(100);
        assert_eq!(found, Some((100, 100)));
        assert_eq!(lo.len(), 100);
        assert_eq!(hi.len(), 99);
        lo.check_invariants();
        hi.check_invariants();
    }

    #[test]
    fn persistence_of_weighted_updates() {
        let t = wt(&[(1, 1), (2, 2)], 4);
        let snapshot = t.clone();
        let _t2 = t.multi_insert(vec![(3, 3)], |_, n| n);
        assert_eq!(snapshot.to_vec(), vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn compression_is_compact_for_small_weights() {
        let pairs: Vec<WElem> = (0..10_000).map(|i| (i, 1)).collect();
        let t = WCTree::from_sorted(&pairs, ChunkParams::with_b(256));
        // ~1 byte gap + 1 byte weight per pair, plus head nodes.
        assert!(
            t.memory_bytes() < pairs.len() * 4,
            "memory {} too large",
            t.memory_bytes()
        );
    }
}
