//! Property tests: every C-tree operation is checked against a sorted
//! `Vec`/`BTreeSet` oracle over random element sets **and random chunk
//! parameters**, with the full structural validator run on every
//! result. Randomising `b` matters: `b = 1` degenerates to a plain
//! tree, huge `b` to a single prefix chunk, and the interesting routing
//! logic lives in between.

use crate::{
    CTree, Chunk, ChunkCodec, ChunkParams, DeltaCodec, GammaCodec, IntervalCodec, PlainCodec,
    WCTree,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn elems() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..2_000, 0..400).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn bs() -> impl Strategy<Value = u32> {
    prop_oneof![Just(1u32), 2u32..10, 10u32..300, Just(1u32 << 16)]
}

/// Element sets exercising the codec edge cases: full-range values
/// (max-gap `u32::MAX`), dense consecutive runs (intervalization), and
/// ordinary sparse sets.
fn codec_elems() -> impl Strategy<Value = Vec<u32>> {
    let sparse = proptest::collection::vec(0u32..=u32::MAX, 0..200);
    let runs = proptest::collection::vec(0u32..50_000, 1..8).prop_map(|starts| {
        starts
            .into_iter()
            .flat_map(|s| s..s.saturating_add(40))
            .collect::<Vec<u32>>()
    });
    let extremes = Just(vec![0u32, 1, 2, 3, u32::MAX - 1, u32::MAX]);
    prop_oneof![sparse, runs, extremes].prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// Checks one codec against the `PlainCodec` oracle on
/// encode/decode/search/iter/storage_bytes.
fn assert_codec_matches_oracle<C: ChunkCodec>(xs: &[u32], probes: &[u32]) {
    let chunk = Chunk::<C>::from_sorted(xs);
    let oracle = Chunk::<PlainCodec>::from_sorted(xs);
    // decode
    assert_eq!(chunk.to_vec(), oracle.to_vec(), "{} decode", C::name());
    // iter agrees with decode and with the oracle's iterator
    assert!(chunk.iter().eq(oracle.iter()), "{} iter", C::name());
    // search
    for &q in probes {
        assert_eq!(
            C::search(
                &C::encode(xs),
                xs.len(),
                xs.first().copied().unwrap_or(0),
                q
            ),
            xs.binary_search(&q),
            "{} search({q})",
            C::name()
        );
        assert_eq!(chunk.contains(q), xs.binary_search(&q).is_ok());
    }
    // storage accounting is sane
    let _ = chunk.memory_bytes();
    chunk.check();
}

fn assert_all_codecs_match(xs: &[u32], probes: &[u32]) {
    assert_codec_matches_oracle::<PlainCodec>(xs, probes);
    assert_codec_matches_oracle::<DeltaCodec>(xs, probes);
    assert_codec_matches_oracle::<GammaCodec>(xs, probes);
    assert_codec_matches_oracle::<IntervalCodec>(xs, probes);
}

#[test]
fn codec_equivalence_adversarial_cases() {
    let cases: Vec<Vec<u32>> = vec![
        vec![],                                 // empty
        vec![0],                                // singleton at the origin
        vec![u32::MAX],                         // singleton at max (gap 2^32)
        (0..300).collect(),                     // all-consecutive
        vec![0, u32::MAX],                      // max internal gap
        (u32::MAX - 20..=u32::MAX).collect(),   // consecutive run at the top
        vec![7, 8, 9, 10, 100, 101, 102, 1000], // run + stragglers
    ];
    for xs in &cases {
        let probes: Vec<u32> = xs
            .iter()
            .flat_map(|&x| [x, x.wrapping_add(1), x.wrapping_sub(1)])
            .chain([0, 1, u32::MAX])
            .collect();
        assert_all_codecs_match(xs, &probes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn build_roundtrip(xs in elems(), b in bs()) {
        let t: CTree<DeltaCodec> = CTree::from_sorted(&xs, ChunkParams::with_b(b));
        prop_assert_eq!(t.to_vec(), xs.clone());
        prop_assert_eq!(t.len(), xs.len());
        t.check_invariants();
    }

    #[test]
    fn contains_matches_set(xs in elems(), b in bs(), probe in proptest::collection::vec(0u32..2_000, 20)) {
        let t: CTree<DeltaCodec> = CTree::from_sorted(&xs, ChunkParams::with_b(b));
        let s: BTreeSet<u32> = xs.iter().copied().collect();
        for q in probe {
            prop_assert_eq!(t.contains(q), s.contains(&q));
        }
    }

    #[test]
    fn split_partitions(xs in elems(), b in bs(), k in 0u32..2_000) {
        let t: CTree<DeltaCodec> = CTree::from_sorted(&xs, ChunkParams::with_b(b));
        let (lo, found, hi) = t.split(k);
        prop_assert_eq!(lo.to_vec(), xs.iter().copied().filter(|&x| x < k).collect::<Vec<_>>());
        prop_assert_eq!(hi.to_vec(), xs.iter().copied().filter(|&x| x > k).collect::<Vec<_>>());
        prop_assert_eq!(found, xs.binary_search(&k).is_ok());
        lo.check_invariants();
        hi.check_invariants();
    }

    #[test]
    fn union_matches_oracle(xs in elems(), ys in elems(), b in bs()) {
        let p = ChunkParams::with_b(b);
        let u = CTree::<DeltaCodec>::from_sorted(&xs, p).union(&CTree::from_sorted(&ys, p));
        let oracle: Vec<u32> = xs.iter().chain(ys.iter()).copied().collect::<BTreeSet<_>>().into_iter().collect();
        prop_assert_eq!(u.to_vec(), oracle);
        u.check_invariants();
    }

    #[test]
    fn difference_matches_oracle(xs in elems(), ys in elems(), b in bs()) {
        let p = ChunkParams::with_b(b);
        let d = CTree::<DeltaCodec>::from_sorted(&xs, p).difference(&CTree::from_sorted(&ys, p));
        let sy: BTreeSet<u32> = ys.iter().copied().collect();
        let oracle: Vec<u32> = xs.iter().copied().filter(|x| !sy.contains(x)).collect();
        prop_assert_eq!(d.to_vec(), oracle);
        d.check_invariants();
    }

    #[test]
    fn intersect_matches_oracle(xs in elems(), ys in elems(), b in bs()) {
        let p = ChunkParams::with_b(b);
        let i = CTree::<DeltaCodec>::from_sorted(&xs, p).intersect(&CTree::from_sorted(&ys, p));
        let sy: BTreeSet<u32> = ys.iter().copied().collect();
        let oracle: Vec<u32> = xs.iter().copied().filter(|x| sy.contains(x)).collect();
        prop_assert_eq!(i.to_vec(), oracle);
        i.check_invariants();
    }

    #[test]
    fn plain_codec_agrees_with_delta(xs in elems(), ys in elems(), b in bs()) {
        let p = ChunkParams::with_b(b);
        let du = CTree::<DeltaCodec>::from_sorted(&xs, p).union(&CTree::from_sorted(&ys, p));
        let pu = CTree::<PlainCodec>::from_sorted(&xs, p).union(&CTree::from_sorted(&ys, p));
        prop_assert_eq!(du.to_vec(), pu.to_vec());
    }

    #[test]
    fn codec_equivalence_random_sets(xs in codec_elems(), probes in proptest::collection::vec(0u32..=u32::MAX, 12)) {
        let mut probes = probes;
        // Half the probes should hit: mix in real elements.
        probes.extend(xs.iter().step_by(17).copied());
        assert_all_codecs_match(&xs, &probes);
    }

    #[test]
    fn gamma_and_interval_trees_agree_on_setops(xs in elems(), ys in elems(), b in bs()) {
        let p = ChunkParams::with_b(b);
        let du = CTree::<DeltaCodec>::from_sorted(&xs, p).union(&CTree::from_sorted(&ys, p));
        let gu = CTree::<GammaCodec>::from_sorted(&xs, p).union(&CTree::from_sorted(&ys, p));
        let iu = CTree::<IntervalCodec>::from_sorted(&xs, p).union(&CTree::from_sorted(&ys, p));
        prop_assert_eq!(du.to_vec(), gu.to_vec());
        prop_assert_eq!(gu.to_vec(), iu.to_vec());
        gu.check_invariants();
        iu.check_invariants();
        let dd = CTree::<DeltaCodec>::from_sorted(&xs, p).difference(&CTree::from_sorted(&ys, p));
        let id = CTree::<IntervalCodec>::from_sorted(&xs, p).difference(&CTree::from_sorted(&ys, p));
        prop_assert_eq!(dd.to_vec(), id.to_vec());
    }

    #[test]
    fn set_algebra_laws(xs in elems(), ys in elems(), b in bs()) {
        let p = ChunkParams::with_b(b);
        let a = CTree::<DeltaCodec>::from_sorted(&xs, p);
        let c = CTree::<DeltaCodec>::from_sorted(&ys, p);
        // |A ∪ B| = |A| + |B| - |A ∩ B|
        prop_assert_eq!(a.union(&c).len() + a.intersect(&c).len(), a.len() + c.len());
        // (A \ B) ∪ (A ∩ B) = A
        let rebuilt = a.difference(&c).union(&a.intersect(&c));
        prop_assert_eq!(rebuilt.to_vec(), a.to_vec());
    }

    #[test]
    fn multi_insert_then_delete_is_difference(xs in elems(), batch in elems(), b in bs()) {
        let p = ChunkParams::with_b(b);
        let t = CTree::<DeltaCodec>::from_sorted(&xs, p);
        let round = t.multi_insert(batch.clone()).multi_delete(batch.clone());
        let sb: BTreeSet<u32> = batch.iter().copied().collect();
        let oracle: Vec<u32> = xs.iter().copied().filter(|x| !sb.contains(x)).collect();
        prop_assert_eq!(round.to_vec(), oracle);
        round.check_invariants();
    }

    #[test]
    fn snapshots_survive_updates(xs in elems(), batch in elems(), b in bs()) {
        let p = ChunkParams::with_b(b);
        let t = CTree::<DeltaCodec>::from_sorted(&xs, p);
        let snapshot = t.clone();
        let _new = t.multi_insert(batch);
        prop_assert_eq!(snapshot.to_vec(), xs);
    }

    #[test]
    fn weighted_build_and_get(xs in elems(), b in bs()) {
        let pairs: Vec<(u32, u32)> = xs.iter().map(|&x| (x, x.wrapping_mul(3) + 1)).collect();
        let t = WCTree::from_sorted(&pairs, ChunkParams::with_b(b));
        prop_assert_eq!(t.to_vec(), pairs.clone());
        prop_assert_eq!(t.len(), pairs.len());
        for &(id, w) in pairs.iter().take(20) {
            prop_assert_eq!(t.get(id), Some(w));
        }
        t.check_invariants();
    }

    #[test]
    fn weighted_union_matches_map_oracle(xs in elems(), ys in elems(), b in bs()) {
        let p = ChunkParams::with_b(b);
        let ax: Vec<(u32, u32)> = xs.iter().map(|&x| (x, x + 1)).collect();
        let by: Vec<(u32, u32)> = ys.iter().map(|&y| (y, 2 * y + 5)).collect();
        let u = WCTree::from_sorted(&ax, p).union(&WCTree::from_sorted(&by, p), |a, c| a.min(c));
        let mut oracle: BTreeMap<u32, u32> = ax.into_iter().collect();
        for (id, w) in by {
            oracle.entry(id).and_modify(|v| *v = (*v).min(w)).or_insert(w);
        }
        prop_assert_eq!(u.to_vec(), oracle.into_iter().collect::<Vec<_>>());
        u.check_invariants();
    }

    #[test]
    fn weighted_difference_matches_oracle(xs in elems(), kill in elems(), b in bs()) {
        let p = ChunkParams::with_b(b);
        let pairs: Vec<(u32, u32)> = xs.iter().map(|&x| (x, x ^ 7)).collect();
        let t = WCTree::from_sorted(&pairs, p);
        let d = t.difference(&CTree::from_sorted(&kill, p));
        let ks: BTreeSet<u32> = kill.iter().copied().collect();
        let oracle: Vec<(u32, u32)> = pairs.into_iter().filter(|(id, _)| !ks.contains(id)).collect();
        prop_assert_eq!(d.to_vec(), oracle);
        d.check_invariants();
    }

    #[test]
    fn weighted_split_partitions(xs in elems(), b in bs(), k in 0u32..2_000) {
        let pairs: Vec<(u32, u32)> = xs.iter().map(|&x| (x, x + 9)).collect();
        let t = WCTree::from_sorted(&pairs, ChunkParams::with_b(b));
        let (lo, found, hi) = t.split(k);
        prop_assert_eq!(lo.to_vec(), pairs.iter().copied().filter(|&(id, _)| id < k).collect::<Vec<_>>());
        prop_assert_eq!(hi.to_vec(), pairs.iter().copied().filter(|&(id, _)| id > k).collect::<Vec<_>>());
        prop_assert_eq!(found.is_some(), xs.binary_search(&k).is_ok());
        lo.check_invariants();
        hi.check_invariants();
    }
}
