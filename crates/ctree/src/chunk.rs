//! Chunks: the contiguous arrays of elements hanging off C-tree nodes.
//!
//! A chunk stores a sorted set of `u32` values together with a small
//! header caching `first`, `last` and `len`. The header is what lets
//! `Split` read chunk boundaries in `O(1)` instead of decoding the chunk
//! — the optimization Appendix 10.3 calls out as necessary for the
//! `O(b log n)` split bound.
//!
//! Storage is pluggable through [`ChunkCodec`]:
//!
//! * [`PlainCodec`] — a shared `u32` array ("Aspen (No DE)" in Table 2),
//! * [`DeltaCodec`] — difference encoding + byte codes ("Aspen (DE)").
//!
//! Chunks are immutable; all operations produce new chunks. Cloning is
//! `O(1)` (the payload is behind an `Arc`), so copying a path of tree
//! nodes during a functional update copies *headers*, not data — the
//! contrast with B-trees drawn in Figure 2 of the paper.

use std::sync::Arc;

/// How a chunk stores its sorted elements.
///
/// This trait is sealed in spirit: the two implementations below cover
/// the representations evaluated in the paper.
pub trait ChunkCodec: Clone + Send + Sync + 'static {
    /// The payload type (always cheaply cloneable).
    type Storage: Clone + Send + Sync;

    /// Encodes a strictly-increasing slice.
    fn encode(xs: &[u32]) -> Self::Storage;

    /// Decodes `len` elements, appending to `out`.
    fn decode(storage: &Self::Storage, len: usize, out: &mut Vec<u32>);

    /// Locates `x` among the `len` encoded elements **without
    /// materializing the chunk**: `Ok(i)` if `x` is the `i`-th element,
    /// `Err(i)` with its insertion index otherwise.
    ///
    /// This is the membership hot path (`contains` runs once per tree
    /// level on every `Split`): plain storage binary-searches the
    /// shared array in place, delta storage walks the byte codes and
    /// stops at the first decoded value `≥ x` — no allocation either
    /// way.
    fn search(storage: &Self::Storage, len: usize, x: u32) -> Result<usize, usize>;

    /// Heap bytes used by the payload.
    fn storage_bytes(storage: &Self::Storage) -> usize;

    /// Human-readable codec name for reports.
    fn name() -> &'static str;
}

/// Uncompressed chunk storage: a shared `u32` slice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlainCodec;

impl ChunkCodec for PlainCodec {
    type Storage = Arc<[u32]>;

    #[inline]
    fn encode(xs: &[u32]) -> Arc<[u32]> {
        xs.into()
    }

    #[inline]
    fn decode(storage: &Arc<[u32]>, len: usize, out: &mut Vec<u32>) {
        debug_assert_eq!(storage.len(), len);
        out.extend_from_slice(storage);
    }

    #[inline]
    fn search(storage: &Arc<[u32]>, len: usize, x: u32) -> Result<usize, usize> {
        debug_assert_eq!(storage.len(), len);
        storage.binary_search(&x)
    }

    #[inline]
    fn storage_bytes(storage: &Arc<[u32]>) -> usize {
        storage.len() * std::mem::size_of::<u32>()
    }

    fn name() -> &'static str {
        "plain"
    }
}

/// Difference-encoded byte-code storage (§3.2, "Integer C-trees").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaCodec;

impl ChunkCodec for DeltaCodec {
    type Storage = Arc<[u8]>;

    #[inline]
    fn encode(xs: &[u32]) -> Arc<[u8]> {
        encoder::encode_sorted(xs).into()
    }

    #[inline]
    fn decode(storage: &Arc<[u8]>, len: usize, out: &mut Vec<u32>) {
        out.extend(encoder::SortedDecoder::new(storage, len));
    }

    /// Early-exit decode walk: difference codes only decode forward,
    /// but they decode *fast*, and the walk stops at the first value
    /// `≥ x` instead of materializing the whole chunk the way the old
    /// `to_vec` + `binary_search` implementation did.
    fn search(storage: &Arc<[u8]>, len: usize, x: u32) -> Result<usize, usize> {
        for (i, v) in encoder::SortedDecoder::new(storage, len).enumerate() {
            if v >= x {
                return if v == x { Ok(i) } else { Err(i) };
            }
        }
        Err(len)
    }

    #[inline]
    fn storage_bytes(storage: &Arc<[u8]>) -> usize {
        storage.len()
    }

    fn name() -> &'static str {
        "delta"
    }
}

/// An immutable sorted set of `u32` with an `O(1)` boundary header.
///
/// The empty chunk has `len == 0`; `first`/`last` are meaningless then
/// and guarded by the accessors.
pub struct Chunk<C: ChunkCodec> {
    len: u32,
    first: u32,
    last: u32,
    data: C::Storage,
}

impl<C: ChunkCodec> Clone for Chunk<C> {
    #[inline]
    fn clone(&self) -> Self {
        Chunk {
            len: self.len,
            first: self.first,
            last: self.last,
            data: self.data.clone(),
        }
    }
}

impl<C: ChunkCodec> std::fmt::Debug for Chunk<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.to_vec()).finish()
    }
}

impl<C: ChunkCodec> Default for Chunk<C> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<C: ChunkCodec> PartialEq for Chunk<C> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.to_vec() == other.to_vec()
    }
}

impl<C: ChunkCodec> Eq for Chunk<C> {}

impl<C: ChunkCodec> Chunk<C> {
    /// The empty chunk.
    pub fn empty() -> Self {
        Chunk {
            len: 0,
            first: 0,
            last: 0,
            data: C::encode(&[]),
        }
    }

    /// Builds a chunk from a strictly increasing slice.
    ///
    /// # Panics
    ///
    /// Debug builds assert strict monotonicity.
    pub fn from_sorted(xs: &[u32]) -> Self {
        debug_assert!(xs.windows(2).all(|w| w[0] < w[1]), "chunk input unsorted");
        if xs.is_empty() {
            return Self::empty();
        }
        Chunk {
            len: xs.len() as u32,
            first: xs[0],
            last: *xs.last().expect("nonempty"),
            data: C::encode(xs),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the chunk holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest element (`O(1)` from the header).
    #[inline]
    pub fn first(&self) -> Option<u32> {
        (self.len > 0).then_some(self.first)
    }

    /// Largest element (`O(1)` from the header).
    #[inline]
    pub fn last(&self) -> Option<u32> {
        (self.len > 0).then_some(self.last)
    }

    /// Decodes the chunk into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        C::decode(&self.data, self.len(), &mut out);
        out
    }

    /// Appends the decoded elements to `out`.
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        C::decode(&self.data, self.len(), out);
    }

    /// Membership test; `O(chunk size)` — chunks are `O(b log n)` w.h.p.
    ///
    /// Allocation-free: after the `O(1)` header checks it delegates to
    /// [`ChunkCodec::search`], which binary-searches plain storage in
    /// place and early-exits a delta decode walk at the first element
    /// `≥ x`.
    pub fn contains(&self, x: u32) -> bool {
        if self.len == 0 || x < self.first || x > self.last {
            return false;
        }
        // Header boundaries are exact matches half the time in the
        // treap-descent use: settle them without touching the payload.
        if x == self.first || x == self.last {
            return true;
        }
        C::search(&self.data, self.len(), x).is_ok()
    }

    /// Heap bytes used (payload only; the header lives inline in the
    /// tree node or C-tree root).
    pub fn memory_bytes(&self) -> usize {
        C::storage_bytes(&self.data)
    }

    /// Splits into `(elements < k, k ∈ chunk, elements > k)`.
    pub fn split3(&self, k: u32) -> (Chunk<C>, bool, Chunk<C>) {
        if self.is_empty() {
            return (Self::empty(), false, Self::empty());
        }
        // O(1) fast paths off the header.
        if k < self.first {
            return (Self::empty(), false, self.clone());
        }
        if k > self.last {
            return (self.clone(), false, Self::empty());
        }
        let xs = self.to_vec();
        let (idx, found) = match xs.binary_search(&k) {
            Ok(i) => (i, true),
            Err(i) => (i, false),
        };
        let hi_start = if found { idx + 1 } else { idx };
        (
            Self::from_sorted(&xs[..idx]),
            found,
            Self::from_sorted(&xs[hi_start..]),
        )
    }

    /// Splits into `(elements < bound, elements > bound)` where `bound`
    /// of `None` means `+∞` (everything goes left).
    ///
    /// Used by `Union`/`Difference`/`Intersect` with `bound` set to the
    /// smallest head of a neighbouring subtree; the bound is a head and
    /// chunk elements are non-heads, so equality cannot occur.
    pub fn split_lt(&self, bound: Option<u32>) -> (Chunk<C>, Chunk<C>) {
        match bound {
            None => (self.clone(), Self::empty()),
            Some(b) => {
                let (lo, found, hi) = self.split3(b);
                debug_assert!(!found, "head value {b} found inside a chunk");
                (lo, hi)
            }
        }
    }

    /// Merged sorted union of two chunks (duplicates collapse).
    pub fn union(&self, other: &Chunk<C>) -> Chunk<C> {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let (a, b) = (self.to_vec(), other.to_vec());
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Self::from_sorted(&out)
    }

    /// Concatenation fast path: requires every element of `self` to be
    /// smaller than every element of `other`.
    ///
    /// # Panics
    ///
    /// Debug builds assert the ordering precondition.
    pub fn concat(&self, other: &Chunk<C>) -> Chunk<C> {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        debug_assert!(self.last < other.first, "concat inputs overlap");
        let mut xs = self.to_vec();
        other.decode_into(&mut xs);
        Self::from_sorted(&xs)
    }

    /// Elements of `self` not present in `other`.
    pub fn difference(&self, other: &Chunk<C>) -> Chunk<C> {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        // Disjoint ranges: nothing to remove.
        if other.last < self.first || other.first > self.last {
            return self.clone();
        }
        let (a, b) = (self.to_vec(), other.to_vec());
        let mut out = Vec::with_capacity(a.len());
        let mut j = 0;
        for x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j >= b.len() || b[j] != x {
                out.push(x);
            }
        }
        Self::from_sorted(&out)
    }

    /// Elements present in both chunks.
    pub fn intersect(&self, other: &Chunk<C>) -> Chunk<C> {
        if self.is_empty() || other.is_empty() {
            return Self::empty();
        }
        if other.last < self.first || other.first > self.last {
            return Self::empty();
        }
        let (a, b) = (self.to_vec(), other.to_vec());
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Self::from_sorted(&out)
    }

    /// Elements satisfying `pred`, as a new chunk.
    pub fn filter(&self, pred: impl FnMut(u32) -> bool) -> Chunk<C> {
        let mut p = pred;
        let kept: Vec<u32> = self.to_vec().into_iter().filter(|&x| p(x)).collect();
        Self::from_sorted(&kept)
    }

    /// Checks the header against the payload; used by the C-tree
    /// validator.
    ///
    /// # Panics
    ///
    /// Panics if the cached `len`/`first`/`last` disagree with the data
    /// or the data is not strictly increasing.
    pub fn check(&self) {
        let xs = self.to_vec();
        assert_eq!(xs.len(), self.len(), "chunk len header stale");
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "chunk not sorted");
        if let (Some(&f), Some(&l)) = (xs.first(), xs.last()) {
            assert_eq!(f, self.first, "chunk first header stale");
            assert_eq!(l, self.last, "chunk last header stale");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type PChunk = Chunk<PlainCodec>;
    type DChunk = Chunk<DeltaCodec>;

    #[test]
    fn empty_chunk_basics() {
        let c = DChunk::empty();
        assert!(c.is_empty());
        assert_eq!(c.first(), None);
        assert_eq!(c.last(), None);
        assert!(!c.contains(0));
        assert!(c.to_vec().is_empty());
        c.check();
    }

    #[test]
    fn header_caches_boundaries() {
        let c = DChunk::from_sorted(&[3, 9, 27]);
        assert_eq!(c.first(), Some(3));
        assert_eq!(c.last(), Some(27));
        assert_eq!(c.len(), 3);
        c.check();
    }

    #[test]
    fn plain_and_delta_agree() {
        let xs: Vec<u32> = (0..200).map(|i| i * 17 + 3).collect();
        let p = PChunk::from_sorted(&xs);
        let d = DChunk::from_sorted(&xs);
        assert_eq!(p.to_vec(), d.to_vec());
        // delta should compress a regular sequence well below 4B/elem
        assert!(d.memory_bytes() < p.memory_bytes());
    }

    #[test]
    fn contains_checks_membership() {
        let c = DChunk::from_sorted(&[5, 10, 15]);
        assert!(c.contains(10));
        assert!(!c.contains(11));
        assert!(!c.contains(4));
        assert!(!c.contains(16));
    }

    #[test]
    fn codec_search_agrees_with_binary_search() {
        let xs: Vec<u32> = (0..300).map(|i| i * 3 + 7).collect();
        let p = PChunk::from_sorted(&xs);
        let d = DChunk::from_sorted(&xs);
        for probe in 0..1000u32 {
            let expect = xs.binary_search(&probe);
            assert_eq!(PlainCodec::search(&p.data, xs.len(), probe), expect);
            assert_eq!(DeltaCodec::search(&d.data, xs.len(), probe), expect);
            assert_eq!(p.contains(probe), expect.is_ok());
            assert_eq!(d.contains(probe), expect.is_ok());
        }
    }

    #[test]
    fn split3_cases() {
        let c = DChunk::from_sorted(&[10, 20, 30, 40]);
        let (lo, f, hi) = c.split3(20);
        assert_eq!(
            (lo.to_vec(), f, hi.to_vec()),
            (vec![10], true, vec![30, 40])
        );
        let (lo, f, hi) = c.split3(25);
        assert_eq!(
            (lo.to_vec(), f, hi.to_vec()),
            (vec![10, 20], false, vec![30, 40])
        );
        let (lo, f, hi) = c.split3(5);
        assert_eq!((lo.len(), f, hi.len()), (0, false, 4));
        let (lo, f, hi) = c.split3(100);
        assert_eq!((lo.len(), f, hi.len()), (4, false, 0));
    }

    #[test]
    fn split_lt_none_keeps_all_left() {
        let c = DChunk::from_sorted(&[1, 2, 3]);
        let (lo, hi) = c.split_lt(None);
        assert_eq!(lo.len(), 3);
        assert!(hi.is_empty());
    }

    #[test]
    fn union_merges_with_dedup() {
        let a = DChunk::from_sorted(&[1, 3, 5]);
        let b = DChunk::from_sorted(&[2, 3, 6]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 5, 6]);
        assert_eq!(a.union(&DChunk::empty()).to_vec(), vec![1, 3, 5]);
    }

    #[test]
    fn concat_is_union_for_disjoint_ranges() {
        let a = DChunk::from_sorted(&[1, 2]);
        let b = DChunk::from_sorted(&[7, 9]);
        assert_eq!(a.concat(&b).to_vec(), vec![1, 2, 7, 9]);
        assert_eq!(DChunk::empty().concat(&b).to_vec(), vec![7, 9]);
    }

    #[test]
    fn difference_and_intersect() {
        let a = DChunk::from_sorted(&[1, 2, 3, 4, 5]);
        let b = DChunk::from_sorted(&[2, 4, 6]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 3, 5]);
        assert_eq!(a.intersect(&b).to_vec(), vec![2, 4]);
        // Disjoint fast paths.
        let far = DChunk::from_sorted(&[100, 200]);
        assert_eq!(a.difference(&far).to_vec(), vec![1, 2, 3, 4, 5]);
        assert!(a.intersect(&far).is_empty());
    }

    #[test]
    fn filter_keeps_predicate() {
        let a = DChunk::from_sorted(&[1, 2, 3, 4]);
        assert_eq!(a.filter(|x| x % 2 == 0).to_vec(), vec![2, 4]);
    }

    #[test]
    fn delta_memory_is_one_byte_per_small_gap() {
        let xs: Vec<u32> = (1000..1256).collect();
        let d = DChunk::from_sorted(&xs);
        assert_eq!(d.memory_bytes(), 2 + 255);
    }

    #[test]
    fn eq_is_structural() {
        let a = DChunk::from_sorted(&[1, 2]);
        let b = DChunk::from_sorted(&[1, 2]);
        let c = DChunk::from_sorted(&[1, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
