//! Chunks: the contiguous arrays of elements hanging off C-tree nodes.
//!
//! A chunk stores a sorted set of `u32` values together with a small
//! header caching `first`, `last` and `len`. The header is what lets
//! `Split` read chunk boundaries in `O(1)` instead of decoding the chunk
//! — the optimization Appendix 10.3 calls out as necessary for the
//! `O(b log n)` split bound.
//!
//! Storage is pluggable through [`ChunkCodec`]:
//!
//! * [`PlainCodec`] — a shared `u32` array ("Aspen (No DE)" in Table 2),
//! * [`DeltaCodec`] — difference encoding + byte codes ("Aspen (DE)"),
//! * [`GammaCodec`] — Elias-γ bit codes over the same gaps: unit gaps
//!   cost 1 bit instead of 1 byte,
//! * [`IntervalCodec`] — WebGraph-style intervalization + ζ₃ gap codes:
//!   runs of ≥ [`MIN_RUN`] consecutive neighbours collapse to a
//!   `(start, len)` pair, the dominant pattern in RMAT/social graphs.
//!
//! Every codec exposes a **lazy decode path**: [`ChunkCodec::iter`]
//! streams the values without materializing a `Vec`, and
//! [`ChunkCodec::for_each`] is the no-iterator-state fast path built on
//! it. All chunk set operations (`union`, `difference`, `intersect`,
//! `filter`, `split3`) merge those streams directly; only the final
//! result is collected for re-encoding. `search` early-exits per codec
//! — plain storage binary-searches in place, gap codecs stop the decode
//! walk at the first value `≥ x`, and interval storage answers
//! membership in `O(1)` once the covering token is located.
//!
//! Chunks are immutable; all operations produce new chunks. Cloning is
//! `O(1)` (the payload is behind an `Arc`), so copying a path of tree
//! nodes during a functional update copies *headers*, not data — the
//! contrast with B-trees drawn in Figure 2 of the paper.

use std::sync::Arc;

use encoder::{BitReader, BitWriter};

/// Runs of at least this many consecutive values are stored as
/// intervals by [`IntervalCodec`].
pub const MIN_RUN: usize = 4;

/// ζ shrinking parameter used by [`IntervalCodec`] gap codes. `k = 3`
/// (WebGraph's residual default) matches the gap distribution of
/// power-law graphs better than γ (≡ ζ₁): unit gaps cost 3 bits while
/// the large gaps of sparse vertices stay close to byte codes —
/// measured as the best overall choice on the `repro memory` frontier.
const ZETA_K: u32 = 3;

/// How a chunk stores its sorted elements.
///
/// The four implementations below cover the speed/space frontier the
/// `repro memory` experiment measures: plain words, byte codes, γ bit
/// codes, and intervalized ζ codes.
pub trait ChunkCodec: Clone + Send + Sync + 'static {
    /// The payload type (always cheaply cloneable).
    type Storage: Clone + Send + Sync + 'static;

    /// Streaming decoder over a payload; see [`iter`](Self::iter).
    type Iter<'a>: Iterator<Item = u32> + 'a
    where
        Self: 'a;

    /// Encodes a strictly-increasing slice.
    fn encode(xs: &[u32]) -> Self::Storage;

    /// Lazily decodes the `len` encoded elements in ascending order —
    /// the allocation-free hot path every traversal should prefer over
    /// [`decode`](Self::decode).
    ///
    /// `first` is the smallest element (the chunk header caches it;
    /// meaningless when `len == 0`). The bit codecs anchor their gap
    /// streams on it instead of re-encoding the full magnitude of the
    /// first element in the payload; word/byte codecs ignore it.
    fn iter(storage: &Self::Storage, len: usize, first: u32) -> Self::Iter<'_>;

    /// Decodes `len` elements, appending to `out` (reserving space
    /// up front).
    fn decode(storage: &Self::Storage, len: usize, first: u32, out: &mut Vec<u32>) {
        out.reserve(len);
        out.extend(Self::iter(storage, len, first));
    }

    /// Calls `f` on each decoded element in ascending order. Default
    /// drives [`iter`](Self::iter); codecs with cheaper internal loops
    /// (plain slices) override it.
    #[inline]
    fn for_each(storage: &Self::Storage, len: usize, first: u32, f: impl FnMut(u32)) {
        Self::iter(storage, len, first).for_each(f);
    }

    /// Locates `x` among the `len` encoded elements **without
    /// materializing the chunk**: `Ok(i)` if `x` is the `i`-th element,
    /// `Err(i)` with its insertion index otherwise.
    ///
    /// This is the membership hot path (`contains` runs once per tree
    /// level on every `Split`). The default walks the lazy decode
    /// stream and stops at the first value `≥ x`; plain storage
    /// overrides with an in-place binary search, interval storage with
    /// a token walk that answers in `O(1)` per covering interval.
    fn search(storage: &Self::Storage, len: usize, first: u32, x: u32) -> Result<usize, usize> {
        for (i, v) in Self::iter(storage, len, first).enumerate() {
            if v >= x {
                return if v == x { Ok(i) } else { Err(i) };
            }
        }
        Err(len)
    }

    /// Heap bytes used by the payload.
    fn storage_bytes(storage: &Self::Storage) -> usize;

    /// Whether two payloads are the same allocation. `true` proves the
    /// encoded contents are identical without decoding anything (the
    /// structural-sharing fast path version diffing relies on); `false`
    /// proves nothing — equal payloads encoded separately are distinct
    /// allocations. All provided codecs store `Arc` slices and answer
    /// with pointer identity; the conservative default is `false`.
    #[inline]
    fn storage_ptr_eq(_a: &Self::Storage, _b: &Self::Storage) -> bool {
        false
    }

    /// Human-readable codec name for reports.
    fn name() -> &'static str;
}

/// Uncompressed chunk storage: a shared `u32` slice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlainCodec;

impl ChunkCodec for PlainCodec {
    type Storage = Arc<[u32]>;
    type Iter<'a> = std::iter::Copied<std::slice::Iter<'a, u32>>;

    #[inline]
    fn encode(xs: &[u32]) -> Arc<[u32]> {
        xs.into()
    }

    #[inline]
    fn iter(storage: &Arc<[u32]>, len: usize, _first: u32) -> Self::Iter<'_> {
        debug_assert_eq!(storage.len(), len);
        storage.iter().copied()
    }

    #[inline]
    fn decode(storage: &Arc<[u32]>, len: usize, _first: u32, out: &mut Vec<u32>) {
        debug_assert_eq!(storage.len(), len);
        out.extend_from_slice(storage);
    }

    #[inline]
    fn for_each(storage: &Arc<[u32]>, len: usize, _first: u32, mut f: impl FnMut(u32)) {
        debug_assert_eq!(storage.len(), len);
        for &x in storage.iter() {
            f(x);
        }
    }

    #[inline]
    fn search(storage: &Arc<[u32]>, len: usize, _first: u32, x: u32) -> Result<usize, usize> {
        debug_assert_eq!(storage.len(), len);
        storage.binary_search(&x)
    }

    #[inline]
    fn storage_bytes(storage: &Arc<[u32]>) -> usize {
        storage.len() * std::mem::size_of::<u32>()
    }

    #[inline]
    fn storage_ptr_eq(a: &Arc<[u32]>, b: &Arc<[u32]>) -> bool {
        Arc::ptr_eq(a, b)
    }

    fn name() -> &'static str {
        "plain"
    }
}

/// Difference-encoded byte-code storage (§3.2, "Integer C-trees").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaCodec;

impl ChunkCodec for DeltaCodec {
    type Storage = Arc<[u8]>;
    type Iter<'a> = encoder::SortedDecoder<'a>;

    #[inline]
    fn encode(xs: &[u32]) -> Arc<[u8]> {
        encoder::encode_sorted(xs).into()
    }

    #[inline]
    fn iter(storage: &Arc<[u8]>, len: usize, _first: u32) -> Self::Iter<'_> {
        encoder::SortedDecoder::new(storage, len)
    }

    #[inline]
    fn storage_bytes(storage: &Arc<[u8]>) -> usize {
        storage.len()
    }

    #[inline]
    fn storage_ptr_eq(a: &Arc<[u8]>, b: &Arc<[u8]>) -> bool {
        Arc::ptr_eq(a, b)
    }

    fn name() -> &'static str {
        "delta"
    }
}

/// Elias-γ gap codes: each gap `g ≥ 1` costs `2⌊log₂ g⌋ + 1` bits.
///
/// The same difference encoding as [`DeltaCodec`], but paid in bits
/// instead of bytes — a unit gap takes 1 bit, not 8. Decoding is a
/// forward bit-walk (slower per element than byte codes), which is the
/// speed/space trade the `repro memory` frontier quantifies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GammaCodec;

impl ChunkCodec for GammaCodec {
    type Storage = Arc<[u8]>;
    type Iter<'a> = GammaIter<'a>;

    fn encode(xs: &[u32]) -> Arc<[u8]> {
        let mut w = BitWriter::new();
        // The gap stream is anchored on the chunk header's cached
        // `first`, so the first element costs γ(1) = 1 bit instead of
        // re-encoding its full magnitude. `prev` tracks
        // last-value-plus-one in 64 bits (gaps reach 2³² at u32::MAX).
        let mut prev = xs.first().map_or(0, |&x| u64::from(x));
        for &x in xs {
            debug_assert!(
                u64::from(x) + 1 > prev,
                "chunk input not strictly increasing"
            );
            w.write_gamma(u64::from(x) + 1 - prev);
            prev = u64::from(x) + 1;
        }
        w.finish().into()
    }

    #[inline]
    fn iter(storage: &Arc<[u8]>, len: usize, first: u32) -> GammaIter<'_> {
        GammaIter {
            reader: BitReader::new(storage),
            remaining: len,
            prev: u64::from(first),
        }
    }

    #[inline]
    fn storage_bytes(storage: &Arc<[u8]>) -> usize {
        storage.len()
    }

    #[inline]
    fn storage_ptr_eq(a: &Arc<[u8]>, b: &Arc<[u8]>) -> bool {
        Arc::ptr_eq(a, b)
    }

    fn name() -> &'static str {
        "gamma"
    }
}

/// Streaming decoder over [`GammaCodec`] storage.
#[derive(Clone, Debug)]
pub struct GammaIter<'a> {
    reader: BitReader<'a>,
    remaining: usize,
    prev: u64,
}

impl Iterator for GammaIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.prev += self.reader.read_gamma();
        Some((self.prev - 1) as u32)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for GammaIter<'_> {}

/// Intervalized ζ gap codes (WebGraph's two key ideas, §SNIPPETS 1).
///
/// The payload is a stream of **segments**, each opened by a ζ-coded
/// gap and a one-bit kind flag:
///
/// ```text
/// interval:      ζ(gap)  1  γ(len − MIN_RUN + 1)
/// literal block: ζ(gap)  0  γ(count)  ζ(gap) × (count − 1)
/// ```
///
/// where `gap` is the distance from the previous segment's last value
/// (`first + 1` for the first). An **interval** stands for `len ≥`
/// [`MIN_RUN`] consecutive values from the decoded position; a
/// **literal block** carries `count` individual gap-coded values (every
/// maximal run shorter than [`MIN_RUN`]) under a *single* flag, so the
/// per-segment overhead amortizes to `γ(count) + 1` bits per block
/// rather than one flag bit per edge. Dense neighbourhoods — the common
/// case in RMAT and social graphs — collapse to a few bits per *run*
/// instead of bits per edge, and membership inside a located interval
/// is answered in `O(1)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntervalCodec;

impl ChunkCodec for IntervalCodec {
    type Storage = Arc<[u8]>;
    type Iter<'a> = IntervalIter<'a>;

    fn encode(xs: &[u32]) -> Arc<[u8]> {
        // Length of the maximal run of consecutive values at `i`.
        let run_len = |i: usize| {
            let mut j = i + 1;
            while j < xs.len() && u64::from(xs[j]) == u64::from(xs[j - 1]) + 1 {
                j += 1;
            }
            j - i
        };
        let mut w = BitWriter::new();
        // Anchored on the header's cached `first`: the opening segment
        // gap is always ζ(1). `prev` tracks last value + 1.
        let mut prev = xs.first().map_or(0, |&x| u64::from(x));
        let mut i = 0;
        while i < xs.len() {
            debug_assert!(
                u64::from(xs[i]) + 1 > prev,
                "chunk input not strictly increasing"
            );
            w.write_zeta(u64::from(xs[i]) + 1 - prev, ZETA_K);
            let run = run_len(i);
            if run >= MIN_RUN {
                w.write_bit(1);
                w.write_gamma((run - MIN_RUN + 1) as u64);
                prev = u64::from(xs[i + run - 1]) + 1;
                i += run;
            } else {
                // Literal block: everything up to the next long run.
                let mut end = i + run;
                while end < xs.len() {
                    let r = run_len(end);
                    if r >= MIN_RUN {
                        break;
                    }
                    end += r;
                }
                w.write_bit(0);
                w.write_gamma((end - i) as u64);
                prev = u64::from(xs[i]) + 1;
                for &x in &xs[i + 1..end] {
                    w.write_zeta(u64::from(x) + 1 - prev, ZETA_K);
                    prev = u64::from(x) + 1;
                }
                i = end;
            }
        }
        w.finish().into()
    }

    #[inline]
    fn iter(storage: &Arc<[u8]>, len: usize, first: u32) -> IntervalIter<'_> {
        IntervalIter {
            tokens: IntervalTokens::new(storage, len, first),
            cur: 0,
            run_left: 0,
            remaining: len,
        }
    }

    fn search(storage: &Arc<[u8]>, len: usize, first: u32, x: u32) -> Result<usize, usize> {
        let x = u64::from(x);
        let mut idx = 0usize;
        for (start, run) in IntervalTokens::new(storage, len, first) {
            let start = u64::from(start);
            if x < start {
                return Err(idx);
            }
            if x < start + run as u64 {
                return Ok(idx + (x - start) as usize);
            }
            idx += run;
        }
        Err(len)
    }

    #[inline]
    fn storage_bytes(storage: &Arc<[u8]>) -> usize {
        storage.len()
    }

    #[inline]
    fn storage_ptr_eq(a: &Arc<[u8]>, b: &Arc<[u8]>) -> bool {
        Arc::ptr_eq(a, b)
    }

    fn name() -> &'static str {
        "interval"
    }
}

/// Token-level walk over [`IntervalCodec`] storage: yields
/// `(start, run_len)` with `run_len == 1` for each literal inside a
/// literal block.
#[derive(Clone, Debug)]
struct IntervalTokens<'a> {
    reader: BitReader<'a>,
    remaining: usize,
    lit_left: usize, // literals still due in the current block
    prev: u64,       // last value + 1
}

impl<'a> IntervalTokens<'a> {
    fn new(bytes: &'a [u8], len: usize, first: u32) -> Self {
        Self {
            reader: BitReader::new(bytes),
            remaining: len,
            lit_left: 0,
            prev: u64::from(first),
        }
    }
}

impl Iterator for IntervalTokens<'_> {
    type Item = (u32, usize);

    #[inline]
    fn next(&mut self) -> Option<(u32, usize)> {
        if self.remaining == 0 {
            return None;
        }
        let start = self.prev + self.reader.read_zeta(ZETA_K) - 1;
        let run = if self.lit_left > 0 {
            // Continuation of a literal block: gap only, no flag.
            self.lit_left -= 1;
            1
        } else if self.reader.read_bit() == 1 {
            self.reader.read_gamma() as usize + MIN_RUN - 1
        } else {
            self.lit_left = self.reader.read_gamma() as usize - 1;
            1
        };
        debug_assert!(run <= self.remaining, "interval token overruns chunk len");
        self.prev = start + run as u64;
        self.remaining -= run;
        Some((start as u32, run))
    }
}

/// Streaming decoder over [`IntervalCodec`] storage: flattens the token
/// stream back into individual values.
#[derive(Clone, Debug)]
pub struct IntervalIter<'a> {
    tokens: IntervalTokens<'a>,
    cur: u64,
    run_left: usize,
    remaining: usize,
}

impl Iterator for IntervalIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        if self.run_left == 0 {
            let (start, run) = self.tokens.next()?;
            self.cur = u64::from(start);
            self.run_left = run;
        }
        self.remaining -= 1;
        self.run_left -= 1;
        let v = self.cur as u32;
        self.cur += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IntervalIter<'_> {}

/// An immutable sorted set of `u32` with an `O(1)` boundary header.
///
/// The empty chunk has `len == 0`; `first`/`last` are meaningless then
/// and guarded by the accessors.
pub struct Chunk<C: ChunkCodec> {
    len: u32,
    first: u32,
    last: u32,
    data: C::Storage,
}

impl<C: ChunkCodec> Clone for Chunk<C> {
    #[inline]
    fn clone(&self) -> Self {
        Chunk {
            len: self.len,
            first: self.first,
            last: self.last,
            data: self.data.clone(),
        }
    }
}

impl<C: ChunkCodec> std::fmt::Debug for Chunk<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<C: ChunkCodec> Default for Chunk<C> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<C: ChunkCodec> PartialEq for Chunk<C> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<C: ChunkCodec> Eq for Chunk<C> {}

impl<C: ChunkCodec> Chunk<C> {
    /// The empty chunk.
    pub fn empty() -> Self {
        Chunk {
            len: 0,
            first: 0,
            last: 0,
            data: C::encode(&[]),
        }
    }

    /// Whether the two chunks provably hold the same elements without
    /// decoding either: matching bounds plus a shared storage
    /// allocation (or both empty). `false` proves nothing — equal
    /// chunks encoded separately never share storage.
    #[inline]
    pub fn ptr_eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.first == other.first
            && self.last == other.last
            && (self.len == 0 || C::storage_ptr_eq(&self.data, &other.data))
    }

    /// Builds a chunk from a strictly increasing slice.
    ///
    /// # Panics
    ///
    /// Debug builds assert strict monotonicity.
    pub fn from_sorted(xs: &[u32]) -> Self {
        debug_assert!(xs.windows(2).all(|w| w[0] < w[1]), "chunk input unsorted");
        if xs.is_empty() {
            return Self::empty();
        }
        Chunk {
            len: xs.len() as u32,
            first: xs[0],
            last: *xs.last().expect("nonempty"),
            data: C::encode(xs),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the chunk holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest element (`O(1)` from the header).
    #[inline]
    pub fn first(&self) -> Option<u32> {
        (self.len > 0).then_some(self.first)
    }

    /// Largest element (`O(1)` from the header).
    #[inline]
    pub fn last(&self) -> Option<u32> {
        (self.len > 0).then_some(self.last)
    }

    /// Lazily decodes the elements in ascending order without
    /// allocating — the traversal hot path.
    #[inline]
    pub fn iter(&self) -> C::Iter<'_> {
        C::iter(&self.data, self.len(), self.first)
    }

    /// Calls `f` on each element in ascending order, allocation-free.
    #[inline]
    pub fn for_each(&self, f: impl FnMut(u32)) {
        C::for_each(&self.data, self.len(), self.first, f);
    }

    /// Like [`for_each`](Self::for_each) but stops (returning `false`)
    /// the first time `f` returns `false`.
    #[inline]
    pub fn for_each_until(&self, mut f: impl FnMut(u32) -> bool) -> bool {
        for x in self.iter() {
            if !f(x) {
                return false;
            }
        }
        true
    }

    /// Decodes the chunk into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        C::decode(&self.data, self.len(), self.first, &mut out);
        out
    }

    /// Appends the decoded elements to `out` (reserving space first).
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        out.reserve(self.len());
        C::decode(&self.data, self.len(), self.first, out);
    }

    /// Membership test; `O(chunk size)` — chunks are `O(b log n)` w.h.p.
    ///
    /// Allocation-free: after the `O(1)` header checks it delegates to
    /// [`ChunkCodec::search`], which binary-searches plain storage in
    /// place and early-exits the gap-decode walk at the first element
    /// `≥ x`.
    pub fn contains(&self, x: u32) -> bool {
        if self.len == 0 || x < self.first || x > self.last {
            return false;
        }
        // Header boundaries are exact matches half the time in the
        // treap-descent use: settle them without touching the payload.
        if x == self.first || x == self.last {
            return true;
        }
        C::search(&self.data, self.len(), self.first, x).is_ok()
    }

    /// Heap bytes used (payload only; the header lives inline in the
    /// tree node or C-tree root).
    pub fn memory_bytes(&self) -> usize {
        C::storage_bytes(&self.data)
    }

    /// Splits into `(elements < k, k ∈ chunk, elements > k)`.
    pub fn split3(&self, k: u32) -> (Chunk<C>, bool, Chunk<C>) {
        if self.is_empty() {
            return (Self::empty(), false, Self::empty());
        }
        // O(1) fast paths off the header.
        if k < self.first {
            return (Self::empty(), false, self.clone());
        }
        if k > self.last {
            return (self.clone(), false, Self::empty());
        }
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        let mut found = false;
        for x in self.iter() {
            match x.cmp(&k) {
                std::cmp::Ordering::Less => lo.push(x),
                std::cmp::Ordering::Equal => found = true,
                std::cmp::Ordering::Greater => hi.push(x),
            }
        }
        (Self::from_sorted(&lo), found, Self::from_sorted(&hi))
    }

    /// Splits into `(elements < bound, elements > bound)` where `bound`
    /// of `None` means `+∞` (everything goes left).
    ///
    /// Used by `Union`/`Difference`/`Intersect` with `bound` set to the
    /// smallest head of a neighbouring subtree; the bound is a head and
    /// chunk elements are non-heads, so equality cannot occur.
    pub fn split_lt(&self, bound: Option<u32>) -> (Chunk<C>, Chunk<C>) {
        match bound {
            None => (self.clone(), Self::empty()),
            Some(b) => {
                let (lo, found, hi) = self.split3(b);
                debug_assert!(!found, "head value {b} found inside a chunk");
                (lo, hi)
            }
        }
    }

    /// Merged sorted union of two chunks (duplicates collapse); streams
    /// both decode walks, collecting only the merged result.
    pub fn union(&self, other: &Chunk<C>) -> Chunk<C> {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out = Vec::with_capacity(self.len() + other.len());
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&x), Some(&y)) => match x.cmp(&y) {
                    std::cmp::Ordering::Less => {
                        out.push(x);
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        out.push(y);
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        out.push(x);
                        a.next();
                        b.next();
                    }
                },
                (Some(_), None) => {
                    out.extend(a.by_ref());
                    break;
                }
                (None, Some(_)) => {
                    out.extend(b.by_ref());
                    break;
                }
                (None, None) => break,
            }
        }
        Self::from_sorted(&out)
    }

    /// Concatenation fast path: requires every element of `self` to be
    /// smaller than every element of `other`.
    ///
    /// # Panics
    ///
    /// Debug builds assert the ordering precondition.
    pub fn concat(&self, other: &Chunk<C>) -> Chunk<C> {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        debug_assert!(self.last < other.first, "concat inputs overlap");
        let mut xs = Vec::with_capacity(self.len() + other.len());
        self.decode_into(&mut xs);
        other.decode_into(&mut xs);
        Self::from_sorted(&xs)
    }

    /// Elements of `self` not present in `other`; streams both sides.
    pub fn difference(&self, other: &Chunk<C>) -> Chunk<C> {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        // Disjoint ranges: nothing to remove.
        if other.last < self.first || other.first > self.last {
            return self.clone();
        }
        let mut out = Vec::with_capacity(self.len());
        let mut b = other.iter().peekable();
        for x in self.iter() {
            while b.peek().is_some_and(|&y| y < x) {
                b.next();
            }
            if b.peek() != Some(&x) {
                out.push(x);
            }
        }
        Self::from_sorted(&out)
    }

    /// Elements present in both chunks; streams both sides.
    pub fn intersect(&self, other: &Chunk<C>) -> Chunk<C> {
        if self.is_empty() || other.is_empty() {
            return Self::empty();
        }
        if other.last < self.first || other.first > self.last {
            return Self::empty();
        }
        let mut out = Vec::new();
        let mut b = other.iter().peekable();
        for x in self.iter() {
            while b.peek().is_some_and(|&y| y < x) {
                b.next();
            }
            if b.peek() == Some(&x) {
                out.push(x);
                b.next();
            }
        }
        Self::from_sorted(&out)
    }

    /// Elements satisfying `pred`, as a new chunk. Filters during the
    /// streaming decode walk — one allocation for the kept set, not two.
    pub fn filter(&self, mut pred: impl FnMut(u32) -> bool) -> Chunk<C> {
        let mut kept = Vec::with_capacity(self.len());
        for x in self.iter() {
            if pred(x) {
                kept.push(x);
            }
        }
        Self::from_sorted(&kept)
    }

    /// Checks the header against the payload; used by the C-tree
    /// validator.
    ///
    /// # Panics
    ///
    /// Panics if the cached `len`/`first`/`last` disagree with the data
    /// or the data is not strictly increasing.
    pub fn check(&self) {
        let xs = self.to_vec();
        assert_eq!(xs.len(), self.len(), "chunk len header stale");
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "chunk not sorted");
        if let (Some(&f), Some(&l)) = (xs.first(), xs.last()) {
            assert_eq!(f, self.first, "chunk first header stale");
            assert_eq!(l, self.last, "chunk last header stale");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type PChunk = Chunk<PlainCodec>;
    type DChunk = Chunk<DeltaCodec>;
    type GChunk = Chunk<GammaCodec>;
    type IChunk = Chunk<IntervalCodec>;

    #[test]
    fn empty_chunk_basics() {
        let c = DChunk::empty();
        assert!(c.is_empty());
        assert_eq!(c.first(), None);
        assert_eq!(c.last(), None);
        assert!(!c.contains(0));
        assert!(c.to_vec().is_empty());
        c.check();
    }

    #[test]
    fn header_caches_boundaries() {
        let c = DChunk::from_sorted(&[3, 9, 27]);
        assert_eq!(c.first(), Some(3));
        assert_eq!(c.last(), Some(27));
        assert_eq!(c.len(), 3);
        c.check();
    }

    #[test]
    fn all_codecs_agree() {
        let xs: Vec<u32> = (0..200).map(|i| i * 17 + 3).collect();
        let p = PChunk::from_sorted(&xs);
        let d = DChunk::from_sorted(&xs);
        let g = GChunk::from_sorted(&xs);
        let iv = IChunk::from_sorted(&xs);
        assert_eq!(p.to_vec(), xs);
        assert_eq!(d.to_vec(), xs);
        assert_eq!(g.to_vec(), xs);
        assert_eq!(iv.to_vec(), xs);
        // delta should compress a regular sequence well below 4B/elem
        assert!(d.memory_bytes() < p.memory_bytes());
        // γ wins on small gaps: gap 3 costs 3 bits vs a whole byte
        let dense: Vec<u32> = (0..200).map(|i| i * 3).collect();
        let dd = DChunk::from_sorted(&dense);
        let gd = GChunk::from_sorted(&dense);
        assert!(gd.memory_bytes() < dd.memory_bytes());
    }

    #[test]
    fn lazy_iter_matches_to_vec() {
        let xs: Vec<u32> = vec![0, 1, 2, 3, 4, 10, 11, 12, 13, 1000, u32::MAX];
        assert_eq!(PChunk::from_sorted(&xs).iter().collect::<Vec<_>>(), xs);
        assert_eq!(DChunk::from_sorted(&xs).iter().collect::<Vec<_>>(), xs);
        assert_eq!(GChunk::from_sorted(&xs).iter().collect::<Vec<_>>(), xs);
        assert_eq!(IChunk::from_sorted(&xs).iter().collect::<Vec<_>>(), xs);
        let g = GChunk::from_sorted(&xs);
        assert_eq!(g.iter().len(), xs.len());
        let mut seen = Vec::new();
        g.for_each(|x| seen.push(x));
        assert_eq!(seen, xs);
    }

    #[test]
    fn for_each_until_stops_early() {
        let c = IChunk::from_sorted(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut seen = Vec::new();
        let finished = c.for_each_until(|x| {
            seen.push(x);
            x < 5
        });
        assert!(!finished);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert!(c.for_each_until(|_| true));
    }

    #[test]
    fn contains_checks_membership() {
        let c = DChunk::from_sorted(&[5, 10, 15]);
        assert!(c.contains(10));
        assert!(!c.contains(11));
        assert!(!c.contains(4));
        assert!(!c.contains(16));
    }

    #[test]
    fn codec_search_agrees_with_binary_search() {
        let xs: Vec<u32> = (0..300).map(|i| i * 3 + 7).collect();
        let p = PChunk::from_sorted(&xs);
        let d = DChunk::from_sorted(&xs);
        let g = GChunk::from_sorted(&xs);
        let iv = IChunk::from_sorted(&xs);
        for probe in 0..1000u32 {
            let expect = xs.binary_search(&probe);
            assert_eq!(PlainCodec::search(&p.data, xs.len(), xs[0], probe), expect);
            assert_eq!(DeltaCodec::search(&d.data, xs.len(), xs[0], probe), expect);
            assert_eq!(GammaCodec::search(&g.data, xs.len(), xs[0], probe), expect);
            assert_eq!(
                IntervalCodec::search(&iv.data, xs.len(), xs[0], probe),
                expect
            );
            assert_eq!(p.contains(probe), expect.is_ok());
            assert_eq!(d.contains(probe), expect.is_ok());
            assert_eq!(g.contains(probe), expect.is_ok());
            assert_eq!(iv.contains(probe), expect.is_ok());
        }
    }

    #[test]
    fn interval_search_inside_runs() {
        // A long run plus stragglers exercises the O(1) in-interval hit.
        let xs: Vec<u32> = (100..200).chain([500, 1000, 1001, 1002, 1003]).collect();
        let iv = IChunk::from_sorted(&xs);
        for probe in [99, 100, 150, 199, 200, 499, 500, 501, 1000, 1003, 1004] {
            assert_eq!(
                IntervalCodec::search(&iv.data, xs.len(), xs[0], probe),
                xs.binary_search(&probe),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn interval_beats_delta_on_runs() {
        // 256 consecutive values: delta pays a byte per edge, interval
        // pays a handful of bits for the whole run.
        let xs: Vec<u32> = (1000..1256).collect();
        let d = DChunk::from_sorted(&xs);
        let iv = IChunk::from_sorted(&xs);
        assert!(
            iv.memory_bytes() * 8 < d.memory_bytes(),
            "interval {} bytes vs delta {} bytes",
            iv.memory_bytes(),
            d.memory_bytes()
        );
    }

    #[test]
    fn split3_cases() {
        let c = DChunk::from_sorted(&[10, 20, 30, 40]);
        let (lo, f, hi) = c.split3(20);
        assert_eq!(
            (lo.to_vec(), f, hi.to_vec()),
            (vec![10], true, vec![30, 40])
        );
        let (lo, f, hi) = c.split3(25);
        assert_eq!(
            (lo.to_vec(), f, hi.to_vec()),
            (vec![10, 20], false, vec![30, 40])
        );
        let (lo, f, hi) = c.split3(5);
        assert_eq!((lo.len(), f, hi.len()), (0, false, 4));
        let (lo, f, hi) = c.split3(100);
        assert_eq!((lo.len(), f, hi.len()), (4, false, 0));
    }

    #[test]
    fn split_lt_none_keeps_all_left() {
        let c = DChunk::from_sorted(&[1, 2, 3]);
        let (lo, hi) = c.split_lt(None);
        assert_eq!(lo.len(), 3);
        assert!(hi.is_empty());
    }

    #[test]
    fn union_merges_with_dedup() {
        let a = DChunk::from_sorted(&[1, 3, 5]);
        let b = DChunk::from_sorted(&[2, 3, 6]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 5, 6]);
        assert_eq!(a.union(&DChunk::empty()).to_vec(), vec![1, 3, 5]);
        let ga = GChunk::from_sorted(&[1, 3, 5]);
        let gb = GChunk::from_sorted(&[2, 3, 6]);
        assert_eq!(ga.union(&gb).to_vec(), vec![1, 2, 3, 5, 6]);
    }

    #[test]
    fn concat_is_union_for_disjoint_ranges() {
        let a = DChunk::from_sorted(&[1, 2]);
        let b = DChunk::from_sorted(&[7, 9]);
        assert_eq!(a.concat(&b).to_vec(), vec![1, 2, 7, 9]);
        assert_eq!(DChunk::empty().concat(&b).to_vec(), vec![7, 9]);
    }

    #[test]
    fn difference_and_intersect() {
        let a = IChunk::from_sorted(&[1, 2, 3, 4, 5]);
        let b = IChunk::from_sorted(&[2, 4, 6]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 3, 5]);
        assert_eq!(a.intersect(&b).to_vec(), vec![2, 4]);
        // Disjoint fast paths.
        let far = IChunk::from_sorted(&[100, 200]);
        assert_eq!(a.difference(&far).to_vec(), vec![1, 2, 3, 4, 5]);
        assert!(a.intersect(&far).is_empty());
    }

    #[test]
    fn filter_keeps_predicate() {
        let a = DChunk::from_sorted(&[1, 2, 3, 4]);
        assert_eq!(a.filter(|x| x % 2 == 0).to_vec(), vec![2, 4]);
        let g = GChunk::from_sorted(&[1, 2, 3, 4]);
        assert_eq!(g.filter(|x| x % 2 == 1).to_vec(), vec![1, 3]);
    }

    #[test]
    fn decode_into_reserves() {
        let c = DChunk::from_sorted(&[1, 2, 3, 4, 5]);
        let mut out = Vec::new();
        c.decode_into(&mut out);
        assert!(out.capacity() >= 5);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn delta_memory_is_one_byte_per_small_gap() {
        let xs: Vec<u32> = (1000..1256).collect();
        let d = DChunk::from_sorted(&xs);
        assert_eq!(d.memory_bytes(), 2 + 255);
    }

    #[test]
    fn eq_is_structural() {
        let a = DChunk::from_sorted(&[1, 2]);
        let b = DChunk::from_sorted(&[1, 2]);
        let c = DChunk::from_sorted(&[1, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn adversarial_shapes_roundtrip_everywhere() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![u32::MAX],
            (0..64).collect(),
            vec![0, u32::MAX],
            vec![
                0,
                1,
                2,
                3,
                u32::MAX - 3,
                u32::MAX - 2,
                u32::MAX - 1,
                u32::MAX,
            ],
        ];
        for xs in &cases {
            assert_eq!(&PChunk::from_sorted(xs).to_vec(), xs);
            assert_eq!(&DChunk::from_sorted(xs).to_vec(), xs);
            assert_eq!(&GChunk::from_sorted(xs).to_vec(), xs);
            assert_eq!(&IChunk::from_sorted(xs).to_vec(), xs);
        }
    }
}
