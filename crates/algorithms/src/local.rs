//! Local algorithms (§5.1, §7): `2-hop` and `Local-Cluster`.
//!
//! Local queries touch a small neighborhood, so they never build a flat
//! snapshot — the `O(log n)` vertex-tree access is amortized against
//! scanning the vertex's (on average `≥ log n`) incident edges. Both
//! run sequentially per query; the experiments issue *many* queries
//! concurrently (Tables 3–4 run 2048 of them).

use aspen::{GraphView, VertexId};
use std::collections::HashMap;

/// The set of vertices within two hops of `src` (excluding `src`),
/// deduplicated. The paper reports its size; we return the vertices.
pub fn two_hop<G: GraphView>(graph: &G, src: VertexId) -> Vec<VertexId> {
    let mut out: Vec<VertexId> = Vec::new();
    graph.for_each_neighbor(src, &mut |v| out.push(v));
    let first: Vec<VertexId> = out.clone();
    for v in first {
        graph.for_each_neighbor(v, &mut |w| out.push(w));
    }
    out.sort_unstable();
    out.dedup();
    out.retain(|&v| v != src);
    out
}

/// Result of a [`local_cluster`] query.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// The vertices of the best sweep cut found.
    pub cluster: Vec<VertexId>,
    /// Conductance of that cut (lower is better; 1.0 when degenerate).
    pub conductance: f64,
}

/// `Local-Cluster`: a sequential implementation of the Nibble-Serial
/// clustering scheme [Spielman–Teng; Shun et al.], run with the paper's
/// parameters `ε = 10⁻⁶`, `T = 10` by default.
///
/// A lazy truncated random walk diffuses mass from `src` for `T`
/// steps; entries falling below `ε · deg(u)` are truncated, keeping
/// the support (and hence the work) local. A sweep over vertices
/// ordered by normalized mass returns the prefix with the best
/// conductance.
pub fn local_cluster<G: GraphView>(graph: &G, src: VertexId) -> ClusterResult {
    local_cluster_with(graph, src, 1e-6, 10)
}

/// [`local_cluster`] with explicit truncation threshold and step count.
pub fn local_cluster_with<G: GraphView>(
    graph: &G,
    src: VertexId,
    eps: f64,
    steps: usize,
) -> ClusterResult {
    let mut mass: HashMap<VertexId, f64> = HashMap::new();
    mass.insert(src, 1.0);
    for _ in 0..steps {
        let mut next: HashMap<VertexId, f64> = HashMap::with_capacity(mass.len() * 2);
        for (&u, &q) in &mass {
            let deg = graph.degree(u);
            if deg == 0 {
                *next.entry(u).or_insert(0.0) += q;
                continue;
            }
            // Lazy walk: hold half, spread half across neighbors.
            *next.entry(u).or_insert(0.0) += q / 2.0;
            let share = q / 2.0 / deg as f64;
            graph.for_each_neighbor(u, &mut |v| {
                *next.entry(v).or_insert(0.0) += share;
            });
        }
        // Truncate small entries to keep the support local.
        next.retain(|&u, q| *q >= eps * graph.degree(u).max(1) as f64);
        mass = next;
        if mass.is_empty() {
            break;
        }
    }

    // Sweep cut: order by q(u)/deg(u), take the best-conductance prefix.
    let mut order: Vec<(VertexId, f64)> = mass
        .iter()
        .map(|(&u, &q)| (u, q / graph.degree(u).max(1) as f64))
        .collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("mass is finite"));

    let total_vol = graph.num_edges() as f64;
    let mut in_cut: std::collections::HashSet<VertexId> = std::collections::HashSet::new();
    let mut vol = 0.0f64;
    let mut boundary = 0.0f64;
    let mut best = ClusterResult {
        cluster: vec![src],
        conductance: 1.0,
    };
    let mut prefix: Vec<VertexId> = Vec::new();
    for &(u, _) in &order {
        let deg = graph.degree(u) as f64;
        let mut internal = 0.0;
        graph.for_each_neighbor(u, &mut |v| {
            if in_cut.contains(&v) {
                internal += 1.0;
            }
        });
        vol += deg;
        boundary += deg - 2.0 * internal;
        in_cut.insert(u);
        prefix.push(u);
        // Conductance is undefined for S = V; only proper cuts compete.
        if vol >= total_vol {
            break;
        }
        let denom = vol.min(total_vol - vol).max(1.0);
        let cond = boundary / denom;
        if cond < best.conductance {
            best = ClusterResult {
                cluster: prefix.clone(),
                conductance: cond,
            };
        }
    }
    best.cluster.sort_unstable();
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{CompressedEdges, Graph};

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    /// Two 5-cliques joined by a single bridge edge.
    fn barbell() -> G {
        let mut edges = Vec::new();
        for a in 0u32..5 {
            for b in 0..5 {
                if a < b {
                    edges.push((a, b));
                    edges.push((a + 5, b + 5));
                }
            }
        }
        edges.push((4, 5));
        G::from_edges(&sym(&edges), Default::default())
    }

    #[test]
    fn two_hop_on_path() {
        let edges: Vec<(u32, u32)> = (0..9u32).map(|i| (i, i + 1)).collect();
        let g = G::from_edges(&sym(&edges), Default::default());
        assert_eq!(two_hop(&g, 0), vec![1, 2]);
        assert_eq!(two_hop(&g, 5), vec![3, 4, 6, 7]);
    }

    #[test]
    fn two_hop_excludes_source_and_dedups() {
        let g = G::from_edges(&sym(&[(0, 1), (0, 2), (1, 2)]), Default::default());
        assert_eq!(two_hop(&g, 0), vec![1, 2]);
    }

    #[test]
    fn cluster_finds_clique_side_of_barbell() {
        let g = barbell();
        let r = local_cluster_with(&g, 1, 1e-9, 15);
        // The left clique {0..4} is the natural low-conductance cut.
        assert_eq!(r.cluster, vec![0, 1, 2, 3, 4]);
        // one bridge edge over volume 21 (clique vol 20 + bridge)
        assert!(r.conductance < 0.1, "conductance {}", r.conductance);
    }

    #[test]
    fn cluster_from_isolated_vertex() {
        let g = G::from_edges(&sym(&[(0, 1)]), Default::default()).insert_vertices(&[9]);
        let r = local_cluster(&g, 9);
        assert_eq!(r.cluster, vec![9]);
    }

    #[test]
    fn truncation_keeps_support_small() {
        // On a long path, aggressive truncation keeps the walk near the
        // source.
        let edges: Vec<(u32, u32)> = (0..499u32).map(|i| (i, i + 1)).collect();
        let g = G::from_edges(&sym(&edges), Default::default());
        let r = local_cluster_with(&g, 250, 1e-3, 10);
        assert!(
            r.cluster.len() < 50,
            "support {} should stay local",
            r.cluster.len()
        );
    }
}
