//! Single-source betweenness centrality (Brandes' algorithm), the
//! paper's `BC` benchmark: "contributions to betweenness scores for
//! shortest paths emanating from a single vertex" (§7).
//!
//! Forward phase: level-synchronous BFS accumulating `σ(v)`, the number
//! of shortest source→v paths. The accumulation must see *every* edge
//! crossing into the next level, so the traversal is push-based with
//! visited-marking deferred to the end of each round (the same
//! structure Ligra's BC uses). Backward phase: dependencies are pulled
//! level by level in reverse:
//!
//! `δ(v) = Σ_{w : succ} σ(v)/σ(w) · (1 + δ(w))`.

use aspen::{edge_map_directed, Direction, GraphView, VertexId, VertexSubset};
use parlib::AtomicF64;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Betweenness scores from one source.
#[derive(Clone, Debug)]
pub struct BcResult {
    /// Per-vertex dependency scores `δ`.
    pub scores: Vec<f64>,
    /// Number of shortest paths from the source.
    pub num_paths: Vec<f64>,
    /// BFS levels (frontiers) discovered during the forward phase.
    pub num_levels: usize,
}

/// Computes single-source BC contributions over any graph view.
pub fn bc<G: GraphView>(graph: &G, src: VertexId) -> BcResult {
    let n = graph.id_bound();
    assert!((src as usize) < n, "source {src} outside id space {n}");
    let sigma: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
    sigma[src as usize].store(1.0);
    let visited: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    visited[src as usize].store(true, Ordering::Relaxed);
    let mut dist = vec![u32::MAX; n];
    dist[src as usize] = 0;

    // Forward: collect per-level frontiers. Push-based so that every
    // (u, v) edge into the next level contributes σ(u) to σ(v); the
    // round's frontier is deduplicated with a claim flag, and `visited`
    // flips only after the whole round.
    let mut levels: Vec<Vec<VertexId>> = vec![vec![src]];
    let mut frontier = VertexSubset::single(n, src);
    let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let next = edge_map_directed(
            graph,
            &frontier,
            |u, v| {
                let su = sigma[u as usize].load();
                sigma[v as usize].fetch_add(su);
                !claimed[v as usize].swap(true, Ordering::SeqCst)
            },
            |v| !visited[v as usize].load(Ordering::SeqCst),
            Direction::ForceSparse,
        );
        let members = next.to_vec();
        members.par_iter().for_each(|&v| {
            visited[v as usize].store(true, Ordering::Relaxed);
            claimed[v as usize].store(false, Ordering::Relaxed);
        });
        for &v in &members {
            dist[v as usize] = level;
        }
        if members.is_empty() {
            break;
        }
        levels.push(members.clone());
        frontier = next;
    }

    // Backward: pull dependencies from successors, one level at a time.
    let sigma: Vec<f64> = sigma.iter().map(|a| a.load()).collect();
    let mut delta = vec![0.0f64; n];
    for li in (0..levels.len().saturating_sub(1)).rev() {
        let contributions: Vec<(VertexId, f64)> = levels[li]
            .par_iter()
            .map(|&v| {
                let dv = dist[v as usize];
                let sv = sigma[v as usize];
                let mut acc = 0.0;
                graph.for_each_neighbor(v, &mut |w| {
                    if dist[w as usize] == dv + 1 && sigma[w as usize] > 0.0 {
                        acc += sv / sigma[w as usize] * (1.0 + delta[w as usize]);
                    }
                });
                (v, acc)
            })
            .collect();
        for (v, acc) in contributions {
            delta[v as usize] = acc;
        }
    }

    BcResult {
        scores: delta,
        num_paths: sigma,
        num_levels: levels.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{CompressedEdges, Graph};

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    /// Sequential Brandes for oracle checking.
    fn brandes_oracle(g: &G, src: u32) -> Vec<f64> {
        let n = aspen::GraphView::id_bound(g);
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![i64::MAX; n];
        let mut order = Vec::new();
        sigma[src as usize] = 1.0;
        dist[src as usize] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for v in aspen::GraphView::neighbors(g, u) {
                if dist[v as usize] == i64::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
                if dist[v as usize] == dist[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        for &v in order.iter().rev() {
            for w in aspen::GraphView::neighbors(g, v) {
                if dist[w as usize] == dist[v as usize] + 1 {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                }
            }
        }
        delta
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "score[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_dependencies() {
        // 0-1-2-3: from 0, delta = [0 unused] classic: delta(1)=2, delta(2)=1, delta(3)=0
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 3)]), Default::default());
        let r = bc(&g, 0);
        assert_close(&r.scores, &[3.0, 2.0, 1.0, 0.0]);
        assert_eq!(r.num_paths[3], 1.0);
        assert_eq!(r.num_levels, 4);
    }

    #[test]
    fn diamond_counts_two_paths() {
        // 0-1, 0-2, 1-3, 2-3: two shortest paths 0→3.
        let g = G::from_edges(&sym(&[(0, 1), (0, 2), (1, 3), (2, 3)]), Default::default());
        let r = bc(&g, 0);
        assert_eq!(r.num_paths[3], 2.0);
        assert!((r.scores[1] - 0.5).abs() < 1e-9);
        assert!((r.scores[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn matches_sequential_brandes_on_random_graph() {
        let mut edges = Vec::new();
        for i in 0u32..60 {
            edges.push((i, (i * 17 + 3) % 60));
            edges.push((i, (i * 5 + 11) % 60));
        }
        let edges: Vec<_> = sym(&edges).into_iter().filter(|&(u, v)| u != v).collect();
        let g = G::from_edges(&edges, Default::default());
        let r = bc(&g, 0);
        let oracle = brandes_oracle(&g, 0);
        assert_close(&r.scores, &oracle);
    }

    #[test]
    fn isolated_source_is_fine() {
        let g = G::from_edges(&sym(&[(0, 1)]), Default::default());
        let g = g.insert_vertices(&[5]);
        let r = bc(&g, 5);
        assert!(r.scores.iter().all(|&s| s == 0.0));
    }
}
