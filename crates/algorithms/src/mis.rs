//! Maximal independent set — the paper's third global benchmark.
//!
//! Luby-style rounds with fresh random priorities per round: every
//! undecided vertex whose priority beats all undecided neighbors joins
//! the set; its neighbors drop out. Expected `O(log n)` rounds.
//! Priorities come from the deterministic `parlib` hash, so results are
//! reproducible for a fixed seed (though *which* MIS is produced is
//! arbitrary, as for any parallel MIS).

use aspen::{GraphView, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};

const UNDECIDED: u8 = 0;
const IN_SET: u8 = 1;
const OUT: u8 = 2;

/// Computes a maximal independent set; returns a membership mask.
pub fn mis<G: GraphView>(graph: &G, seed: u64) -> Vec<bool> {
    let n = graph.id_bound();
    let state: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let mut active: Vec<VertexId> = (0..n as u32).collect();
    let mut round = 0u64;
    while !active.is_empty() {
        let pri = |v: VertexId| parlib::hash64_with_seed(u64::from(v), seed ^ round);
        // Phase 1: winners — local priority maxima among undecided
        // neighborhoods — join the set.
        let winners: Vec<VertexId> = active
            .par_iter()
            .copied()
            .filter(|&v| {
                if state[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                    return false;
                }
                let pv = pri(v);
                graph.for_each_neighbor_until(v, &mut |u| {
                    if u == v || state[u as usize].load(Ordering::Relaxed) != UNDECIDED {
                        return true;
                    }
                    let pu = pri(u);
                    // deterministic tie-break on id
                    pv > pu || (pv == pu && v > u)
                })
            })
            .collect();
        winners.par_iter().for_each(|&v| {
            state[v as usize].store(IN_SET, Ordering::Relaxed);
        });
        // Phase 2: neighbors of winners drop out.
        winners.par_iter().for_each(|&v| {
            graph.for_each_neighbor(v, &mut |u| {
                if u != v {
                    let _ = state[u as usize].compare_exchange(
                        UNDECIDED,
                        OUT,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                }
            });
        });
        active = active
            .into_par_iter()
            .filter(|&v| state[v as usize].load(Ordering::Relaxed) == UNDECIDED)
            .collect();
        round += 1;
    }
    state
        .into_iter()
        .map(|s| s.into_inner() == IN_SET)
        .collect()
}

/// Checks MIS validity: independence and maximality.
///
/// # Panics
///
/// Panics with a description of the first violation. Exposed so
/// integration tests and benches can verify results cheaply.
pub fn verify_mis<G: GraphView>(graph: &G, in_set: &[bool]) {
    let n = graph.id_bound();
    assert_eq!(in_set.len(), n);
    for v in 0..n as u32 {
        if in_set[v as usize] {
            graph.for_each_neighbor(v, &mut |u| {
                assert!(
                    u == v || !in_set[u as usize],
                    "edge ({v},{u}) inside the independent set"
                );
            });
        } else {
            let mut has_set_neighbor = false;
            graph.for_each_neighbor(v, &mut |u| {
                if u != v && in_set[u as usize] {
                    has_set_neighbor = true;
                }
            });
            assert!(
                has_set_neighbor,
                "vertex {v} excluded without a neighbor in the set (not maximal)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{CompressedEdges, Graph};

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn triangle_yields_exactly_one() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (0, 2)]), Default::default());
        let m = mis(&g, 1);
        assert_eq!(m.iter().filter(|&&b| b).count(), 1);
        verify_mis(&g, &m);
    }

    #[test]
    fn path_mis_is_valid() {
        let edges: Vec<(u32, u32)> = (0..19u32).map(|i| (i, i + 1)).collect();
        let g = G::from_edges(&sym(&edges), Default::default());
        let m = mis(&g, 7);
        verify_mis(&g, &m);
        // Path MIS has at least ceil(n/3) members.
        assert!(m.iter().filter(|&&b| b).count() >= 7);
    }

    #[test]
    fn random_graph_valid_for_multiple_seeds() {
        let mut edges = Vec::new();
        for i in 0u32..150 {
            edges.push((i, (i * 13 + 1) % 150));
            edges.push((i, (i * 29 + 7) % 150));
        }
        let edges: Vec<_> = sym(&edges).into_iter().filter(|&(u, v)| u != v).collect();
        let g = G::from_edges(&edges, Default::default());
        for seed in [0, 1, 42] {
            let m = mis(&g, seed);
            verify_mis(&g, &m);
        }
    }

    #[test]
    fn edgeless_graph_takes_everything() {
        let g = G::new(Default::default()).insert_vertices(&[0, 1, 2, 3]);
        let m = mis(&g, 0);
        assert!(m.iter().all(|&b| b));
        verify_mis(&g, &m);
    }
}
