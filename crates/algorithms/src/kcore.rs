//! k-core decomposition by iterative peeling — an extension algorithm
//! in the spirit of the bucketing workloads (Julienne) the paper cites
//! as running on Aspen with minor changes.

use aspen::GraphView;

/// Computes the coreness of every vertex: the largest `k` such that the
/// vertex belongs to a subgraph of minimum degree `k`.
///
/// Standard peeling: repeatedly remove the minimum-degree vertex,
/// recording the running maximum of the degrees at removal time.
/// `O(n + m)` with bucketed degrees.
pub fn kcore<G: GraphView>(graph: &G) -> Vec<u32> {
    let n = graph.id_bound();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v as u32);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut current_core = 0usize;
    let mut processed = 0usize;
    let mut cursor = 0usize;
    while processed < n {
        // Find the next non-empty bucket at or below the frontier; a
        // vertex's degree only decreases, so stale entries are skipped.
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let Some(v) = buckets.get_mut(cursor).and_then(Vec::pop) else {
            break;
        };
        if removed[v as usize] || degree[v as usize] != cursor {
            continue; // stale bucket entry
        }
        current_core = current_core.max(cursor);
        core[v as usize] = current_core as u32;
        removed[v as usize] = true;
        processed += 1;
        graph.for_each_neighbor(v, &mut |u| {
            let ui = u as usize;
            if !removed[ui] && degree[ui] > 0 {
                degree[ui] -= 1;
                buckets[degree[ui]].push(u);
            }
        });
        // Peeling can lower the frontier: restart the scan from the
        // smallest possibly-affected bucket.
        cursor = cursor.saturating_sub(1);
    }
    core
}

/// The largest coreness in the graph (the degeneracy).
pub fn degeneracy(core: &[u32]) -> u32 {
    core.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{CompressedEdges, Graph};

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn clique_core_is_k_minus_one() {
        let mut edges = Vec::new();
        for a in 0u32..5 {
            for b in (a + 1)..5 {
                edges.push((a, b));
            }
        }
        let g = G::from_edges(&sym(&edges), Default::default());
        let core = kcore(&g);
        assert!(
            core.iter().all(|&c| c == 4),
            "5-clique is a 4-core: {core:?}"
        );
    }

    #[test]
    fn path_core_is_one() {
        let edges: Vec<(u32, u32)> = (0..9u32).map(|i| (i, i + 1)).collect();
        let g = G::from_edges(&sym(&edges), Default::default());
        let core = kcore(&g);
        assert!(core.iter().all(|&c| c == 1), "{core:?}");
    }

    #[test]
    fn clique_with_pendant() {
        // 4-clique {0..3} plus pendant 4 attached to 0.
        let mut edges = vec![(0u32, 4u32)];
        for a in 0u32..4 {
            for b in (a + 1)..4 {
                edges.push((a, b));
            }
        }
        let g = G::from_edges(&sym(&edges), Default::default());
        let core = kcore(&g);
        assert_eq!(core[4], 1);
        for (v, &c) in core.iter().enumerate().take(4) {
            assert_eq!(c, 3, "core of clique member {v}");
        }
        assert_eq!(degeneracy(&core), 3);
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = G::new(Default::default()).insert_vertices(&[0, 1, 2]);
        let core = kcore(&g);
        assert!(core.iter().all(|&c| c == 0));
    }
}
