//! Breadth-first search: the paper's flagship global algorithm
//! (Tables 3–4, 6, 11–15).
//!
//! Level-synchronous frontier expansion through `edge_map`, with the
//! parent array settled by an atomic compare-and-swap so every vertex
//! is claimed exactly once. Runs over any [`GraphView`] — an Aspen
//! snapshot directly (paying `O(log n)` per vertex access), a
//! [`aspen::FlatSnapshot`] (the §5.1 optimization), or any baseline
//! engine.

use aspen::{edge_map_directed, Direction, GraphView, VertexId, VertexSubset};
use std::sync::atomic::{AtomicU32, Ordering};

/// Marker for unreached vertices in parent/distance arrays.
pub const UNREACHED: u32 = u32::MAX;

/// BFS result: parents and hop distances from the source.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// `parent[v]` is the BFS-tree parent of `v` (`parent[src] == src`),
    /// or [`UNREACHED`].
    pub parent: Vec<u32>,
    /// `dist[v]` is the hop distance from the source, or [`UNREACHED`].
    pub dist: Vec<u32>,
    /// Number of frontier expansion rounds (the graph's eccentricity
    /// from the source, plus one).
    pub rounds: usize,
}

impl BfsResult {
    /// Number of vertices reached (including the source).
    pub fn num_reached(&self) -> usize {
        self.parent.iter().filter(|&&p| p != UNREACHED).count()
    }
}

/// BFS with automatic direction optimization.
pub fn bfs<G: GraphView>(graph: &G, src: VertexId) -> BfsResult {
    bfs_directed(graph, src, Direction::Auto)
}

/// BFS with an explicit traversal policy ([`Direction::ForceSparse`]
/// reproduces the "no direction optimization" rows of Table 11).
pub fn bfs_directed<G: GraphView>(graph: &G, src: VertexId, direction: Direction) -> BfsResult {
    let n = graph.id_bound();
    assert!((src as usize) < n, "source {src} outside id space {n}");
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    parent[src as usize].store(src, Ordering::Relaxed);
    let mut dist = vec![UNREACHED; n];
    dist[src as usize] = 0;

    let mut frontier = VertexSubset::single(n, src);
    let mut level = 0u32;
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        level += 1;
        frontier = edge_map_directed(
            graph,
            &frontier,
            |u, v| {
                parent[v as usize]
                    .compare_exchange(UNREACHED, u, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            },
            |v| parent[v as usize].load(Ordering::SeqCst) == UNREACHED,
            direction,
        );
        for v in frontier.to_vec() {
            dist[v as usize] = level;
        }
    }
    BfsResult {
        parent: parent.into_iter().map(AtomicU32::into_inner).collect(),
        dist,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{CompressedEdges, FlatSnapshot, Graph};

    type G = Graph<CompressedEdges>;

    fn path(n: u32) -> G {
        let edges: Vec<(u32, u32)> = (0..n - 1).flat_map(|i| [(i, i + 1), (i + 1, i)]).collect();
        G::from_edges(&edges, Default::default())
    }

    #[test]
    fn path_distances() {
        let g = path(10);
        let r = bfs(&g, 0);
        for v in 0..10 {
            assert_eq!(r.dist[v], v as u32);
        }
        assert_eq!(r.parent[0], 0);
        assert_eq!(r.parent[5], 4);
        assert_eq!(r.rounds, 10);
    }

    #[test]
    fn disconnected_component_unreached() {
        let g = G::from_edges(&[(0, 1), (1, 0), (5, 6), (6, 5)], Default::default());
        let r = bfs(&g, 0);
        assert_eq!(r.dist[1], 1);
        assert_eq!(r.dist[5], UNREACHED);
        assert_eq!(r.parent[6], UNREACHED);
        assert_eq!(r.num_reached(), 2);
    }

    #[test]
    fn sparse_dense_and_flat_agree() {
        let g = {
            // a denser random-ish graph
            let mut edges = Vec::new();
            for i in 0u32..200 {
                for j in [(i * 7 + 1) % 200, (i * 13 + 5) % 200, (i + 1) % 200] {
                    if i != j {
                        edges.push((i, j));
                        edges.push((j, i));
                    }
                }
            }
            G::from_edges(&edges, Default::default())
        };
        let flat = FlatSnapshot::new(&g);
        let a = bfs_directed(&g, 3, Direction::ForceSparse);
        let b = bfs_directed(&g, 3, Direction::ForceDense);
        let c = bfs_directed(&flat, 3, Direction::Auto);
        assert_eq!(a.dist, b.dist, "sparse vs dense");
        assert_eq!(a.dist, c.dist, "tree vs flat snapshot");
    }

    #[test]
    fn parents_form_a_valid_tree() {
        let g = path(50);
        let r = bfs(&g, 25);
        for v in 0u32..50 {
            if v == 25 {
                assert_eq!(r.parent[v as usize], 25);
            } else {
                let p = r.parent[v as usize];
                assert_eq!(r.dist[v as usize], r.dist[p as usize] + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside id space")]
    fn source_bounds_checked() {
        let g = path(4);
        let _ = bfs(&g, 9);
    }
}
