//! Ligra-style parallel graph algorithms over any [`aspen::GraphView`].
//!
//! The paper implements five algorithms in Aspen (§7): three global —
//! [`bfs`], [`bc`] (single-source betweenness), [`mis`] — and two local
//! — [`two_hop`] and [`local_cluster`] (Nibble-Serial). This crate adds
//! three extensions in the same style: [`connected_components`],
//! [`pagerank`] and [`kcore`].
//!
//! Everything is generic over [`aspen::GraphView`], so the identical
//! algorithm code runs against:
//!
//! * an Aspen snapshot (vertex-tree lookups, `O(log n)` per vertex),
//! * an [`aspen::FlatSnapshot`] (the §5.1 flat-snapshot optimization),
//! * every baseline engine in `aspen-baselines` (CSR, compressed CSR,
//!   Stinger-like, LLAMA-like) — which is what makes the paper's
//!   cross-system tables apples-to-apples.

mod bc;
mod bfs;
mod cc;
pub mod incremental;
mod kcore;
mod local;
mod mis;
mod pagerank;
pub mod sharded;
mod sssp;
mod triangles;

pub use bc::{bc, BcResult};
pub use bfs::{bfs, bfs_directed, BfsResult, UNREACHED};
pub use cc::{connected_components, num_components};
pub use incremental::{DeltaBfs, DeltaCc, RepairStats};
pub use kcore::{degeneracy, kcore};
pub use local::{local_cluster, local_cluster_with, two_hop, ClusterResult};
pub use mis::{mis, verify_mis};
pub use pagerank::pagerank;
pub use sharded::{bfs_sharded, cc_sharded};
pub use sssp::{sssp, INF};
pub use triangles::{clustering_coefficients, triangle_count};
