//! Incremental (diff-driven) analytics: repair standing results
//! instead of recomputing them per snapshot.
//!
//! The paper's purely-functional versions make the *difference* between
//! consecutive snapshots cheap to extract (`aspen::diff_graphs`, §8's
//! historical-analysis direction); this module consumes those
//! [`aspen::GraphDiff`]s to maintain analytics across versions:
//!
//! * [`DeltaCc`] — connected-component labels, kept as a min-id
//!   partition with explicit member lists. Edge inserts union
//!   components in `O(smaller-side relabel)`; deletes recompute only
//!   the components that actually lost an edge or vertex.
//! * [`DeltaBfs`] — single-source hop distances, kept with an explicit
//!   BFS tree. Deletes orphan the subtrees hanging off removed tree
//!   edges; a bounded multi-source re-settle repairs exactly the
//!   orphaned region plus whatever added edges improve.
//!
//! Both structures expose `apply_diff(&diff, &new_snapshot)` and
//! guarantee bit-identical results to their from-scratch counterparts
//! ([`crate::connected_components`], [`crate::bfs`] — distances only;
//! BFS parents are CAS-race nondeterministic). That guarantee is
//! enforced by the differential oracle suite in
//! `tests/incremental_oracle.rs`, which replays randomized batched
//! histories and compares against recomputation after every batch.
//!
//! When a diff touches more than half the id space the structures fall
//! back to full recomputation (reported in [`RepairStats`]) — repair
//! only wins while deltas are small, and the `repro incremental` bench
//! experiment measures exactly where that crossover sits.

mod bfs;
mod cc;

pub use bfs::DeltaBfs;
pub use cc::DeltaCc;

/// What one `apply_diff` call actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// The diff touched too much of the graph and the structure fell
    /// back to from-scratch recomputation.
    pub full_recompute: bool,
    /// Vertices in the delete-affected region (members of components
    /// that lost an edge for CC; orphaned tree descendants for BFS).
    pub region: usize,
    /// Vertices whose stored value was rewritten (relabeled members
    /// for CC; re-settled distances for BFS).
    pub repaired: usize,
}
