//! Incremental single-source BFS distances over version diffs.

use super::RepairStats;
use crate::bfs::{bfs, UNREACHED};
use aspen::{GraphDiff, GraphView};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Standing hop distances from a fixed source, repaired from
/// [`GraphDiff`]s.
///
/// Distances match [`bfs`] on the current snapshot exactly. (Parent
/// arrays are not comparable: the from-scratch CAS race picks an
/// arbitrary valid BFS tree. This structure keeps its own valid tree —
/// `dist[parent[v]] + 1 == dist[v]` — as repair bookkeeping.)
///
/// Repair strategy, after "Low-Latency Sliding Window Connectivity"'s
/// expiry/repair split:
///
/// 1. **Orphan** the tree descendants of every vertex whose tree edge
///    was removed (and of every removed vertex): only their distances
///    can have grown. Everything outside the orphaned region keeps a
///    certified shortest path — its tree branch survived the batch —
///    so its distance can only *improve*, and only via added edges.
/// 2. **Re-settle** with a unit-weight multi-source Dijkstra seeded
///    from (a) each orphan's best non-orphan neighbor and (b) every
///    added edge that improves its head. Relaxation cascades handle
///    paths that weave through the orphaned region.
pub struct DeltaBfs {
    src: u32,
    dist: Vec<u32>,
    parent: Vec<u32>,
    /// Tree children of each vertex (inverse of `parent`).
    children: Vec<Vec<u32>>,
}

impl DeltaBfs {
    /// Initializes from a snapshot by from-scratch recomputation.
    ///
    /// A source outside the id space yields an all-unreached result
    /// (where [`bfs`] would panic); it stays empty until the id space
    /// grows to include the source again.
    pub fn new<G: GraphView>(graph: &G, src: u32) -> Self {
        let n = graph.id_bound();
        if (src as usize) >= n {
            return DeltaBfs {
                src,
                dist: vec![UNREACHED; n],
                parent: vec![UNREACHED; n],
                children: vec![Vec::new(); n],
            };
        }
        let r = bfs(graph, src);
        Self::from_tree(src, r.parent, r.dist)
    }

    fn from_tree(src: u32, parent: Vec<u32>, dist: Vec<u32>) -> Self {
        let mut children = vec![Vec::new(); parent.len()];
        for (v, &p) in parent.iter().enumerate() {
            if p != UNREACHED && p != v as u32 {
                children[p as usize].push(v as u32);
            }
        }
        DeltaBfs {
            src,
            dist,
            parent,
            children,
        }
    }

    /// The BFS source.
    pub fn source(&self) -> u32 {
        self.src
    }

    /// The maintained distances (identical to [`bfs`]`(g, src).dist`).
    pub fn dist(&self) -> &[u32] {
        &self.dist
    }

    /// Number of vertices currently reached (source included).
    pub fn num_reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != UNREACHED).count()
    }

    fn full_recompute<G: GraphView>(&mut self, graph: &G, mut stats: RepairStats) -> RepairStats {
        *self = Self::new(graph, self.src);
        stats.full_recompute = true;
        stats
    }

    /// Repairs the distances for the version `graph`, given the diff
    /// from the previously-applied version to `graph`.
    pub fn apply_diff<G: GraphView>(&mut self, diff: &GraphDiff, graph: &G) -> RepairStats {
        let n_new = graph.id_bound();
        let stats = RepairStats::default();
        if (self.src as usize) >= n_new {
            self.dist = vec![UNREACHED; n_new];
            self.parent = vec![UNREACHED; n_new];
            self.children = vec![Vec::new(); n_new];
            return stats;
        }
        // The source just (re-)entered the id space: no usable state.
        if (self.src as usize) >= self.dist.len() {
            return self.full_recompute(graph, stats);
        }
        self.repair(diff, graph, n_new, stats)
    }

    fn repair<G: GraphView>(
        &mut self,
        diff: &GraphDiff,
        graph: &G,
        n_new: usize,
        mut stats: RepairStats,
    ) -> RepairStats {
        let n_old = self.dist.len();
        if n_new > n_old {
            self.dist.resize(n_new, UNREACHED);
            self.parent.resize(n_new, UNREACHED);
            self.children.resize(n_new, Vec::new());
        }

        // --- Phase 1: orphan the invalidated subtrees. ---
        let mut orphans: HashSet<u32> = HashSet::new();
        let mut queue: Vec<u32> = Vec::new();
        let suspect = |x: u32, orphans: &mut HashSet<u32>, queue: &mut Vec<u32>| {
            if x != self.src && orphans.insert(x) {
                queue.push(x);
            }
        };
        for &(u, v) in &diff.removed_edges {
            if (v as usize) < self.parent.len() && self.parent[v as usize] == u {
                suspect(v, &mut orphans, &mut queue);
            }
        }
        for &x in &diff.removed_vertices {
            if (x as usize) < self.parent.len() {
                suspect(x, &mut orphans, &mut queue);
            }
        }
        while let Some(v) = queue.pop() {
            for &c in &self.children[v as usize] {
                if orphans.insert(c) {
                    queue.push(c);
                }
            }
        }
        stats.region = orphans.len();
        if stats.region > n_new / 2 {
            return self.full_recompute(graph, stats);
        }
        for &o in &orphans {
            let p = self.parent[o as usize];
            if p != UNREACHED && p != o && !orphans.contains(&p) {
                self.children[p as usize].retain(|&c| c != o);
            }
        }
        for &o in &orphans {
            self.dist[o as usize] = UNREACHED;
            self.parent[o as usize] = UNREACHED;
            self.children[o as usize].clear();
        }

        // --- Phase 2: re-settle from the repair frontier. ---
        // Entries are (candidate dist, vertex, parent candidate).
        let mut heap: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new();
        for &o in &orphans {
            if (o as usize) >= n_new {
                continue; // id left the space; stays unreached
            }
            let mut best: Option<(u32, u32)> = None;
            graph.for_each_neighbor(o, &mut |w| {
                if !orphans.contains(&w) && self.dist[w as usize] != UNREACHED {
                    let d = self.dist[w as usize] + 1;
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, w));
                    }
                }
            });
            if let Some((d, w)) = best {
                heap.push(Reverse((d, o, w)));
            }
        }
        for &(u, v) in &diff.added_edges {
            let du = self.dist[u as usize];
            if du != UNREACHED && du + 1 < self.dist[v as usize] {
                heap.push(Reverse((du + 1, v, u)));
            }
        }
        while let Some(Reverse((d, v, p))) = heap.pop() {
            if d >= self.dist[v as usize] {
                continue; // stale entry
            }
            let old_p = self.parent[v as usize];
            if old_p != UNREACHED && old_p != v {
                self.children[old_p as usize].retain(|&c| c != v);
            }
            self.dist[v as usize] = d;
            self.parent[v as usize] = p;
            self.children[p as usize].push(v);
            stats.repaired += 1;
            graph.for_each_neighbor(v, &mut |w| {
                if d + 1 < self.dist[w as usize] {
                    heap.push(Reverse((d + 1, w, v)));
                }
            });
        }

        if n_new < self.dist.len() {
            self.dist.truncate(n_new);
            self.parent.truncate(n_new);
            self.children.truncate(n_new);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{diff_graphs, CompressedEdges, Graph};

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    fn check_against_scratch(b: &DeltaBfs, g: &G) {
        assert_eq!(b.dist(), bfs(g, b.source()).dist.as_slice());
        // The maintained tree must stay internally consistent.
        for v in 0..b.dist.len() as u32 {
            let p = b.parent[v as usize];
            if v == b.src || p == UNREACHED {
                continue;
            }
            assert_eq!(
                b.dist[v as usize],
                b.dist[p as usize] + 1,
                "tree broken at {v}"
            );
            assert!(b.children[p as usize].contains(&v));
        }
    }

    #[test]
    fn insert_shortens_distances() {
        let path: Vec<(u32, u32)> = (0..9u32).map(|i| (i, i + 1)).collect();
        let g = G::from_edges(&sym(&path), Default::default());
        let mut b = DeltaBfs::new(&g, 0);
        assert_eq!(b.dist()[9], 9);
        let g2 = g.insert_edges(&sym(&[(0, 8)]));
        let stats = b.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert!(!stats.full_recompute);
        assert_eq!(b.dist()[9], 2);
        check_against_scratch(&b, &g2);
    }

    #[test]
    fn delete_tree_edge_reroutes() {
        // A cycle: cutting one tree edge leaves the long way around.
        let ring: Vec<(u32, u32)> = (0..8u32).map(|i| (i, (i + 1) % 8)).collect();
        let g = G::from_edges(&sym(&ring), Default::default());
        let mut b = DeltaBfs::new(&g, 0);
        assert_eq!(b.dist()[1], 1);
        let g2 = g.delete_edges(&sym(&[(0, 1)]));
        b.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert_eq!(b.dist()[1], 7);
        check_against_scratch(&b, &g2);
    }

    #[test]
    fn delete_disconnects_subtree() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 3)]), Default::default());
        let mut b = DeltaBfs::new(&g, 0);
        let g2 = g.delete_edges(&sym(&[(1, 2)]));
        let stats = b.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert_eq!(b.dist()[2], UNREACHED);
        assert_eq!(b.dist()[3], UNREACHED);
        assert_eq!(stats.region, 2);
        check_against_scratch(&b, &g2);
    }

    #[test]
    fn removed_vertex_unreaches_and_reroutes() {
        // 0-1-2 and 0-3-2: removing 1 leaves 2 reachable via 3.
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (0, 3), (3, 2)]), Default::default());
        let mut b = DeltaBfs::new(&g, 0);
        let g2 = g.delete_vertices(&[1]);
        b.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert_eq!(b.dist()[1], UNREACHED);
        assert_eq!(b.dist()[2], 2);
        check_against_scratch(&b, &g2);
    }

    #[test]
    fn batch_with_inserts_and_deletes() {
        let path: Vec<(u32, u32)> = (0..19u32).map(|i| (i, i + 1)).collect();
        let g = G::from_edges(&sym(&path), Default::default());
        let mut b = DeltaBfs::new(&g, 10);
        let g2 = g
            .delete_edges(&sym(&[(10, 11), (3, 4)]))
            .insert_edges(&sym(&[(0, 19), (5, 15)]));
        b.apply_diff(&diff_graphs(&g, &g2), &g2);
        check_against_scratch(&b, &g2);
    }

    #[test]
    fn id_space_growth_and_shrink() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2)]), Default::default());
        let mut b = DeltaBfs::new(&g, 0);
        let g2 = g.insert_edges(&sym(&[(2, 8)]));
        b.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert_eq!(b.dist().len(), 9);
        assert_eq!(b.dist()[8], 3);
        check_against_scratch(&b, &g2);
        let g3 = g2.delete_vertices(&[8]);
        b.apply_diff(&diff_graphs(&g2, &g3), &g3);
        assert_eq!(b.dist().len(), 3);
        check_against_scratch(&b, &g3);
    }

    #[test]
    fn huge_delta_falls_back_to_recompute() {
        let path: Vec<(u32, u32)> = (0..63u32).map(|i| (i, i + 1)).collect();
        let g = G::from_edges(&sym(&path), Default::default());
        let mut b = DeltaBfs::new(&g, 0);
        let g2 = g.delete_edges(&sym(&[(0, 1)])); // orphans 63 of 64
        let stats = b.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert!(stats.full_recompute);
        check_against_scratch(&b, &g2);
    }

    #[test]
    fn source_outside_id_space_is_all_unreached() {
        let g = G::from_edges(&sym(&[(0, 1)]), Default::default());
        let b = DeltaBfs::new(&g, 40);
        assert_eq!(b.num_reached(), 0);
    }

    #[test]
    fn empty_diff_is_a_noop() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2)]), Default::default());
        let mut b = DeltaBfs::new(&g, 0);
        let before = b.dist().to_vec();
        let stats = b.apply_diff(&GraphDiff::default(), &g);
        assert_eq!(stats, RepairStats::default());
        assert_eq!(b.dist(), before.as_slice());
    }
}
