//! Incremental connected components over version diffs.

use super::RepairStats;
use crate::cc::connected_components;
use aspen::{GraphDiff, GraphView};
use std::collections::{HashMap, HashSet};

/// Standing connected-component labels, repaired from [`GraphDiff`]s.
///
/// Matches [`connected_components`] exactly: `labels[v]` is the
/// smallest vertex id in `v`'s component over the dense `0..id_bound`
/// space, so ids with no vertex are their own singleton components.
///
/// Representation: the label array plus member lists for every
/// component of size ≥ 2 (singletons are implicit — `labels[v] == v`
/// and no entry). Inserting an edge between two components relabels
/// the one with the larger root; deleting edges or vertices recomputes
/// only the member set of the components that were actually hit, via a
/// local union–find restricted to that region. Neighbors outside the
/// region can be skipped during that sweep: an edge that *survived*
/// the batch connects vertices that were already in the same (hit)
/// component, and an edge *added* by the batch is replayed by the
/// insert phase afterwards.
///
/// Before paying for a region sweep, the delete phase tries the
/// classic dynamic-connectivity shortcut: a budgeted bidirectional
/// search proving each deleted edge's endpoints are still connected in
/// the *new* graph. If every deleted edge reconnects (and no vertices
/// were removed), the partition is provably unchanged — any old path
/// that used a deleted edge reroutes through the replacement path — so
/// the whole delete phase is a no-op. Most deletes inside a dense
/// component reconnect within a handful of hops, which is what keeps
/// repair cheap on delete-light batches even when the hit component is
/// the giant one.
pub struct DeltaCc {
    labels: Vec<u32>,
    /// Root id → all member ids (root included); only size ≥ 2.
    members: HashMap<u32, Vec<u32>>,
}

impl DeltaCc {
    /// Initializes from a snapshot by from-scratch recomputation.
    pub fn new<G: GraphView>(graph: &G) -> Self {
        Self::from_labels(connected_components(graph))
    }

    fn from_labels(labels: Vec<u32>) -> Self {
        let mut members: HashMap<u32, Vec<u32>> = HashMap::new();
        for (v, &l) in labels.iter().enumerate() {
            members.entry(l).or_default().push(v as u32);
        }
        members.retain(|_, ms| ms.len() > 1);
        DeltaCc { labels, members }
    }

    /// The maintained label array (identical to what
    /// [`connected_components`] on the current snapshot would return).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of distinct components (singletons included).
    pub fn num_components(&self) -> usize {
        crate::cc::num_components(&self.labels)
    }

    fn full_recompute<G: GraphView>(&mut self, graph: &G, mut stats: RepairStats) -> RepairStats {
        *self = Self::new(graph);
        stats.full_recompute = true;
        stats
    }

    /// Repairs the labels for the version `graph`, given the diff from
    /// the previously-applied version to `graph`.
    pub fn apply_diff<G: GraphView>(&mut self, diff: &GraphDiff, graph: &G) -> RepairStats {
        let n_new = graph.id_bound();
        let mut stats = RepairStats::default();

        // Grow the id space first: new ids start as singletons.
        let n_old = self.labels.len();
        if n_new > n_old {
            self.labels.extend(n_old as u32..n_new as u32);
        }

        // --- Delete phase: recompute the hit components locally
        // (skipped entirely when the reconnection shortcut proves the
        // deletions left the partition untouched). ---
        let deletes_noop = diff.removed_vertices.is_empty()
            && (diff.removed_edges.is_empty() || deletes_preserve_partition(diff, graph));
        if !deletes_noop {
            let mut roots: HashSet<u32> = HashSet::new();
            for &(u, v) in &diff.removed_edges {
                roots.insert(self.labels[u as usize]);
                roots.insert(self.labels[v as usize]);
            }
            for &x in &diff.removed_vertices {
                if (x as usize) < self.labels.len() {
                    roots.insert(self.labels[x as usize]);
                }
            }
            let mut region: Vec<u32> = Vec::new();
            for r in roots {
                match self.members.remove(&r) {
                    Some(ms) => region.extend(ms),
                    None => region.push(r),
                }
            }
            stats.region = region.len();
            if stats.region > n_new / 2 {
                return self.full_recompute(graph, stats);
            }

            let removed: HashSet<u32> = diff.removed_vertices.iter().copied().collect();
            // Vertices that remain present after this batch.
            let live: Vec<u32> = region
                .iter()
                .copied()
                .filter(|&v| !removed.contains(&v) && (v as usize) < n_new)
                .collect();
            let index: HashMap<u32, u32> = live
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect();

            // Local union–find over the live region.
            let mut uf: Vec<u32> = (0..live.len() as u32).collect();
            fn find(uf: &mut [u32], mut x: u32) -> u32 {
                while uf[x as usize] != x {
                    uf[x as usize] = uf[uf[x as usize] as usize];
                    x = uf[x as usize];
                }
                x
            }
            for (i, &u) in live.iter().enumerate() {
                graph.for_each_neighbor(u, &mut |w| {
                    if let Some(&j) = index.get(&w) {
                        let (ri, rj) = (find(&mut uf, i as u32), find(&mut uf, j));
                        if ri != rj {
                            uf[ri.max(rj) as usize] = ri.min(rj);
                        }
                    }
                });
            }
            let mut classes: HashMap<u32, Vec<u32>> = HashMap::new();
            for (i, &v) in live.iter().enumerate() {
                classes.entry(find(&mut uf, i as u32)).or_default().push(v);
            }
            for (_, ms) in classes {
                let label = ms.iter().copied().min().expect("nonempty class");
                for &m in &ms {
                    self.labels[m as usize] = label;
                }
                stats.repaired += ms.len();
                if ms.len() > 1 {
                    self.members.insert(label, ms);
                }
            }
            // Removed vertices fall back to implicit singletons.
            for &x in &diff.removed_vertices {
                if (x as usize) < self.labels.len() {
                    self.labels[x as usize] = x;
                }
            }
        }

        // --- Insert phase: union across every added edge. ---
        for &(u, v) in &diff.added_edges {
            let (lu, lv) = (self.labels[u as usize], self.labels[v as usize]);
            if lu == lv {
                continue;
            }
            // The root is the minimum member id, so the larger-rooted
            // side is the one that must relabel.
            let (keep, lose) = (lu.min(lv), lu.max(lv));
            let mut losers = self.members.remove(&lose).unwrap_or_else(|| vec![lose]);
            for &m in &losers {
                self.labels[m as usize] = keep;
            }
            stats.repaired += losers.len();
            self.members
                .entry(keep)
                .or_insert_with(|| vec![keep])
                .append(&mut losers);
        }

        // Shrink last: dropped ids were removed vertices (already
        // singletons, absent from every member list) or never existed.
        if n_new < self.labels.len() {
            self.members.retain(|&r, _| (r as usize) < n_new);
            self.labels.truncate(n_new);
        }
        stats
    }
}

/// True when every deleted edge's endpoints are still connected in the
/// new graph — which proves the component partition was not changed by
/// the deletions (merges from added edges are the insert phase's job).
///
/// Budgeting: the shortcut may scan at most ~`m/4` edges for the whole
/// batch (a quarter of what one recompute pass costs), split across
/// the deleted edges; each edge gets at least enough to meet in the
/// middle of a dense component and at most 16K scans. Blowing a budget
/// just means the region sweep runs — never a wrong answer.
fn deletes_preserve_partition<G: GraphView>(diff: &GraphDiff, graph: &G) -> bool {
    let n = graph.id_bound();
    let total_budget = (graph.num_edges() as usize / 4).max(32_768);
    let undirected = (diff.removed_edges.len() / 2).max(1);
    let per_edge = (total_budget / undirected).clamp(1024, 16_384);
    let mut spent = 0usize;
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    diff.removed_edges.iter().all(|&(u, v)| {
        let key = if u < v { (u, v) } else { (v, u) };
        if !seen.insert(key) {
            return true;
        }
        if spent >= total_budget || (u as usize) >= n || (v as usize) >= n {
            return false;
        }
        let (ok, scanned) = reconnected(graph, u, v, per_edge.min(total_budget - spent));
        spent += scanned;
        ok
    })
}

struct Side {
    visited: HashSet<u32>,
    frontier: Vec<u32>,
}

impl Side {
    fn new(start: u32) -> Self {
        Side {
            visited: HashSet::from([start]),
            frontier: vec![start],
        }
    }
}

/// Bidirectional breadth-first search for a path between `s` and `t`,
/// scanning at most ~`budget` edges; returns whether they met plus the
/// number of edges actually scanned. `false` covers both provable
/// disconnection (one side exhausted its component) and a blown budget
/// — callers treat `false` as "do the sweep".
fn reconnected<G: GraphView>(graph: &G, s: u32, t: u32, budget: usize) -> (bool, usize) {
    if s == t {
        return (true, 0);
    }
    let mut a = Side::new(s);
    let mut b = Side::new(t);
    let mut scanned = 0usize;
    while scanned <= budget {
        // Expand the smaller frontier; if it is empty, that side's
        // whole component has been explored without meeting the other.
        let expand_a = a.frontier.len() <= b.frontier.len();
        let met = if expand_a {
            if a.frontier.is_empty() {
                return (false, scanned);
            }
            expand_level(graph, &mut a, &b.visited, &mut scanned)
        } else {
            if b.frontier.is_empty() {
                return (false, scanned);
            }
            expand_level(graph, &mut b, &a.visited, &mut scanned)
        };
        if met {
            return (true, scanned);
        }
    }
    (false, scanned)
}

/// Expands one BFS level of `this`; true if it touched the other side.
fn expand_level<G: GraphView>(
    graph: &G,
    this: &mut Side,
    other_visited: &HashSet<u32>,
    scanned: &mut usize,
) -> bool {
    let frontier = std::mem::take(&mut this.frontier);
    let mut met = false;
    for &x in &frontier {
        graph.for_each_neighbor(x, &mut |y| {
            *scanned += 1;
            if met || other_visited.contains(&y) {
                met = true;
            } else if this.visited.insert(y) {
                this.frontier.push(y);
            }
        });
        if met {
            break;
        }
    }
    met
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{diff_graphs, CompressedEdges, Graph};

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    fn check_against_scratch(cc: &DeltaCc, g: &G) {
        assert_eq!(cc.labels(), connected_components(g).as_slice());
    }

    #[test]
    fn insert_unions_components() {
        let g = G::from_edges(&sym(&[(0, 1), (3, 4)]), Default::default());
        let mut cc = DeltaCc::new(&g);
        assert_eq!(cc.num_components(), 3); // {0,1} {3,4} {2}
        let g2 = g.insert_edges(&sym(&[(1, 3)]));
        let stats = cc.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert!(!stats.full_recompute);
        check_against_scratch(&cc, &g2);
        assert_eq!(cc.num_components(), 2);
    }

    #[test]
    fn delete_splits_components() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 3)]), Default::default());
        let mut cc = DeltaCc::new(&g);
        let g2 = g.delete_edges(&sym(&[(1, 2)]));
        let stats = cc.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert_eq!(stats.region, 4); // whole hit component re-examined
        check_against_scratch(&cc, &g2);
        assert_eq!(cc.num_components(), 2);
    }

    #[test]
    fn delete_inside_cycle_keeps_component() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 0)]), Default::default());
        let mut cc = DeltaCc::new(&g);
        let g2 = g.delete_edges(&sym(&[(0, 1)]));
        cc.apply_diff(&diff_graphs(&g, &g2), &g2);
        check_against_scratch(&cc, &g2);
        assert_eq!(cc.num_components(), 1);
    }

    #[test]
    fn vertex_removal_and_id_space_shrink() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 9)]), Default::default());
        let mut cc = DeltaCc::new(&g);
        assert_eq!(cc.labels().len(), 10);
        let g2 = g.delete_vertices(&[9]);
        cc.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert_eq!(cc.labels().len(), 3);
        check_against_scratch(&cc, &g2);
    }

    #[test]
    fn id_space_growth() {
        let g = G::from_edges(&sym(&[(0, 1)]), Default::default());
        let mut cc = DeltaCc::new(&g);
        let g2 = g.insert_edges(&sym(&[(1, 7)]));
        cc.apply_diff(&diff_graphs(&g, &g2), &g2);
        check_against_scratch(&cc, &g2);
        assert_eq!(cc.labels()[7], 0);
    }

    #[test]
    fn reconnecting_delete_skips_the_region_sweep() {
        // Ring of 64: any single deleted edge reconnects the long way
        // around, so the partition is untouched and no region is swept.
        let edges: Vec<(u32, u32)> = (0..64u32).map(|i| (i, (i + 1) % 64)).collect();
        let g = G::from_edges(&sym(&edges), Default::default());
        let mut cc = DeltaCc::new(&g);
        let g2 = g.delete_edges(&sym(&[(10, 11)]));
        let stats = cc.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert!(!stats.full_recompute);
        assert_eq!(stats.region, 0, "shortcut should have skipped the sweep");
        check_against_scratch(&cc, &g2);
        assert_eq!(cc.num_components(), 1);
    }

    #[test]
    fn disconnecting_delete_still_sweeps() {
        // Two rings joined by one bridge: deleting the bridge splits,
        // and the shortcut must not claim otherwise.
        let mut edges: Vec<(u32, u32)> = (0..32u32).map(|i| (i, (i + 1) % 32)).collect();
        edges.extend((0..32u32).map(|i| (32 + i, 32 + (i + 1) % 32)));
        edges.push((5, 37));
        let g = G::from_edges(&sym(&edges), Default::default());
        let mut cc = DeltaCc::new(&g);
        assert_eq!(cc.num_components(), 1);
        let g2 = g.delete_edges(&sym(&[(5, 37)]));
        let stats = cc.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert!(stats.region > 0, "split deletes need the sweep");
        check_against_scratch(&cc, &g2);
        assert_eq!(cc.num_components(), 2);
    }

    #[test]
    fn huge_delta_falls_back_to_recompute() {
        let edges: Vec<(u32, u32)> = (0..63u32).map(|i| (i, i + 1)).collect();
        let g = G::from_edges(&sym(&edges), Default::default());
        let mut cc = DeltaCc::new(&g);
        // Cut the single path everywhere at once.
        let g2 = g.delete_edges(&sym(&edges));
        let stats = cc.apply_diff(&diff_graphs(&g, &g2), &g2);
        assert!(stats.full_recompute);
        check_against_scratch(&cc, &g2);
    }

    #[test]
    fn empty_diff_is_a_noop() {
        let g = G::from_edges(&sym(&[(0, 1), (2, 3)]), Default::default());
        let mut cc = DeltaCc::new(&g);
        let before = cc.labels().to_vec();
        let stats = cc.apply_diff(&GraphDiff::default(), &g);
        assert_eq!(stats, RepairStats::default());
        assert_eq!(cc.labels(), before.as_slice());
    }
}
