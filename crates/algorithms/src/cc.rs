//! Connected components by parallel label propagation (hash-min):
//! one of the extension algorithms beyond the paper's five, exercising
//! `edge_map` until a fixed point.

use aspen::{edge_map, GraphView, VertexSubset};
use parlib::write_min_u32;
use std::sync::atomic::{AtomicU32, Ordering};

/// Computes connected-component labels: `label[v]` is the smallest
/// vertex id in v's component.
pub fn connected_components<G: GraphView>(graph: &G) -> Vec<u32> {
    let n = graph.id_bound();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut frontier = VertexSubset::full(n);
    while !frontier.is_empty() {
        frontier = edge_map(
            graph,
            &frontier,
            |u, v| {
                let lu = labels[u as usize].load(Ordering::Relaxed);
                write_min_u32(&labels[v as usize], lu)
            },
            |_| true,
        );
        // Deduplicate sparse frontiers (several writers can improve the
        // same label in one round).
        let mut ids = frontier.to_vec();
        ids.sort_unstable();
        ids.dedup();
        frontier = VertexSubset::sparse(n, ids);
    }
    labels.into_iter().map(AtomicU32::into_inner).collect()
}

/// Number of distinct components given a label array.
pub fn num_components(labels: &[u32]) -> usize {
    let mut sorted: Vec<u32> = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{CompressedEdges, Graph};

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    /// Union-find oracle.
    fn oracle(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(p: &mut Vec<u32>, x: u32) -> u32 {
            if p[x as usize] != x {
                let r = find(p, p[x as usize]);
                p[x as usize] = r;
            }
            p[x as usize]
        }
        for &(u, v) in edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
        (0..n as u32).map(|v| find(&mut parent, v)).collect()
    }

    #[test]
    fn two_components() {
        let edges = sym(&[(0, 1), (1, 2), (4, 5)]);
        let g = G::from_edges(&edges, Default::default());
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        // 3 isolated (id 3 exists implicitly in the 0..6 space)
        assert_eq!(num_components(&labels), 3);
    }

    #[test]
    fn matches_union_find_oracle() {
        let mut edges = Vec::new();
        for i in 0u32..100 {
            if i % 7 != 0 {
                edges.push((i, (i + 3) % 100));
            }
        }
        let edges = sym(&edges);
        let g = G::from_edges(&edges, Default::default());
        let n = aspen::GraphView::id_bound(&g);
        let got = connected_components(&g);
        let want = oracle(n, &edges);
        // Labels must induce the same partition.
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    got[u] == got[v],
                    want[u] == want[v],
                    "partition disagrees on ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn single_ring_is_one_component() {
        let edges: Vec<(u32, u32)> = (0..50u32).map(|i| (i, (i + 1) % 50)).collect();
        let g = G::from_edges(&sym(&edges), Default::default());
        let labels = connected_components(&g);
        assert_eq!(num_components(&labels), 1);
        assert!(labels.iter().all(|&l| l == 0));
    }
}
