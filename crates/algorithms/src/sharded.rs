//! Fan-out/merge algorithms over a sharded graph: one [`GraphView`]
//! per shard, vertex ownership decided by an [`aspen::ShardRouter`].
//!
//! The sharding convention (see `aspen::ShardRouter`) stores the
//! undirected edge `{u, v}` as arc `(u, v)` in `shard_of(u)` and arc
//! `(v, u)` in `shard_of(v)` — every neighbor scan of a vertex is
//! local to its owner shard. The algorithms here exploit that:
//!
//! * [`bfs_sharded`] — level-synchronous BFS with a per-round
//!   **frontier exchange**: each round partitions the frontier by
//!   owner, every shard expands its own vertices in parallel against a
//!   shared atomic parent array, and the newly claimed vertices are
//!   merged into the next round's frontier.
//! * [`cc_sharded`] — per-shard union-find over intra-shard arcs
//!   (parallel across shards), then a global union-find merge over the
//!   per-shard spanning pairs and the **boundary arcs** that cross
//!   shards, normalized to min-id labels.
//!
//! Results match the unsharded [`bfs`](crate::bfs) /
//! [`connected_components`](crate::connected_components) exactly
//! (distances and label arrays; BFS parents may differ within a level,
//! as between any two valid BFS trees).

use crate::bfs::{BfsResult, UNREACHED};
use aspen::{GraphView, ShardRouter, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Global id bound of a sharded graph: the max over shards. Every
/// vertex with an incident edge is a *source* in its owner shard
/// (mirroring), so no shard-local bound can miss a live vertex.
fn global_id_bound<G: GraphView>(shards: &[G]) -> usize {
    shards.iter().map(|s| s.id_bound()).max().unwrap_or(0)
}

/// BFS from `src` across `shards`, matching [`bfs`](crate::bfs) on the
/// logically-equal unsharded graph: identical `dist` array, identical
/// round count, and a valid (not necessarily identical) parent tree.
///
/// # Panics
///
/// Panics if `src` is outside the global id space, like the unsharded
/// BFS.
pub fn bfs_sharded<G: GraphView>(shards: &[G], router: &ShardRouter, src: VertexId) -> BfsResult {
    assert_eq!(
        shards.len(),
        router.num_shards(),
        "router shape must match the shard list"
    );
    let n = global_id_bound(shards);
    assert!((src as usize) < n, "source {src} outside id space {n}");
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    parent[src as usize].store(src, Ordering::Relaxed);
    let mut dist = vec![UNREACHED; n];
    dist[src as usize] = 0;

    let mut frontier = vec![src];
    let mut level = 0u32;
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        level += 1;
        // Frontier exchange: hand each frontier vertex to its owner —
        // the only shard holding its adjacency list.
        let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); shards.len()];
        for &v in &frontier {
            by_shard[router.shard_of(v)].push(v);
        }
        // Each shard expands its slice of the frontier; the shared
        // CAS parent array arbitrates vertices reachable from several
        // shards in the same round, so each is claimed exactly once.
        let claimed: Vec<Vec<u32>> = shards
            .par_iter()
            .zip(by_shard)
            .map(|(shard, mine)| {
                let bound = shard.id_bound();
                let mut next = Vec::new();
                for v in mine {
                    if (v as usize) >= bound {
                        continue; // no arcs in the owner shard
                    }
                    shard.for_each_neighbor(v, &mut |w| {
                        if parent[w as usize]
                            .compare_exchange(UNREACHED, v, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            next.push(w);
                        }
                    });
                }
                next
            })
            .collect();
        frontier = claimed.into_iter().flatten().collect();
        for &v in &frontier {
            dist[v as usize] = level;
        }
    }
    BfsResult {
        parent: parent.into_iter().map(AtomicU32::into_inner).collect(),
        dist,
        rounds,
    }
}

/// Sequential union-find with path halving; roots are always the
/// minimum id of their component (unions link the larger root under
/// the smaller), so `find(v)` after all unions *is* the min-id label.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }
}

/// What one shard contributes to the global CC merge: spanning pairs
/// `(v, local_label(v))` connecting each of its vertices to its local
/// component representative, plus the boundary arcs leaving the shard.
struct ShardCc {
    spanning: Vec<(u32, u32)>,
    boundary: Vec<(u32, u32)>,
}

/// Connected components across `shards`, matching
/// [`connected_components`](crate::connected_components) on the
/// logically-equal unsharded graph exactly: `label[v]` is the smallest
/// vertex id in `v`'s component.
pub fn cc_sharded<G: GraphView>(shards: &[G], router: &ShardRouter) -> Vec<u32> {
    assert_eq!(
        shards.len(),
        router.num_shards(),
        "router shape must match the shard list"
    );
    let n = global_id_bound(shards);
    // Phase 1 (parallel over shards): collapse intra-shard structure
    // with a local union-find; boundary arcs are deferred to the merge.
    let locals: Vec<ShardCc> = shards
        .par_iter()
        .enumerate()
        .map(|(k, shard)| {
            let mut uf = UnionFind::new(n);
            let mut touched = Vec::new();
            let mut boundary = Vec::new();
            for v in 0..shard.id_bound() as u32 {
                if router.shard_of(v) != k {
                    continue; // mirrored targets only; not owned here
                }
                let mut any = false;
                shard.for_each_neighbor(v, &mut |w| {
                    any = true;
                    if router.shard_of(w) == k {
                        uf.union(v, w);
                    } else {
                        boundary.push((v, w));
                    }
                });
                if any {
                    touched.push(v);
                }
            }
            let spanning = touched.into_iter().map(|v| (v, uf.find(v))).collect();
            ShardCc { spanning, boundary }
        })
        .collect();
    // Phase 2: one global union-find over the (much smaller) spanning
    // pairs and boundary arcs. Every cross-shard edge appears twice
    // (once per endpoint's shard) — the second union is a no-op.
    let mut uf = UnionFind::new(n);
    for local in &locals {
        for &(v, l) in &local.spanning {
            uf.union(v, l);
        }
        for &(u, w) in &local.boundary {
            uf.union(u, w);
        }
    }
    (0..n as u32).map(|v| uf.find(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs, connected_components};
    use aspen::{CompressedEdges, Graph};

    type G = Graph<CompressedEdges>;

    /// Builds the unsharded symmetric graph and its sharded mirror
    /// under `router` from one undirected edge list.
    fn build(undirected: &[(u32, u32)], router: &ShardRouter) -> (G, Vec<G>) {
        let sym: Vec<(u32, u32)> = undirected
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        let whole = G::from_edges(&sym, Default::default());
        let mut per_shard: Vec<Vec<(u32, u32)>> = vec![Vec::new(); router.num_shards()];
        for &(u, v) in &sym {
            per_shard[router.shard_of(u)].push((u, v));
        }
        let shards = per_shard
            .into_iter()
            .map(|arcs| G::from_edges(&arcs, Default::default()))
            .collect();
        (whole, shards)
    }

    fn test_graph() -> Vec<(u32, u32)> {
        // Two components: a 20-ring with chords, and a path 30..=37.
        let mut e: Vec<(u32, u32)> = (0..20u32).map(|i| (i, (i + 1) % 20)).collect();
        e.extend((0..10u32).map(|i| (i, i + 10)));
        e.extend((30..37u32).map(|i| (i, i + 1)));
        e
    }

    #[test]
    fn bfs_matches_unsharded_for_every_router() {
        let edges = test_graph();
        for router in [
            ShardRouter::hash(1),
            ShardRouter::hash(3),
            ShardRouter::hash(4),
            ShardRouter::range(4, 38),
        ] {
            let (whole, shards) = build(&edges, &router);
            for src in [0u32, 7, 30, 37] {
                let want = bfs(&whole, src);
                let got = bfs_sharded(&shards, &router, src);
                assert_eq!(got.dist, want.dist, "router {router:?} src {src}");
                assert_eq!(got.rounds, want.rounds, "router {router:?} src {src}");
                // Parents may differ but must form an equivalent tree.
                for v in 0..got.parent.len() {
                    let p = got.parent[v];
                    if p == UNREACHED {
                        assert_eq!(want.parent[v], UNREACHED);
                    } else if v as u32 != p {
                        assert_eq!(got.dist[v], got.dist[p as usize] + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn cc_matches_unsharded_for_every_router() {
        let edges = test_graph();
        for router in [
            ShardRouter::hash(1),
            ShardRouter::hash(2),
            ShardRouter::hash(4),
            ShardRouter::range(3, 38),
        ] {
            let (whole, shards) = build(&edges, &router);
            let want = connected_components(&whole);
            let got = cc_sharded(&shards, &router);
            assert_eq!(got, want, "router {router:?}");
        }
    }

    #[test]
    fn isolated_ids_label_themselves() {
        // Edge (0, 9) leaves ids 1..9 isolated in the 0..10 space.
        let router = ShardRouter::hash(2);
        let (whole, shards) = build(&[(0, 9)], &router);
        let want = connected_components(&whole);
        let got = cc_sharded(&shards, &router);
        assert_eq!(got, want);
        assert_eq!(got[3], 3);
        assert_eq!(got[9], 0);
    }

    #[test]
    #[should_panic(expected = "outside id space")]
    fn sharded_source_bounds_checked() {
        let router = ShardRouter::hash(2);
        let (_, shards) = build(&[(0, 1)], &router);
        let _ = bfs_sharded(&shards, &router, 99);
    }

    #[test]
    #[should_panic(expected = "router shape")]
    fn shard_count_mismatch_rejected() {
        let router = ShardRouter::hash(2);
        let (_, shards) = build(&[(0, 1)], &ShardRouter::hash(3));
        let _ = cc_sharded(&shards, &router);
    }
}
