//! Single-source shortest paths over weighted graphs — the algorithm
//! the paper's weighted-edge extension (§6 future work) exists to
//! serve. Frontier-based Bellman–Ford in the Ligra style: each round
//! relaxes the out-edges of the vertices whose distance improved.

use aspen::{VertexId, WeightedGraph};
use parlib::write_min_u32;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Distance label for unreachable vertices.
pub const INF: u32 = u32::MAX;

/// Computes shortest-path distances from `src` under non-negative
/// `u32` edge weights. `O(rounds · m)` worst case, with `rounds`
/// bounded by the longest shortest path's hop count.
pub fn sssp(graph: &WeightedGraph, src: VertexId) -> Vec<u32> {
    let n = aspen::GraphView::id_bound(graph);
    assert!((src as usize) < n, "source {src} outside id space {n}");
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut frontier: Vec<VertexId> = vec![src];
    while !frontier.is_empty() {
        let mut next: Vec<VertexId> = frontier
            .par_iter()
            .map(|&u| {
                let du = dist[u as usize].load(Ordering::Relaxed);
                let mut improved = Vec::new();
                graph.for_each_weighted_neighbor(u, |v, w| {
                    let cand = du.saturating_add(w);
                    if write_min_u32(&dist[v as usize], cand) {
                        improved.push(v);
                    }
                });
                improved
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        next.par_sort_unstable();
        next.dedup();
        frontier = next;
    }
    dist.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::WeightedGraph;
    use std::collections::BinaryHeap;

    fn wsym(edges: &[(u32, u32, u32)]) -> Vec<(u32, u32, u32)> {
        edges
            .iter()
            .flat_map(|&(u, v, w)| [(u, v, w), (v, u, w)])
            .collect()
    }

    /// Dijkstra oracle.
    fn dijkstra(g: &WeightedGraph, src: u32) -> Vec<u32> {
        let n = aspen::GraphView::id_bound(g);
        let mut dist = vec![INF; n];
        dist[src as usize] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u32, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            g.for_each_weighted_neighbor(u, |v, w| {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            });
        }
        dist
    }

    #[test]
    fn weighted_path() {
        let g = WeightedGraph::from_edges(
            &wsym(&[(0, 1, 4), (1, 2, 1), (0, 2, 10)]),
            Default::default(),
        );
        let d = sssp(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 4);
        assert_eq!(d[2], 5, "via 1 beats the direct weight-10 edge");
    }

    #[test]
    fn unreachable_stays_inf() {
        let g = WeightedGraph::from_edges(&wsym(&[(0, 1, 1), (3, 4, 1)]), Default::default());
        let d = sssp(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let mut edges = Vec::new();
        for i in 0u32..120 {
            edges.push((i, (i * 17 + 3) % 120, 1 + (i * 7) % 20));
            edges.push((i, (i * 29 + 11) % 120, 1 + (i * 13) % 20));
        }
        let edges: Vec<_> = wsym(&edges)
            .into_iter()
            .filter(|&(u, v, _)| u != v)
            .collect();
        let g = WeightedGraph::from_edges(&edges, Default::default());
        assert_eq!(sssp(&g, 0), dijkstra(&g, 0));
        assert_eq!(sssp(&g, 55), dijkstra(&g, 55));
    }

    #[test]
    fn weight_updates_change_routes() {
        let g = WeightedGraph::from_edges(
            &wsym(&[(0, 1, 2), (1, 2, 2), (0, 2, 100)]),
            Default::default(),
        );
        assert_eq!(sssp(&g, 0)[2], 4);
        // Re-price the direct edge cheaper; shortest path flips.
        let g2 = g.insert_edges(&wsym(&[(0, 2, 1)]), |_, new| new);
        assert_eq!(sssp(&g2, 0)[2], 1);
        assert_eq!(sssp(&g, 0)[2], 4, "old snapshot keeps the old answer");
    }

    #[test]
    fn zero_weight_edges_are_free() {
        let g = WeightedGraph::from_edges(&wsym(&[(0, 1, 0), (1, 2, 0)]), Default::default());
        let d = sssp(&g, 0);
        assert_eq!(d, vec![0, 0, 0]);
    }
}
