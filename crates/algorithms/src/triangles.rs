//! Triangle counting — part of the algorithm suite the paper inherits
//! from Ligra/[25] ("all of the algorithms implemented using Ligra …
//! can be run using Aspen with minor modifications").
//!
//! Standard merge-based counting: for every directed edge `(u, v)` with
//! `u < v`, intersect the (sorted) adjacency lists of `u` and `v` and
//! count common neighbors `w > v`; each triangle is counted exactly
//! once at its lowest-id vertex. `O(Σ deg(u)·…)` merge work,
//! parallelized over vertices.

use aspen::GraphView;
use rayon::prelude::*;

/// Counts triangles in an undirected (symmetric) graph.
///
/// `u`'s adjacency list is materialized once and reused across all its
/// edges; each partner list is *streamed* through the compressed-chunk
/// decoder (`for_each_neighbor_until`), merging against the slice with
/// early exit — no per-edge allocation.
pub fn triangle_count<G: GraphView>(graph: &G) -> u64 {
    let n = graph.id_bound() as u32;
    (0..n)
        .into_par_iter()
        .map(|u| {
            let nu = graph.neighbors(u);
            let mut local = 0u64;
            for &v in nu.iter().filter(|&&v| v > u) {
                // merge-count common neighbors w with w > v
                let mut i = 0usize;
                graph.for_each_neighbor_until(v, &mut |w| {
                    while i < nu.len() && nu[i] < w {
                        i += 1;
                    }
                    if i == nu.len() {
                        return false;
                    }
                    if nu[i] == w {
                        if w > v {
                            local += 1;
                        }
                        i += 1;
                    }
                    true
                });
            }
            local
        })
        .sum()
}

/// Per-vertex local clustering coefficient: `2·tri(v) / (deg(v)·(deg(v)−1))`.
pub fn clustering_coefficients<G: GraphView>(graph: &G) -> Vec<f64> {
    let n = graph.id_bound() as u32;
    (0..n)
        .into_par_iter()
        .map(|v| {
            let nv = graph.neighbors(v);
            let d = nv.len();
            if d < 2 {
                return 0.0;
            }
            let mut tri = 0u64;
            for &u in &nv {
                // Stream u's list against the materialized nv slice.
                let mut i = 0usize;
                graph.for_each_neighbor_until(u, &mut |w| {
                    while i < nv.len() && nv[i] < w {
                        i += 1;
                    }
                    if i == nv.len() {
                        return false;
                    }
                    if nv[i] == w {
                        tri += 1;
                        i += 1;
                    }
                    true
                });
            }
            // each wedge (u, w) counted once per ordered neighbor pair
            tri as f64 / (d as f64 * (d as f64 - 1.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{CompressedEdges, FlatSnapshot, Graph};
    use baselines::Csr;

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn single_triangle() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (0, 2)]), Default::default());
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn square_has_no_triangles() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 3), (3, 0)]), Default::default());
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn clique_counts_choose_three() {
        let mut edges = Vec::new();
        let k = 7u32;
        for a in 0..k {
            for b in (a + 1)..k {
                edges.push((a, b));
            }
        }
        let g = G::from_edges(&sym(&edges), Default::default());
        assert_eq!(triangle_count(&g), 35); // C(7,3)
        let cc = clustering_coefficients(&g);
        for (v, &c) in cc.iter().enumerate().take(k as usize) {
            assert!((c - 1.0).abs() < 1e-9, "clique cc[{v}] = {c}");
        }
    }

    #[test]
    fn agrees_across_engines() {
        let edges = graphgen::Rmat::new(9, 0x7C).symmetric_graph_edges(8_000);
        let aspen_g = G::from_edges(&edges, Default::default());
        let flat = FlatSnapshot::new(&aspen_g);
        let csr = Csr::from_edges(&edges);
        let a = triangle_count(&flat);
        let b = triangle_count(&csr);
        assert_eq!(a, b);
        assert!(a > 0, "rMAT graphs are triangle-rich");
    }

    #[test]
    fn coefficient_of_path_midpoint_is_zero() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2)]), Default::default());
        let cc = clustering_coefficients(&g);
        assert_eq!(cc[1], 0.0);
        assert_eq!(cc[0], 0.0, "degree-1 vertices defined as 0");
    }
}
