//! PageRank by parallel pull-based power iteration — an extension
//! algorithm demonstrating dense whole-graph iteration over snapshots.

use aspen::GraphView;
use rayon::prelude::*;

/// Damping factor used by the standard formulation.
const DAMPING: f64 = 0.85;

/// Runs PageRank until the L1 change drops below `tol` or `max_iters`
/// rounds pass. Returns `(ranks, iterations_used)`.
///
/// Sinks (degree-0 vertices) redistribute their mass uniformly, keeping
/// the ranks a probability distribution.
pub fn pagerank<G: GraphView>(graph: &G, tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    let n = graph.id_bound();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let inv_n = 1.0 / n as f64;
    let mut ranks = vec![inv_n; n];
    let degrees: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    for iter in 0..max_iters {
        let sink_mass: f64 = ranks
            .par_iter()
            .zip(&degrees)
            .filter(|(_, &d)| d == 0)
            .map(|(r, _)| *r)
            .sum();
        let contrib: Vec<f64> = ranks
            .par_iter()
            .zip(&degrees)
            .map(|(r, &d)| if d > 0 { r / d as f64 } else { 0.0 })
            .collect();
        let next: Vec<f64> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                let mut acc = 0.0;
                graph.for_each_neighbor(v, &mut |u| {
                    acc += contrib[u as usize];
                });
                (1.0 - DAMPING) * inv_n + DAMPING * (acc + sink_mass * inv_n)
            })
            .collect();
        let delta: f64 = ranks
            .par_iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .sum();
        ranks = next;
        if delta < tol {
            return (ranks, iter + 1);
        }
    }
    (ranks, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aspen::{CompressedEdges, Graph};

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 3), (3, 0)]), Default::default());
        let (ranks, _) = pagerank(&g, 1e-10, 100);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
    }

    #[test]
    fn symmetric_ring_is_uniform() {
        let edges: Vec<(u32, u32)> = (0..10u32).map(|i| (i, (i + 1) % 10)).collect();
        let g = G::from_edges(&sym(&edges), Default::default());
        let (ranks, _) = pagerank(&g, 1e-12, 200);
        for r in &ranks {
            assert!((r - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        // star with center 0
        let edges: Vec<(u32, u32)> = (1..10u32).map(|i| (0, i)).collect();
        let g = G::from_edges(&sym(&edges), Default::default());
        let (ranks, _) = pagerank(&g, 1e-10, 200);
        assert!(ranks[0] > 3.0 * ranks[1]);
    }

    #[test]
    fn converges_and_reports_iterations() {
        let g = G::from_edges(&sym(&[(0, 1)]), Default::default());
        let (_, iters) = pagerank(&g, 1e-3, 100);
        assert!(iters < 100, "tiny graph should converge early");
    }

    #[test]
    fn empty_graph() {
        let g = G::new(Default::default());
        let (ranks, iters) = pagerank(&g, 1e-6, 10);
        assert!(ranks.is_empty());
        assert_eq!(iters, 0);
    }
}
