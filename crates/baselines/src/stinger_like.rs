//! A Stinger-like streaming graph [Ediger et al., HPEC'12] rebuilt in
//! Rust.
//!
//! Stinger adapts CSR for dynamic updates: each vertex owns a linked
//! list of fixed-size edge blocks; updates traverse the list to find an
//! empty slot (or the edge to delete) under fine-grained per-vertex
//! locking. Updates are `O(deg(v))` and mutate in place, so queries and
//! updates run in *phases* rather than concurrently — the design
//! contrast the paper draws in §7.5.
//!
//! Matching Stinger's memory-hungry layout, each block carries slot
//! metadata alongside the edge array; the measured bytes/edge lands far
//! above Aspen's, reproducing the Table 9 relationship.

use aspen::{GraphView, VertexId};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Edges per block. Stinger's default block sizes are comparable;
/// small blocks are the memory-efficient configuration the paper used.
const BLOCK_SIZE: usize = 16;

/// One edge record, mirroring STINGER's layout [Ediger et al.]: the
/// neighbor id plus a weight and two timestamps (first/recent). This
/// 16-byte record is why Stinger's bytes/edge sits an order of
/// magnitude above Aspen's in Table 9 (the paper measures ~145 B/edge
/// for real Stinger).
#[derive(Clone, Copy, Debug)]
struct EdgeRecord {
    neighbor: VertexId,
    #[allow(dead_code)]
    weight: i32,
    #[allow(dead_code)]
    time_first: u32,
    #[allow(dead_code)]
    time_recent: u32,
}

const EMPTY: VertexId = VertexId::MAX;

impl EdgeRecord {
    fn hole() -> Self {
        EdgeRecord {
            neighbor: EMPTY,
            weight: 0,
            time_first: 0,
            time_recent: 0,
        }
    }
}

/// One fixed-capacity edge block in a vertex's chain.
#[derive(Debug)]
struct Block {
    /// Edge slots; `EMPTY` neighbors mark holes left by deletions.
    slots: [EdgeRecord; BLOCK_SIZE],
    used: u32,
}

impl Block {
    fn new() -> Self {
        Block {
            slots: [EdgeRecord::hole(); BLOCK_SIZE],
            used: 0,
        }
    }
}

/// Per-vertex adjacency: a chain of blocks behind a fine-grained lock.
#[derive(Debug, Default)]
struct VertexRecord {
    blocks: Vec<Block>,
    degree: u32,
}

/// A mutable Stinger-like streaming graph.
///
/// Unlike Aspen there are no snapshots: updates mutate shared state
/// (under per-vertex locks) and queries must be phased with updates.
pub struct StingerLike {
    vertices: Vec<Mutex<VertexRecord>>,
    num_edges: AtomicU64,
}

impl StingerLike {
    /// Creates an empty graph over the id space `0..n`.
    pub fn new(n: usize) -> Self {
        StingerLike {
            vertices: (0..n)
                .map(|_| Mutex::new(VertexRecord::default()))
                .collect(),
            num_edges: AtomicU64::new(0),
        }
    }

    /// Builds from a directed edge list.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let g = Self::new(n);
        g.insert_batch(edges);
        g
    }

    /// Inserts one directed edge; `O(deg(u))` scan through u's blocks.
    /// Returns `true` if the edge was new.
    pub fn insert_edge(&self, u: VertexId, v: VertexId) -> bool {
        let mut rec = self.vertices[u as usize].lock();
        // duplicate check + first-hole tracking in one scan
        let mut hole: Option<(usize, usize)> = None;
        for (bi, block) in rec.blocks.iter().enumerate() {
            for (si, slot) in block.slots.iter().enumerate() {
                if slot.neighbor == v {
                    return false;
                }
                if slot.neighbor == EMPTY && hole.is_none() {
                    hole = Some((bi, si));
                }
            }
        }
        let record = EdgeRecord {
            neighbor: v,
            weight: 1,
            time_first: 0,
            time_recent: 0,
        };
        match hole {
            Some((bi, si)) => {
                rec.blocks[bi].slots[si] = record;
                rec.blocks[bi].used += 1;
            }
            None => {
                let mut block = Block::new();
                block.slots[0] = record;
                block.used = 1;
                rec.blocks.push(block);
            }
        }
        rec.degree += 1;
        self.num_edges.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Deletes one directed edge; returns `true` if it was present.
    pub fn delete_edge(&self, u: VertexId, v: VertexId) -> bool {
        let mut rec = self.vertices[u as usize].lock();
        for block in rec.blocks.iter_mut() {
            for slot in block.slots.iter_mut() {
                if slot.neighbor == v {
                    *slot = EdgeRecord::hole();
                    block.used -= 1;
                    rec.degree -= 1;
                    self.num_edges.fetch_sub(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
        false
    }

    /// Parallel batch insertion with per-vertex locking — Stinger's
    /// batch ingest mode (Table 10).
    pub fn insert_batch(&self, edges: &[(VertexId, VertexId)]) {
        edges.par_iter().for_each(|&(u, v)| {
            self.insert_edge(u, v);
        });
    }

    /// Parallel batch deletion.
    pub fn delete_batch(&self, edges: &[(VertexId, VertexId)]) {
        edges.par_iter().for_each(|&(u, v)| {
            self.delete_edge(u, v);
        });
    }

    /// Bytes of the in-memory structure: block storage (slots +
    /// metadata) plus per-vertex records and locks.
    pub fn memory_bytes(&self) -> usize {
        let per_vertex = std::mem::size_of::<Mutex<VertexRecord>>();
        let block = std::mem::size_of::<Block>();
        let blocks: usize = self
            .vertices
            .iter()
            .map(|v| v.lock().blocks.len() * block)
            .sum();
        self.vertices.len() * per_vertex + blocks
    }
}

impl GraphView for StingerLike {
    fn id_bound(&self) -> usize {
        self.vertices.len()
    }

    fn num_edges(&self) -> u64 {
        self.num_edges.load(Ordering::Relaxed)
    }

    fn degree(&self, v: VertexId) -> usize {
        self.vertices
            .get(v as usize)
            .map_or(0, |r| r.lock().degree as usize)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        // Sequential block-chain walk — the access pattern that makes
        // Stinger's traversals slow on high-degree vertices (§7.5).
        let Some(rec) = self.vertices.get(v as usize) else {
            return;
        };
        let rec = rec.lock();
        for block in &rec.blocks {
            if block.used == 0 {
                continue;
            }
            for slot in &block.slots {
                if slot.neighbor != EMPTY {
                    f(slot.neighbor);
                }
            }
        }
    }

    fn for_each_neighbor_until(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        let Some(rec) = self.vertices.get(v as usize) else {
            return true;
        };
        let rec = rec.lock();
        for block in &rec.blocks {
            if block.used == 0 {
                continue;
            }
            for slot in &block.slots {
                if slot.neighbor != EMPTY && !f(slot.neighbor) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let g = StingerLike::new(10);
        assert!(g.insert_edge(0, 1));
        assert!(g.insert_edge(0, 2));
        assert!(!g.insert_edge(0, 1), "duplicate rejected");
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 2);
        let mut ns = GraphView::neighbors(&g, 0);
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2]);
    }

    #[test]
    fn delete_leaves_hole_then_reuses_it() {
        let g = StingerLike::new(4);
        g.insert_edge(0, 1);
        g.insert_edge(0, 2);
        assert!(g.delete_edge(0, 1));
        assert!(!g.delete_edge(0, 1));
        assert_eq!(g.degree(0), 1);
        // the hole is reused, not a new block
        g.insert_edge(0, 3);
        assert_eq!(g.memory_bytes(), {
            let one_block = StingerLike::new(4);
            one_block.insert_edge(0, 1);
            one_block.memory_bytes()
        });
    }

    #[test]
    fn chains_grow_past_one_block() {
        let g = StingerLike::new(2);
        for v in 0..50u32 {
            g.insert_edge(0, v + 100 - 98); // distinct ids 2..52
        }
        assert_eq!(g.degree(0), 50);
        assert_eq!(GraphView::neighbors(&g, 0).len(), 50);
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let edges: Vec<(u32, u32)> = (0..2000u32).map(|i| (i % 50, 50 + (i * 7) % 500)).collect();
        let par = StingerLike::new(600);
        par.insert_batch(&edges);
        let seq = StingerLike::new(600);
        for &(u, v) in &edges {
            seq.insert_edge(u, v);
        }
        assert_eq!(par.num_edges(), seq.num_edges());
        for v in 0..600u32 {
            let mut a = GraphView::neighbors(&par, v);
            let mut b = GraphView::neighbors(&seq, v);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn memory_is_heavier_than_raw_edges() {
        let edges: Vec<(u32, u32)> = (0..1000u32).map(|i| (i % 100, i / 100 + 100)).collect();
        let g = StingerLike::from_edges(200, &edges);
        // Far above 4 bytes/edge: block slack + metadata + locks.
        assert!(g.memory_bytes() > 4 * 1000);
    }
}
