//! Comparison systems, rebuilt in Rust.
//!
//! The paper benchmarks Aspen against two streaming systems (Stinger
//! \[28], LLAMA \[46]) and three static frameworks (Ligra+ \[70],
//! GAP \[6], Galois \[55]). Those are C/C++ codebases; to keep the comparisons
//! about *data structures* rather than FFI and build systems, this
//! crate re-implements each system's representative representation and
//! update discipline:
//!
//! * [`Csr`] — flat offsets + edge array (GAP-like static baseline);
//! * [`CompressedCsr`] — byte-compressed adjacency (Ligra+-like);
//! * [`StingerLike`] — per-vertex chains of fixed-size edge blocks
//!   with fine-grained locking and in-place updates;
//! * [`LlamaLike`] — multiversioned arrays: per-batch delta snapshots
//!   with copied vertex indirection and fragment chains;
//! * [`worklist_bfs`]/[`worklist_mis`] — an asynchronous worklist
//!   engine standing in for Galois-style scheduling (the weakest
//!   substitution; see DESIGN.md §2).
//!
//! All engines implement [`aspen::GraphView`], so the algorithms in
//! `aspen-algorithms` run unchanged on each — the property that makes
//! Tables 9–15 apples-to-apples.

pub mod ccsr;
pub mod csr;
pub mod llama_like;
pub mod stinger_like;
pub mod worklist;

pub use ccsr::CompressedCsr;
pub use csr::Csr;
pub use llama_like::LlamaLike;
pub use stinger_like::StingerLike;
pub use worklist::{worklist_bfs, worklist_mis};
