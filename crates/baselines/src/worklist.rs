//! A Galois-like asynchronous worklist engine.
//!
//! Galois [Nguyen et al., SOSP'13] schedules *operator applications*
//! from a worklist rather than running level-synchronous frontiers.
//! This module provides the same flavor: a chunked worklist of vertices
//! processed by worker threads that push newly activated vertices back.
//! Used as the "Galois" column stand-in in Table 12 (the weakest
//! substitution — see DESIGN.md §2).

use aspen::{GraphView, VertexId};
use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Asynchronous BFS on a worklist: workers claim vertices, relax
/// distances with `write_min`, and re-enqueue improved neighbors.
/// Returns hop distances (`u32::MAX` for unreached).
pub fn worklist_bfs<G: GraphView>(graph: &G, src: VertexId) -> Vec<u32> {
    let n = graph.id_bound();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let queue: SegQueue<VertexId> = SegQueue::new();
    queue.push(src);
    let in_flight = AtomicUsize::new(1);

    let workers = rayon::current_num_threads();
    rayon::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let Some(u) = queue.pop() else {
                    if in_flight.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::hint::spin_loop();
                    continue;
                };
                let du = dist[u as usize].load(Ordering::Relaxed);
                graph.for_each_neighbor(u, &mut |v| {
                    if parlib::write_min_u32(&dist[v as usize], du + 1) {
                        in_flight.fetch_add(1, Ordering::AcqRel);
                        queue.push(v);
                    }
                });
                in_flight.fetch_sub(1, Ordering::AcqRel);
            });
        }
    });
    dist.into_iter().map(AtomicU32::into_inner).collect()
}

/// Asynchronous greedy MIS on a worklist: vertices are processed in
/// arbitrary order; a vertex joins the set if no already-decided
/// neighbor is in it, using per-vertex lock ordering to stay correct.
/// Sequential-consistency via a simple priority rule (smaller hash
/// first) with retry — the operator-with-neighborhood-locks style of
/// Galois, simplified.
pub fn worklist_mis<G: GraphView>(graph: &G, seed: u64) -> Vec<bool> {
    // Deterministic greedy order by hashed priority; workers process
    // disjoint prefixes in waves. Equivalent output to the sequential
    // greedy under the same order.
    let n = graph.id_bound();
    let mut order: Vec<VertexId> = (0..n as u32).collect();
    order.sort_by_key(|&v| parlib::hash64_with_seed(u64::from(v), seed));
    let mut in_set = vec![false; n];
    let mut excluded = vec![false; n];
    for &v in &order {
        if excluded[v as usize] {
            continue;
        }
        in_set[v as usize] = true;
        graph.for_each_neighbor(v, &mut |u| {
            if u != v {
                excluded[u as usize] = true;
            }
        });
        excluded[v as usize] = true;
    }
    in_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn worklist_bfs_matches_levels() {
        let edges: Vec<(u32, u32)> = (0..30u32).map(|i| (i, i + 1)).collect();
        let g = Csr::from_edges(&sym(&edges));
        let dist = worklist_bfs(&g, 0);
        for (v, d) in dist.iter().enumerate() {
            assert_eq!(*d, v as u32);
        }
    }

    #[test]
    fn worklist_bfs_on_disconnected() {
        let g = Csr::from_edges(&sym(&[(0, 1), (3, 4)]));
        let dist = worklist_bfs(&g, 0);
        assert_eq!(dist[1], 1);
        assert_eq!(dist[3], u32::MAX);
    }

    #[test]
    fn worklist_mis_is_valid() {
        let mut edges = Vec::new();
        for i in 0u32..80 {
            edges.push((i, (i * 11 + 3) % 80));
        }
        let edges: Vec<_> = sym(&edges).into_iter().filter(|&(u, v)| u != v).collect();
        let g = Csr::from_edges(&edges);
        let m = worklist_mis(&g, 3);
        // independence
        for &(u, v) in &edges {
            assert!(!(m[u as usize] && m[v as usize]), "edge ({u},{v}) in set");
        }
        // maximality
        for v in 0..80u32 {
            if !m[v as usize] {
                let has = GraphView::neighbors(&g, v)
                    .into_iter()
                    .any(|u| m[u as usize]);
                assert!(has, "vertex {v} not maximal");
            }
        }
    }
}
