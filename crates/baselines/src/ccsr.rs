//! Compressed CSR: the Ligra+ representation [Shun et al., DCC'15] —
//! CSR whose per-vertex adjacency lists are difference-encoded with
//! byte codes. The strongest static-memory baseline in the paper:
//! Aspen (DE) lands within 1.8–2.3× of it (Table 9).

use aspen::{GraphView, VertexId};
use rayon::prelude::*;

/// An immutable byte-compressed CSR graph.
#[derive(Clone, Debug)]
pub struct CompressedCsr {
    /// Byte offset and degree per vertex.
    index: Vec<(u64, u32)>,
    bytes: Vec<u8>,
    num_edges: u64,
}

impl CompressedCsr {
    /// Builds from a directed edge list (sorted + deduplicated
    /// internally).
    pub fn from_edges(edges: &[(VertexId, VertexId)]) -> Self {
        let mut sorted = edges.to_vec();
        sorted.par_sort_unstable();
        sorted.dedup();
        let n = sorted
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut index = Vec::with_capacity(n);
        let mut bytes = Vec::new();
        let mut i = 0usize;
        for v in 0..n as u32 {
            let start = i;
            while i < sorted.len() && sorted[i].0 == v {
                i += 1;
            }
            let neighbors: Vec<VertexId> = sorted[start..i].iter().map(|&(_, w)| w).collect();
            index.push((bytes.len() as u64, neighbors.len() as u32));
            encoder::encode_sorted_into(&neighbors, &mut bytes);
        }
        CompressedCsr {
            index,
            bytes,
            num_edges: sorted.len() as u64,
        }
    }

    /// Heap bytes: index plus the shared byte pool.
    pub fn memory_bytes(&self) -> usize {
        self.index.len() * std::mem::size_of::<(u64, u32)>() + self.bytes.len()
    }

    fn decoder(&self, v: VertexId) -> Option<encoder::SortedDecoder<'_>> {
        let (off, deg) = *self.index.get(v as usize)?;
        Some(encoder::SortedDecoder::new(
            &self.bytes[off as usize..],
            deg as usize,
        ))
    }
}

impl GraphView for CompressedCsr {
    fn id_bound(&self) -> usize {
        self.index.len()
    }

    fn num_edges(&self) -> u64 {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.index.get(v as usize).map_or(0, |&(_, d)| d as usize)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        if let Some(dec) = self.decoder(v) {
            for u in dec {
                f(u);
            }
        }
    }

    fn for_each_neighbor_until(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        if let Some(dec) = self.decoder(v) {
            for u in dec {
                if !f(u) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    fn random_edges(n: u32, per_vertex: u32) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for u in 0..n {
            for k in 0..per_vertex {
                let v = (u * 31 + k * 17 + 1) % n;
                if u != v {
                    edges.push((u, v));
                    edges.push((v, u));
                }
            }
        }
        edges
    }

    #[test]
    fn matches_plain_csr() {
        let edges = random_edges(200, 4);
        let plain = Csr::from_edges(&edges);
        let comp = CompressedCsr::from_edges(&edges);
        assert_eq!(plain.id_bound(), comp.id_bound());
        assert_eq!(plain.num_edges(), comp.num_edges());
        for v in 0..200u32 {
            assert_eq!(
                GraphView::neighbors(&plain, v),
                GraphView::neighbors(&comp, v),
                "vertex {v}"
            );
        }
    }

    #[test]
    fn compression_saves_memory() {
        let edges = random_edges(500, 8);
        let plain = Csr::from_edges(&edges);
        let comp = CompressedCsr::from_edges(&edges);
        assert!(
            comp.memory_bytes() < plain.memory_bytes(),
            "compressed {} !< plain {}",
            comp.memory_bytes(),
            plain.memory_bytes()
        );
    }

    #[test]
    fn early_exit_iteration() {
        let comp = CompressedCsr::from_edges(&[(0, 2), (0, 4), (0, 9)]);
        let mut seen = Vec::new();
        comp.for_each_neighbor_until(0, &mut |v| {
            seen.push(v);
            v < 4
        });
        assert_eq!(seen, vec![2, 4]);
    }

    #[test]
    fn empty() {
        let comp = CompressedCsr::from_edges(&[]);
        assert_eq!(comp.id_bound(), 0);
        assert_eq!(comp.memory_bytes(), 0);
    }
}
