//! Static CSR (compressed sparse row): the representation behind the
//! GAP benchmark suite and most static graph frameworks (§1). One
//! offset per vertex, one `u32` per edge, perfect locality — the
//! standard Aspen is compared against in Table 12.

use aspen::{GraphView, VertexId};
use rayon::prelude::*;

/// An immutable CSR graph.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u64>,
    edges: Vec<VertexId>,
}

impl Csr {
    /// Builds from a directed edge list (sorted + deduplicated
    /// internally). The id space is `0..=max endpoint`.
    pub fn from_edges(edges: &[(VertexId, VertexId)]) -> Self {
        let mut sorted = edges.to_vec();
        sorted.par_sort_unstable();
        sorted.dedup();
        let n = sorted
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut counts = vec![0u64; n];
        for &(u, _) in &sorted {
            counts[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for c in counts {
            acc += c;
            offsets.push(acc);
        }
        Csr {
            offsets,
            edges: sorted.into_iter().map(|(_, v)| v).collect(),
        }
    }

    /// Neighbor slice of `v`.
    #[inline]
    pub fn neighbors_slice(&self, v: VertexId) -> &[VertexId] {
        let vi = v as usize;
        if vi + 1 >= self.offsets.len() {
            return &[];
        }
        &self.edges[self.offsets[vi] as usize..self.offsets[vi + 1] as usize]
    }

    /// Heap bytes: the offsets array plus the edge array.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.edges.len() * std::mem::size_of::<VertexId>()
    }
}

impl GraphView for Csr {
    fn id_bound(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    fn degree(&self, v: VertexId) -> usize {
        self.neighbors_slice(v).len()
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &u in self.neighbors_slice(v) {
            f(u);
        }
    }

    fn for_each_neighbor_until(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        for &u in self.neighbors_slice(v) {
            if !f(u) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let g = Csr::from_edges(&[(0, 1), (0, 2), (2, 0), (1, 2)]);
        assert_eq!(g.id_bound(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors_slice(0), &[1, 2]);
        assert_eq!(g.neighbors_slice(2), &[0]);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn dedups_input() {
        let g = Csr::from_edges(&[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(&[]);
        assert_eq!(g.id_bound(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn view_trait_iteration() {
        let g = Csr::from_edges(&[(0, 1), (0, 3), (0, 5)]);
        assert_eq!(GraphView::neighbors(&g, 0), vec![1, 3, 5]);
        let mut count = 0;
        let done = g.for_each_neighbor_until(0, &mut |_| {
            count += 1;
            count < 2
        });
        assert!(!done);
        assert_eq!(count, 2);
    }
}
