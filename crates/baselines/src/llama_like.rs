//! A LLAMA-like multiversioned graph [Macko et al., ICDE'15] rebuilt in
//! Rust.
//!
//! LLAMA stores a base CSR snapshot; every ingested batch creates a new
//! *delta snapshot* holding (a) a fresh vertex indirection array and
//! (b) the new edge fragments, each fragment linking to the vertex's
//! previous fragment in an older snapshot. Reading a vertex's
//! adjacency walks the fragment chain across snapshots — the dependence
//! on snapshot count that makes LLAMA traversals slow once edges
//! scatter across many deltas (§7.6), and the `O(n)`-per-batch vertex
//! array that makes small batches expensive.

use aspen::{GraphView, VertexId};
use rayon::prelude::*;

/// Where a vertex's newest fragment lives: `(snapshot index, fragment
/// index)`.
type FragRef = (u32, u32);

/// One per-vertex run of edges added in a single snapshot.
#[derive(Clone, Debug)]
struct Fragment {
    edges: Vec<VertexId>,
    /// The vertex's previous fragment, in an older snapshot.
    prev: Option<FragRef>,
}

/// One ingested batch.
#[derive(Clone, Debug)]
struct Snapshot {
    /// Full vertex indirection array — copied per snapshot, as in
    /// LLAMA's design (`O(n)` space per batch, §8 related work).
    heads: Vec<Option<FragRef>>,
    fragments: Vec<Fragment>,
}

/// A LLAMA-like multiversioned array graph.
///
/// Queries read the newest snapshot. Deletions are not modeled (the
/// public LLAMA code likewise had no streaming evaluation; Table 11
/// compares static query performance).
pub struct LlamaLike {
    n: usize,
    snapshots: Vec<Snapshot>,
    num_edges: u64,
    degrees: Vec<u32>,
}

impl LlamaLike {
    /// Creates an empty graph over vertices `0..n`.
    pub fn new(n: usize) -> Self {
        LlamaLike {
            n,
            snapshots: Vec::new(),
            num_edges: 0,
            degrees: vec![0; n],
        }
    }

    /// Builds the base snapshot from a directed edge list.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut g = Self::new(n);
        g.ingest_batch(edges);
        g
    }

    /// Number of snapshots (base + deltas).
    pub fn num_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// Ingests a batch as a new delta snapshot. Duplicate edges
    /// (within the batch or against older snapshots) are skipped.
    pub fn ingest_batch(&mut self, edges: &[(VertexId, VertexId)]) {
        let mut sorted = edges.to_vec();
        sorted.par_sort_unstable();
        sorted.dedup();

        let snap_idx = self.snapshots.len() as u32;
        let prev_heads: Option<&Snapshot> = self.snapshots.last();
        // Copy the whole indirection array — the per-batch O(n) cost
        // characteristic of LLAMA.
        let mut heads: Vec<Option<FragRef>> = match prev_heads {
            Some(s) => s.heads.clone(),
            None => vec![None; self.n],
        };
        let mut fragments: Vec<Fragment> = Vec::new();

        let mut i = 0usize;
        while i < sorted.len() {
            let src = sorted[i].0;
            let start = i;
            while i < sorted.len() && sorted[i].0 == src {
                i += 1;
            }
            let fresh: Vec<VertexId> = sorted[start..i]
                .iter()
                .map(|&(_, v)| v)
                .filter(|&v| !self.contains_edge(src, v))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            self.num_edges += fresh.len() as u64;
            self.degrees[src as usize] += fresh.len() as u32;
            let frag = Fragment {
                edges: fresh,
                prev: heads[src as usize],
            };
            heads[src as usize] = Some((snap_idx, fragments.len() as u32));
            fragments.push(frag);
        }
        self.snapshots.push(Snapshot { heads, fragments });
    }

    /// Whether the directed edge exists in the newest snapshot.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        !self.for_each_neighbor_until(u, &mut |w| w != v)
    }

    fn newest_head(&self, v: VertexId) -> Option<FragRef> {
        self.snapshots.last()?.heads.get(v as usize).copied()?
    }

    /// Bytes: every snapshot's indirection array plus fragment storage.
    pub fn memory_bytes(&self) -> usize {
        let head_bytes = std::mem::size_of::<Option<FragRef>>();
        self.snapshots
            .iter()
            .map(|s| {
                s.heads.len() * head_bytes
                    + s.fragments
                        .iter()
                        .map(|f| {
                            f.edges.len() * std::mem::size_of::<VertexId>()
                                + std::mem::size_of::<Fragment>()
                        })
                        .sum::<usize>()
            })
            .sum()
    }
}

impl GraphView for LlamaLike {
    fn id_bound(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> u64 {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degrees.get(v as usize).map_or(0, |&d| d as usize)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        // Walk the fragment chain across snapshots, newest first.
        let mut cur = self.newest_head(v);
        while let Some((si, fi)) = cur {
            let frag = &self.snapshots[si as usize].fragments[fi as usize];
            for &u in &frag.edges {
                f(u);
            }
            cur = frag.prev;
        }
    }

    fn for_each_neighbor_until(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        let mut cur = self.newest_head(v);
        while let Some((si, fi)) = cur {
            let frag = &self.snapshots[si as usize].fragments[fi as usize];
            for &u in &frag.edges {
                if !f(u) {
                    return false;
                }
            }
            cur = frag.prev;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_snapshot_queries() {
        let g = LlamaLike::from_edges(5, &[(0, 1), (0, 2), (3, 4)]);
        assert_eq!(g.num_snapshots(), 1);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        let mut ns = GraphView::neighbors(&g, 0);
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2]);
    }

    #[test]
    fn deltas_chain_across_snapshots() {
        let mut g = LlamaLike::from_edges(4, &[(0, 1)]);
        g.ingest_batch(&[(0, 2)]);
        g.ingest_batch(&[(0, 3), (1, 0)]);
        assert_eq!(g.num_snapshots(), 3);
        assert_eq!(g.degree(0), 3);
        let mut ns = GraphView::neighbors(&g, 0);
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2, 3]);
        assert!(g.contains_edge(1, 0));
        assert!(!g.contains_edge(2, 0));
    }

    #[test]
    fn duplicates_across_batches_skipped() {
        let mut g = LlamaLike::from_edges(3, &[(0, 1)]);
        g.ingest_batch(&[(0, 1), (0, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn per_batch_vertex_array_shows_in_memory() {
        let n = 2000;
        let mut one = LlamaLike::from_edges(n, &[(0, 1)]);
        let base = one.memory_bytes();
        for i in 0..10u32 {
            one.ingest_batch(&[(1, 2 + i)]);
        }
        // ten tiny batches each pay ~n*sizeof(head): memory balloons.
        assert!(
            one.memory_bytes() > base + 10 * n * 4,
            "expected O(n) per batch: {} vs base {}",
            one.memory_bytes(),
            base
        );
    }

    #[test]
    fn early_exit() {
        let mut g = LlamaLike::from_edges(3, &[(0, 1)]);
        g.ingest_batch(&[(0, 2)]);
        let mut count = 0;
        g.for_each_neighbor_until(0, &mut |_| {
            count += 1;
            false
        });
        assert_eq!(count, 1);
    }
}
