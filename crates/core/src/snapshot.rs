//! Checkpoint serialization of graphs, preserving structural sharing.
//!
//! A [`Graph`] is a purely-functional vertex treap whose versions share
//! all untouched subtrees by `Arc` pointer (§6 of the paper — that is
//! what makes snapshots cheap). A checkpoint written node-by-node per
//! version would forfeit exactly that property on disk: `k` versions
//! differing by `O(k log n)` spine nodes would cost `k` full copies.
//!
//! [`SnapshotWriter`] instead serializes the vertex tree as a **node
//! DAG**: every distinct tree node (identified by its allocation, via
//! [`ptree::Tree::root_id`]) is written exactly once, in children-first
//! order, and assigned a stable id; parents and later versions refer to
//! shared subtrees by id. [`read_snapshot`] rebuilds bottom-up through
//! [`ptree::Tree::join`] — the serialized topology is a valid treap
//! (deterministic priorities make treap shape canonical), so every join
//! takes the `O(1)` fast path and reconstructs the exact node, sharing
//! child `Arc`s. Structural sharing therefore survives the round trip
//! **in memory** as well as on disk: subtrees shared between serialized
//! versions come back as shared allocations.
//!
//! The format is a raw payload with no checksum — framing, CRCs, and
//! torn-write handling belong to the storage layer (the stream crate's
//! WAL wraps checkpoints in CRC-validated files). The reader is still
//! fully defensive: malformed input yields [`SnapshotError`], never a
//! panic or a structurally invalid graph.
//!
//! # Example
//!
//! ```
//! use aspen::{CompressedEdges, Graph, SnapshotWriter, read_snapshot};
//!
//! let g: Graph<CompressedEdges> =
//!     Graph::from_edges(&[(0, 1), (1, 0)], Default::default());
//! let g2 = g.insert_edges(&[(1, 2), (2, 1)]);
//!
//! let mut w = SnapshotWriter::new(g.config());
//! w.add_graph(&g);
//! w.add_graph(&g2); // shared subtrees are written once
//! let bytes = w.finish();
//!
//! let graphs = read_snapshot::<CompressedEdges>(&bytes).unwrap();
//! assert_eq!(graphs[0].num_edges(), 2);
//! assert_eq!(graphs[1].num_edges(), 4);
//! ```

use crate::edges::{EdgeSet, VertexId};
use crate::graph::{Graph, VertexEntry, VertexTree};
use std::collections::HashMap;
use std::marker::PhantomData;

/// Format magic: "aspen snapshot, version 1".
const MAGIC: &[u8; 6] = b"ASNAP1";
/// One tree node record follows.
const TAG_NODE: u8 = 0x01;
/// The trailing roots section follows; ends the node stream.
const TAG_ROOTS: u8 = 0x02;

/// Appends `v` as an LEB128 varint.
pub fn put_u64(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` as an LEB128 varint.
pub fn put_u32(v: u32, out: &mut Vec<u8>) {
    put_u64(v as u64, out);
}

/// A bounds-checked cursor over untrusted bytes: every read returns
/// `None` instead of panicking on truncation or malformed varints.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed everything.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Reads the next `n` bytes as a slice.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Reads an LEB128 varint; `None` on truncation or overflow.
    pub fn u64v(&mut self) -> Option<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return None; // would overflow u64
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
            if shift > 63 {
                return None;
            }
        }
    }

    /// Reads an LEB128 varint that must fit a `u32`.
    pub fn u32v(&mut self) -> Option<u32> {
        u32::try_from(self.u64v()?).ok()
    }
}

/// Failure while decoding a snapshot payload. Carries a short
/// diagnostic; the input is untrusted, so every structural violation
/// maps here rather than to a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(String);

impl SnapshotError {
    fn new(msg: impl Into<String>) -> Self {
        SnapshotError(msg.into())
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes one or more graphs (typically consecutive versions) into
/// a single payload, interning structurally shared subtrees so each
/// distinct tree node is written once; the format is documented at
/// the top of this module's source.
pub struct SnapshotWriter<E: EdgeSet> {
    buf: Vec<u8>,
    /// node allocation address → assigned id (1-based; 0 = empty).
    ids: HashMap<usize, u64>,
    next_id: u64,
    roots: Vec<u64>,
    nodes_written: u64,
    _marker: PhantomData<E>,
}

impl<E: EdgeSet> SnapshotWriter<E> {
    /// A writer whose header records `cfg`; every added graph must use
    /// the same edge-set configuration.
    pub fn new(cfg: E::Config) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(MAGIC);
        let name = E::repr_name().as_bytes();
        put_u32(name.len() as u32, &mut buf);
        buf.extend_from_slice(name);
        E::encode_config(&cfg, &mut buf);
        SnapshotWriter {
            buf,
            ids: HashMap::new(),
            next_id: 1,
            roots: Vec::new(),
            nodes_written: 0,
            _marker: PhantomData,
        }
    }

    /// Serializes `g`, writing only nodes not already written by an
    /// earlier `add_graph` call (shared subtrees are referenced by id).
    pub fn add_graph(&mut self, g: &Graph<E>) {
        let root = self.write_tree(g.vertex_tree());
        self.roots.push(root);
    }

    /// Distinct tree nodes serialized so far — for `k` versions this is
    /// the union of their node sets, not the sum (the on-disk face of
    /// structural sharing).
    pub fn nodes_written(&self) -> u64 {
        self.nodes_written
    }

    /// Writes the trailing roots section and returns the payload.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf.push(TAG_ROOTS);
        put_u32(self.roots.len() as u32, &mut self.buf);
        for &r in &self.roots {
            put_u64(r, &mut self.buf);
        }
        self.buf
    }

    fn write_tree(&mut self, t: &VertexTree<E>) -> u64 {
        let Some(addr) = t.root_id() else {
            return 0;
        };
        if let Some(&id) = self.ids.get(&addr) {
            return id;
        }
        let (left, entry, right) = t.expose().expect("nonempty tree exposes");
        // Children first (recursion depth is the tree height, O(log n)
        // w.h.p.), so the reader can rebuild bottom-up in stream order.
        let left_id = self.write_tree(&left);
        let right_id = self.write_tree(&right);
        self.buf.push(TAG_NODE);
        put_u32(entry.id, &mut self.buf);
        put_u64(left_id, &mut self.buf);
        put_u64(right_id, &mut self.buf);
        // Adjacency as gap-coded varints: degree, first neighbor, then
        // strictly positive deltas (the list is strictly increasing).
        put_u32(entry.edges.degree() as u32, &mut self.buf);
        let mut prev: Option<VertexId> = None;
        entry.edges.for_each(&mut |v| {
            match prev {
                None => put_u32(v, &mut self.buf),
                Some(p) => put_u32(v - p, &mut self.buf),
            }
            prev = Some(v);
        });
        let id = self.next_id;
        self.next_id += 1;
        self.nodes_written += 1;
        self.ids.insert(addr, id);
        id
    }
}

/// Decodes a payload produced by [`SnapshotWriter`] for the same edge
/// representation `E`, returning the graphs in `add_graph` order.
///
/// Fails (never panics) on truncation, a representation mismatch, or
/// any structural violation — dangling node references, unsorted
/// adjacency, key ordering that breaks the search-tree invariant.
pub fn read_snapshot<E: EdgeSet>(bytes: &[u8]) -> Result<Vec<Graph<E>>, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let magic = r
        .bytes(MAGIC.len())
        .ok_or_else(|| SnapshotError::new("truncated magic"))?;
    if magic != MAGIC {
        return Err(SnapshotError::new("bad magic"));
    }
    let name_len = r
        .u32v()
        .ok_or_else(|| SnapshotError::new("truncated repr name"))? as usize;
    if name_len > r.remaining() {
        return Err(SnapshotError::new("repr name overruns payload"));
    }
    let name = r.bytes(name_len).expect("length checked");
    if name != E::repr_name().as_bytes() {
        return Err(SnapshotError::new(format!(
            "representation mismatch: snapshot holds {:?}, reading as {:?}",
            String::from_utf8_lossy(name),
            E::repr_name()
        )));
    }
    let cfg =
        E::decode_config(&mut r).ok_or_else(|| SnapshotError::new("malformed edge config"))?;

    // id → rebuilt subtree; index id-1. Shared children are cloned out
    // of this table, which is exactly an Arc bump — sharing preserved.
    let mut table: Vec<VertexTree<E>> = Vec::new();
    let mut neighbors: Vec<VertexId> = Vec::new();
    loop {
        match r.u8() {
            Some(TAG_NODE) => {
                let id = r
                    .u32v()
                    .ok_or_else(|| SnapshotError::new("truncated node record"))?;
                let left_id = r
                    .u64v()
                    .ok_or_else(|| SnapshotError::new("truncated node record"))?;
                let right_id = r
                    .u64v()
                    .ok_or_else(|| SnapshotError::new("truncated node record"))?;
                let next_id = table.len() as u64 + 1;
                if left_id >= next_id || right_id >= next_id {
                    return Err(SnapshotError::new("node references an unwritten child"));
                }
                let degree = r
                    .u32v()
                    .ok_or_else(|| SnapshotError::new("truncated degree"))?
                    as usize;
                if degree > r.remaining() {
                    // Every neighbor costs at least one byte; reject
                    // absurd degrees before allocating for them.
                    return Err(SnapshotError::new("degree overruns payload"));
                }
                neighbors.clear();
                neighbors.reserve(degree);
                let mut prev: Option<VertexId> = None;
                for _ in 0..degree {
                    let raw = r
                        .u32v()
                        .ok_or_else(|| SnapshotError::new("truncated adjacency"))?;
                    let v = match prev {
                        None => raw,
                        Some(p) => {
                            if raw == 0 {
                                return Err(SnapshotError::new("non-increasing adjacency"));
                            }
                            p.checked_add(raw)
                                .ok_or_else(|| SnapshotError::new("adjacency overflow"))?
                        }
                    };
                    neighbors.push(v);
                    prev = Some(v);
                }
                let fetch = |nid: u64| -> VertexTree<E> {
                    if nid == 0 {
                        VertexTree::new()
                    } else {
                        table[(nid - 1) as usize].clone()
                    }
                };
                let left = fetch(left_id);
                let right = fetch(right_id);
                // The search-tree invariant must hold before join, or
                // the rebuilt graph would be silently unsearchable.
                if left.last().is_some_and(|e| e.id >= id)
                    || right.first().is_some_and(|e| e.id <= id)
                {
                    return Err(SnapshotError::new("node keys violate search order"));
                }
                let entry = VertexEntry {
                    id,
                    edges: E::from_sorted(&neighbors, cfg),
                };
                table.push(VertexTree::join(left, entry, right));
            }
            Some(TAG_ROOTS) => {
                let count = r
                    .u32v()
                    .ok_or_else(|| SnapshotError::new("truncated root count"))?
                    as usize;
                if count > r.remaining() + 1 {
                    return Err(SnapshotError::new("root count overruns payload"));
                }
                let mut graphs = Vec::with_capacity(count);
                for _ in 0..count {
                    let root = r
                        .u64v()
                        .ok_or_else(|| SnapshotError::new("truncated root id"))?;
                    if root > table.len() as u64 {
                        return Err(SnapshotError::new("root references an unwritten node"));
                    }
                    let tree = if root == 0 {
                        VertexTree::new()
                    } else {
                        table[(root - 1) as usize].clone()
                    };
                    graphs.push(Graph::from_parts(tree, cfg));
                }
                if !r.is_empty() {
                    return Err(SnapshotError::new("trailing bytes after roots"));
                }
                return Ok(graphs);
            }
            Some(_) => return Err(SnapshotError::new("unknown record tag")),
            None => return Err(SnapshotError::new("payload ends before roots section")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::{CompressedEdges, UncompressedEdges};
    use ctree::ChunkParams;

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    fn assert_same_graph<E: EdgeSet>(a: &Graph<E>, b: &Graph<E>) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertex_ids() {
            assert_eq!(
                a.find_vertex(v).unwrap().edges.to_vec(),
                b.find_vertex(v).unwrap().edges.to_vec(),
                "adjacency of {v}"
            );
        }
    }

    /// Distinct node allocations reachable from the tree, via the same
    /// identity hook the writer interns on.
    fn unique_nodes<E: EdgeSet>(g: &Graph<E>, seen: &mut std::collections::HashSet<usize>) {
        fn walk<E: EdgeSet>(t: &VertexTree<E>, seen: &mut std::collections::HashSet<usize>) {
            let Some(addr) = t.root_id() else { return };
            if !seen.insert(addr) {
                return;
            }
            let (l, _, r) = t.expose().unwrap();
            walk(&l, seen);
            walk(&r, seen);
        }
        walk(g.vertex_tree(), seen);
    }

    #[test]
    fn roundtrip_single_graph() {
        let g = G::from_edges(
            &sym(&[(0, 1), (1, 2), (0, 2), (5, 9)]),
            ChunkParams::with_b(4),
        );
        let mut w = SnapshotWriter::new(g.config());
        w.add_graph(&g);
        let bytes = w.finish();
        let got = read_snapshot::<CompressedEdges>(&bytes).unwrap();
        assert_eq!(got.len(), 1);
        assert_same_graph(&g, &got[0]);
        got[0].check_invariants();
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = G::new(ChunkParams::default());
        let mut w = SnapshotWriter::new(g.config());
        w.add_graph(&g);
        let got = read_snapshot::<CompressedEdges>(&w.finish()).unwrap();
        assert_eq!(got[0].num_vertices(), 0);
    }

    #[test]
    fn roundtrip_uncompressed_repr() {
        let g: Graph<UncompressedEdges> = Graph::from_edges(&sym(&[(0, 1), (1, 2)]), ());
        let mut w = SnapshotWriter::new(());
        w.add_graph(&g);
        let got = read_snapshot::<UncompressedEdges>(&w.finish()).unwrap();
        assert_same_graph(&g, &got[0]);
    }

    #[test]
    fn repr_mismatch_is_rejected() {
        let g: Graph<UncompressedEdges> = Graph::from_edges(&sym(&[(0, 1)]), ());
        let mut w = SnapshotWriter::new(());
        w.add_graph(&g);
        let bytes = w.finish();
        assert!(read_snapshot::<CompressedEdges>(&bytes).is_err());
    }

    #[test]
    fn shared_subtrees_serialize_once_and_rebuild_shared() {
        let edges: Vec<(u32, u32)> = (0..300u32).map(|i| (i, (i + 1) % 300)).collect();
        let g = G::from_edges(&sym(&edges), ChunkParams::default());
        let g2 = g.insert_edges(&sym(&[(7, 999)]));

        let mut both = SnapshotWriter::new(g.config());
        both.add_graph(&g);
        both.add_graph(&g2);
        let shared_nodes = both.nodes_written();
        let shared_bytes = both.finish();

        let mut solo = SnapshotWriter::new(g.config());
        solo.add_graph(&g);
        let solo_nodes = solo.nodes_written();

        // The second version adds only its O(log n) spine.
        assert!(
            shared_nodes < solo_nodes + 20,
            "two versions cost {shared_nodes} nodes vs {solo_nodes} for one"
        );

        let got = read_snapshot::<CompressedEdges>(&shared_bytes).unwrap();
        assert_same_graph(&g, &got[0]);
        assert_same_graph(&g2, &got[1]);

        // Sharing survives reconstruction in memory: the union of node
        // sets matches what was written, not the sum of two full trees.
        let mut seen = std::collections::HashSet::new();
        unique_nodes(&got[0], &mut seen);
        unique_nodes(&got[1], &mut seen);
        assert_eq!(seen.len() as u64, shared_nodes);
    }

    #[test]
    fn rebuilt_tree_shape_is_canonical() {
        // Same key set ⇒ identical treap shape, so a round trip must
        // reproduce pointer-comparable structure against a fresh build.
        let g = G::from_edges(
            &sym(&[(0, 1), (2, 3), (4, 5), (1, 4)]),
            ChunkParams::default(),
        );
        let got = read_snapshot::<CompressedEdges>(&{
            let mut w = SnapshotWriter::new(g.config());
            w.add_graph(&g);
            w.finish()
        })
        .unwrap();
        got[0].check_invariants();
        assert_eq!(got[0].vertex_tree().height(), g.vertex_tree().height());
    }

    #[test]
    fn truncation_never_panics() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (3, 4)]), ChunkParams::default());
        let mut w = SnapshotWriter::new(g.config());
        w.add_graph(&g);
        let bytes = w.finish();
        for len in 0..bytes.len() {
            assert!(
                read_snapshot::<CompressedEdges>(&bytes[..len]).is_err(),
                "prefix of length {len} decoded"
            );
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let g = G::from_edges(
            &sym(&[(0, 1), (1, 2), (3, 4), (2, 9)]),
            ChunkParams::default(),
        );
        let mut w = SnapshotWriter::new(g.config());
        w.add_graph(&g);
        let bytes = w.finish();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[i] ^= 1 << bit;
                // Either rejected or decoded to *some* structurally
                // valid graph — both acceptable, panics are not.
                if let Ok(gs) = read_snapshot::<CompressedEdges>(&m) {
                    for g in &gs {
                        g.check_invariants();
                    }
                }
            }
        }
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_u64(v, &mut buf);
        }
        let mut r = ByteReader::new(&buf);
        for &v in &values {
            assert_eq!(r.u64v(), Some(v));
        }
        assert!(r.is_empty());
        // Overlong / truncated varints are rejected.
        assert_eq!(ByteReader::new(&[0x80]).u64v(), None);
        assert_eq!(ByteReader::new(&[0xff; 11]).u64v(), None);
    }
}
