//! Edge-set representations: the value stored at each vertex-tree node.
//!
//! The paper evaluates three layouts for the per-vertex adjacency sets
//! (Table 2 and Table 13):
//!
//! * **Aspen Uncomp.** — a plain purely-functional tree, one node per
//!   neighbor ([`UncompressedEdges`]);
//! * **Aspen (No DE)** — a C-tree whose chunks store raw `u32`s
//!   ([`PlainEdges`]);
//! * **Aspen (DE)** — a C-tree with difference-encoded byte-coded
//!   chunks ([`CompressedEdges`]), the configuration simply called
//!   "Aspen" everywhere else in the paper.
//!
//! The graph layer is generic over [`EdgeSet`], so every experiment can
//! swap representations without touching algorithm code.

use ctree::{CTree, ChunkCodec, ChunkParams, DefaultCodec, GammaCodec, IntervalCodec, PlainCodec};
use ptree::Tree;

/// A vertex identifier. The paper's graphs have up to 3.5B vertices
/// (stored as 32-bit ids after symmetrization); `u32` matches that.
pub type VertexId = u32;

/// An immutable, persistent set of neighbor ids.
///
/// Implementations must be cheap to clone (snapshot semantics): all
/// three provided representations are `Arc`-backed trees.
pub trait EdgeSet: Clone + Send + Sync + 'static {
    /// Representation-specific construction parameters (chunk size for
    /// C-trees; `()` for plain trees).
    type Config: Clone + Copy + Send + Sync + Default;

    /// The empty edge set.
    fn empty(cfg: Self::Config) -> Self;

    /// Builds from a strictly increasing neighbor list.
    fn from_sorted(neighbors: &[VertexId], cfg: Self::Config) -> Self;

    /// Number of neighbors (the vertex degree).
    fn degree(&self) -> usize;

    /// Whether `v` is a neighbor.
    fn contains(&self, v: VertexId) -> bool;

    /// Calls `f` on every neighbor in increasing order.
    fn for_each(&self, f: &mut dyn FnMut(VertexId));

    /// Calls `f` on every neighbor in increasing order until `f`
    /// returns `false`; returns `false` iff iteration was cut short.
    fn for_each_until(&self, f: &mut dyn FnMut(VertexId) -> bool) -> bool;

    /// The neighbors as a sorted `Vec`.
    fn to_vec(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.degree());
        self.for_each(&mut |v| out.push(v));
        out
    }

    /// Persistent union with another edge set (used by `InsertEdges`:
    /// the vertex-tree `MultiInsert` combines old and new edge sets
    /// with exactly this operation, §5 "Batch Updates").
    fn union(&self, other: &Self) -> Self;

    /// Persistent difference (used by `DeleteEdges`).
    fn difference(&self, other: &Self) -> Self;

    /// Whether the two sets share their backing allocation, proving
    /// equality without touching an element. Versions produced by batch
    /// updates share untouched edge sets by `Arc` pointer, so
    /// `diff_graphs` uses this to skip unchanged vertices outright.
    /// `false` proves nothing; the conservative default never claims
    /// sharing.
    fn shares_representation(&self, _other: &Self) -> bool {
        false
    }

    /// Heap bytes attributable to this edge set.
    fn memory_bytes(&self) -> usize;

    /// Short name for benchmark reports.
    fn repr_name() -> &'static str;

    /// Serializes the construction parameters into `out` (checkpoint
    /// headers record them so recovery rebuilds edge sets with the
    /// same chunking). Representations without parameters write
    /// nothing — the default.
    fn encode_config(_cfg: &Self::Config, _out: &mut Vec<u8>) {}

    /// Decodes parameters written by
    /// [`encode_config`](Self::encode_config); `None` on truncated or
    /// malformed input. The default reads nothing and returns the
    /// default configuration.
    fn decode_config(_r: &mut crate::snapshot::ByteReader<'_>) -> Option<Self::Config> {
        Some(Self::Config::default())
    }
}

/// One purely-functional tree node per neighbor — the paper's
/// "Aspen Uncomp." configuration.
#[derive(Clone, Debug, Default)]
pub struct UncompressedEdges {
    tree: Tree<VertexId>,
}

impl EdgeSet for UncompressedEdges {
    type Config = ();

    fn empty((): ()) -> Self {
        UncompressedEdges { tree: Tree::new() }
    }

    fn from_sorted(neighbors: &[VertexId], (): ()) -> Self {
        UncompressedEdges {
            tree: Tree::from_sorted(neighbors),
        }
    }

    fn degree(&self) -> usize {
        self.tree.len()
    }

    fn contains(&self, v: VertexId) -> bool {
        self.tree.contains(&v)
    }

    fn for_each(&self, f: &mut dyn FnMut(VertexId)) {
        self.tree.for_each_seq(&mut |&v| f(v));
    }

    fn for_each_until(&self, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        for &v in self.tree.iter() {
            if !f(v) {
                return false;
            }
        }
        true
    }

    fn union(&self, other: &Self) -> Self {
        UncompressedEdges {
            tree: self.tree.union(&other.tree, |a, _| *a),
        }
    }

    fn difference(&self, other: &Self) -> Self {
        UncompressedEdges {
            tree: self.tree.difference(&other.tree),
        }
    }

    fn shares_representation(&self, other: &Self) -> bool {
        self.tree.ptr_eq(&other.tree)
    }

    fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }

    fn repr_name() -> &'static str {
        "uncompressed-tree"
    }
}

/// C-tree edge set, generic over the chunk codec.
///
/// `CTreeEdges<PlainCodec>` is "Aspen (No DE)"; `CTreeEdges<DeltaCodec>`
/// is the full "Aspen (DE)" configuration.
#[derive(Clone, Debug)]
pub struct CTreeEdges<C: ChunkCodec> {
    tree: CTree<C>,
}

/// C-tree chunks without difference encoding ("Aspen (No DE)").
pub type PlainEdges = CTreeEdges<PlainCodec>;

/// C-tree chunks with the workspace default codec — difference-encoded
/// byte codes ("Aspen (DE)") unless one of the `aspen-ctree`
/// `default-codec-*` features re-selects the codec, which is how the CI
/// codec matrix re-runs the whole suite per codec.
pub type CompressedEdges = CTreeEdges<DefaultCodec>;

/// C-tree chunks with Elias-γ bit-coded gaps.
pub type GammaEdges = CTreeEdges<GammaCodec>;

/// C-tree chunks with intervalized ζ₃ codes (WebGraph-style).
pub type IntervalEdges = CTreeEdges<IntervalCodec>;

impl<C: ChunkCodec> CTreeEdges<C> {
    /// Access to the underlying C-tree (for diagnostics/benchmarks).
    pub fn ctree(&self) -> &CTree<C> {
        &self.tree
    }
}

impl<C: ChunkCodec> EdgeSet for CTreeEdges<C> {
    type Config = ChunkParams;

    fn empty(cfg: ChunkParams) -> Self {
        CTreeEdges {
            tree: CTree::new(cfg),
        }
    }

    fn from_sorted(neighbors: &[VertexId], cfg: ChunkParams) -> Self {
        CTreeEdges {
            tree: CTree::from_sorted(neighbors, cfg),
        }
    }

    fn degree(&self) -> usize {
        self.tree.len()
    }

    fn contains(&self, v: VertexId) -> bool {
        self.tree.contains(v)
    }

    fn for_each(&self, f: &mut dyn FnMut(VertexId)) {
        self.tree.for_each(f);
    }

    fn for_each_until(&self, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        // Streams chunk decoders with early exit — the old
        // implementation materialized the whole adjacency list first.
        self.tree.for_each_until(f)
    }

    fn to_vec(&self) -> Vec<VertexId> {
        self.tree.to_vec()
    }

    fn union(&self, other: &Self) -> Self {
        CTreeEdges {
            tree: self.tree.union(&other.tree),
        }
    }

    fn difference(&self, other: &Self) -> Self {
        CTreeEdges {
            tree: self.tree.difference(&other.tree),
        }
    }

    fn shares_representation(&self, other: &Self) -> bool {
        self.tree.ptr_eq(&other.tree)
    }

    fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }

    fn repr_name() -> &'static str {
        match C::name() {
            "delta" => "ctree-delta",
            "gamma" => "ctree-gamma",
            "interval" => "ctree-interval",
            _ => "ctree-plain",
        }
    }

    fn encode_config(cfg: &ChunkParams, out: &mut Vec<u8>) {
        crate::snapshot::put_u32(cfg.b, out);
        crate::snapshot::put_u64(cfg.seed, out);
    }

    fn decode_config(r: &mut crate::snapshot::ByteReader<'_>) -> Option<ChunkParams> {
        let b = r.u32v()?;
        let seed = r.u64v()?;
        if b == 0 {
            return None; // with_b would panic; reject corrupt input
        }
        Some(ChunkParams { b, seed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_edge_set<E: EdgeSet>(cfg: E::Config) {
        let e = E::empty(cfg);
        assert_eq!(e.degree(), 0);
        assert!(!e.contains(3));
        assert!(e.to_vec().is_empty());

        let a = E::from_sorted(&[1, 5, 9], cfg);
        assert_eq!(a.degree(), 3);
        assert!(a.contains(5));
        assert!(!a.contains(4));
        assert_eq!(a.to_vec(), vec![1, 5, 9]);

        let b = E::from_sorted(&[5, 7], cfg);
        assert_eq!(a.union(&b).to_vec(), vec![1, 5, 7, 9]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 9]);
        // persistence
        assert_eq!(a.to_vec(), vec![1, 5, 9]);

        let mut seen = Vec::new();
        a.for_each(&mut |v| seen.push(v));
        assert_eq!(seen, vec![1, 5, 9]);

        let mut count = 0;
        let completed = a.for_each_until(&mut |_| {
            count += 1;
            count < 2
        });
        assert!(!completed);
        assert_eq!(count, 2);
    }

    #[test]
    fn uncompressed_contract() {
        check_edge_set::<UncompressedEdges>(());
    }

    #[test]
    fn plain_ctree_contract() {
        check_edge_set::<PlainEdges>(ChunkParams::with_b(4));
    }

    #[test]
    fn delta_ctree_contract() {
        check_edge_set::<CompressedEdges>(ChunkParams::with_b(4));
    }

    #[test]
    fn gamma_ctree_contract() {
        check_edge_set::<GammaEdges>(ChunkParams::with_b(4));
    }

    #[test]
    fn interval_ctree_contract() {
        check_edge_set::<IntervalEdges>(ChunkParams::with_b(4));
    }

    #[test]
    fn bit_codecs_compress_below_plain() {
        let neighbors: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let plain = PlainEdges::from_sorted(&neighbors, ChunkParams::default());
        let gamma = GammaEdges::from_sorted(&neighbors, ChunkParams::default());
        let interval = IntervalEdges::from_sorted(&neighbors, ChunkParams::default());
        assert!(gamma.memory_bytes() < plain.memory_bytes());
        assert!(interval.memory_bytes() < plain.memory_bytes());
    }

    #[test]
    fn memory_ordering_between_representations() {
        let neighbors: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let unc = UncompressedEdges::from_sorted(&neighbors, ());
        let plain = PlainEdges::from_sorted(&neighbors, ChunkParams::default());
        let delta = CompressedEdges::from_sorted(&neighbors, ChunkParams::default());
        assert!(
            delta.memory_bytes() < plain.memory_bytes(),
            "difference encoding should shrink chunks"
        );
        assert!(
            plain.memory_bytes() < unc.memory_bytes(),
            "chunking should beat per-element nodes"
        );
    }

    #[test]
    fn repr_names_are_distinct() {
        assert_ne!(PlainEdges::repr_name(), CompressedEdges::repr_name());
        assert_ne!(UncompressedEdges::repr_name(), CompressedEdges::repr_name());
    }
}
