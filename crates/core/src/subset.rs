//! `vertexSubset`: Ligra's frontier representation (§2).
//!
//! A subset is either **sparse** (an unordered list of vertex ids) or
//! **dense** (a boolean array over the id space). `edgeMap` converts
//! between them as part of direction optimization; algorithms mostly
//! treat the type abstractly.

use crate::edges::VertexId;

/// A subset of the vertices `0..n`.
#[derive(Clone, Debug)]
pub struct VertexSubset {
    n: usize,
    repr: Repr,
}

#[derive(Clone, Debug)]
enum Repr {
    Sparse(Vec<VertexId>),
    Dense(Vec<bool>),
}

impl VertexSubset {
    /// The empty subset over an id space of size `n`.
    pub fn empty(n: usize) -> Self {
        VertexSubset {
            n,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// A singleton subset.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn single(n: usize, v: VertexId) -> Self {
        assert!((v as usize) < n, "vertex {v} out of id space {n}");
        VertexSubset {
            n,
            repr: Repr::Sparse(vec![v]),
        }
    }

    /// A sparse subset from a list of distinct ids.
    ///
    /// # Panics
    ///
    /// Debug builds assert every id is below `n`.
    pub fn sparse(n: usize, ids: Vec<VertexId>) -> Self {
        debug_assert!(ids.iter().all(|&v| (v as usize) < n));
        VertexSubset {
            n,
            repr: Repr::Sparse(ids),
        }
    }

    /// A dense subset from a membership array of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `flags.len() != n`.
    pub fn dense(n: usize, flags: Vec<bool>) -> Self {
        assert_eq!(flags.len(), n, "dense subset length mismatch");
        VertexSubset {
            n,
            repr: Repr::Dense(flags),
        }
    }

    /// The full subset `0..n`.
    pub fn full(n: usize) -> Self {
        VertexSubset {
            n,
            repr: Repr::Dense(vec![true; n]),
        }
    }

    /// Size of the underlying id space.
    #[inline]
    pub fn id_space(&self) -> usize {
        self.n
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(ids) => ids.len(),
            Repr::Dense(flags) => flags.iter().filter(|&&b| b).count(),
        }
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Sparse(ids) => ids.is_empty(),
            Repr::Dense(flags) => !flags.iter().any(|&b| b),
        }
    }

    /// Membership test. `O(1)` dense, `O(|S|)` sparse.
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.repr {
            Repr::Sparse(ids) => ids.contains(&v),
            Repr::Dense(flags) => flags.get(v as usize).copied().unwrap_or(false),
        }
    }

    /// The member ids (unordered for sparse subsets).
    pub fn to_vec(&self) -> Vec<VertexId> {
        match &self.repr {
            Repr::Sparse(ids) => ids.clone(),
            Repr::Dense(flags) => flags
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i as VertexId)
                .collect(),
        }
    }

    /// Whether the subset currently uses the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// Converts to the sparse representation (no-op if already sparse).
    pub fn to_sparse(&self) -> VertexSubset {
        VertexSubset {
            n: self.n,
            repr: Repr::Sparse(self.to_vec()),
        }
    }

    /// Converts to the dense representation (no-op if already dense).
    pub fn to_dense(&self) -> VertexSubset {
        match &self.repr {
            Repr::Dense(_) => self.clone(),
            Repr::Sparse(ids) => {
                let mut flags = vec![false; self.n];
                for &v in ids {
                    flags[v as usize] = true;
                }
                VertexSubset {
                    n: self.n,
                    repr: Repr::Dense(flags),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let e = VertexSubset::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let s = VertexSubset::single(10, 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn dense_sparse_roundtrip() {
        let s = VertexSubset::sparse(8, vec![1, 5, 7]);
        let d = s.to_dense();
        assert!(d.is_dense());
        assert_eq!(d.len(), 3);
        assert!(d.contains(5));
        let mut back = d.to_sparse().to_vec();
        back.sort_unstable();
        assert_eq!(back, vec![1, 5, 7]);
    }

    #[test]
    fn full_has_everything() {
        let f = VertexSubset::full(5);
        assert_eq!(f.len(), 5);
        assert!((0..5).all(|v| f.contains(v)));
    }

    #[test]
    #[should_panic(expected = "out of id space")]
    fn single_bounds_checked() {
        let _ = VertexSubset::single(3, 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dense_length_checked() {
        let _ = VertexSubset::dense(4, vec![true; 3]);
    }
}
