//! `edgeMap` with direction optimization (§2, §5, §5.1).
//!
//! `edge_map(G, U, F, C)` applies `F(u, v)` to every edge `(u, v)` with
//! `u ∈ U` and `C(v)` true, returning the subset of targets for which
//! `F` returned `true`. Two traversal modes are provided, chosen per
//! call by comparing the frontier's total out-degree against
//! `m / DENSE_DIVISOR` (Beamer's heuristic, as adopted by Ligra):
//!
//! * **sparse** ("push"): parallel over the frontier, visiting
//!   out-neighbors;
//! * **dense** ("pull"): parallel over *all* vertices `v` with `C(v)`,
//!   scanning v's (in-)neighbors for frontier members and stopping at
//!   the first success. Graphs are kept symmetric, so in- and
//!   out-neighbors coincide — the same simplification the paper's
//!   experiments make by symmetrizing inputs.
//!
//! `F` must be safe to call concurrently on distinct edges; when
//! multiple frontier vertices reach the same target, `F` must
//! deduplicate internally (the usual CAS-on-parent idiom) or the target
//! may appear multiple times in a sparse result.

use crate::edges::VertexId;
use crate::subset::VertexSubset;
use crate::view::GraphView;
use rayon::prelude::*;

/// Dense traversal triggers when the frontier's out-degree sum exceeds
/// `m / DENSE_DIVISOR` — the constant Ligra and GAP use.
const DENSE_DIVISOR: u64 = 20;

/// Forced traversal direction, or the adaptive default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Direction {
    /// Choose per-call via the degree heuristic.
    #[default]
    Auto,
    /// Always push (sparse). Used to compare against systems without
    /// direction optimization (Table 11).
    ForceSparse,
    /// Always pull (dense).
    ForceDense,
}

/// Applies `update` over the edges out of `frontier`, gated by `cond`,
/// with automatic direction selection. Returns the new frontier.
///
/// See the module docs for the contract on `update`/`cond`.
pub fn edge_map<G, F, C>(graph: &G, frontier: &VertexSubset, update: F, cond: C) -> VertexSubset
where
    G: GraphView,
    F: Fn(VertexId, VertexId) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    edge_map_directed(graph, frontier, update, cond, Direction::Auto)
}

/// [`edge_map`] with an explicit direction policy.
pub fn edge_map_directed<G, F, C>(
    graph: &G,
    frontier: &VertexSubset,
    update: F,
    cond: C,
    direction: Direction,
) -> VertexSubset
where
    G: GraphView,
    F: Fn(VertexId, VertexId) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    let use_dense = match direction {
        Direction::ForceSparse => false,
        Direction::ForceDense => true,
        Direction::Auto => {
            let ids = frontier.to_vec();
            let out_degrees: u64 =
                ids.par_iter().map(|&v| graph.degree(v) as u64).sum::<u64>() + ids.len() as u64;
            out_degrees > graph.num_edges() / DENSE_DIVISOR
        }
    };
    if use_dense {
        edge_map_dense(graph, frontier, update, cond)
    } else {
        edge_map_sparse(graph, frontier, update, cond)
    }
}

/// Push-based traversal: parallel over frontier vertices.
fn edge_map_sparse<G, F, C>(graph: &G, frontier: &VertexSubset, update: F, cond: C) -> VertexSubset
where
    G: GraphView,
    F: Fn(VertexId, VertexId) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    let ids = frontier.to_vec();
    let out: Vec<VertexId> = ids
        .par_iter()
        .map(|&u| {
            let mut hits = Vec::new();
            graph.for_each_neighbor(u, &mut |v| {
                if cond(v) && update(u, v) {
                    hits.push(v);
                }
            });
            hits
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    VertexSubset::sparse(frontier.id_space(), out)
}

/// Pull-based traversal: parallel over candidate targets, scanning
/// their neighbors for frontier members.
fn edge_map_dense<G, F, C>(graph: &G, frontier: &VertexSubset, update: F, cond: C) -> VertexSubset
where
    G: GraphView,
    F: Fn(VertexId, VertexId) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    let n = frontier.id_space();
    let dense = frontier.to_dense();
    let flags: Vec<bool> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            if !cond(v) {
                return false;
            }
            let mut added = false;
            graph.for_each_neighbor_until(v, &mut |u| {
                if dense.contains(u) && update(u, v) {
                    added = true;
                }
                // Ligra semantics: keep scanning while the condition
                // holds; algorithms whose targets settle after one
                // update (e.g. BFS) flip `cond` inside `update`, which
                // stops the scan — others (e.g. label propagation)
                // legitimately take several updates per round.
                cond(v)
            });
            added
        })
        .collect();
    VertexSubset::dense(n, flags)
}

/// Applies `f` to every vertex in the subset in parallel, returning the
/// subset of vertices for which `f` returned true (Ligra's vertexMap).
pub fn vertex_map(subset: &VertexSubset, f: impl Fn(VertexId) -> bool + Sync) -> VertexSubset {
    let kept: Vec<VertexId> = subset.to_vec().into_par_iter().filter(|&v| f(v)).collect();
    VertexSubset::sparse(subset.id_space(), kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::CompressedEdges;
    use crate::graph::Graph;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    type G = Graph<CompressedEdges>;

    /// Path graph 0-1-2-...-(n-1), symmetric edges.
    fn path(n: u32) -> G {
        let edges: Vec<(u32, u32)> = (0..n - 1).flat_map(|i| [(i, i + 1), (i + 1, i)]).collect();
        G::from_edges(&edges, Default::default())
    }

    fn bfs_level(
        g: &G,
        frontier: &VertexSubset,
        visited: &[AtomicBool],
        dir: Direction,
    ) -> VertexSubset {
        edge_map_directed(
            g,
            frontier,
            |_, v| !visited[v as usize].swap(true, Ordering::SeqCst),
            |v| !visited[v as usize].load(Ordering::SeqCst),
            dir,
        )
    }

    fn run_bfs(dir: Direction) -> Vec<usize> {
        let g = path(50);
        let n = 50;
        let visited: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        visited[0].store(true, Ordering::SeqCst);
        let mut frontier = VertexSubset::single(n, 0);
        let mut sizes = Vec::new();
        while !frontier.is_empty() {
            sizes.push(frontier.len());
            frontier = bfs_level(&g, &frontier, &visited, dir);
        }
        assert!(visited.iter().all(|v| v.load(Ordering::SeqCst)));
        sizes
    }

    #[test]
    fn sparse_and_dense_agree_on_bfs() {
        let a = run_bfs(Direction::ForceSparse);
        let b = run_bfs(Direction::ForceDense);
        let c = run_bfs(Direction::Auto);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.len(), 50, "path graph has one vertex per level");
    }

    #[test]
    fn cond_filters_targets() {
        let g = path(10);
        let frontier = VertexSubset::single(10, 5);
        let out = edge_map(&g, &frontier, |_, _| true, |v| v > 5);
        assert_eq!(out.to_vec(), vec![6]);
    }

    #[test]
    fn update_false_drops_target() {
        let g = path(10);
        let frontier = VertexSubset::single(10, 5);
        let out = edge_map(&g, &frontier, |_, _| false, |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn dense_mode_stops_when_cond_flips() {
        // star: 0 connected to all others; frontier = all leaves. The
        // BFS-style contract: `update` settles the target, flipping
        // `cond`, so the scan stops after the first success.
        let edges: Vec<(u32, u32)> = (1..20u32).flat_map(|i| [(0, i), (i, 0)]).collect();
        let g = G::from_edges(&edges, Default::default());
        let frontier = VertexSubset::sparse(20, (1..20).collect());
        let settled = AtomicBool::new(false);
        let count = AtomicUsize::new(0);
        let out = edge_map_directed(
            &g,
            &frontier,
            |_, _| {
                count.fetch_add(1, Ordering::SeqCst);
                !settled.swap(true, Ordering::SeqCst)
            },
            |v| v == 0 && !settled.load(Ordering::SeqCst),
            Direction::ForceDense,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "scan stops once cond flips"
        );
    }

    #[test]
    fn dense_mode_keeps_scanning_while_cond_holds() {
        // Label-propagation contract: cond stays true, so every
        // frontier in-edge of the target is applied in one round.
        let edges: Vec<(u32, u32)> = (1..20u32).flat_map(|i| [(0, i), (i, 0)]).collect();
        let g = G::from_edges(&edges, Default::default());
        let frontier = VertexSubset::sparse(20, (1..20).collect());
        let count = AtomicUsize::new(0);
        let _ = edge_map_directed(
            &g,
            &frontier,
            |_, _| {
                count.fetch_add(1, Ordering::SeqCst);
                true
            },
            |v| v == 0,
            Direction::ForceDense,
        );
        assert_eq!(count.load(Ordering::SeqCst), 19, "all in-edges applied");
    }

    #[test]
    fn vertex_map_filters() {
        let s = VertexSubset::sparse(10, vec![1, 2, 3, 4]);
        let out = vertex_map(&s, |v| v % 2 == 0);
        let mut v = out.to_vec();
        v.sort_unstable();
        assert_eq!(v, vec![2, 4]);
    }

    #[test]
    fn auto_goes_dense_on_huge_frontier() {
        // With the frontier being every vertex, out-degrees sum to 2m >
        // m/20, so Auto must select dense. We verify via is_dense on
        // the result (dense mode returns a dense subset).
        let g = path(100);
        let frontier = VertexSubset::full(100);
        let out = edge_map(&g, &frontier, |_, _| true, |_| true);
        assert!(out.is_dense());
    }
}
