//! Version maintenance: `acquire` / `set` / `release` (§6).
//!
//! The paper implements the version-maintenance problem with a
//! lock-free algorithm [Ben-David et al.]; this reproduction substitutes
//! a brief critical section (a pointer clone under a `parking_lot`
//! mutex) for the version table, plus `Arc` reference counting for the
//! garbage-collection role. The user-visible guarantees are the same:
//!
//! * any number of concurrent readers acquire immutable snapshots and
//!   are never blocked by the writer (the critical section is a pointer
//!   copy, independent of graph size);
//! * a single writer installs new versions atomically — the next
//!   `acquire` sees the whole batch or none of it (strict
//!   serializability of updates and queries);
//! * a version's memory is reclaimed when its last handle drops
//!   (`release` is simply dropping the `Arc`).
//!
//! Writers are serialized by a separate mutex, matching the paper's
//! single-writer multi-reader setting.

use crate::edges::{EdgeSet, VertexId};
use crate::graph::Graph;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing breakdown of one batch application, reported by the
/// [`VersionedGraph::update_with_timed`] family of hooks.
///
/// Streaming layers (the `aspen-stream` engine, the bench harness) use
/// this to attribute per-batch latency without wrapping the writer in
/// their own clocks — the measurement happens exactly around the two
/// phases the paper's cost model distinguishes: computing the new
/// functional version, and installing it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ApplyTiming {
    /// Time spent computing the new version (the purely-functional
    /// batch update; `O(B log(n/B))` work for a batch of `B`).
    pub compute: Duration,
    /// Time spent installing the new version (the `O(1)` critical
    /// section readers can contend on).
    pub install: Duration,
}

impl ApplyTiming {
    /// Total wall-clock time the batch spent in the writer.
    pub fn total(&self) -> Duration {
        self.compute + self.install
    }
}

/// A handle to an immutable graph version. Dropping it releases the
/// version (the paper's `release`).
pub type Version<E> = Arc<Graph<E>>;

/// A multi-version graph supporting concurrent snapshot queries and
/// serialized batch updates.
///
/// # Example
///
/// ```
/// use aspen::{CompressedEdges, Graph, VersionedGraph};
///
/// let vg: VersionedGraph<CompressedEdges> =
///     VersionedGraph::new(Graph::from_edges(&[(0, 1), (1, 0)], Default::default()));
///
/// let before = vg.acquire();
/// vg.insert_edges_undirected(&[(1, 2)]);
/// let after = vg.acquire();
///
/// assert_eq!(before.num_edges(), 2); // old snapshot is stable
/// assert_eq!(after.num_edges(), 4);
/// ```
pub struct VersionedGraph<E: EdgeSet> {
    current: Mutex<Version<E>>,
    writer: Mutex<()>,
}

impl<E: EdgeSet> VersionedGraph<E> {
    /// Wraps an initial graph version.
    pub fn new(initial: Graph<E>) -> Self {
        VersionedGraph {
            current: Mutex::new(Arc::new(initial)),
            writer: Mutex::new(()),
        }
    }

    /// Acquires the latest version. `O(1)`; never blocks on writers
    /// beyond a pointer copy.
    pub fn acquire(&self) -> Version<E> {
        self.current.lock().clone()
    }

    /// Installs a new version, making it visible to subsequent
    /// [`acquire`](Self::acquire) calls atomically.
    ///
    /// Prefer the batch helpers below, which compute the new version
    /// from the latest one under the writer lock.
    pub fn set(&self, graph: Graph<E>) {
        *self.current.lock() = Arc::new(graph);
    }

    /// Releases a version handle. Equivalent to dropping it; provided
    /// to mirror the paper's interface.
    pub fn release(version: Version<E>) {
        drop(version);
    }

    /// Runs a functional update: acquires the writer lock, applies `f`
    /// to the latest version, and installs the result. Readers continue
    /// on their snapshots throughout.
    pub fn update_with(&self, f: impl FnOnce(&Graph<E>) -> Graph<E>) {
        let _ = self.update_with_timed(f);
    }

    /// Runs a functional update like [`update_with`](Self::update_with)
    /// and reports how long the compute and install phases took.
    ///
    /// This is the core's batch-apply timing hook: streaming layers
    /// observe per-batch latency from inside the writer critical path
    /// rather than around it (which would fold in writer-lock wait
    /// time).
    pub fn update_with_timed(&self, f: impl FnOnce(&Graph<E>) -> Graph<E>) -> ApplyTiming {
        let _w = self.writer.lock();
        let cur = self.acquire();
        let t0 = Instant::now();
        let next = f(&cur);
        let compute = t0.elapsed();
        let t1 = Instant::now();
        self.set(next);
        let install = t1.elapsed();
        ApplyTiming { compute, install }
    }

    /// Timed variant of [`insert_edges`](Self::insert_edges).
    pub fn insert_edges_timed(&self, batch: &[(VertexId, VertexId)]) -> ApplyTiming {
        self.update_with_timed(|g| g.insert_edges(batch))
    }

    /// Timed variant of [`delete_edges`](Self::delete_edges).
    pub fn delete_edges_timed(&self, batch: &[(VertexId, VertexId)]) -> ApplyTiming {
        self.update_with_timed(|g| g.delete_edges(batch))
    }

    /// Timed variant of
    /// [`insert_edges_undirected`](Self::insert_edges_undirected).
    pub fn insert_edges_undirected_timed(&self, batch: &[(VertexId, VertexId)]) -> ApplyTiming {
        let directed = symmetrize(batch);
        self.insert_edges_timed(&directed)
    }

    /// Timed variant of
    /// [`delete_edges_undirected`](Self::delete_edges_undirected).
    pub fn delete_edges_undirected_timed(&self, batch: &[(VertexId, VertexId)]) -> ApplyTiming {
        let directed = symmetrize(batch);
        self.delete_edges_timed(&directed)
    }

    /// Inserts a batch of directed edges (the paper's `InsertEdges`).
    pub fn insert_edges(&self, batch: &[(VertexId, VertexId)]) {
        self.update_with(|g| g.insert_edges(batch));
    }

    /// Deletes a batch of directed edges (`DeleteEdges`).
    pub fn delete_edges(&self, batch: &[(VertexId, VertexId)]) {
        self.update_with(|g| g.delete_edges(batch));
    }

    /// Inserts each undirected edge as both directed arcs within one
    /// atomic batch — how the paper's experiments maintain
    /// undirectedness (§7.3).
    pub fn insert_edges_undirected(&self, batch: &[(VertexId, VertexId)]) {
        let directed = symmetrize(batch);
        self.insert_edges(&directed);
    }

    /// Deletes each undirected edge as both directed arcs atomically.
    pub fn delete_edges_undirected(&self, batch: &[(VertexId, VertexId)]) {
        let directed = symmetrize(batch);
        self.delete_edges(&directed);
    }

    /// Inserts isolated vertices (`InsertVertices`).
    pub fn insert_vertices(&self, ids: &[VertexId]) {
        self.update_with(|g| g.insert_vertices(ids));
    }

    /// Deletes vertices and their incident edges (`DeleteVertices`).
    pub fn delete_vertices(&self, ids: &[VertexId]) {
        self.update_with(|g| g.delete_vertices(ids));
    }
}

/// Expands undirected pairs into both directed arcs.
pub fn symmetrize(batch: &[(VertexId, VertexId)]) -> Vec<(VertexId, VertexId)> {
    batch.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::CompressedEdges;
    use std::sync::atomic::{AtomicBool, Ordering};

    type VG = VersionedGraph<CompressedEdges>;

    fn ring(n: u32) -> Graph<CompressedEdges> {
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), ((i + 1) % n, i)])
            .collect();
        Graph::from_edges(&edges, Default::default())
    }

    #[test]
    fn acquire_returns_current() {
        let vg = VG::new(ring(4));
        let v = vg.acquire();
        assert_eq!(v.num_edges(), 8);
        VersionedGraph::release(v);
    }

    #[test]
    fn snapshots_are_isolated_from_updates() {
        let vg = VG::new(ring(4));
        let old = vg.acquire();
        vg.insert_edges_undirected(&[(0, 2)]);
        assert_eq!(old.num_edges(), 8);
        assert_eq!(vg.acquire().num_edges(), 10);
    }

    #[test]
    fn updates_are_atomic_batches() {
        let vg = VG::new(ring(3));
        vg.insert_edges_undirected(&[(0, 10), (10, 20)]);
        let v = vg.acquire();
        // both directions of both edges must be visible together
        assert!(v.contains_edge(0, 10) && v.contains_edge(10, 0));
        assert!(v.contains_edge(10, 20) && v.contains_edge(20, 10));
    }

    #[test]
    fn delete_then_reinsert() {
        let vg = VG::new(ring(5));
        vg.delete_edges_undirected(&[(0, 1)]);
        assert!(!vg.acquire().contains_edge(0, 1));
        vg.insert_edges_undirected(&[(0, 1)]);
        assert!(vg.acquire().contains_edge(1, 0));
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let vg = std::sync::Arc::new(VG::new(ring(64)));
        let stop = std::sync::Arc::new(AtomicBool::new(false));

        let writer = {
            let vg = vg.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    vg.insert_edges_undirected(&[(i % 64, 64 + i)]);
                    i += 1;
                }
                i
            })
        };

        let readers: Vec<_> = (0..3)
            .map(|_| {
                let vg = vg.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut checks = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = vg.acquire();
                        // edge counts are even: both arcs land together
                        assert_eq!(v.num_edges() % 2, 0, "torn snapshot");
                        v.check_invariants();
                        checks += 1;
                    }
                    checks
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        let writes = writer.join().expect("writer panicked");
        for r in readers {
            let checks = r.join().expect("reader panicked");
            assert!(checks > 0);
        }
        assert!(writes > 0);
        assert_eq!(
            vg.acquire().num_edges(),
            128 + 2 * u64::from(writes),
            "every write visible exactly once"
        );
    }

    #[test]
    fn timed_apply_reports_phases() {
        let vg = VG::new(ring(8));
        let t = vg.insert_edges_undirected_timed(&[(0, 100), (1, 101)]);
        assert!(t.compute > std::time::Duration::ZERO);
        assert_eq!(t.total(), t.compute + t.install);
        assert!(vg.acquire().contains_edge(100, 0));
        let t = vg.delete_edges_undirected_timed(&[(0, 100)]);
        assert!(t.total() >= t.install);
        assert!(!vg.acquire().contains_edge(0, 100));
    }

    /// Writer serialization under contention: many threads race batch
    /// updates through the writer lock; every batch must land exactly
    /// once (no lost updates from a torn read-modify-write) and every
    /// intermediate version must be a consistent graph.
    #[test]
    fn contending_writers_serialize() {
        const WRITERS: u32 = 4;
        const BATCHES: u32 = 25;
        let vg = std::sync::Arc::new(VG::new(ring(8)));
        let before = vg.acquire().num_edges();

        let threads: Vec<_> = (0..WRITERS)
            .map(|w| {
                let vg = vg.clone();
                std::thread::spawn(move || {
                    for b in 0..BATCHES {
                        // Disjoint vertex ranges per writer: every edge
                        // is new, so the expected count is exact.
                        let base = 1000 + w * 1000 + b * 2;
                        vg.insert_edges_undirected(&[(0, base), (1, base + 1)]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("writer panicked");
        }

        let after = vg.acquire();
        assert_eq!(
            after.num_edges(),
            before + u64::from(WRITERS * BATCHES) * 4,
            "lost or duplicated a batch under writer contention"
        );
        after.check_invariants();
    }

    /// `update_with` read-modify-write atomicity: concurrent increments
    /// through the writer lock never observe a stale version.
    #[test]
    fn update_with_is_read_modify_write_atomic() {
        let vg = std::sync::Arc::new(VG::new(ring(4)));
        let threads: Vec<_> = (0..4)
            .map(|w| {
                let vg = vg.clone();
                std::thread::spawn(move || {
                    for i in 0..10 {
                        // Each call inserts one vertex derived from the
                        // *current* vertex count; a stale read would
                        // collide with another writer's id and lose it.
                        vg.update_with(|g| g.insert_vertices(&[10_000 + w * 100 + i]));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let v = vg.acquire();
        for w in 0..4 {
            for i in 0..10 {
                assert!(v.contains_vertex(10_000 + w * 100 + i));
            }
        }
    }

    #[test]
    fn vertex_updates() {
        let vg = VG::new(ring(4));
        vg.insert_vertices(&[100]);
        assert!(vg.acquire().contains_vertex(100));
        vg.delete_vertices(&[100, 0]);
        let v = vg.acquire();
        assert!(!v.contains_vertex(100));
        assert!(!v.contains_vertex(0));
        assert!(!v.contains_edge(1, 0));
        v.check_invariants();
    }
}
