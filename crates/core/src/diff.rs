//! Diffing graph versions.
//!
//! Because versions are purely functional, consecutive snapshots share
//! every subtree an update did not touch — by `Arc` pointer identity,
//! not merely by content. The diff below exploits that directly: it
//! recurses over the two vertex trees and prunes any pair of subtrees
//! with the same root pointer without visiting a single vertex, and
//! skips the per-vertex set differences whenever the two edge sets
//! share their backing allocation. For a batch touching `Δ` vertices
//! the work is `O(Δ·(log n + out))` rather than the `O(n)` walk a
//! naive merge of the two vertex lists would cost. This is the
//! historical-analysis primitive §8 points at ("functional data
//! structures are particularly well-suited for this scenario"), and
//! the driver behind the incremental standing queries in
//! `aspen-stream`.

use crate::edges::{EdgeSet, VertexId};
use crate::graph::{Graph, VertexEntry, VertexTree};

/// The edge-level difference between two graph versions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDiff {
    /// Directed edges present in `after` but not `before`.
    pub added_edges: Vec<(VertexId, VertexId)>,
    /// Directed edges present in `before` but not `after`.
    pub removed_edges: Vec<(VertexId, VertexId)>,
    /// Vertices present only in `after`.
    pub added_vertices: Vec<VertexId>,
    /// Vertices present only in `before`.
    pub removed_vertices: Vec<VertexId>,
}

impl GraphDiff {
    /// Whether the two versions were identical.
    pub fn is_empty(&self) -> bool {
        self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.added_vertices.is_empty()
            && self.removed_vertices.is_empty()
    }

    /// Total number of edge changes (both directions counted, matching
    /// the symmetrized representation).
    pub fn num_edge_changes(&self) -> usize {
        self.added_edges.len() + self.removed_edges.len()
    }
}

/// How much work [`diff_graphs_with_stats`] actually did — evidence
/// that the structural-sharing fast paths fire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Subtree pairs pruned by root-pointer identity. Every vertex
    /// beneath such a pair was skipped without being visited.
    pub shared_subtrees_skipped: u64,
    /// Vertices present in both versions whose edge sets shared their
    /// backing allocation, skipping the set differences outright.
    pub shared_edge_sets_skipped: u64,
    /// Vertices present in both versions whose edge sets were actually
    /// compared (two persistent set differences each).
    pub vertices_compared: u64,
}

/// Computes the exact difference between two versions of a graph.
///
/// `O(Δ·(log n + degree))` when the versions share structure (the
/// normal case for consecutive snapshots): pointer-identical subtrees
/// and edge sets are pruned without inspection.
pub fn diff_graphs<E: EdgeSet>(before: &Graph<E>, after: &Graph<E>) -> GraphDiff {
    diff_graphs_with_stats(before, after).0
}

/// [`diff_graphs`], additionally reporting how much of the walk was
/// short-circuited by structural sharing.
pub fn diff_graphs_with_stats<E: EdgeSet>(
    before: &Graph<E>,
    after: &Graph<E>,
) -> (GraphDiff, DiffStats) {
    let mut out = GraphDiff::default();
    let mut stats = DiffStats::default();
    diff_trees(
        before.vertex_tree(),
        after.vertex_tree(),
        &mut out,
        &mut stats,
    );
    (out, stats)
}

/// Recursive vertex-tree diff. Emits vertices (and their edges) in
/// increasing key order into `out`.
fn diff_trees<E: EdgeSet>(
    before: &VertexTree<E>,
    after: &VertexTree<E>,
    out: &mut GraphDiff,
    stats: &mut DiffStats,
) {
    if before.ptr_eq(after) {
        if !before.is_empty() {
            stats.shared_subtrees_skipped += 1;
        }
        return;
    }
    if before.is_empty() {
        after.for_each_seq(&mut |ent| {
            emit_vertex(ent, &mut out.added_vertices, &mut out.added_edges)
        });
        return;
    }
    if after.is_empty() {
        before.for_each_seq(&mut |ent| {
            emit_vertex(ent, &mut out.removed_vertices, &mut out.removed_edges)
        });
        return;
    }
    let (b_left, b_ent, b_right) = before.expose().expect("nonempty");
    let (a_left, a_ent, a_right) = after.split(&b_ent.id);
    diff_trees(&b_left, &a_left, out, stats);
    match a_ent {
        Some(a_ent) => diff_vertex(b_ent, &a_ent, out, stats),
        None => emit_vertex(b_ent, &mut out.removed_vertices, &mut out.removed_edges),
    }
    diff_trees(&b_right, &a_right, out, stats);
}

/// Records a vertex present in only one version, with all its edges.
fn emit_vertex<E: EdgeSet>(
    ent: &VertexEntry<E>,
    vertices: &mut Vec<VertexId>,
    edges: &mut Vec<(VertexId, VertexId)>,
) {
    vertices.push(ent.id);
    ent.edges.for_each(&mut |v| edges.push((ent.id, v)));
}

/// Diffs the edge sets of a vertex present in both versions.
fn diff_vertex<E: EdgeSet>(
    before: &VertexEntry<E>,
    after: &VertexEntry<E>,
    out: &mut GraphDiff,
    stats: &mut DiffStats,
) {
    if before.edges.shares_representation(&after.edges) {
        stats.shared_edge_sets_skipped += 1;
        return;
    }
    stats.vertices_compared += 1;
    after
        .edges
        .difference(&before.edges)
        .for_each(&mut |v| out.added_edges.push((after.id, v)));
    before
        .edges
        .difference(&after.edges)
        .for_each(&mut |v| out.removed_edges.push((before.id, v)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::CompressedEdges;

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn identical_versions_diff_empty() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2)]), Default::default());
        let d = diff_graphs(&g, &g.clone());
        assert!(d.is_empty());
    }

    #[test]
    fn self_diff_skips_every_vertex() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 3)]), Default::default());
        let (d, stats) = diff_graphs_with_stats(&g, &g.clone());
        assert!(d.is_empty());
        // The clone shares its root pointer: one prune, zero visits.
        assert_eq!(stats.shared_subtrees_skipped, 1);
        assert_eq!(stats.vertices_compared, 0);
        assert_eq!(stats.shared_edge_sets_skipped, 0);
    }

    #[test]
    fn small_update_shares_most_subtrees() {
        // 256 vertices in a path; one batch touches only two of them.
        let path: Vec<(u32, u32)> = (0..255u32).map(|i| (i, i + 1)).collect();
        let g = G::from_edges(&sym(&path), Default::default());
        let g2 = g.insert_edges(&sym(&[(0, 200)]));
        let (d, stats) = diff_graphs_with_stats(&g, &g2);
        assert_eq!(d.added_edges, vec![(0, 200), (200, 0)]);
        assert!(d.removed_edges.is_empty());
        // Only the vertices on the two root-to-leaf update paths can
        // differ; everything else must be pruned by pointer identity
        // rather than compared one by one.
        let n = g.num_vertices() as u64;
        assert!(
            stats.vertices_compared + stats.shared_edge_sets_skipped < n / 4,
            "visited {} + {} of {} vertices",
            stats.vertices_compared,
            stats.shared_edge_sets_skipped,
            n
        );
        assert!(stats.shared_subtrees_skipped > 0);
    }

    #[test]
    fn detects_added_and_removed_edges() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2)]), Default::default());
        let g2 = g
            .insert_edges(&sym(&[(0, 2)]))
            .delete_edges(&sym(&[(1, 2)]));
        let d = diff_graphs(&g, &g2);
        assert_eq!(d.added_edges, vec![(0, 2), (2, 0)]);
        assert_eq!(d.removed_edges, vec![(1, 2), (2, 1)]);
        assert!(d.added_vertices.is_empty());
        // reverse direction swaps the roles
        let rd = diff_graphs(&g2, &g);
        assert_eq!(rd.added_edges, d.removed_edges);
        assert_eq!(rd.removed_edges, d.added_edges);
    }

    #[test]
    fn detects_vertex_changes() {
        let g = G::from_edges(&sym(&[(0, 1)]), Default::default());
        let g2 = g.insert_vertices(&[9]).delete_vertices(&[1]);
        let d = diff_graphs(&g, &g2);
        assert_eq!(d.added_vertices, vec![9]);
        assert_eq!(d.removed_vertices, vec![1]);
        // deleting vertex 1 also removed its incident edges
        assert!(d.removed_edges.contains(&(0, 1)));
        assert!(d.removed_edges.contains(&(1, 0)));
    }

    #[test]
    fn diff_replays_forward() {
        // applying the diff's edge changes to `before` reproduces `after`
        let before = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 3)]), Default::default());
        let after = before
            .insert_edges(&sym(&[(0, 3), (4, 1)]))
            .delete_edges(&sym(&[(1, 2)]));
        let d = diff_graphs(&before, &after);
        let replayed = before
            .insert_edges(&d.added_edges)
            .delete_edges(&d.removed_edges);
        assert_eq!(replayed.num_edges(), after.num_edges());
        for v in after.vertex_ids() {
            assert_eq!(
                replayed.find_vertex(v).map(|e| e.edges.to_vec()),
                after.find_vertex(v).map(|e| e.edges.to_vec())
            );
        }
    }
}
