//! Diffing graph versions.
//!
//! Because versions are purely functional, comparing two of them is a
//! tree `Difference` in each direction — subtrees shared between the
//! versions (by `Arc` identity after unchanged updates, or by equal
//! content) contribute only `O(log n)`-boundary work through the
//! join-based recursion. This is the kind of historical-analysis
//! primitive §8 points at ("functional data structures are
//! particularly well-suited for this scenario").

use crate::edges::{EdgeSet, VertexId};
use crate::graph::Graph;

/// The edge-level difference between two graph versions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDiff {
    /// Directed edges present in `after` but not `before`.
    pub added_edges: Vec<(VertexId, VertexId)>,
    /// Directed edges present in `before` but not `after`.
    pub removed_edges: Vec<(VertexId, VertexId)>,
    /// Vertices present only in `after`.
    pub added_vertices: Vec<VertexId>,
    /// Vertices present only in `before`.
    pub removed_vertices: Vec<VertexId>,
}

impl GraphDiff {
    /// Whether the two versions were identical.
    pub fn is_empty(&self) -> bool {
        self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.added_vertices.is_empty()
            && self.removed_vertices.is_empty()
    }
}

/// Computes the exact difference between two versions of a graph.
///
/// `O(n + Δ·log n)`-ish in practice: vertices whose edge sets are
/// untouched compare by length + set difference on persistent trees,
/// which is cheap when versions share structure.
pub fn diff_graphs<E: EdgeSet>(before: &Graph<E>, after: &Graph<E>) -> GraphDiff {
    let mut out = GraphDiff::default();
    // Merge the two sorted vertex id sequences.
    let b_ids = before.vertex_ids();
    let a_ids = after.vertex_ids();
    let (mut i, mut j) = (0usize, 0usize);
    while i < b_ids.len() || j < a_ids.len() {
        match (b_ids.get(i), a_ids.get(j)) {
            (Some(&bv), Some(&av)) if bv == av => {
                let be = &before.find_vertex(bv).expect("listed id").edges;
                let ae = &after.find_vertex(av).expect("listed id").edges;
                for v in ae.difference(be).to_vec() {
                    out.added_edges.push((av, v));
                }
                for v in be.difference(ae).to_vec() {
                    out.removed_edges.push((bv, v));
                }
                i += 1;
                j += 1;
            }
            (Some(&bv), Some(&av)) if bv < av => {
                out.removed_vertices.push(bv);
                let be = &before.find_vertex(bv).expect("listed id").edges;
                for v in be.to_vec() {
                    out.removed_edges.push((bv, v));
                }
                i += 1;
            }
            (Some(_), Some(&av)) => {
                out.added_vertices.push(av);
                let ae = &after.find_vertex(av).expect("listed id").edges;
                for v in ae.to_vec() {
                    out.added_edges.push((av, v));
                }
                j += 1;
            }
            (Some(&bv), None) => {
                out.removed_vertices.push(bv);
                let be = &before.find_vertex(bv).expect("listed id").edges;
                for v in be.to_vec() {
                    out.removed_edges.push((bv, v));
                }
                i += 1;
            }
            (None, Some(&av)) => {
                out.added_vertices.push(av);
                let ae = &after.find_vertex(av).expect("listed id").edges;
                for v in ae.to_vec() {
                    out.added_edges.push((av, v));
                }
                j += 1;
            }
            (None, None) => unreachable!("loop guard"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::CompressedEdges;

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn identical_versions_diff_empty() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2)]), Default::default());
        let d = diff_graphs(&g, &g.clone());
        assert!(d.is_empty());
    }

    #[test]
    fn detects_added_and_removed_edges() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2)]), Default::default());
        let g2 = g
            .insert_edges(&sym(&[(0, 2)]))
            .delete_edges(&sym(&[(1, 2)]));
        let d = diff_graphs(&g, &g2);
        assert_eq!(d.added_edges, vec![(0, 2), (2, 0)]);
        assert_eq!(d.removed_edges, vec![(1, 2), (2, 1)]);
        assert!(d.added_vertices.is_empty());
        // reverse direction swaps the roles
        let rd = diff_graphs(&g2, &g);
        assert_eq!(rd.added_edges, d.removed_edges);
        assert_eq!(rd.removed_edges, d.added_edges);
    }

    #[test]
    fn detects_vertex_changes() {
        let g = G::from_edges(&sym(&[(0, 1)]), Default::default());
        let g2 = g.insert_vertices(&[9]).delete_vertices(&[1]);
        let d = diff_graphs(&g, &g2);
        assert_eq!(d.added_vertices, vec![9]);
        assert_eq!(d.removed_vertices, vec![1]);
        // deleting vertex 1 also removed its incident edges
        assert!(d.removed_edges.contains(&(0, 1)));
        assert!(d.removed_edges.contains(&(1, 0)));
    }

    #[test]
    fn diff_replays_forward() {
        // applying the diff's edge changes to `before` reproduces `after`
        let before = G::from_edges(&sym(&[(0, 1), (1, 2), (2, 3)]), Default::default());
        let after = before
            .insert_edges(&sym(&[(0, 3), (4, 1)]))
            .delete_edges(&sym(&[(1, 2)]));
        let d = diff_graphs(&before, &after);
        let replayed = before
            .insert_edges(&d.added_edges)
            .delete_edges(&d.removed_edges);
        assert_eq!(replayed.num_edges(), after.num_edges());
        for v in after.vertex_ids() {
            assert_eq!(
                replayed.find_vertex(v).map(|e| e.edges.to_vec()),
                after.find_vertex(v).map(|e| e.edges.to_vec())
            );
        }
    }
}
