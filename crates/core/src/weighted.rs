//! Weighted graphs — the paper's stated future-work extension (§6),
//! built on the weighted C-tree ([`ctree::WCTree`]): per-vertex maps
//! from neighbor id to edge weight, compressed Ligra+-style (id deltas
//! interleaved with varint weights).
//!
//! The update interface mirrors the unweighted [`Graph`](crate::Graph):
//! `insert_edges` takes `(src, dst, weight)` triples with a combiner
//! for weights of pre-existing edges (so edge-weight *updates* are the
//! same operation as insertions — the semantics §5 sketches), and
//! `delete_edges` removes by endpoint pair.

use crate::edges::VertexId;
use crate::view::GraphView;
use ctree::{CTree, ChunkParams, WCTree, Weight};
use ptree::{CountAug, Entry, Measure, Tree};
use rayon::prelude::*;

/// A weighted directed edge.
pub type WeightedEdge = (VertexId, VertexId, Weight);

/// One vertex with its weighted adjacency map.
#[derive(Clone, Debug)]
pub struct WVertexEntry {
    /// Vertex identifier.
    pub id: VertexId,
    /// Neighbor → weight map.
    pub edges: WCTree,
}

impl Entry for WVertexEntry {
    type Key = VertexId;

    #[inline]
    fn key(&self) -> &VertexId {
        &self.id
    }
}

/// Degree measure for the `O(1)` edge count.
#[derive(Clone, Debug)]
pub struct WEdgeMeasure;

impl Measure<WVertexEntry> for WEdgeMeasure {
    #[inline]
    fn measure(e: &WVertexEntry) -> u64 {
        e.edges.len() as u64
    }
}

type WVertexTree = Tree<WVertexEntry, CountAug<WEdgeMeasure>>;

/// An immutable snapshot of a weighted graph.
///
/// # Example
///
/// ```
/// use aspen::WeightedGraph;
///
/// let g = WeightedGraph::from_edges(
///     &[(0, 1, 7), (1, 0, 7), (1, 2, 3), (2, 1, 3)],
///     Default::default(),
/// );
/// assert_eq!(g.weight(1, 2), Some(3));
/// let g2 = g.insert_edges(&[(1, 2, 10)], |_old, new| new); // weight update
/// assert_eq!(g2.weight(1, 2), Some(10));
/// assert_eq!(g.weight(1, 2), Some(3)); // snapshot unchanged
/// ```
#[derive(Clone)]
pub struct WeightedGraph {
    vertices: WVertexTree,
    cfg: ChunkParams,
}

impl std::fmt::Debug for WeightedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeightedGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

impl Default for WeightedGraph {
    fn default() -> Self {
        Self::new(ChunkParams::default())
    }
}

impl WeightedGraph {
    /// The empty weighted graph.
    pub fn new(cfg: ChunkParams) -> Self {
        WeightedGraph {
            vertices: Tree::new(),
            cfg,
        }
    }

    /// Builds from weighted directed edges; duplicate `(src, dst)`
    /// pairs keep the last weight.
    pub fn from_edges(edges: &[WeightedEdge], cfg: ChunkParams) -> Self {
        let mut sorted = edges.to_vec();
        sorted.par_sort_unstable_by_key(|&(u, v, _)| (u, v));
        sorted.dedup_by_key(|&mut (u, v, _)| (u, v));
        let mut all_ids: Vec<VertexId> = sorted.iter().flat_map(|&(u, v, _)| [u, v]).collect();
        all_ids.par_sort_unstable();
        all_ids.dedup();
        let mut entries = Vec::with_capacity(all_ids.len());
        let mut i = 0usize;
        for &id in &all_ids {
            let start = i;
            while i < sorted.len() && sorted[i].0 == id {
                i += 1;
            }
            let pairs: Vec<(u32, Weight)> =
                sorted[start..i].iter().map(|&(_, v, w)| (v, w)).collect();
            entries.push(WVertexEntry {
                id,
                edges: WCTree::from_sorted(&pairs, cfg),
            });
        }
        WeightedGraph {
            vertices: Tree::from_sorted(&entries),
            cfg,
        }
    }

    /// Number of vertices; `O(1)`.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of directed edges; `O(1)` via augmentation.
    pub fn num_edges(&self) -> u64 {
        self.vertices.aug().value()
    }

    /// The weight of edge `(u, v)`, if present; `O(log n + b)`.
    pub fn weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.vertices.find(&u).and_then(|e| e.edges.get(v))
    }

    /// Degree of `v`; `O(log n)`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.vertices.find(&v).map_or(0, |e| e.edges.len())
    }

    /// Calls `f(neighbor, weight)` for every out-edge of `v`.
    pub fn for_each_weighted_neighbor(&self, v: VertexId, f: impl FnMut(VertexId, Weight)) {
        if let Some(e) = self.vertices.find(&v) {
            e.edges.for_each(f);
        }
    }

    /// Inserts (or updates) weighted directed edges. When `(u, v)`
    /// already exists, the new weight is `combine(old, new)`; batch
    /// duplicates fold the same way.
    pub fn insert_edges(
        &self,
        batch: &[WeightedEdge],
        combine: impl Fn(Weight, Weight) -> Weight + Copy + Sync,
    ) -> Self {
        if batch.is_empty() {
            return self.clone();
        }
        let cfg = self.cfg;
        let mut sorted = batch.to_vec();
        sorted.par_sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut entries: Vec<WVertexEntry> = Vec::new();
        let mut i = 0usize;
        while i < sorted.len() {
            let src = sorted[i].0;
            let mut pairs: Vec<(u32, Weight)> = Vec::new();
            while i < sorted.len() && sorted[i].0 == src {
                let (_, v, w) = sorted[i];
                match pairs.last_mut() {
                    Some(last) if last.0 == v => last.1 = combine(last.1, w),
                    _ => pairs.push((v, w)),
                }
                i += 1;
            }
            entries.push(WVertexEntry {
                id: src,
                edges: WCTree::from_sorted(&pairs, cfg),
            });
        }
        // Destination-only endpoints become isolated vertices.
        let mut endpoints: Vec<VertexId> = sorted.iter().map(|&(_, v, _)| v).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        let dst_entries: Vec<WVertexEntry> = endpoints
            .into_iter()
            .filter(|&id| {
                entries.binary_search_by_key(&id, |e| e.id).is_err()
                    && self.vertices.find(&id).is_none()
            })
            .map(|id| WVertexEntry {
                id,
                edges: WCTree::new(cfg),
            })
            .collect();
        let vertices = self
            .vertices
            .multi_insert(entries, |old, new| WVertexEntry {
                id: old.id,
                edges: old.edges.union(&new.edges, combine),
            });
        let vertices = if dst_entries.is_empty() {
            vertices
        } else {
            vertices.multi_insert(dst_entries, |old, _new| old.clone())
        };
        WeightedGraph { vertices, cfg }
    }

    /// Deletes directed edges by endpoint pair.
    pub fn delete_edges(&self, batch: &[(VertexId, VertexId)]) -> Self {
        if batch.is_empty() {
            return self.clone();
        }
        let cfg = self.cfg;
        let mut sorted = batch.to_vec();
        sorted.par_sort_unstable();
        sorted.dedup();
        let mut entries: Vec<WVertexEntry> = Vec::new();
        let mut kill_sets: Vec<CTree<ctree::DeltaCodec>> = Vec::new();
        let mut i = 0usize;
        while i < sorted.len() {
            let src = sorted[i].0;
            let start = i;
            while i < sorted.len() && sorted[i].0 == src {
                i += 1;
            }
            if self.vertices.find(&src).is_none() {
                continue;
            }
            let ids: Vec<u32> = sorted[start..i].iter().map(|&(_, v)| v).collect();
            kill_sets.push(CTree::from_sorted(&ids, cfg));
            entries.push(WVertexEntry {
                id: src,
                edges: WCTree::new(cfg),
            });
        }
        // Pair each batch entry with its kill set by position: encode
        // the index into the placeholder entry via a lookaside table.
        let kill_by_src: std::collections::HashMap<VertexId, CTree<ctree::DeltaCodec>> =
            entries.iter().map(|e| e.id).zip(kill_sets).collect();
        let vertices = self.vertices.multi_insert(entries, |old, _new| {
            let kill = kill_by_src
                .get(&old.id)
                .expect("kill set exists for batched source");
            WVertexEntry {
                id: old.id,
                edges: old.edges.difference(kill),
            }
        });
        WeightedGraph { vertices, cfg }
    }

    /// Heap bytes of the structure.
    pub fn memory_bytes(&self) -> usize {
        let edges = self
            .vertices
            .map_reduce(|e| e.edges.memory_bytes() as u64, |a, b| a + b, || 0)
            as usize;
        self.vertices.memory_bytes() + edges
    }

    /// Validates invariants (tests).
    ///
    /// # Panics
    ///
    /// Panics if any cached count or tree invariant is stale.
    pub fn check_invariants(&self) {
        self.vertices.check_invariants();
        let mut total = 0u64;
        self.vertices.for_each_seq(&mut |e| {
            e.edges.check_invariants();
            total += e.edges.len() as u64;
        });
        assert_eq!(total, self.num_edges(), "weighted edge count stale");
    }
}

impl GraphView for WeightedGraph {
    fn id_bound(&self) -> usize {
        self.vertices.last().map_or(0, |e| e.id as usize + 1)
    }

    fn num_edges(&self) -> u64 {
        WeightedGraph::num_edges(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        WeightedGraph::degree(self, v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.for_each_weighted_neighbor(v, |u, _| f(u));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn wsym(edges: &[(u32, u32, u32)]) -> Vec<WeightedEdge> {
        edges
            .iter()
            .flat_map(|&(u, v, w)| [(u, v, w), (v, u, w)])
            .collect()
    }

    #[test]
    fn build_and_lookup() {
        let g = WeightedGraph::from_edges(&wsym(&[(0, 1, 5), (1, 2, 9)]), Default::default());
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.weight(0, 1), Some(5));
        assert_eq!(g.weight(2, 1), Some(9));
        assert_eq!(g.weight(0, 2), None);
        g.check_invariants();
    }

    #[test]
    fn insert_updates_existing_weight() {
        let g = WeightedGraph::from_edges(&wsym(&[(0, 1, 5)]), Default::default());
        let min = g.insert_edges(&wsym(&[(0, 1, 3)]), |old, new| old.min(new));
        assert_eq!(min.weight(0, 1), Some(3));
        let keep = g.insert_edges(&wsym(&[(0, 1, 9)]), |old, _| old);
        assert_eq!(keep.weight(0, 1), Some(5));
        assert_eq!(g.weight(0, 1), Some(5), "snapshot stable");
    }

    #[test]
    fn delete_edges_by_pair() {
        let g = WeightedGraph::from_edges(
            &wsym(&[(0, 1, 1), (1, 2, 2), (0, 2, 3)]),
            Default::default(),
        );
        let g2 = g.delete_edges(&[(1, 2), (2, 1)]);
        assert_eq!(g2.weight(1, 2), None);
        assert_eq!(g2.weight(0, 2), Some(3));
        assert_eq!(g2.num_edges(), 4);
        g2.check_invariants();
    }

    #[test]
    fn batch_matches_oracle() {
        let mut oracle: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        let mut g = WeightedGraph::new(ChunkParams::with_b(8));
        for round in 0..20u32 {
            let batch: Vec<WeightedEdge> = (0..50)
                .map(|i| {
                    let u = (round * 7 + i) % 64;
                    let v = (round * 13 + i * 3 + 1) % 64;
                    (u, v, round + i)
                })
                .collect();
            g = g.insert_edges(&batch, |_, new| new);
            for &(u, v, w) in &batch {
                oracle.insert((u, v), w);
            }
        }
        assert_eq!(g.num_edges() as usize, oracle.len());
        for (&(u, v), &w) in &oracle {
            assert_eq!(g.weight(u, v), Some(w), "edge ({u},{v})");
        }
        g.check_invariants();
    }

    #[test]
    fn graph_view_ignores_weights() {
        let g = WeightedGraph::from_edges(&wsym(&[(0, 1, 5), (0, 2, 7)]), Default::default());
        assert_eq!(GraphView::neighbors(&g, 0), vec![1, 2]);
        assert_eq!(GraphView::id_bound(&g), 3);
    }
}
