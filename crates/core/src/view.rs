//! [`GraphView`]: the read-only neighborhood interface all algorithms
//! and all engines (Aspen snapshots, flat snapshots, and the baseline
//! systems in `aspen-baselines`) implement.

use crate::edges::VertexId;

/// Read-only access to a graph's structure.
///
/// Vertex ids are assumed to live in `0..id_bound()`; ids with no
/// vertex behave as isolated (degree 0). This lets algorithms allocate
/// flat arrays indexed by id, as Ligra does.
pub trait GraphView: Sync {
    /// Exclusive upper bound on vertex identifiers (`max id + 1`).
    fn id_bound(&self) -> usize;

    /// Number of directed edges.
    fn num_edges(&self) -> u64;

    /// Out-degree of `v` (0 for absent ids).
    fn degree(&self, v: VertexId) -> usize;

    /// Calls `f` on every out-neighbor of `v` in increasing order.
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId));

    /// Like [`for_each_neighbor`](Self::for_each_neighbor) but stops
    /// early when `f` returns `false`. Returns `false` iff stopped.
    fn for_each_neighbor_until(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        let mut complete = true;
        self.for_each_neighbor(v, &mut |u| {
            if complete && !f(u) {
                complete = false;
            }
        });
        complete
    }

    /// The out-neighbors of `v` as a sorted `Vec`.
    fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.for_each_neighbor(v, &mut |u| out.push(u));
        out
    }
}

impl<T: GraphView + ?Sized> GraphView for &T {
    fn id_bound(&self) -> usize {
        (**self).id_bound()
    }
    fn num_edges(&self) -> u64 {
        (**self).num_edges()
    }
    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        (**self).for_each_neighbor(v, f)
    }
    fn for_each_neighbor_until(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        (**self).for_each_neighbor_until(v, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy view for testing trait defaults: vertex v has neighbors
    /// v+1..v+3 modulo n.
    struct Ring {
        n: u32,
    }

    impl GraphView for Ring {
        fn id_bound(&self) -> usize {
            self.n as usize
        }
        fn num_edges(&self) -> u64 {
            u64::from(self.n) * 2
        }
        fn degree(&self, _v: VertexId) -> usize {
            2
        }
        fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
            f((v + 1) % self.n);
            f((v + 2) % self.n);
        }
    }

    #[test]
    fn default_until_stops_early() {
        let r = Ring { n: 10 };
        let mut seen = 0;
        let completed = r.for_each_neighbor_until(0, &mut |_| {
            seen += 1;
            false
        });
        assert!(!completed);
        assert_eq!(seen, 1);
    }

    #[test]
    fn default_neighbors_collects() {
        let r = Ring { n: 10 };
        assert_eq!(r.neighbors(8), vec![9, 0]);
    }

    #[test]
    fn reference_impl_delegates() {
        let r = Ring { n: 4 };
        let by_ref: &dyn GraphView = &r;
        assert_eq!((&by_ref).id_bound(), 4);
        assert_eq!(r.neighbors(0), vec![1, 2]);
    }
}
