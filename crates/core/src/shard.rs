//! Vertex-space partitioning for sharded engines.
//!
//! One [`crate::VersionedGraph`] means one writer loop and one root
//! install per batch. To scale past that, the vertex space is
//! partitioned across N independent shard engines, each owning the
//! adjacency lists of its vertices. [`ShardRouter`] is the one place
//! that partitioning decision lives: every layer (ingest routing,
//! query fan-out, bench splitting, test oracles) asks the same router,
//! so a vertex's owner can never be computed two different ways.
//!
//! The mirroring convention: an undirected edge `{u, v}` is stored as
//! the directed arc `(u, v)` in `shard_of(u)` and the directed arc
//! `(v, u)` in `shard_of(v)`. Every neighbor scan of `v` is therefore
//! local to `v`'s owner shard, and summing per-shard directed edge
//! counts yields the global count with no double counting.
//!
//! [`VersionVector`] is the companion consistency primitive: one
//! monotone per-shard version sequence number per shard. A *cut*
//! (a set of per-shard snapshots) is labeled by the vector of versions
//! it pins; vectors are partially ordered by [`VersionVector::dominates`].

use crate::edges::VertexId;

/// Maps vertex ids to owning shards. Copyable, deterministic, and
/// cheap enough to call per edge endpoint on the ingest hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardRouter {
    /// Multiplicative hash of the vertex id, modulo the shard count.
    /// Balances power-law id spaces (rMAT hubs land on distinct shards
    /// with high probability) at the cost of destroying id locality.
    Hash {
        /// Number of shards (positive).
        shards: u32,
    },
    /// Contiguous id ranges of `stride` ids per shard: vertex `v` is
    /// owned by `min(v / stride, shards - 1)`. Preserves id locality
    /// (neighbors in generators with local structure co-locate) but
    /// inherits any skew in the id space.
    Range {
        /// Number of shards (positive).
        shards: u32,
        /// Ids per shard (positive); the last shard absorbs the tail.
        stride: u32,
    },
}

/// SplitMix64 finalizer: the full-avalanche mixer used for hash
/// routing. Public only through routing decisions; kept local so the
/// router has no dependencies.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ShardRouter {
    /// Hash routing over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn hash(shards: usize) -> Self {
        assert!(shards > 0, "a router needs at least one shard");
        ShardRouter::Hash {
            shards: shards as u32,
        }
    }

    /// Range routing over `shards` shards covering ids `0..id_span`
    /// (ids at or beyond `id_span` fall into the last shard).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn range(shards: usize, id_span: u32) -> Self {
        assert!(shards > 0, "a router needs at least one shard");
        let stride = (id_span / shards as u32).max(1);
        ShardRouter::Range {
            shards: shards as u32,
            stride,
        }
    }

    /// Number of shards this router partitions into.
    #[inline]
    pub fn num_shards(&self) -> usize {
        match *self {
            ShardRouter::Hash { shards } | ShardRouter::Range { shards, .. } => shards as usize,
        }
    }

    /// The shard owning vertex `v`; always `< num_shards()`.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        match *self {
            ShardRouter::Hash { shards } => {
                if shards == 1 {
                    0
                } else {
                    (mix64(u64::from(v)) % u64::from(shards)) as usize
                }
            }
            ShardRouter::Range { shards, stride } => ((v / stride).min(shards - 1)) as usize,
        }
    }

    /// The owner shards of an arc `(u, v)`'s two endpoints:
    /// `(shard_of(u), shard_of(v))`.
    #[inline]
    pub fn endpoints_of(&self, u: VertexId, v: VertexId) -> (usize, usize) {
        (self.shard_of(u), self.shard_of(v))
    }

    /// Whether the undirected edge `{u, v}` spans two shards (and is
    /// therefore mirrored to both under the arc convention).
    #[inline]
    pub fn is_cross_shard(&self, u: VertexId, v: VertexId) -> bool {
        self.shard_of(u) != self.shard_of(v)
    }
}

/// A monotone vector of per-shard version sequence numbers.
///
/// Shard `i`'s entry counts the batches its engine has installed
/// (0 = the initial snapshot). The sharded engine publishes a
/// consistent cut by capturing the vector after every shard has
/// installed the same ingest epoch; successive cuts' vectors are
/// totally ordered under [`dominates`](Self::dominates).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionVector(Vec<u64>);

impl VersionVector {
    /// The zero vector over `shards` entries.
    pub fn new(shards: usize) -> Self {
        VersionVector(vec![0; shards])
    }

    /// Wraps explicit per-shard versions.
    pub fn from_versions(versions: Vec<u64>) -> Self {
        VersionVector(versions)
    }

    /// Number of shards covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector covers no shards.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Shard `i`'s version sequence number.
    pub fn get(&self, i: usize) -> u64 {
        self.0[i]
    }

    /// The per-shard entries.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Advances shard `i` to `version`.
    ///
    /// # Panics
    ///
    /// Panics if `version` would move the entry backwards — entries
    /// are monotone by construction.
    pub fn advance(&mut self, i: usize, version: u64) {
        assert!(
            version >= self.0[i],
            "version vector is monotone: shard {i} cannot go {} -> {version}",
            self.0[i]
        );
        self.0[i] = version;
    }

    /// Whether every entry of `self` is at least the matching entry of
    /// `other` (i.e. `self` describes the same cut or a later one).
    pub fn dominates(&self, other: &VersionVector) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }
}

impl std::fmt::Display for VersionVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_router_is_deterministic_and_in_range() {
        let r = ShardRouter::hash(4);
        assert_eq!(r.num_shards(), 4);
        for v in 0u32..10_000 {
            let s = r.shard_of(v);
            assert!(s < 4);
            assert_eq!(s, r.shard_of(v), "routing must be stable");
        }
    }

    #[test]
    fn hash_router_balances_contiguous_ids() {
        let r = ShardRouter::hash(4);
        let mut counts = [0usize; 4];
        for v in 0u32..40_000 {
            counts[r.shard_of(v)] += 1;
        }
        for &c in &counts {
            // Within 10% of perfectly balanced.
            assert!((9_000..=11_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for r in [ShardRouter::hash(1), ShardRouter::range(1, 100)] {
            for v in [0u32, 1, 99, u32::MAX] {
                assert_eq!(r.shard_of(v), 0);
            }
        }
    }

    #[test]
    fn range_router_partitions_contiguously() {
        let r = ShardRouter::range(4, 100);
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(24), 0);
        assert_eq!(r.shard_of(25), 1);
        assert_eq!(r.shard_of(99), 3);
        // Ids past the declared span land in the last shard.
        assert_eq!(r.shard_of(1_000_000), 3);
    }

    #[test]
    fn range_router_survives_tiny_spans() {
        let r = ShardRouter::range(8, 3); // stride clamps to 1
        for v in 0..3u32 {
            assert!(r.shard_of(v) < 8);
        }
        assert_eq!(r.shard_of(500), 7);
    }

    #[test]
    fn cross_shard_predicate_matches_shard_of() {
        let r = ShardRouter::hash(3);
        for (u, v) in [(0u32, 1u32), (5, 5), (17, 40)] {
            assert_eq!(
                r.is_cross_shard(u, v),
                r.shard_of(u) != r.shard_of(v),
                "({u},{v})"
            );
            assert_eq!(r.endpoints_of(u, v), (r.shard_of(u), r.shard_of(v)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::hash(0);
    }

    #[test]
    fn version_vector_advances_and_dominates() {
        let mut a = VersionVector::new(3);
        assert_eq!(a.len(), 3);
        a.advance(0, 2);
        a.advance(2, 1);
        assert_eq!(a.as_slice(), &[2, 0, 1]);
        let b = VersionVector::from_versions(vec![1, 0, 1]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a.clone()));
        // Different widths never dominate.
        assert!(!a.dominates(&VersionVector::new(2)));
        assert_eq!(a.to_string(), "[2, 0, 1]");
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn version_vector_rejects_regression() {
        let mut a = VersionVector::new(1);
        a.advance(0, 5);
        a.advance(0, 4);
    }
}
