//! The immutable graph: a purely-functional tree of vertices, each
//! holding a persistent edge set (§5, "Representing Graphs as Trees").

use crate::edges::{EdgeSet, VertexId};
use crate::view::GraphView;
use ptree::{CountAug, Entry, Measure, Tree};
use rayon::prelude::*;
use std::marker::PhantomData;

/// One vertex: its identifier and its adjacency set.
#[derive(Clone, Debug)]
pub struct VertexEntry<E> {
    /// Vertex identifier (the vertex-tree key).
    pub id: VertexId,
    /// Neighbors of this vertex.
    pub edges: E,
}

impl<E: EdgeSet> Entry for VertexEntry<E> {
    type Key = VertexId;

    #[inline]
    fn key(&self) -> &VertexId {
        &self.id
    }
}

/// Measures a vertex by its degree, so the vertex-tree's augmented
/// value is the total number of (directed) edges — the `O(1)`
/// `num_edges()` the paper gets from augmentation (§5).
#[derive(Clone, Debug)]
pub struct EdgeMeasure<E>(PhantomData<E>);

impl<E: EdgeSet> Measure<VertexEntry<E>> for EdgeMeasure<E> {
    #[inline]
    fn measure(entry: &VertexEntry<E>) -> u64 {
        entry.edges.degree() as u64
    }
}

/// The augmented vertex tree.
pub type VertexTree<E> = Tree<VertexEntry<E>, CountAug<EdgeMeasure<E>>>;

/// An immutable snapshot of an undirected graph.
///
/// `Graph` is a handle onto purely-functional structures: cloning is
/// `O(1)` and yields an isolated snapshot; all "mutators" return a new
/// graph. Undirectedness is a convention maintained by the update
/// helpers in [`crate::VersionedGraph`], which mirror every `(u, v)`
/// as `(v, u)` — exactly how the paper runs its experiments (§7.3).
///
/// # Example
///
/// ```
/// use aspen::{CompressedEdges, Graph};
///
/// let g: Graph<CompressedEdges> =
///     Graph::from_edges(&[(0, 1), (1, 0), (1, 2), (2, 1)], Default::default());
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 4); // directed count
/// assert_eq!(g.degree(1), 2);
/// ```
pub struct Graph<E: EdgeSet> {
    vertices: VertexTree<E>,
    cfg: E::Config,
}

impl<E: EdgeSet> Clone for Graph<E> {
    fn clone(&self) -> Self {
        Graph {
            vertices: self.vertices.clone(),
            cfg: self.cfg,
        }
    }
}

impl<E: EdgeSet> std::fmt::Debug for Graph<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

impl<E: EdgeSet> Default for Graph<E> {
    fn default() -> Self {
        Self::new(E::Config::default())
    }
}

impl<E: EdgeSet> Graph<E> {
    /// The empty graph.
    pub fn new(cfg: E::Config) -> Self {
        Graph {
            vertices: Tree::new(),
            cfg,
        }
    }

    /// The edge-set construction parameters used by this graph.
    #[inline]
    pub fn config(&self) -> E::Config {
        self.cfg
    }

    pub(crate) fn vertex_tree(&self) -> &VertexTree<E> {
        &self.vertices
    }

    pub(crate) fn from_parts(vertices: VertexTree<E>, cfg: E::Config) -> Self {
        Graph { vertices, cfg }
    }

    /// Builds a graph from a directed edge list (the paper's
    /// `BuildGraph`). Duplicate edges collapse; vertices are the union
    /// of all endpoints, so every mentioned vertex exists even with
    /// zero out-edges.
    pub fn from_edges(edges: &[(VertexId, VertexId)], cfg: E::Config) -> Self {
        let mut sorted: Vec<(VertexId, VertexId)> = edges.to_vec();
        sorted.par_sort_unstable();
        sorted.dedup();
        // Collect every endpoint so isolated/sink vertices exist too.
        let mut all_ids: Vec<VertexId> = sorted.iter().flat_map(|&(u, v)| [u, v]).collect();
        all_ids.par_sort_unstable();
        all_ids.dedup();

        let mut entries: Vec<VertexEntry<E>> = Vec::with_capacity(all_ids.len());
        let mut edge_idx = 0usize;
        for &id in &all_ids {
            let start = edge_idx;
            while edge_idx < sorted.len() && sorted[edge_idx].0 == id {
                edge_idx += 1;
            }
            let neighbors: Vec<VertexId> =
                sorted[start..edge_idx].iter().map(|&(_, v)| v).collect();
            entries.push(VertexEntry {
                id,
                edges: E::from_sorted(&neighbors, cfg),
            });
        }
        Graph {
            vertices: Tree::from_sorted(&entries),
            cfg,
        }
    }

    /// Builds from explicit adjacency lists `(vertex, sorted neighbors)`
    /// given in increasing vertex order.
    pub fn from_adjacency(adj: &[(VertexId, Vec<VertexId>)], cfg: E::Config) -> Self {
        let entries: Vec<VertexEntry<E>> = adj
            .par_iter()
            .map(|(id, neighbors)| VertexEntry {
                id: *id,
                edges: E::from_sorted(neighbors, cfg),
            })
            .collect();
        Graph {
            vertices: Tree::from_sorted(&entries),
            cfg,
        }
    }

    /// Number of vertices; `O(1)`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of directed edges; `O(1)` via the edge-count
    /// augmentation.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.vertices.aug().value()
    }

    /// Largest vertex id present, or `None` for the empty graph.
    pub fn max_vertex_id(&self) -> Option<VertexId> {
        self.vertices.last().map(|e| e.id)
    }

    /// Looks up a vertex (the paper's `FindVertex`); `O(log n)`.
    pub fn find_vertex(&self, v: VertexId) -> Option<&VertexEntry<E>> {
        self.vertices.find(&v)
    }

    /// Whether `v` exists in the graph.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// Degree of `v` (0 if absent); `O(log n)`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.find_vertex(v).map_or(0, |e| e.edges.degree())
    }

    /// Whether the directed edge `(u, v)` exists.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.find_vertex(u).is_some_and(|e| e.edges.contains(v))
    }

    /// Iterates `(vertex, neighbor)` pairs sequentially in sorted order.
    pub fn for_each_edge(&self, mut f: impl FnMut(VertexId, VertexId)) {
        self.vertices.for_each_seq(&mut |entry| {
            let u = entry.id;
            entry.edges.for_each(&mut |v| f(u, v));
        });
    }

    /// All vertex ids in increasing order.
    pub fn vertex_ids(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.num_vertices());
        self.vertices.for_each_seq(&mut |e| out.push(e.id));
        out
    }

    /// Inserts a batch of **directed** edges (the paper's
    /// `InsertEdges`, §5 "Batch Updates"): sort the batch, build an
    /// edge set per source, and `MultiInsert` into the vertex tree with
    /// `Union` as the combiner. Missing endpoints are created.
    ///
    /// `O(k log n)` work for a batch of `k` onto a graph of `n`
    /// vertices.
    pub fn insert_edges(&self, batch: &[(VertexId, VertexId)]) -> Self {
        if batch.is_empty() {
            return self.clone();
        }
        let cfg = self.cfg;
        let mut sorted: Vec<(VertexId, VertexId)> = batch.to_vec();
        sorted.par_sort_unstable();
        sorted.dedup();
        let mut entries: Vec<VertexEntry<E>> = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let src = sorted[i].0;
            let start = i;
            while i < sorted.len() && sorted[i].0 == src {
                i += 1;
            }
            let neighbors: Vec<VertexId> = sorted[start..i].iter().map(|&(_, v)| v).collect();
            entries.push(VertexEntry {
                id: src,
                edges: E::from_sorted(&neighbors, cfg),
            });
        }
        // Destination-only endpoints must exist as vertices as well.
        // Endpoints that are batch sources are covered by the main
        // MultiInsert; of the rest, only genuinely new ids need a pass.
        let mut endpoints: Vec<VertexId> = sorted.iter().map(|&(_, v)| v).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        let dst_entries: Vec<VertexEntry<E>> = endpoints
            .into_iter()
            .filter(|&id| {
                entries.binary_search_by_key(&id, |e| e.id).is_err() && !self.contains_vertex(id)
            })
            .map(|id| VertexEntry {
                id,
                edges: E::empty(cfg),
            })
            .collect();
        let vertices = self.vertices.multi_insert(entries, |old, new| VertexEntry {
            id: old.id,
            edges: old.edges.union(&new.edges),
        });
        let vertices = if dst_entries.is_empty() {
            vertices
        } else {
            vertices.multi_insert(dst_entries, |old, _new| old.clone())
        };
        Graph { vertices, cfg }
    }

    /// Deletes a batch of **directed** edges (`DeleteEdges`): like
    /// insertion but combining with `Difference`. Vertices are kept
    /// even if their degree drops to zero (the paper makes singleton
    /// removal optional; we keep them).
    pub fn delete_edges(&self, batch: &[(VertexId, VertexId)]) -> Self {
        if batch.is_empty() {
            return self.clone();
        }
        let cfg = self.cfg;
        let mut sorted: Vec<(VertexId, VertexId)> = batch.to_vec();
        sorted.par_sort_unstable();
        sorted.dedup();
        let mut entries: Vec<VertexEntry<E>> = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let src = sorted[i].0;
            let start = i;
            while i < sorted.len() && sorted[i].0 == src {
                i += 1;
            }
            // A source absent from the graph has nothing to delete;
            // filtering here keeps MultiInsert from inserting it.
            if !self.contains_vertex(src) {
                continue;
            }
            let neighbors: Vec<VertexId> = sorted[start..i].iter().map(|&(_, v)| v).collect();
            entries.push(VertexEntry {
                id: src,
                edges: E::from_sorted(&neighbors, cfg),
            });
        }
        let vertices = self.vertices.multi_insert(entries, |old, new| VertexEntry {
            id: old.id,
            edges: old.edges.difference(&new.edges),
        });
        Graph { vertices, cfg }
    }

    /// Inserts vertices with empty adjacency sets (`InsertVertices`).
    /// Existing vertices are left untouched.
    pub fn insert_vertices(&self, ids: &[VertexId]) -> Self {
        let cfg = self.cfg;
        let entries: Vec<VertexEntry<E>> = ids
            .iter()
            .map(|&id| VertexEntry {
                id,
                edges: E::empty(cfg),
            })
            .collect();
        let vertices = self.vertices.multi_insert(entries, |old, _new| old.clone());
        Graph { vertices, cfg }
    }

    /// Deletes vertices and all incident edges (`DeleteVertices`),
    /// yielding the induced subgraph `G[V \ ids]`. Assumes the
    /// symmetric (undirected) edge invariant, under which every edge
    /// incident to a deleted vertex is discoverable from the vertex
    /// itself.
    pub fn delete_vertices(&self, ids: &[VertexId]) -> Self {
        let cfg = self.cfg;
        // Collect reverse edges to scrub from surviving vertices.
        let mut incident: Vec<(VertexId, VertexId)> = Vec::new();
        for &v in ids {
            if let Some(entry) = self.find_vertex(v) {
                entry.edges.for_each(&mut |u| incident.push((u, v)));
            }
        }
        let scrubbed = self.delete_edges(&incident);
        let vertices = scrubbed.vertices.multi_delete(ids.to_vec());
        Graph { vertices, cfg }
    }

    /// Applies `f` to every vertex entry in parallel.
    pub fn par_for_each_vertex(&self, f: impl Fn(&VertexEntry<E>) + Sync) {
        self.vertices.par_for_each(f);
    }

    /// Heap bytes: vertex-tree nodes plus all edge-set payloads.
    /// The counterpart of the paper's Table 2 accounting.
    pub fn memory_bytes(&self) -> usize {
        let edges: u64 =
            self.vertices
                .map_reduce(|e| e.edges.memory_bytes() as u64, |a, b| a + b, || 0);
        self.vertices.memory_bytes() + edges as usize
    }

    /// Validates graph-level invariants (sorted adjacency, edge counts);
    /// for tests.
    ///
    /// # Panics
    ///
    /// Panics if any cached count disagrees with a full recount.
    pub fn check_invariants(&self) {
        self.vertices.check_invariants();
        let mut total = 0u64;
        self.vertices.for_each_seq(&mut |e| {
            let vec = e.edges.to_vec();
            assert!(vec.windows(2).all(|w| w[0] < w[1]), "adjacency unsorted");
            assert_eq!(vec.len(), e.edges.degree(), "degree cache stale");
            total += vec.len() as u64;
        });
        assert_eq!(total, self.num_edges(), "edge-count augmentation stale");
    }
}

impl<E: EdgeSet> GraphView for Graph<E> {
    fn id_bound(&self) -> usize {
        self.max_vertex_id().map_or(0, |m| m as usize + 1)
    }

    fn num_edges(&self) -> u64 {
        Graph::num_edges(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        Graph::degree(self, v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        if let Some(entry) = self.find_vertex(v) {
            entry.edges.for_each(f);
        }
    }

    fn for_each_neighbor_until(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        match self.find_vertex(v) {
            Some(entry) => entry.edges.for_each_until(f),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::{CompressedEdges, UncompressedEdges};
    use ctree::ChunkParams;

    type G = Graph<CompressedEdges>;

    fn sym(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect()
    }

    #[test]
    fn empty_graph() {
        let g = G::new(ChunkParams::default());
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert!(!g.contains_edge(0, 1));
    }

    #[test]
    fn from_edges_builds_expected_shape() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (0, 2)]), ChunkParams::default());
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert!(g.contains_edge(2, 0));
        assert!(!g.contains_edge(2, 3));
        g.check_invariants();
    }

    #[test]
    fn from_edges_creates_sink_vertices() {
        // 5 appears only as a destination.
        let g = G::from_edges(&[(1, 5)], ChunkParams::default());
        assert!(g.contains_vertex(5));
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn insert_edges_is_persistent() {
        let g = G::from_edges(&sym(&[(0, 1)]), ChunkParams::default());
        let g2 = g.insert_edges(&sym(&[(1, 2)]));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g2.num_edges(), 4);
        assert!(g2.contains_edge(2, 1));
        assert!(!g.contains_vertex(2));
        g2.check_invariants();
    }

    #[test]
    fn insert_duplicate_edges_is_idempotent() {
        let g = G::from_edges(&sym(&[(0, 1)]), ChunkParams::default());
        let g2 = g.insert_edges(&sym(&[(0, 1), (0, 1)]));
        assert_eq!(g2.num_edges(), 2);
    }

    #[test]
    fn delete_edges_roundtrip() {
        let edges = sym(&[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let g = G::from_edges(&edges, ChunkParams::default());
        let g2 = g.delete_edges(&sym(&[(1, 2)]));
        assert_eq!(g2.num_edges(), 6);
        assert!(!g2.contains_edge(1, 2));
        assert!(!g2.contains_edge(2, 1));
        // vertices survive with zero edges
        assert!(g2.contains_vertex(2));
        // deleting a non-existent edge or vertex is a no-op
        let g3 = g2.delete_edges(&[(9, 1), (1, 9)]);
        assert_eq!(g3.num_edges(), 6);
        g3.check_invariants();
    }

    #[test]
    fn insert_vertices_only_adds_missing() {
        let g = G::from_edges(&sym(&[(0, 1)]), ChunkParams::default());
        let g2 = g.insert_vertices(&[0, 7]);
        assert_eq!(g2.num_vertices(), 3);
        assert_eq!(g2.degree(0), 1, "existing vertex edges preserved");
    }

    #[test]
    fn delete_vertices_removes_incident_edges() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2), (0, 2)]), ChunkParams::default());
        let g2 = g.delete_vertices(&[1]);
        assert_eq!(g2.num_vertices(), 2);
        assert!(!g2.contains_vertex(1));
        assert!(!g2.contains_edge(0, 1));
        assert!(g2.contains_edge(0, 2));
        assert_eq!(g2.num_edges(), 2);
        g2.check_invariants();
    }

    #[test]
    fn graph_view_over_tree_lookups() {
        let g = G::from_edges(&sym(&[(0, 1), (1, 2)]), ChunkParams::default());
        let view: &dyn GraphView = &g;
        assert_eq!(view.id_bound(), 3);
        let mut ns = Vec::new();
        view.for_each_neighbor(1, &mut |v| ns.push(v));
        assert_eq!(ns, vec![0, 2]);
    }

    #[test]
    fn works_with_uncompressed_representation() {
        let g: Graph<UncompressedEdges> = Graph::from_edges(&sym(&[(0, 1), (1, 2)]), ());
        assert_eq!(g.num_edges(), 4);
        let g2 = g.delete_edges(&sym(&[(0, 1)]));
        assert_eq!(g2.num_edges(), 2);
        g2.check_invariants();
    }

    #[test]
    fn memory_accounting_is_monotone() {
        let small = G::from_edges(&sym(&[(0, 1)]), ChunkParams::default());
        let edges: Vec<(u32, u32)> = (0u32..200).map(|i| (i, (i + 1) % 200)).collect();
        let big = G::from_edges(&sym(&edges), ChunkParams::default());
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn large_batch_update_matches_rebuild() {
        let initial: Vec<(u32, u32)> = (0..500u32).map(|i| (i, (i * 7 + 1) % 500)).collect();
        let extra: Vec<(u32, u32)> = (0..500u32).map(|i| (i, (i * 11 + 3) % 500)).collect();
        let g = G::from_edges(&sym(&initial), ChunkParams::default());
        let g2 = g.insert_edges(&sym(&extra));
        let mut all = sym(&initial);
        all.extend(sym(&extra));
        let rebuilt = G::from_edges(&all, ChunkParams::default());
        assert_eq!(g2.num_edges(), rebuilt.num_edges());
        for v in rebuilt.vertex_ids() {
            assert_eq!(
                g2.find_vertex(v).unwrap().edges.to_vec(),
                rebuilt.find_vertex(v).unwrap().edges.to_vec(),
                "adjacency of {v}"
            );
        }
    }
}
