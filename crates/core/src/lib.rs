//! Aspen: a multicore graph-streaming framework over compressed
//! purely-functional trees.
//!
//! This crate is the framework layer of the PLDI 2019 paper
//! *"Low-Latency Graph Streaming Using Compressed Purely-Functional
//! Trees"* (Dhulipala, Blelloch, Shun). It represents an undirected
//! graph as a purely-functional **vertex tree** (augmented with edge
//! counts) whose values are persistent per-vertex **edge sets** —
//! by default C-trees with difference-encoded chunks (the `ctree`
//! crate, the paper's core contribution).
//!
//! # The interface (paper §6 and Appendix 10.4)
//!
//! * **Versioning** — [`VersionedGraph`] provides `acquire`/`set`/
//!   `release`: any number of readers run on immutable snapshots while
//!   a single writer installs new versions atomically; queries and
//!   updates are strictly serializable.
//! * **Updates** — [`Graph::insert_edges`], [`Graph::delete_edges`],
//!   [`Graph::insert_vertices`], [`Graph::delete_vertices`], all batch
//!   operations built on the trees' `MultiInsert` with `Union`/
//!   `Difference` combiners.
//! * **Ligra interface** — [`VertexSubset`] and [`edge_map`] with
//!   direction optimization, so Ligra-style algorithms port with minor
//!   changes (they live in the `aspen-algorithms` crate).
//! * **Flat snapshots** (§5.1) — [`FlatSnapshot`] trades `O(n)` setup
//!   for `O(1)` vertex access, removing the `O(K log n)` overhead of
//!   tree lookups in global algorithms.
//!
//! # Quick start
//!
//! ```
//! use aspen::{edge_map, CompressedEdges, Graph, VersionedGraph, VertexSubset};
//!
//! // A triangle, kept symmetric (undirected).
//! let vg: VersionedGraph<CompressedEdges> = VersionedGraph::new(Graph::from_edges(
//!     &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)],
//!     Default::default(),
//! ));
//!
//! // A reader takes a snapshot; a writer streams in more edges.
//! let snapshot = vg.acquire();
//! vg.insert_edges_undirected(&[(2, 3)]);
//!
//! // The snapshot still sees the triangle only.
//! assert_eq!(snapshot.num_vertices(), 3);
//! assert_eq!(vg.acquire().num_vertices(), 4);
//!
//! // One edgeMap step from vertex 0 over the snapshot.
//! let frontier = VertexSubset::single(3, 0);
//! let next = edge_map(&*snapshot, &frontier, |_u, _v| true, |_v| true);
//! assert_eq!(next.len(), 2);
//! ```

mod diff;
mod edgemap;
mod edges;
mod flat;
mod graph;
mod shard;
mod snapshot;
mod subset;
mod versioned;
mod view;
mod weighted;

pub use diff::{diff_graphs, diff_graphs_with_stats, DiffStats, GraphDiff};
pub use edgemap::{edge_map, edge_map_directed, vertex_map, Direction};
pub use edges::{
    CTreeEdges, CompressedEdges, EdgeSet, GammaEdges, IntervalEdges, PlainEdges, UncompressedEdges,
    VertexId,
};
pub use flat::FlatSnapshot;
pub use graph::{EdgeMeasure, Graph, VertexEntry, VertexTree};
pub use shard::{ShardRouter, VersionVector};
pub use snapshot::{put_u32, put_u64, read_snapshot, ByteReader, SnapshotError, SnapshotWriter};
pub use subset::VertexSubset;
pub use versioned::{symmetrize, ApplyTiming, Version, VersionedGraph};
pub use view::GraphView;
pub use weighted::{WVertexEntry, WeightedEdge, WeightedGraph};

// Re-export the chunk configuration so users tune `b` without a direct
// `ctree` dependency.
pub use ctree::ChunkParams;
