//! Flat snapshots (§5.1).
//!
//! Global algorithms touch `Ω(n)` vertices, so the `O(log n)` cost of
//! reaching each vertex through the vertex-tree adds an `O(K log n)`
//! term over a CSR baseline. A **flat snapshot** pays `O(n)` work once
//! — a single parallel traversal of the vertex tree — to produce an
//! array of edge-set handles indexed by vertex id, after which each
//! vertex access is `O(1)`.
//!
//! Because the handles are persistent edge sets, a flat snapshot is
//! itself a consistent snapshot: concurrent updates to the versioned
//! graph never disturb it.

use crate::edges::{EdgeSet, VertexId};
use crate::graph::Graph;
use crate::view::GraphView;
use rayon::prelude::*;

/// An array of per-vertex edge-set handles, giving `O(1)` vertex
/// access for global algorithms.
///
/// # Example
///
/// ```
/// use aspen::{CompressedEdges, FlatSnapshot, Graph};
///
/// let g: Graph<CompressedEdges> =
///     Graph::from_edges(&[(0, 1), (1, 0)], Default::default());
/// let snap = FlatSnapshot::new(&g);
/// assert_eq!(snap.degree(0), 1);
/// ```
pub struct FlatSnapshot<E: EdgeSet> {
    slots: Vec<Option<E>>,
    num_edges: u64,
}

impl<E: EdgeSet> FlatSnapshot<E> {
    /// Builds a flat snapshot from a graph snapshot: one parallel
    /// traversal of the vertex tree plus a parallel scatter,
    /// `O(n)` work and polylogarithmic depth.
    pub fn new(graph: &Graph<E>) -> Self {
        let bound = graph.max_vertex_id().map_or(0, |m| m as usize + 1);
        let entries = graph.vertex_tree().to_vec_par();
        // Entries are sorted by id; fill each slot range between
        // consecutive entries in parallel over slot chunks.
        let mut slots: Vec<Option<E>> = Vec::with_capacity(bound);
        slots.resize_with(bound, || None);
        const CHUNK: usize = 4096;
        slots
            .par_chunks_mut(CHUNK)
            .enumerate()
            .for_each(|(chunk_no, chunk)| {
                let base = (chunk_no * CHUNK) as u32;
                let start = entries.partition_point(|e| e.id < base);
                for entry in &entries[start..] {
                    let off = (entry.id - base) as usize;
                    if off >= chunk.len() {
                        break;
                    }
                    chunk[off] = Some(entry.edges.clone());
                }
            });
        FlatSnapshot {
            slots,
            num_edges: graph.num_edges(),
        }
    }

    /// Number of id slots (`max id + 1`).
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the snapshot covers no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The edge set of `v`, if the vertex exists.
    #[inline]
    pub fn edges(&self, v: VertexId) -> Option<&E> {
        self.slots.get(v as usize).and_then(|s| s.as_ref())
    }

    /// Degree of `v`; `O(1)`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.edges(v).map_or(0, |e| e.degree())
    }

    /// Bytes used by the snapshot array itself (the "Flat Snap." column
    /// of Table 2). The edge sets are shared with the graph and not
    /// counted here.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Option<E>>()
    }
}

impl<E: EdgeSet> GraphView for FlatSnapshot<E> {
    fn id_bound(&self) -> usize {
        self.slots.len()
    }

    fn num_edges(&self) -> u64 {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        FlatSnapshot::degree(self, v)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        if let Some(edges) = self.edges(v) {
            edges.for_each(f);
        }
    }

    fn for_each_neighbor_until(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        match self.edges(v) {
            Some(edges) => edges.for_each_until(f),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::CompressedEdges;
    use ctree::ChunkParams;

    type G = Graph<CompressedEdges>;

    fn grid() -> G {
        let mut edges = Vec::new();
        for i in 0u32..100 {
            edges.push((i, (i + 1) % 100));
            edges.push(((i + 1) % 100, i));
        }
        G::from_edges(&edges, ChunkParams::default())
    }

    #[test]
    fn flat_matches_tree_access() {
        let g = grid();
        let snap = FlatSnapshot::new(&g);
        assert_eq!(snap.len(), 100);
        for v in 0u32..100 {
            assert_eq!(snap.degree(v), g.degree(v));
            assert_eq!(snap.neighbors(v), GraphView::neighbors(&g, v));
        }
    }

    #[test]
    fn flat_is_a_stable_snapshot() {
        let g = grid();
        let snap = FlatSnapshot::new(&g);
        let _g2 = g.insert_edges(&[(0, 50), (50, 0)]);
        // snapshot untouched by the (persistent) update
        assert_eq!(snap.degree(0), 2);
    }

    #[test]
    fn missing_ids_are_isolated() {
        let g = G::from_edges(&[(0, 5), (5, 0)], ChunkParams::default());
        let snap = FlatSnapshot::new(&g);
        assert_eq!(snap.len(), 6);
        assert_eq!(snap.degree(3), 0);
        assert!(snap.edges(3).is_none());
        let mut visited = false;
        snap.for_each_neighbor(3, &mut |_| visited = true);
        assert!(!visited);
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = G::new(ChunkParams::default());
        let snap = FlatSnapshot::new(&g);
        assert!(snap.is_empty());
        assert_eq!(snap.memory_bytes(), 0);
    }
}
