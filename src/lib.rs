//! # aspen-repro
//!
//! A from-scratch Rust reproduction of *"Low-Latency Graph Streaming
//! Using Compressed Purely-Functional Trees"* (Dhulipala, Blelloch,
//! Shun — PLDI 2019): the **C-tree** data structure and the **Aspen**
//! graph-streaming framework, together with the substrate layers,
//! algorithm suite, comparison baselines and the benchmark harness that
//! regenerates every table and figure in the paper's evaluation.
//!
//! This facade crate re-exports the workspace so downstream users can
//! depend on a single package:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ctree`] | `aspen-ctree` | the C-tree (paper §3–4) |
//! | [`aspen`] | `aspen` | graph + versions + edgeMap (§5–6) |
//! | [`stream`] | `aspen-stream` | concurrent ingestion engine: adaptive batching, live analytics (§7.4) |
//! | [`algorithms`] | `aspen-algorithms` | BFS, BC, MIS, 2-hop, Local-Cluster, CC, PageRank, k-core (§7) |
//! | [`baselines`] | `aspen-baselines` | CSR, compressed CSR, Stinger-like, LLAMA-like |
//! | [`graphgen`] | `aspen-graphgen` | rMAT / Erdős–Rényi / update streams |
//! | [`ptree`] | `aspen-ptree` | purely-functional treaps (PAM-equivalent) |
//! | [`encoder`] | `aspen-encoder` | difference encoding + byte codes |
//! | [`obs`] | `aspen-obs` | metrics registry, latency histograms, task tracing, JSON |
//! | [`parlib`] | `parlib` | scans, packs, atomics, hashing |
//!
//! ## Quick start
//!
//! ```
//! use aspen_repro::aspen::{CompressedEdges, Graph, VersionedGraph};
//! use aspen_repro::algorithms::bfs;
//! use aspen_repro::aspen::FlatSnapshot;
//!
//! // Stream a graph, query a snapshot while writing.
//! let vg: VersionedGraph<CompressedEdges> =
//!     VersionedGraph::new(Graph::from_edges(&[(0, 1), (1, 0)], Default::default()));
//! vg.insert_edges_undirected(&[(1, 2), (2, 3)]);
//!
//! let snapshot = vg.acquire();
//! let result = bfs(&FlatSnapshot::new(&snapshot), 0);
//! assert_eq!(result.dist[3], 3);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! `repro` binary that regenerates the paper's tables.

pub use algorithms;
pub use aspen;
pub use baselines;
pub use ctree;
pub use encoder;
pub use graphgen;
pub use obs;
pub use parlib;
pub use ptree;
pub use stream;
