//! Social-network analytics: the workload class the paper's intro
//! motivates — friend-of-friend recommendations (2-hop) and community
//! detection (Local-Cluster) as *local* queries running against live
//! snapshots, plus influencer scoring with betweenness centrality.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use algorithms::{bc, local_cluster, two_hop};
use aspen::{CompressedEdges, FlatSnapshot, Graph, GraphView, VersionedGraph};
use graphgen::Rmat;

fn main() {
    // A scale-free "friendship" network.
    let gen = Rmat::new(12, 0xF00D);
    let edges = gen.symmetric_graph_edges(80_000);
    let vg: VersionedGraph<CompressedEdges> =
        VersionedGraph::new(Graph::from_edges(&edges, Default::default()));
    let snap = vg.acquire();
    println!("network: {:?}", snap);

    // Pick the biggest hub as our user of interest.
    let flat = FlatSnapshot::new(&snap);
    let user = (0..flat.len() as u32)
        .max_by_key(|&v| flat.degree(v))
        .expect("nonempty");
    println!("user {user} has {} friends", snap.degree(user));

    // Friend recommendations: 2-hop neighborhood minus direct friends,
    // run directly against the tree snapshot (local query — no flat
    // snapshot needed, §5.1).
    let reach = two_hop(&*snap, user);
    let friends: std::collections::HashSet<u32> =
        GraphView::neighbors(&*snap, user).into_iter().collect();
    let recommendations: Vec<u32> = reach
        .iter()
        .copied()
        .filter(|v| !friends.contains(v))
        .take(10)
        .collect();
    println!(
        "2-hop reach: {} accounts; first recommendations: {recommendations:?}",
        reach.len()
    );

    // Community detection around a mid-degree user via Nibble
    // clustering (ε = 1e-6, T = 10 — the paper's parameters).
    let someone = (0..flat.len() as u32)
        .filter(|&v| snap.degree(v) >= 4)
        .nth(100)
        .unwrap_or(user);
    let community = local_cluster(&*snap, someone);
    println!(
        "community around {someone}: {} members, conductance {:.4}",
        community.cluster.len(),
        community.conductance
    );

    // Influencer scoring: single-source BC from the hub.
    let scores = bc(&flat, user);
    let mut top: Vec<(u32, f64)> = scores
        .scores
        .iter()
        .enumerate()
        .map(|(v, &s)| (v as u32, s))
        .collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("top-5 betweenness brokers from {user}'s view:");
    for (v, s) in top.iter().take(5) {
        println!("  account {v}: score {s:.1}");
    }

    // New friendships arrive; the analysis above stays valid on its
    // snapshot while the next query sees the new edges.
    vg.insert_edges_undirected(&[(user, someone)]);
    println!(
        "after update: user {user} has {} friends (snapshot still sees {})",
        vg.acquire().degree(user),
        snap.degree(user)
    );
}
