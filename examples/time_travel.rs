//! Historical ("time-travel") queries: because versions are
//! purely-functional, keeping any number of them is just keeping their
//! roots (§8: "functional data structures are particularly well-suited
//! for this scenario"). This example retains one version per ingested
//! batch and answers queries against every point in history.
//!
//! ```sh
//! cargo run --release --example time_travel
//! ```

use algorithms::{connected_components, num_components};
use aspen::{CompressedEdges, FlatSnapshot, Graph, Version, VersionedGraph};
use graphgen::Rmat;

fn main() {
    let vg: VersionedGraph<CompressedEdges> = VersionedGraph::new(Graph::new(Default::default()));

    // Ingest 8 batches; retain the version after each one.
    let gen = Rmat::new(11, 0xCAFE);
    let mut history: Vec<Version<CompressedEdges>> = vec![vg.acquire()];
    for batch_no in 0..8u64 {
        let batch: Vec<(u32, u32)> = gen
            .edges(batch_no * 2000, 2000)
            .into_iter()
            .filter(|&(u, v)| u != v)
            .collect();
        vg.insert_edges_undirected(&batch);
        history.push(vg.acquire());
    }

    // The versions share structure: total memory is far below 9 full
    // copies.
    let newest = history.last().expect("history nonempty");
    println!(
        "kept {} versions; newest has {} edges and {} vertices",
        history.len(),
        newest.num_edges(),
        newest.num_vertices()
    );

    // Query every historical version — the graph densifies and the
    // number of components collapses over time.
    println!("batch | edges | components");
    for (i, version) in history.iter().enumerate() {
        if version.num_vertices() == 0 {
            println!("{i:>5} | {:>6} | (empty)", 0);
            continue;
        }
        let flat = FlatSnapshot::new(version);
        let cc = connected_components(&flat);
        println!(
            "{i:>5} | {:>6} | {}",
            version.num_edges(),
            num_components(&cc)
        );
    }

    // Monotonicity check: edges only grow, components only shrink.
    for w in history.windows(2) {
        assert!(w[0].num_edges() <= w[1].num_edges());
    }
    println!("history is consistent: edge counts are monotone");
}
