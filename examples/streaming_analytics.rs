//! Streaming analytics: the paper's headline scenario (§7.3) —
//! a writer ingests a continuous stream of edge updates while readers
//! run global analytics on consistent snapshots, never blocking each
//! other.
//!
//! ```sh
//! cargo run --release --example streaming_analytics
//! ```

use algorithms::bfs;
use aspen::{CompressedEdges, FlatSnapshot, Graph, VersionedGraph};
use graphgen::{build_update_stream, Rmat, Update};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // An rMAT graph standing in for a social network (§7.4 parameters).
    let gen = Rmat::new(13, 0x5EED);
    let edges = gen.symmetric_graph_edges(120_000);
    println!("generated {} directed edges over 2^13 vertices", edges.len());

    // §7.3 methodology: sample edges, 90% become re-insertions, 10%
    // deletions, shuffled.
    let setup = build_update_stream(&edges, 10_000, 42);
    let vg: Arc<VersionedGraph<CompressedEdges>> = Arc::new(VersionedGraph::new(
        Graph::from_edges(&setup.initial_edges, Default::default()),
    ));
    println!("initial version: {:?}", vg.acquire());

    let stop = Arc::new(AtomicBool::new(false));
    let applied = Arc::new(AtomicU64::new(0));

    // Writer: replays the update stream one undirected edge at a time.
    let writer = {
        let (vg, stop, applied) = (vg.clone(), stop.clone(), applied.clone());
        let updates = setup.updates;
        std::thread::spawn(move || {
            let start = Instant::now();
            for u in updates.iter().cycle() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                match *u {
                    Update::Insert(a, b) => vg.insert_edges_undirected(&[(a, b)]),
                    Update::Delete(a, b) => vg.delete_edges_undirected(&[(a, b)]),
                }
                applied.fetch_add(1, Ordering::Relaxed);
            }
            start.elapsed()
        })
    };

    // Reader: repeated BFS over fresh snapshots, concurrent with the
    // writer. Every snapshot is internally consistent (edge counts stay
    // even because both arcs of an undirected edge land atomically).
    for round in 0..5 {
        let snap = vg.acquire();
        assert_eq!(snap.num_edges() % 2, 0, "torn snapshot!");
        let flat = FlatSnapshot::new(&snap);
        let hub = (0..flat.len() as u32)
            .max_by_key(|&v| flat.degree(v))
            .expect("nonempty graph");
        let t = Instant::now();
        let r = bfs(&flat, hub);
        println!(
            "query {round}: |E| = {}, BFS from hub {hub} reached {} vertices in {:?}",
            snap.num_edges(),
            r.num_reached(),
            t.elapsed()
        );
    }

    stop.store(true, Ordering::Relaxed);
    let elapsed = writer.join().expect("writer");
    let n = applied.load(Ordering::Relaxed);
    println!(
        "writer applied {n} undirected updates in {elapsed:?} ({:.0} directed edges/s) while queries ran",
        2.0 * n as f64 / elapsed.as_secs_f64()
    );
}
