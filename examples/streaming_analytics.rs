//! Streaming analytics: the paper's headline scenario (§7.4) driven by
//! the `aspen-stream` engine — producer threads push a live update
//! stream through a bounded channel, a dedicated writer batches it
//! adaptively onto the versioned graph, and query threads run BFS,
//! connected components and PageRank on consistent snapshots the whole
//! time. Nobody blocks anybody.
//!
//! ```sh
//! cargo run --release --example streaming_analytics
//! ```

use aspen::{CompressedEdges, Graph, VersionedGraph};
use graphgen::{build_update_stream, Rmat};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stream::{analytics, BatchPolicy, StreamEngine};

fn main() {
    // An rMAT graph standing in for a social network (§7.4 parameters).
    let gen = Rmat::new(13, 0x5EED);
    let edges = gen.symmetric_graph_edges(120_000);
    println!(
        "generated {} directed edges over 2^13 vertices",
        edges.len()
    );

    // §7.3 methodology: sample edges, 90% become re-insertions, 10%
    // deletions, shuffled.
    let setup = build_update_stream(&edges, 10_000, 42);
    let vg: Arc<VersionedGraph<CompressedEdges>> = Arc::new(VersionedGraph::new(
        Graph::from_edges(&setup.initial_edges, Default::default()),
    ));
    println!("initial version: {:?}", vg.acquire());

    // The engine: adaptive batching (flush at 1024 updates or 1 ms,
    // whichever first), two query threads cycling three analytics,
    // snapshot-consistency auditing on.
    let engine = StreamEngine::builder(vg.clone())
        .policy(BatchPolicy {
            max_batch: 1024,
            max_linger: Duration::from_millis(1),
            channel_capacity: 16 * 1024,
        })
        .register_query(analytics::bfs_from_hub())
        .register_query(analytics::connected_components())
        .register_query(analytics::pagerank())
        .query_threads(2)
        .track_consistency(true)
        .start();

    // Two producers split the stream and push concurrently; the
    // bounded channel applies backpressure if they outrun the writer.
    let wall = Instant::now();
    let mid = setup.updates.len() / 2;
    let producers: Vec<_> = [setup.updates[..mid].to_vec(), setup.updates[mid..].to_vec()]
        .into_iter()
        .enumerate()
        .map(|(i, half)| {
            let handle = engine.handle();
            std::thread::Builder::new()
                .name(format!("producer-{i}"))
                .spawn(move || handle.push_all(&half).expect("engine closed early"))
                .expect("spawn producer")
        })
        .collect();
    for p in producers {
        p.join().expect("producer panicked");
    }

    // Drain, join, report.
    let report = engine.finish();
    let elapsed = wall.elapsed();

    println!("\n=== engine report ===\n{report}");
    println!(
        "\nthroughput: {:.0} undirected updates/s end to end (wall {elapsed:.2?})",
        report.updates_applied as f64 / elapsed.as_secs_f64()
    );
    assert_eq!(
        report.consistency_violations, 0,
        "snapshot isolation violated"
    );

    let final_version = vg.acquire();
    println!("final version: {final_version:?}");
    final_version.check_invariants();
}
