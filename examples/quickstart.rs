//! Quickstart: build a streaming graph, take snapshots, run queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use algorithms::{bfs, connected_components, num_components};
use aspen::{CompressedEdges, FlatSnapshot, Graph, VersionedGraph};

fn main() {
    // 1. Build an initial undirected graph: a small ring 0-1-2-3-4-0.
    let ring: Vec<(u32, u32)> = (0..5u32)
        .flat_map(|i| {
            let j = (i + 1) % 5;
            [(i, j), (j, i)]
        })
        .collect();
    let vg: VersionedGraph<CompressedEdges> =
        VersionedGraph::new(Graph::from_edges(&ring, Default::default()));
    println!("initial graph: {:?}", vg.acquire());

    // 2. Take a snapshot, then stream in more edges. Snapshots are
    //    O(1) and immutable — the reader's view never changes.
    let before = vg.acquire();
    vg.insert_edges_undirected(&[(4, 5), (5, 6), (6, 7)]);
    vg.delete_edges_undirected(&[(0, 1)]);
    let after = vg.acquire();
    println!(
        "snapshot before: {} edges | after updates: {} edges",
        before.num_edges(),
        after.num_edges()
    );
    assert_eq!(before.num_edges(), 10);

    // 3. Global query over a flat snapshot (the §5.1 optimization).
    let flat = FlatSnapshot::new(&after);
    let result = bfs(&flat, 0);
    println!(
        "BFS from 0 reaches {} vertices in {} rounds; dist(7) = {}",
        result.num_reached(),
        result.rounds,
        result.dist[7]
    );

    // 4. Components before vs after: versions live side by side.
    let flat_before = FlatSnapshot::new(&before);
    println!(
        "components: before = {}, after = {}",
        num_components(&connected_components(&flat_before)),
        num_components(&connected_components(&flat))
    );
}
