//! A durable streaming engine meant to be killed: `run` streams
//! updates with a write-ahead log and prints an ack line per installed
//! batch; `recover` rebuilds the graph from whatever survived and
//! audits it against a deterministic oracle. `tools/kill9-recovery.sh`
//! drives the pair with a real `kill -9` mid-stream.
//!
//! ```sh
//! cargo run --release --example durable_stream -- /tmp/wal run 100000
//! # ... kill -9 it whenever ...
//! cargo run --release --example durable_stream -- /tmp/wal recover
//! ```
//!
//! `run` acks `seq=<n> digest=<d>` only after batch `n` is installed —
//! and the engine appends + fsyncs the WAL frame *before* installing,
//! so every printed seq must survive a `kill -9`. `recover` prints
//! `recovered seq=<n> digest=<d> digest_ok=<bool>`, where `digest_ok`
//! compares the recovered graph against the oracle replay of its first
//! `n` updates: the auditor checks `recovered seq >= last acked seq`
//! and `digest_ok=true`.

use aspen::{symmetrize, ChunkParams, CompressedEdges, EdgeSet, Graph, VersionedGraph};
use graphgen::Update;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;
use stream::wal::recover;
use stream::{BatchPolicy, DurabilityConfig, FsyncPolicy, StreamEngine};

type G = Graph<CompressedEdges>;

/// The deterministic update stream both `run` and `recover` replay:
/// mostly inserts with some deletes, over a fixed seed.
fn update_at(i: u64) -> Update {
    let mut s = (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    let a = ((s >> 8) % 4096) as u32;
    let b = ((s >> 34) % 4096) as u32;
    if s % 10 < 8 {
        Update::Insert(a, b)
    } else {
        Update::Delete(a, b)
    }
}

fn apply(g: G, u: Update) -> G {
    match u {
        Update::Insert(a, b) => g.insert_edges(&symmetrize(&[(a, b)])),
        Update::Delete(a, b) => g.delete_edges(&symmetrize(&[(a, b)])),
    }
}

/// Order-independent digest of the directed edge set.
fn digest(g: &G) -> u64 {
    let mut acc = 0u64;
    for v in g.vertex_ids() {
        for n in g.find_vertex(v).unwrap().edges.to_vec() {
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (((v as u64) << 32) | n as u64);
            h = h.wrapping_mul(0x1000_0000_01b3);
            h ^= h >> 29;
            acc = acc.wrapping_add(h.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }
    acc
}

fn cfg(dir: &str) -> DurabilityConfig {
    DurabilityConfig::new(dir)
        .fsync(FsyncPolicy::Always)
        .checkpoint_every(2048)
}

/// Streams `n` one-update batches, acking each installed seq on
/// stdout. One update per batch keeps seq == update index, so the
/// recover side can replay the oracle to any acked point.
fn run(dir: &str, n: u64) {
    let vg: Arc<VersionedGraph<CompressedEdges>> =
        Arc::new(VersionedGraph::new(G::new(ChunkParams::default())));
    let engine = StreamEngine::builder(Arc::clone(&vg))
        .policy(BatchPolicy {
            max_batch: 1,
            max_linger: Duration::from_micros(100),
            channel_capacity: 1,
        })
        .durability(cfg(dir))
        .start();
    let h = engine.handle();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut oracle = G::new(ChunkParams::default());
    for i in 0..n {
        let u = update_at(i);
        h.push(u).expect("engine closed early");
        while engine.installed_version() < i + 1 {
            std::hint::spin_loop();
        }
        oracle = apply(oracle, u);
        // The ack: seq i+1 is installed, therefore WAL-durable.
        writeln!(out, "seq={} digest={:016x}", i + 1, digest(&oracle)).unwrap();
        out.flush().unwrap();
    }
    drop(h);
    engine.close();
}

/// Recovers the log and audits the result against the oracle replay
/// of the recovered prefix.
fn recover_and_audit(dir: &str) {
    let r = recover::<CompressedEdges>(&cfg(dir), ChunkParams::default(), false)
        .expect("recovery failed");
    let mut oracle = G::new(ChunkParams::default());
    for i in 0..r.seq {
        oracle = apply(oracle, update_at(i));
    }
    let got = digest(&r.graph);
    let want = digest(&oracle);
    println!(
        "recovered seq={} digest={got:016x} checkpoint_seq={} frames_replayed={} \
         torn_tail_bytes={} digest_ok={}",
        r.seq,
        r.report.checkpoint_seq,
        r.report.frames_replayed,
        r.report.torn_tail_bytes,
        got == want,
    );
    if got != want {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.as_slice() {
        [_, dir, cmd, rest @ ..] if cmd == "run" => {
            let n = rest
                .first()
                .map(|s| s.parse().expect("n must be a number"))
                .unwrap_or(1_000_000);
            run(dir, n);
        }
        [_, dir, cmd] if cmd == "recover" => recover_and_audit(dir),
        _ => {
            eprintln!("usage: durable_stream <dir> run [n] | durable_stream <dir> recover");
            std::process::exit(2);
        }
    }
}
