//! Weighted streaming: the paper's §6 future-work extension in action.
//! A road-network-style graph with edge costs; costs are re-priced on
//! the fly (weight updates are just insertions with a combiner) and
//! shortest routes recomputed on consistent snapshots.
//!
//! ```sh
//! cargo run --release --example weighted_routing
//! ```

use algorithms::{sssp, INF};
use aspen::WeightedGraph;

fn main() {
    // A 16×16 grid "road network": neighbors cost 1..=9, deterministic.
    let side = 16u32;
    let id = |x: u32, y: u32| y * side + x;
    let cost = |a: u32, b: u32| 1 + (a.wrapping_mul(31).wrapping_add(b) % 9);
    let mut edges = Vec::new();
    for y in 0..side {
        for x in 0..side {
            if x + 1 < side {
                let (a, b) = (id(x, y), id(x + 1, y));
                let w = cost(a, b);
                edges.push((a, b, w));
                edges.push((b, a, w));
            }
            if y + 1 < side {
                let (a, b) = (id(x, y), id(x, y + 1));
                let w = cost(a, b);
                edges.push((a, b, w));
                edges.push((b, a, w));
            }
        }
    }
    let g = WeightedGraph::from_edges(&edges, Default::default());
    println!("road network: {g:?}");

    let (start, goal) = (id(0, 0), id(side - 1, side - 1));
    let before = sssp(&g, start);
    println!(
        "cheapest route {start}→{goal}: cost {}",
        before[goal as usize]
    );
    assert_ne!(before[goal as usize], INF);

    // Rush hour: every edge out of the center column triples in cost.
    // Re-pricing = insert_edges with a combiner over the old weight.
    let mid = side / 2;
    let repriced: Vec<(u32, u32, u32)> = edges
        .iter()
        .filter(|&&(a, _, _)| a % side == mid)
        .map(|&(a, b, w)| (a, b, w * 3))
        .collect();
    let congested = g.insert_edges(&repriced, |_old, new| new);
    let during = sssp(&congested, start);
    println!(
        "after congestion re-pricing: cost {} (was {})",
        during[goal as usize], before[goal as usize]
    );
    assert!(during[goal as usize] >= before[goal as usize]);

    // The pre-congestion snapshot still answers with the old costs —
    // both versions are live simultaneously.
    let again = sssp(&g, start);
    assert_eq!(again[goal as usize], before[goal as usize]);
    println!("historical snapshot still quotes the old cost — versions coexist");

    // A road closure: delete the edges, confirm routes re-route.
    let closures: Vec<(u32, u32)> = (0..side - 1)
        .map(|y| (id(mid, y), id(mid, y + 1)))
        .flat_map(|(a, b)| [(a, b), (b, a)])
        .collect();
    let closed = congested.delete_edges(&closures);
    let rerouted = sssp(&closed, start);
    println!(
        "after closing the center column's vertical segments: cost {}",
        rerouted[goal as usize]
    );
    assert_ne!(rerouted[goal as usize], INF, "grid stays connected");
}
