//! In-repo stand-in for [crossbeam](https://docs.rs/crossbeam) (no
//! crates.io access in the build container — see `shims/README.md`).
//!
//! Only `queue::SegQueue` is provided (the worklist engine's MPMC
//! queue). It is a mutex-guarded `VecDeque` rather than a lock-free
//! segmented queue: same semantics, coarser contention behavior.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO, matching `crossbeam::queue::SegQueue`.
    #[derive(Default, Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn concurrent_producers_consumers() {
            let q = std::sync::Arc::new(SegQueue::new());
            let mut handles = Vec::new();
            for t in 0..4 {
                let q = q.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..100 {
                        q.push(t * 100 + i);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let mut seen = 0;
            while q.pop().is_some() {
                seen += 1;
            }
            assert_eq!(seen, 400);
        }
    }
}
